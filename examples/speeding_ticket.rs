//! The paper's §2 speeding-ticket scenario: issuing tickets from GPS speed
//! with a naive boolean versus demanding strong evidence.
//!
//! Run with `cargo run --example speeding_ticket`.

use uncertain_suite::gps::{uncertain_speed, GeoCoordinate, GpsReading, MPS_TO_MPH};
use uncertain_suite::{EvalConfig, Session, Uncertain};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let limit = 60.0;
    println!("speed limit {limit} mph, GPS ε = 4 m, fixes 1 s apart\n");
    println!(
        "{:>10} {:>14} {:>18} {:>20}",
        "true mph", "Pr[>limit]", "naive verdict", "evidence .pr(0.95)"
    );

    let mut session = Session::seeded(7);
    for true_mph in [50.0, 55.0, 57.0, 60.0, 63.0, 70.0, 90.0] {
        // Build the uncertain speed for one pair of fixes around the true
        // displacement.
        let start = GeoCoordinate::new(47.6, -122.3);
        let end = start.destination(true_mph / MPS_TO_MPH, 90.0);
        let a = GpsReading::new(start, 4.0)?;
        let b = GpsReading::new(end, 4.0)?;
        let speed = uncertain_speed(&a, &b, 1.0);

        let over = speed.gt(limit);
        let evidence = over.probability_in(&mut session, 3000);
        // A naive app reads one sample (a point estimate) and compares.
        let naive_verdict = session.sample(&speed) > limit;
        let calibrated = session.evaluate_with(&over, 0.95, &EvalConfig::default());
        println!(
            "{:>10.0} {:>14.3} {:>18} {:>20}",
            true_mph,
            evidence,
            if naive_verdict { "TICKET" } else { "-" },
            if calibrated.is_true() { "TICKET" } else { "-" }
        );
    }

    println!();
    println!("a calibrated officer needs Pr[speeding] > 0.95 before writing the ticket;");
    println!("a naive one fines people for GPS noise.");

    // The same pattern works for any uncertain quantity:
    let blood_pressure = Uncertain::normal(138.0, 8.0)?;
    let hypertensive = blood_pressure.gt(140.0);
    println!(
        "\nbonus: Pr[BP > 140] = {:.2} — would you medicate on one cuff reading?",
        hypertensive.probability_in(&mut session, 3000)
    );
    Ok(())
}
