//! Parakeet in action: approximate the Sobel operator with a Bayesian
//! neural network and pick your own precision/recall balance with the
//! conditional threshold α.
//!
//! Run with `cargo run --example parakeet_edges --release`.

use uncertain_suite::neural::eval::{parakeet_precision_recall, parrot_confusion};
use uncertain_suite::neural::sobel::{generate_dataset, EDGE_THRESHOLD};
use uncertain_suite::neural::{Parakeet, Parrot};
use uncertain_suite::Session;

fn main() {
    let train = generate_dataset(800, 7);
    let test = generate_dataset(200, 8);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);

    println!("training Parrot (single network, SGD)…");
    let parrot = Parrot::train(&train, 50, 0.05, &mut rng);
    println!("  RMSE on held-out data: {:.3}", parrot.rmse(&test));

    println!(
        "training Parakeet (HMC posterior, {} examples)…",
        train.len()
    );
    let parakeet = Parakeet::train_tuned(&train, 120, 10, &mut rng);
    println!(
        "  pool of {} networks, HMC acceptance {:.2}\n",
        parakeet.pool_size(),
        parakeet.acceptance_rate()
    );

    let parrot_m = parrot_confusion(&parrot, &test);
    println!(
        "Parrot's fixed operating point: precision {:.2}, recall {:.2}",
        parrot_m.precision().unwrap_or(f64::NAN),
        parrot_m.recall().unwrap_or(f64::NAN)
    );

    let mut session = Session::seeded(11);
    let alphas = [0.2, 0.5, 0.8];
    let points = parakeet_precision_recall(&parakeet, &test, &alphas, 200, &mut session);
    println!("\nParakeet lets the developer choose:");
    for p in points {
        println!(
            "  α = {:.1}: precision {:.2}, recall {:.2}",
            p.alpha,
            p.precision.unwrap_or(f64::NAN),
            p.recall.unwrap_or(f64::NAN)
        );
    }

    // And single decisions read like the paper's code.
    let patch = &test.inputs[0];
    let evidence = parakeet
        .predict(patch)
        .gt(EDGE_THRESHOLD)
        .probability_in(&mut session, 500);
    println!(
        "\nfor one test patch: Pr[s(p) > {EDGE_THRESHOLD}] ≈ {evidence:.2}; \
         .pr(0.8) says {}",
        if parakeet
            .predict(patch)
            .gt(EDGE_THRESHOLD)
            .pr_in(&mut session, 0.8)
        {
            "EDGE"
        } else {
            "no edge"
        }
    );
}
