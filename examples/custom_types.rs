//! `Uncertain<T>` over *your own* types: the paper's algebra is generic —
//! "developers may override other types as well" (§3.1) — so any type with
//! arithmetic can carry uncertainty. Here: a 2D force vector and a typed
//! temperature.
//!
//! Run with `cargo run --example custom_types`.

use std::ops::{Add, Div, Mul};
use uncertain_suite::{Session, Uncertain};

/// A plain 2D vector — a "numeric" user type like the paper's
/// `GeoCoordinate`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct Vec2 {
    x: f64,
    y: f64,
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2 {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, k: f64) -> Vec2 {
        Vec2 {
            x: self.x * k,
            y: self.y * k,
        }
    }
}

impl Vec2 {
    fn magnitude(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }
}

/// Degrees Celsius as a newtype (the guide's static distinction between
/// unit interpretations).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
struct Celsius(f64);

impl Add for Celsius {
    type Output = Celsius;
    fn add(self, rhs: Celsius) -> Celsius {
        Celsius(self.0 + rhs.0)
    }
}

impl Div<f64> for Celsius {
    type Output = Celsius;
    fn div(self, k: f64) -> Celsius {
        Celsius(self.0 / k)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::seeded(21);

    // --- Uncertain forces -------------------------------------------------
    // Two force sensors, each with independent 2D Gaussian noise.
    let sensor = |mean: Vec2, sd: f64, label: &str| -> Uncertain<Vec2> {
        let noise_x = Uncertain::normal(mean.x, sd).expect("positive sd");
        let noise_y = Uncertain::normal(mean.y, sd).expect("positive sd");
        noise_x.map2(label, &noise_y, |x, y| Vec2 { x, y })
    };
    let f1 = sensor(Vec2 { x: 3.0, y: 0.5 }, 0.4, "sensor 1");
    let f2 = sensor(Vec2 { x: -1.0, y: 2.0 }, 0.6, "sensor 2");

    // The lifted `+` works because Vec2: Add — the generic algebra of §3.1.
    let net_force = f1.map2("+", &f2, |a, b| a + b);
    let magnitude = net_force.map("‖·‖", Vec2::magnitude);

    println!(
        "E[‖F₁ + F₂‖] = {:.3} N (true resultant ‖(2, 2.5)‖ = {:.3})",
        magnitude.expected_value_in(&mut session, 4000),
        (Vec2 { x: 2.0, y: 2.5 }).magnitude()
    );
    println!(
        "Pr[net force exceeds 4 N] ≈ {:.2}",
        magnitude.gt(4.0).probability_in(&mut session, 4000)
    );
    if magnitude.gt(5.0).pr_in(&mut session, 0.95) {
        println!("…trip the overload breaker (95% sure).");
    } else {
        println!("…no confident overload: keep running.");
    }

    // --- Uncertain temperatures -------------------------------------------
    // Three thermometer readings of the same room; average them with the
    // lifted algebra over the newtype.
    let read = |true_temp: f64| -> Uncertain<Celsius> {
        Uncertain::normal(true_temp, 0.8)
            .expect("positive sd")
            .map("Celsius", Celsius)
    };
    let t1 = read(21.4);
    let t2 = read(21.4);
    let t3 = read(21.4);
    let mean_temp = t1
        .map2("+", &t2, |a, b| a + b)
        .map2("+", &t3, |a, b| a + b)
        .map("÷3", |sum: Celsius| sum / 3.0);

    // Comparisons come from PartialOrd on the newtype.
    let too_warm = mean_temp.gt(Celsius(22.0));
    println!(
        "\nPr[room above 22 °C] ≈ {:.2}",
        too_warm.probability_in(&mut session, 4000)
    );
    println!(
        "turn on the AC? {}",
        if too_warm.pr_in(&mut session, 0.9) {
            "yes (90% sure)"
        } else {
            "no — evidence is weak"
        }
    );
    Ok(())
}
