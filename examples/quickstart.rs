//! Quickstart: the whole `Uncertain<T>` story in one file.
//!
//! Run with `cargo run --example quickstart`.

use uncertain_suite::dist::Gaussian;
use uncertain_suite::{EvalConfig, Session, Uncertain};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Experts expose estimates as distributions (sampling functions).
    let distance = Uncertain::normal(30.0, 8.0)?; // meters, noisy
    let dt = 10.0; // seconds, exact

    // 2. Applications compute with them as if they were numbers. The
    //    operators build a Bayesian network; nothing samples yet.
    let speed = &distance / dt * 2.23694; // mph
    println!("network for speed:\n{}", speed.to_dot());

    // 3. Questions are evidence, not booleans. A `Session` owns the RNG
    //    policy and caches the compiled evaluation plan across calls.
    let mut session = Session::seeded(42);
    let fast = speed.gt(4.0);
    println!(
        "Pr[speed > 4 mph] ≈ {:.2}",
        fast.probability_in(&mut session, 2000)
    );
    println!(
        "implicit conditional (more likely than not): {}",
        fast.is_probable_in(&mut session)
    );
    println!(
        "explicit conditional at 90% evidence:        {}",
        fast.pr_in(&mut session, 0.9)
    );

    // 4. The full hypothesis-test outcome, including sampling cost.
    let outcome = session.evaluate_with(&fast, 0.9, &EvalConfig::default());
    println!(
        "SPRT: accepted={} conclusive={} after {} samples (estimate {:.2})",
        outcome.accepted, outcome.conclusive, outcome.samples, outcome.estimate
    );

    // 5. Domain knowledge sharpens estimates (Bayes).
    let walking_prior = Gaussian::new(3.0, 1.0)?;
    let improved = speed.with_prior(walking_prior);
    let stats = improved.stats_in(&mut session, 2000)?;
    println!(
        "prior-improved speed: {:.2} ± {:.2} mph",
        stats.mean(),
        stats.std_dev()
    );

    // 6. And `E` projects back to a plain number when you must have one.
    println!(
        "E[speed] = {:.2} mph",
        speed.expected_value_in(&mut session, 2000)
    );

    // 7. Every question above reused one cached evaluation plan per root.
    let cache = session.cache_stats();
    println!(
        "session plan cache: {} hits, {} misses",
        cache.hits, cache.misses
    );
    Ok(())
}
