//! Quickstart: the whole `Uncertain<T>` story in one file.
//!
//! Run with `cargo run --example quickstart`.

use uncertain_suite::dist::Gaussian;
use uncertain_suite::{EvalConfig, Sampler, Uncertain};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Experts expose estimates as distributions (sampling functions).
    let distance = Uncertain::normal(30.0, 8.0)?; // meters, noisy
    let dt = 10.0; // seconds, exact

    // 2. Applications compute with them as if they were numbers. The
    //    operators build a Bayesian network; nothing samples yet.
    let speed = &distance / dt * 2.23694; // mph
    println!("network for speed:\n{}", speed.to_dot());

    // 3. Questions are evidence, not booleans.
    let mut sampler = Sampler::seeded(42);
    let fast = speed.gt(4.0);
    println!(
        "Pr[speed > 4 mph] ≈ {:.2}",
        fast.probability_with(&mut sampler, 2000)
    );
    println!(
        "implicit conditional (more likely than not): {}",
        fast.is_probable_with(&mut sampler)
    );
    println!(
        "explicit conditional at 90% evidence:        {}",
        fast.pr_with(0.9, &mut sampler)
    );

    // 4. The full hypothesis-test outcome, including sampling cost.
    let outcome = fast.evaluate(0.9, &mut sampler, &EvalConfig::default());
    println!(
        "SPRT: accepted={} conclusive={} after {} samples (estimate {:.2})",
        outcome.accepted, outcome.conclusive, outcome.samples, outcome.estimate
    );

    // 5. Domain knowledge sharpens estimates (Bayes).
    let walking_prior = Gaussian::new(3.0, 1.0)?;
    let improved = speed.with_prior(walking_prior);
    let stats = improved.stats_with(&mut sampler, 2000)?;
    println!(
        "prior-improved speed: {:.2} ± {:.2} mph",
        stats.mean(),
        stats.std_dev()
    );

    // 6. And `E` projects back to a plain number when you must have one.
    println!(
        "E[speed] = {:.2} mph",
        speed.expected_value_with(&mut sampler, 2000)
    );
    Ok(())
}
