//! The paper's Fig. 5 GPS-Walking app, end to end on the simulated sensor:
//! naive vs. uncertain behavior, second by second.
//!
//! Run with `cargo run --example gps_walking --release`.

use uncertain_suite::gps::{Action, WalkExperiment};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("GPS-Walking: walking at a true 3 mph with ε = 4 m GPS for 3 minutes\n");
    let result = WalkExperiment::new(4.0, 180, 5)
        .samples_per_estimate(200)
        .run()?;

    println!("t(s)  true  naive  improved  naive-app     uncertain-app");
    for r in result.records.iter().step_by(6) {
        let show = |a: Action| match a {
            Action::GoodJob => "GoodJob!",
            Action::SpeedUp => "SpeedUp!",
            Action::Silent => "(silent)",
        };
        println!(
            "{:>4} {:>5.1} {:>6.1} {:>9.1}  {:<12} {}",
            r.t,
            r.true_speed,
            r.naive_speed,
            r.improved_speed,
            show(r.naive_action),
            show(r.uncertain_action)
        );
    }

    println!();
    println!(
        "the user never walked faster than 4 mph, yet the naive app praised them {} times;",
        result.naive_action_count(Action::GoodJob)
    );
    println!(
        "the uncertain app praised {} times, admonished {} times, and stayed silent {} times",
        result.uncertain_action_count(Action::GoodJob),
        result.uncertain_action_count(Action::SpeedUp),
        result.uncertain_action_count(Action::Silent)
    );
    println!(
        "max naive speed: {:.1} mph; max prior-improved speed: {:.1} mph",
        result.max_of(|r| r.naive_speed),
        result.max_of(|r| r.improved_speed)
    );
    Ok(())
}
