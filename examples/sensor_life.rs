//! SensorLife live: watch the three noisy Games of Life track (or lose)
//! the true board over a few generations.
//!
//! Run with `cargo run --example sensor_life --release`.

use uncertain_suite::life::{BayesLife, Board, LifeVariant, NaiveLife, NoisySensor, SensorLife};
use uncertain_suite::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sigma = 0.2;
    let sensor = NoisySensor::new(sigma)?;
    let variants: Vec<Box<dyn LifeVariant>> = vec![
        Box::new(NaiveLife::new(sensor)),
        Box::new(SensorLife::new(sensor)),
        Box::new(BayesLife::new(sensor)),
    ];

    let mut board = Board::random(12, 12, 0.35, 99);
    let mut session = Session::seeded(100);
    let mut cumulative = vec![0usize; variants.len()];
    let mut updates = 0usize;

    println!("noise σ = {sigma}; per-generation wrong decisions vs. ground truth\n");
    for generation in 1..=8 {
        let mut errors = vec![0usize; variants.len()];
        for (x, y) in board.coords() {
            let truth =
                uncertain_suite::life::next_state(board.get(x, y), board.live_neighbors(x, y));
            for (i, v) in variants.iter().enumerate() {
                if v.decide(&board, x, y, &mut session).alive != truth {
                    errors[i] += 1;
                }
            }
            updates += 1;
        }
        for (c, e) in cumulative.iter_mut().zip(&errors) {
            *c += e;
        }
        println!(
            "generation {generation}: Naive {:>3}  Sensor {:>3}  Bayes {:>3}   (of {} cells)",
            errors[0],
            errors[1],
            errors[2],
            board.width() * board.height()
        );
        board = board.step();
    }

    println!("\ntrue board after 8 generations:\n{board}");
    println!("cumulative error rates over {updates} updates:");
    for (v, &e) in variants.iter().zip(&cumulative) {
        println!(
            "  {:<11} {:>6.2}%",
            v.name(),
            100.0 * e as f64 / updates as f64
        );
    }
    Ok(())
}
