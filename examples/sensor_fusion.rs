//! Sensor fusion: combine two GPS fixes into one sharper posterior with
//! Bayes' theorem — impossible with point-plus-radius APIs, one line with
//! `Uncertain<GeoCoordinate>`.
//!
//! Run with `cargo run --example sensor_fusion`.

use uncertain_suite::gps::{GeoCoordinate, SimulatedGps};
use uncertain_suite::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let truth = GeoCoordinate::new(47.6097, -122.3331); // Pike Place Market
    let mut session = Session::seeded(8);

    // Two sensors fix the same spot: phone GPS (ε = 12 m) and a watch
    // (ε = 8 m).
    let phone = SimulatedGps::new(12.0)?.read(&truth, session.rng());
    let watch = SimulatedGps::new(8.0)?.read(&truth, session.rng());
    println!("truth:        {truth}");
    println!(
        "phone fix:    {}  (ε = {:.0} m, error {:.1} m)",
        phone.center(),
        phone.accuracy(),
        truth.distance_meters(&phone.center())
    );
    println!(
        "watch fix:    {}  (ε = {:.0} m, error {:.1} m)",
        watch.center(),
        watch.accuracy(),
        truth.distance_meters(&watch.center())
    );

    let fused = phone.fuse(&watch);
    let n = 4000;
    let err = |loc: &uncertain_suite::Uncertain<GeoCoordinate>, s: &mut Session| {
        loc.expect_by_in(s, n, |p| truth.distance_meters(p))
    };
    let phone_err = err(&phone.location(), &mut session);
    let watch_err = err(&watch.location(), &mut session);
    let fused_err = err(&fused, &mut session);

    println!();
    println!("E[distance from truth]:");
    println!("  phone alone: {phone_err:.2} m");
    println!("  watch alone: {watch_err:.2} m");
    println!("  fused:       {fused_err:.2} m");

    // A confidence question only a distribution can answer:
    let near_market = fused.map("within 10 m", move |p: GeoCoordinate| {
        truth.distance_meters(&p) <= 10.0
    });
    println!(
        "\nPr[fused location within 10 m of the market] ≈ {:.2}",
        near_market.probability_in(&mut session, n)
    );
    if near_market.pr_in(&mut session, 0.9) {
        println!("…confident enough (>90%) to auto-check-in.");
    } else {
        println!("…not confident enough (>90%) to auto-check-in; ask the user.");
    }
    Ok(())
}
