//! Road snapping (paper Fig. 10): apply a road-map prior to an uncertain
//! GPS location and watch the posterior move onto the street grid.
//!
//! Run with `cargo run --example road_snapping`.

use uncertain_suite::gps::{GeoCoordinate, GpsReading, RoadMap};
use uncertain_suite::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small street grid: two parallel east-west streets 80 m apart and a
    // north-south cross street.
    let c = GeoCoordinate::new(47.6, -122.3);
    let north_street = (
        c.destination(80.0, 0.0).destination(300.0, 270.0),
        c.destination(80.0, 0.0).destination(300.0, 90.0),
    );
    let south_street = (c.destination(300.0, 270.0), c.destination(300.0, 90.0));
    let cross_street = (c.destination(50.0, 180.0), c.destination(130.0, 0.0));
    let map = RoadMap::new(vec![north_street, south_street, cross_street])?;

    // The raw fix: 25 m north of the south street, ε = 10 m — genuinely
    // ambiguous between the two streets.
    let fix = GpsReading::new(c.destination(25.0, 0.0), 10.0)?;
    println!("raw fix at 25 m north of the south street, ε = 10 m\n");

    let raw = fix.location();
    let snapped = map.snap(&raw, 3.0, 1e-4);

    let mut session = Session::seeded(3);
    let n = 3000;
    let raw_d = raw.expect_by_in(&mut session, n, |p| map.distance_to_road(p));
    let snapped_d = snapped.expect_by_in(&mut session, n, |p| map.distance_to_road(p));
    println!("E[distance to nearest road]: raw {raw_d:.1} m → snapped {snapped_d:.1} m");

    // Which street did the posterior choose?
    let (mut south_votes, mut north_votes) = (0, 0);
    for _ in 0..n {
        let p = session.sample(&snapped);
        // Compare latitude offset: south street is at 0 m, north at 80 m.
        let north_offset = c.bearing_to(&p);
        let dist = c.distance_meters(&p);
        let northing = if (north_offset - 0.0).abs() < 90.0 || north_offset > 270.0 {
            dist
        } else {
            -dist
        };
        if northing > 40.0 {
            north_votes += 1;
        } else {
            south_votes += 1;
        }
    }
    println!(
        "posterior street choice: south {south_votes} / north {north_votes} \
         (the evidence is 25 m from south, 55 m from north)"
    );

    // A confident off-road fix resists snapping.
    let far = GpsReading::new(c.destination(45.0, 0.0).destination(200.0, 90.0), 3.0)?;
    let kept = map.snap(&far.location(), 3.0, 1e-3);
    let kept_dist = kept.expect_by_in(&mut session, n, |p| far.center().distance_meters(p));
    println!(
        "\na tight (ε = 3 m) fix midway between streets stays put: \
         E[dist from fix] = {kept_dist:.1} m"
    );
    Ok(())
}
