//! Stochastic gradient descent — the Parrot baseline's training loop.

use crate::network::Mlp;
use rand::seq::SliceRandom;
use rand::RngCore;

/// Plain SGD over squared error, with per-epoch shuffling.
///
/// # Examples
///
/// ```
/// use uncertain_neural::{Mlp, SgdTrainer};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut net = Mlp::new(&[1, 8, 1], &mut rng);
/// // Learn y = x² on [-1, 1].
/// let inputs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 32.0 - 1.0]).collect();
/// let targets: Vec<f64> = inputs.iter().map(|x| x[0] * x[0]).collect();
/// SgdTrainer::new(0.05, 400).train(&mut net, &inputs, &targets, &mut rng);
/// assert!(net.mse(&inputs, &targets) < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdTrainer {
    learning_rate: f64,
    epochs: usize,
}

impl SgdTrainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate ≤ 0` or `epochs == 0`.
    pub fn new(learning_rate: f64, epochs: usize) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!(epochs > 0, "need at least one epoch");
        Self {
            learning_rate,
            epochs,
        }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// The configured epoch count.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// Trains `net` in place on `(inputs, targets)`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or ragged.
    pub fn train(
        &self,
        net: &mut Mlp,
        inputs: &[Vec<f64>],
        targets: &[f64],
        rng: &mut dyn RngCore,
    ) {
        assert!(!inputs.is_empty(), "cannot train on an empty dataset");
        assert_eq!(
            inputs.len(),
            targets.len(),
            "inputs/targets length mismatch"
        );
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        for _ in 0..self.epochs {
            order.shuffle(rng);
            for &i in &order {
                let (_, grad) = net.grad_squared_error(&inputs[i], targets[i]);
                for (w, g) in net.params_mut().iter_mut().zip(&grad) {
                    *w -= self.learning_rate * g;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_zero_lr() {
        let _ = SgdTrainer::new(0.0, 10);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty_dataset() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut net = Mlp::new(&[1, 2, 1], &mut rng);
        SgdTrainer::new(0.1, 1).train(&mut net, &[], &[], &mut rng);
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut net = Mlp::new(&[2, 6, 1], &mut rng);
        let inputs: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 8) as f64 / 8.0, (i / 8) as f64 / 5.0])
            .collect();
        let targets: Vec<f64> = inputs.iter().map(|x| (x[0] - x[1]).abs()).collect();
        let before = net.mse(&inputs, &targets);
        SgdTrainer::new(0.05, 300).train(&mut net, &inputs, &targets, &mut rng);
        let after = net.mse(&inputs, &targets);
        assert!(after < before / 4.0, "before {before}, after {after}");
    }

    #[test]
    fn deterministic_given_seed() {
        let make = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let mut net = Mlp::new(&[1, 3, 1], &mut rng);
            let inputs = vec![vec![0.0], vec![0.5], vec![1.0]];
            let targets = vec![0.0, 0.25, 1.0];
            SgdTrainer::new(0.1, 50).train(&mut net, &inputs, &targets, &mut rng);
            net.predict(&[0.7])
        };
        assert_eq!(make(), make());
    }
}
