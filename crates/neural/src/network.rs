//! A feed-forward multi-layer perceptron with exact backprop gradients.

use rand::RngCore;

/// A fully connected feed-forward network: tanh activations on hidden
/// layers, linear output (a regression network, as Parrot uses for the
/// Sobel operator).
///
/// Parameters are stored *flat* (`Vec<f64>`) so the HMC sampler can treat
/// the network as a point in ℝⁿ.
///
/// # Examples
///
/// ```
/// use uncertain_neural::Mlp;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = Mlp::new(&[9, 8, 1], &mut rng);
/// assert_eq!(net.num_params(), 9 * 8 + 8 + 8 + 1);
/// let y = net.predict(&[0.0; 9]);
/// assert!(y.is_finite());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    sizes: Vec<usize>,
    params: Vec<f64>,
}

impl Mlp {
    /// Creates a network with the given layer sizes (`[inputs, hidden…,
    /// outputs]`), weights initialized `N(0, 1/√fan_in)`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two layer sizes are given or any size is zero.
    pub fn new(sizes: &[usize], rng: &mut dyn RngCore) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output layers");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let count = Self::param_count(sizes);
        let mut params = Vec::with_capacity(count);
        for l in 0..sizes.len() - 1 {
            let fan_in = sizes[l] as f64;
            let scale = 1.0 / fan_in.sqrt();
            for _ in 0..sizes[l] * sizes[l + 1] {
                params.push(gaussian(rng) * scale);
            }
            params.extend(std::iter::repeat_n(0.0, sizes[l + 1])); // biases start at zero
        }
        Self {
            sizes: sizes.to_vec(),
            params,
        }
    }

    /// Reconstructs a network from flat parameters (the inverse of
    /// [`Mlp::params`]).
    ///
    /// # Panics
    ///
    /// Panics if `params.len()` does not match the architecture.
    pub fn from_params(sizes: &[usize], params: Vec<f64>) -> Self {
        assert_eq!(
            params.len(),
            Self::param_count(sizes),
            "parameter vector does not match architecture"
        );
        Self {
            sizes: sizes.to_vec(),
            params,
        }
    }

    fn param_count(sizes: &[usize]) -> usize {
        sizes.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// The layer sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of scalar parameters (weights + biases).
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// The flat parameter vector.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Mutable access to the flat parameter vector (used by SGD).
    pub fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    /// Runs the network, returning all output activations.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the input layer.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        self.forward_trace(input).pop().expect("at least one layer")
    }

    /// Runs the network and returns the first output — the scalar
    /// prediction for regression networks.
    pub fn predict(&self, input: &[f64]) -> f64 {
        self.forward(input)[0]
    }

    /// Forward pass retaining every layer's activations (input first,
    /// output last) for backprop.
    fn forward_trace(&self, input: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(input.len(), self.sizes[0], "input size mismatch");
        let mut activations = vec![input.to_vec()];
        let mut offset = 0;
        for l in 0..self.sizes.len() - 1 {
            let (n_in, n_out) = (self.sizes[l], self.sizes[l + 1]);
            let weights = &self.params[offset..offset + n_in * n_out];
            let biases = &self.params[offset + n_in * n_out..offset + n_in * n_out + n_out];
            offset += n_in * n_out + n_out;
            let prev = activations.last().expect("seeded with the input");
            let last_layer = l == self.sizes.len() - 2;
            let mut next = Vec::with_capacity(n_out);
            for j in 0..n_out {
                let mut z = biases[j];
                for (i, &a) in prev.iter().enumerate() {
                    z += weights[j * n_in + i] * a;
                }
                next.push(if last_layer { z } else { z.tanh() });
            }
            activations.push(next);
        }
        activations
    }

    /// Backprop for one example under squared-error loss
    /// `L = ½(y − t)²` (first output only): returns `(loss, ∂L/∂params)`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the input layer.
    pub fn grad_squared_error(&self, input: &[f64], target: f64) -> (f64, Vec<f64>) {
        let activations = self.forward_trace(input);
        let output = activations.last().expect("at least one layer")[0];
        let loss = 0.5 * (output - target).powi(2);

        let mut grad = vec![0.0; self.params.len()];
        // Delta at the (linear) output layer.
        let mut delta: Vec<f64> = activations
            .last()
            .expect("at least one layer")
            .iter()
            .enumerate()
            .map(|(j, _)| if j == 0 { output - target } else { 0.0 })
            .collect();

        // Walk layers backward; track the flat offset of each layer.
        let mut offsets = Vec::new();
        let mut off = 0;
        for l in 0..self.sizes.len() - 1 {
            offsets.push(off);
            off += self.sizes[l] * self.sizes[l + 1] + self.sizes[l + 1];
        }

        for l in (0..self.sizes.len() - 1).rev() {
            let (n_in, n_out) = (self.sizes[l], self.sizes[l + 1]);
            let offset = offsets[l];
            let prev = &activations[l];
            // Gradients for this layer's weights and biases.
            for j in 0..n_out {
                for i in 0..n_in {
                    grad[offset + j * n_in + i] = delta[j] * prev[i];
                }
                grad[offset + n_in * n_out + j] = delta[j];
            }
            if l > 0 {
                // Propagate delta to the previous (tanh) layer.
                let weights = &self.params[offset..offset + n_in * n_out];
                let mut new_delta = vec![0.0; n_in];
                for (i, nd) in new_delta.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for j in 0..n_out {
                        acc += weights[j * n_in + i] * delta[j];
                    }
                    // activations[l] are tanh outputs: d tanh(z)/dz = 1 − a².
                    *nd = acc * (1.0 - prev[i] * prev[i]);
                }
                delta = new_delta;
            }
        }
        (loss, grad)
    }

    /// Mean squared error of the scalar prediction over a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn mse(&self, inputs: &[Vec<f64>], targets: &[f64]) -> f64 {
        assert!(!inputs.is_empty(), "mse of an empty dataset");
        assert_eq!(inputs.len(), targets.len());
        inputs
            .iter()
            .zip(targets)
            .map(|(x, &t)| (self.predict(x) - t).powi(2))
            .sum::<f64>()
            / inputs.len() as f64
    }
}

/// One standard-normal draw (Box–Muller).
fn gaussian(rng: &mut dyn RngCore) -> f64 {
    use rand::Rng;
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn too_few_layers_rejected() {
        let _ = Mlp::new(&[3], &mut rng());
    }

    #[test]
    fn param_count_formula() {
        let net = Mlp::new(&[9, 8, 1], &mut rng());
        assert_eq!(net.num_params(), 89);
        let deep = Mlp::new(&[4, 5, 6, 2], &mut rng());
        assert_eq!(deep.num_params(), 4 * 5 + 5 + 5 * 6 + 6 + 6 * 2 + 2);
    }

    #[test]
    fn forward_is_deterministic() {
        let net = Mlp::new(&[3, 4, 1], &mut rng());
        let x = [0.1, -0.2, 0.3];
        assert_eq!(net.predict(&x), net.predict(&x));
    }

    #[test]
    fn params_round_trip() {
        let net = Mlp::new(&[3, 4, 1], &mut rng());
        let rebuilt = Mlp::from_params(net.sizes(), net.params().to_vec());
        let x = [0.5, 0.5, 0.5];
        assert_eq!(net.predict(&x), rebuilt.predict(&x));
    }

    #[test]
    #[should_panic(expected = "does not match architecture")]
    fn bad_param_vector_rejected() {
        let _ = Mlp::from_params(&[3, 4, 1], vec![0.0; 7]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let net = Mlp::new(&[3, 5, 1], &mut rng());
        let x = [0.3, -0.7, 0.2];
        let t = 0.4;
        let (_, grad) = net.grad_squared_error(&x, t);
        let eps = 1e-6;
        for k in (0..net.num_params()).step_by(7) {
            let mut plus = net.clone();
            plus.params_mut()[k] += eps;
            let mut minus = net.clone();
            minus.params_mut()[k] -= eps;
            let l_plus = 0.5 * (plus.predict(&x) - t).powi(2);
            let l_minus = 0.5 * (minus.predict(&x) - t).powi(2);
            let numeric = (l_plus - l_minus) / (2.0 * eps);
            assert!(
                (grad[k] - numeric).abs() < 1e-6,
                "param {k}: analytic {} vs numeric {numeric}",
                grad[k]
            );
        }
    }

    #[test]
    fn loss_is_zero_at_perfect_prediction() {
        let net = Mlp::new(&[2, 3, 1], &mut rng());
        let x = [0.1, 0.9];
        let y = net.predict(&x);
        let (loss, grad) = net.grad_squared_error(&x, y);
        assert!(loss < 1e-12);
        assert!(grad.iter().all(|g| g.abs() < 1e-9));
    }

    #[test]
    fn mse_averages() {
        let net = Mlp::new(&[1, 2, 1], &mut rng());
        let inputs = vec![vec![0.0], vec![1.0]];
        let targets = vec![net.predict(&[0.0]), net.predict(&[1.0]) + 2.0];
        // First example perfect, second off by 2 → MSE = 4/2 = 2.
        assert!((net.mse(&inputs, &targets) - 2.0).abs() < 1e-12);
    }
}
