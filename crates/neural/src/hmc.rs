//! Hybrid (Hamiltonian) Monte Carlo (paper §5.3, Neal [20]).
//!
//! "We adopt the hybrid Monte Carlo algorithm to create samples from the
//! PPD. … We execute hybrid Monte Carlo offline and capture a fixed number
//! of samples in a training phase." This module is a from-scratch,
//! general-purpose HMC over any differentiable log-density: leapfrog
//! integration of Hamiltonian dynamics plus a Metropolis accept step, with
//! burn-in and thinning ("we discard most samples and only retain every
//! Mth sample").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A differentiable (unnormalized) log-density over ℝⁿ — the target an
/// [`Hmc`] sampler explores.
pub trait LogDensity {
    /// Dimension of the parameter space.
    fn dim(&self) -> usize;
    /// Unnormalized log-probability at `w`.
    fn log_prob(&self, w: &[f64]) -> f64;
    /// Gradient of [`LogDensity::log_prob`] at `w`.
    fn grad(&self, w: &[f64]) -> Vec<f64>;
}

/// HMC tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HmcConfig {
    /// Leapfrog step size ε.
    pub step_size: f64,
    /// Leapfrog steps L per proposal.
    pub leapfrog_steps: usize,
    /// Proposals discarded before retaining samples.
    pub burn_in: usize,
    /// Samples to retain.
    pub samples: usize,
    /// Keep every `thin`-th post-burn-in sample (the paper's M).
    pub thin: usize,
    /// RNG seed (HMC runs offline; determinism makes experiments
    /// repeatable).
    pub seed: u64,
}

impl Default for HmcConfig {
    fn default() -> Self {
        Self {
            step_size: 0.01,
            leapfrog_steps: 20,
            burn_in: 200,
            samples: 200,
            thin: 5,
            seed: 0,
        }
    }
}

/// The retained posterior samples plus diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct HmcRun {
    /// Retained parameter vectors (one per kept sample).
    pub samples: Vec<Vec<f64>>,
    /// Fraction of proposals accepted (healthy HMC sits around 0.6–0.95).
    pub acceptance_rate: f64,
}

/// A hybrid Monte Carlo sampler.
///
/// # Examples
///
/// Sampling a standard normal:
///
/// ```
/// use uncertain_neural::{Hmc, HmcConfig, LogDensity};
///
/// struct StdNormal;
/// impl LogDensity for StdNormal {
///     fn dim(&self) -> usize { 1 }
///     fn log_prob(&self, w: &[f64]) -> f64 { -0.5 * w[0] * w[0] }
///     fn grad(&self, w: &[f64]) -> Vec<f64> { vec![-w[0]] }
/// }
///
/// let cfg = HmcConfig { step_size: 0.3, leapfrog_steps: 10, burn_in: 100,
///                       samples: 500, thin: 2, seed: 1 };
/// let run = Hmc::new(cfg).sample(&StdNormal, vec![3.0]);
/// let mean: f64 = run.samples.iter().map(|s| s[0]).sum::<f64>() / 500.0;
/// assert!(mean.abs() < 0.2);
/// assert!(run.acceptance_rate > 0.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hmc {
    config: HmcConfig,
}

impl Hmc {
    /// Creates a sampler with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics on non-positive step size, zero leapfrog steps, zero samples,
    /// or zero thinning.
    pub fn new(config: HmcConfig) -> Self {
        assert!(config.step_size > 0.0, "step size must be positive");
        assert!(config.leapfrog_steps > 0, "need at least one leapfrog step");
        assert!(config.samples > 0, "need at least one retained sample");
        assert!(config.thin > 0, "thinning factor must be at least 1");
        Self { config }
    }

    /// The tuning in use.
    pub fn config(&self) -> &HmcConfig {
        &self.config
    }

    /// Runs the chain from `init`, returning the retained samples.
    ///
    /// # Panics
    ///
    /// Panics if `init.len() != target.dim()`.
    pub fn sample<D: LogDensity>(&self, target: &D, init: Vec<f64>) -> HmcRun {
        assert_eq!(init.len(), target.dim(), "init dimension mismatch");
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut position = init;
        let mut log_p = target.log_prob(&position);
        let mut kept = Vec::with_capacity(cfg.samples);
        let mut accepted = 0usize;
        let mut proposals = 0usize;
        let total_iterations = cfg.burn_in + cfg.samples * cfg.thin;

        for iter in 0..total_iterations {
            // Fresh momentum ~ N(0, I).
            let mut momentum: Vec<f64> = (0..position.len()).map(|_| gaussian(&mut rng)).collect();
            let kinetic0: f64 = 0.5 * momentum.iter().map(|p| p * p).sum::<f64>();

            // Randomize the trajectory length per proposal (uniform in
            // [⌈L/2⌉, L]). Fixed-length trajectories resonate with
            // oscillatory targets — consecutive samples become (anti-)
            // periodic and the chain stops mixing (Neal, "MCMC using
            // Hamiltonian dynamics", §3.2).
            let lo = cfg.leapfrog_steps.div_ceil(2);
            let steps = rng.gen_range(lo..=cfg.leapfrog_steps);

            // Leapfrog integration.
            let mut q = position.clone();
            let mut grad = target.grad(&q);
            for p in momentum.iter_mut().zip(&grad) {
                *p.0 += 0.5 * cfg.step_size * p.1;
            }
            for step in 0..steps {
                for (qi, pi) in q.iter_mut().zip(&momentum) {
                    *qi += cfg.step_size * pi;
                }
                grad = target.grad(&q);
                let half = if step == steps - 1 { 0.5 } else { 1.0 };
                for (pi, gi) in momentum.iter_mut().zip(&grad) {
                    *pi += half * cfg.step_size * gi;
                }
            }

            // Metropolis accept.
            let log_p_new = target.log_prob(&q);
            let kinetic1: f64 = 0.5 * momentum.iter().map(|p| p * p).sum::<f64>();
            let log_accept = (log_p_new - kinetic1) - (log_p - kinetic0);
            proposals += 1;
            if log_accept >= 0.0 || rng.gen::<f64>() < log_accept.exp() {
                position = q;
                log_p = log_p_new;
                accepted += 1;
            }

            if iter >= cfg.burn_in && (iter - cfg.burn_in).is_multiple_of(cfg.thin) {
                kept.push(position.clone());
            }
        }
        kept.truncate(cfg.samples);
        HmcRun {
            samples: kept,
            acceptance_rate: accepted as f64 / proposals as f64,
        }
    }
}

/// One standard-normal draw (Box–Muller).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Gaussian2 {
        mean: [f64; 2],
        inv_var: [f64; 2],
    }

    impl LogDensity for Gaussian2 {
        fn dim(&self) -> usize {
            2
        }
        fn log_prob(&self, w: &[f64]) -> f64 {
            -0.5 * (0..2)
                .map(|i| (w[i] - self.mean[i]).powi(2) * self.inv_var[i])
                .sum::<f64>()
        }
        fn grad(&self, w: &[f64]) -> Vec<f64> {
            (0..2)
                .map(|i| -(w[i] - self.mean[i]) * self.inv_var[i])
                .collect()
        }
    }

    fn target() -> Gaussian2 {
        Gaussian2 {
            mean: [2.0, -1.0],
            inv_var: [1.0, 4.0], // variances 1 and 0.25
        }
    }

    fn run() -> HmcRun {
        let cfg = HmcConfig {
            step_size: 0.2,
            leapfrog_steps: 15,
            burn_in: 300,
            samples: 1500,
            thin: 2,
            seed: 7,
        };
        Hmc::new(cfg).sample(&target(), vec![0.0, 0.0])
    }

    #[test]
    #[should_panic(expected = "step size")]
    fn rejects_bad_step_size() {
        let cfg = HmcConfig {
            step_size: 0.0,
            ..HmcConfig::default()
        };
        let _ = Hmc::new(cfg);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_bad_init() {
        let _ = Hmc::new(HmcConfig::default()).sample(&target(), vec![0.0]);
    }

    #[test]
    fn recovers_mean_and_variance() {
        let run = run();
        assert_eq!(run.samples.len(), 1500);
        let mean0: f64 = run.samples.iter().map(|s| s[0]).sum::<f64>() / 1500.0;
        let mean1: f64 = run.samples.iter().map(|s| s[1]).sum::<f64>() / 1500.0;
        assert!((mean0 - 2.0).abs() < 0.1, "mean0={mean0}");
        assert!((mean1 + 1.0).abs() < 0.1, "mean1={mean1}");
        let var0: f64 = run
            .samples
            .iter()
            .map(|s| (s[0] - mean0).powi(2))
            .sum::<f64>()
            / 1499.0;
        let var1: f64 = run
            .samples
            .iter()
            .map(|s| (s[1] - mean1).powi(2))
            .sum::<f64>()
            / 1499.0;
        assert!((var0 - 1.0).abs() < 0.2, "var0={var0}");
        assert!((var1 - 0.25).abs() < 0.08, "var1={var1}");
    }

    #[test]
    fn healthy_acceptance_rate() {
        let run = run();
        assert!(
            run.acceptance_rate > 0.6,
            "acceptance {}",
            run.acceptance_rate
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run();
        let b = run();
        assert_eq!(a.samples[0], b.samples[0]);
        assert_eq!(a.acceptance_rate, b.acceptance_rate);
    }

    #[test]
    fn huge_step_size_collapses_acceptance() {
        let cfg = HmcConfig {
            step_size: 50.0,
            leapfrog_steps: 10,
            burn_in: 10,
            samples: 100,
            thin: 1,
            seed: 3,
        };
        let run = Hmc::new(cfg).sample(&target(), vec![0.0, 0.0]);
        assert!(
            run.acceptance_rate < 0.2,
            "acceptance {}",
            run.acceptance_rate
        );
    }
}
