//! The Sobel operator and a synthetic 3×3-patch dataset (paper §5.3).
//!
//! Parrot's benchmark suite approximates the Sobel operator — the gradient
//! of image intensity at a pixel — with a 9-input neural network. The
//! authors' image corpus is not available, so this module generates the
//! closest synthetic equivalent: a mix of flat, ramp, and step-edge 3×3
//! grayscale patches with pixel noise, labeled by the *exact* Sobel
//! operator. The experiment's phenomena (generalization error amplified by
//! the `s(p) > 0.1` conditional; precision/recall traded via α) depend on
//! the regression task's structure, not on specific photographs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Normalization constant: the largest possible unnormalized gradient
/// magnitude for pixels in `[0, 1]` is `√(4² + 4²) = 4√2`.
const SOBEL_MAX: f64 = 5.656_854_249_492_381;

/// The paper's edge threshold: a pixel is an edge iff `s(p) > 0.1`.
pub const EDGE_THRESHOLD: f64 = 0.1;

/// The exact Sobel gradient magnitude of a 3×3 patch (row-major, pixels in
/// `[0, 1]`), normalized to `[0, 1]`.
///
/// # Examples
///
/// ```
/// use uncertain_neural::sobel::sobel;
///
/// // A flat patch has zero gradient…
/// assert_eq!(sobel(&[0.5; 9]), 0.0);
/// // …a hard vertical step has a large one.
/// let step = [0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0];
/// assert!(sobel(&step) > 0.5);
/// ```
pub fn sobel(patch: &[f64; 9]) -> f64 {
    // Horizontal and vertical Sobel kernels.
    let gx = -patch[0] + patch[2] - 2.0 * patch[3] + 2.0 * patch[5] - patch[6] + patch[8];
    let gy = -patch[0] - 2.0 * patch[1] - patch[2] + patch[6] + 2.0 * patch[7] + patch[8];
    (gx * gx + gy * gy).sqrt() / SOBEL_MAX
}

/// Whether the exact Sobel output calls this patch an edge.
pub fn is_edge(patch: &[f64; 9]) -> bool {
    sobel(patch) > EDGE_THRESHOLD
}

/// A labeled dataset of 3×3 patches.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    /// Patches flattened to 9 inputs each.
    pub inputs: Vec<Vec<f64>>,
    /// Exact normalized Sobel outputs.
    pub targets: Vec<f64>,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Fraction of examples that are edges under [`EDGE_THRESHOLD`].
    pub fn edge_fraction(&self) -> f64 {
        if self.targets.is_empty() {
            return 0.0;
        }
        self.targets.iter().filter(|&&t| t > EDGE_THRESHOLD).count() as f64
            / self.targets.len() as f64
    }
}

/// Generates a deterministic synthetic patch dataset: a quarter each of
/// flat patches (noise only), smooth ramps, hard step edges, and **weak
/// ramps concentrated near the edge threshold** — the near-threshold mass
/// that makes the Parrot-vs-Parakeet precision/recall trade-off visible
/// (real image corpora are full of weak edges; a point estimator with a
/// few-percent RMSE misclassifies exactly these).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use uncertain_neural::sobel::generate_dataset;
///
/// let data = generate_dataset(300, 7);
/// assert_eq!(data.len(), 300);
/// let frac = data.edge_fraction();
/// assert!(frac > 0.2 && frac < 0.9, "both classes present: {frac}");
/// ```
pub fn generate_dataset(n: usize, seed: u64) -> Dataset {
    assert!(n > 0, "need at least one example");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inputs = Vec::with_capacity(n);
    let mut targets = Vec::with_capacity(n);
    for i in 0..n {
        let patch = match i % 4 {
            0 => flat_patch(&mut rng),
            1 => ramp_patch(&mut rng),
            2 => step_patch(&mut rng),
            _ => near_threshold_patch(&mut rng),
        };
        targets.push(sobel(&patch));
        inputs.push(patch.to_vec());
    }
    Dataset { inputs, targets }
}

/// Nearly uniform brightness with pixel noise — usually below threshold.
fn flat_patch(rng: &mut StdRng) -> [f64; 9] {
    let base: f64 = rng.gen();
    let noise = rng.gen_range(0.0..0.05);
    patch_with(|_, _| base, noise, rng)
}

/// A linear brightness ramp of random direction and slope.
fn ramp_patch(rng: &mut StdRng) -> [f64; 9] {
    let angle: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let slope: f64 = rng.gen_range(0.0..0.25);
    let base: f64 = rng.gen_range(0.2..0.8);
    let noise = rng.gen_range(0.0..0.03);
    patch_with(
        |x, y| base + slope * ((x as f64 - 1.0) * angle.cos() + (y as f64 - 1.0) * angle.sin()),
        noise,
        rng,
    )
}

/// A weak ramp whose gradient straddles the edge threshold: a linear ramp
/// of per-pixel slope `m` has normalized Sobel magnitude `8m/4√2 = √2·m`,
/// so slopes in `[0.04, 0.10]` put `s(p)` in roughly `[0.06, 0.14]` —
/// half just below, half just above 0.1.
fn near_threshold_patch(rng: &mut StdRng) -> [f64; 9] {
    let angle: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let slope: f64 = rng.gen_range(0.04..0.10);
    let base: f64 = rng.gen_range(0.3..0.7);
    let noise = rng.gen_range(0.0..0.02);
    patch_with(
        |x, y| base + slope * ((x as f64 - 1.0) * angle.cos() + (y as f64 - 1.0) * angle.sin()),
        noise,
        rng,
    )
}

/// A hard step edge of random orientation and contrast.
fn step_patch(rng: &mut StdRng) -> [f64; 9] {
    let angle: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let contrast: f64 = rng.gen_range(0.1..0.9);
    let lo: f64 = rng.gen_range(0.0..(1.0 - contrast));
    let noise = rng.gen_range(0.0..0.03);
    patch_with(
        |x, y| {
            let side = (x as f64 - 1.0) * angle.cos() + (y as f64 - 1.0) * angle.sin();
            if side > 0.0 {
                lo + contrast
            } else {
                lo
            }
        },
        noise,
        rng,
    )
}

fn patch_with(f: impl Fn(usize, usize) -> f64, noise: f64, rng: &mut StdRng) -> [f64; 9] {
    let mut p = [0.0; 9];
    for y in 0..3 {
        for x in 0..3 {
            let jitter = if noise > 0.0 {
                rng.gen_range(-noise..noise)
            } else {
                0.0
            };
            p[y * 3 + x] = (f(x, y) + jitter).clamp(0.0, 1.0);
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sobel_is_nonnegative_and_bounded() {
        let data = generate_dataset(500, 1);
        for t in &data.targets {
            assert!((0.0..=1.0).contains(t), "t={t}");
        }
    }

    #[test]
    fn sobel_invariant_to_brightness_offset() {
        let a = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
        let mut b = a;
        for p in &mut b {
            *p += 0.05;
        }
        assert!((sobel(&a) - sobel(&b)).abs() < 1e-12);
    }

    #[test]
    fn horizontal_and_vertical_steps_are_symmetric() {
        let v = [0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0];
        let h = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        assert!((sobel(&v) - sobel(&h)).abs() < 1e-12);
    }

    #[test]
    fn max_gradient_is_one() {
        // Checkerboard-free max: left black, right white, center column mid.
        let p = [0.0, 0.5, 1.0, 0.0, 0.5, 1.0, 0.0, 0.5, 1.0];
        // gx = 1+2+1 = 4, gy = 0 → s = 4/4√2 = 1/√2.
        assert!((sobel(&p) - 1.0 / 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn dataset_is_deterministic() {
        assert_eq!(generate_dataset(100, 5), generate_dataset(100, 5));
        assert_ne!(generate_dataset(100, 5), generate_dataset(100, 6));
    }

    #[test]
    fn dataset_has_both_classes() {
        let d = generate_dataset(600, 2);
        let frac = d.edge_fraction();
        assert!(frac > 0.2 && frac < 0.9, "edge fraction {frac}");
    }

    #[test]
    fn flat_patches_are_rarely_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        let edges = (0..200).filter(|_| is_edge(&flat_patch(&mut rng))).count();
        assert!(edges < 40, "flat edges = {edges}");
    }

    #[test]
    fn step_patches_are_mostly_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        let edges = (0..200).filter(|_| is_edge(&step_patch(&mut rng))).count();
        assert!(edges > 150, "step edges = {edges}");
    }
}
