//! The Parrot baseline (paper §5.3): one point-estimate network.

use crate::network::Mlp;
use crate::sobel::{Dataset, EDGE_THRESHOLD};
use crate::train::SgdTrainer;
use rand::RngCore;

/// A single neural network trained to approximate the Sobel operator —
/// the Parrot approach the paper compares against.
///
/// Parrot "locks developers into a particular balance of precision and
/// recall": its edge decision is the bare conditional `y(x) > 0.1` on a
/// point estimate, with no way to ask for more or less evidence.
///
/// # Examples
///
/// ```
/// use uncertain_neural::sobel::generate_dataset;
/// use uncertain_neural::Parrot;
/// use rand::SeedableRng;
///
/// let data = generate_dataset(400, 1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let parrot = Parrot::train(&data, 40, 0.05, &mut rng);
/// let rmse = parrot.rmse(&data);
/// assert!(rmse < 0.1, "rmse={rmse}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Parrot {
    net: Mlp,
}

impl Parrot {
    /// The paper's network topology for Sobel: 9 inputs, one hidden layer
    /// of 8, one output.
    pub const ARCHITECTURE: [usize; 3] = [9, 8, 1];

    /// Trains the Parrot network with SGD.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or the hyperparameters are invalid.
    pub fn train(data: &Dataset, epochs: usize, learning_rate: f64, rng: &mut dyn RngCore) -> Self {
        let mut net = Mlp::new(&Self::ARCHITECTURE, rng);
        SgdTrainer::new(learning_rate, epochs).train(&mut net, &data.inputs, &data.targets, rng);
        Self { net }
    }

    /// Wraps an already trained network.
    pub fn from_network(net: Mlp) -> Self {
        Self { net }
    }

    /// The underlying network.
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// The point-estimate prediction of `s(p)`.
    pub fn predict(&self, patch: &[f64]) -> f64 {
        self.net.predict(patch)
    }

    /// Parrot's edge decision: the naked conditional on a point estimate.
    pub fn is_edge(&self, patch: &[f64]) -> bool {
        self.predict(patch) > EDGE_THRESHOLD
    }

    /// Root-mean-square prediction error over a dataset (the paper quotes
    /// 3.4% average RMSE for Parrot's Sobel network).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn rmse(&self, data: &Dataset) -> f64 {
        self.net.mse(&data.inputs, &data.targets).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sobel::generate_dataset;
    use rand::SeedableRng;

    fn trained() -> (Parrot, Dataset, Dataset) {
        let train = generate_dataset(600, 10);
        let test = generate_dataset(200, 11);
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        (Parrot::train(&train, 60, 0.05, &mut rng), train, test)
    }

    #[test]
    fn approximates_sobel_well_on_average() {
        let (parrot, train, test) = trained();
        assert!(
            parrot.rmse(&train) < 0.08,
            "train rmse {}",
            parrot.rmse(&train)
        );
        // Held-out error is a bit worse but still small.
        assert!(
            parrot.rmse(&test) < 0.12,
            "test rmse {}",
            parrot.rmse(&test)
        );
    }

    #[test]
    fn edge_decision_uses_paper_threshold() {
        let (parrot, _, test) = trained();
        for x in test.inputs.iter().take(50) {
            assert_eq!(parrot.is_edge(x), parrot.predict(x) > EDGE_THRESHOLD);
        }
    }

    #[test]
    fn conditional_amplifies_small_rmse() {
        // The paper's amplification effect: a few-percent RMSE still yields
        // a noticeable misclassification rate at the threshold.
        let (parrot, _, test) = trained();
        let mistakes = test
            .inputs
            .iter()
            .zip(&test.targets)
            .filter(|(x, &t)| parrot.is_edge(x) != (t > EDGE_THRESHOLD))
            .count();
        assert!(mistakes > 0, "point-estimate conditionals should misfire");
    }
}
