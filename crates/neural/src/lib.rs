//! Neural-network substrate and the **Parakeet** case study (paper §5.3).
//!
//! Parrot (Esmaeilzadeh et al., MICRO 2012) trains a single neural network
//! to approximate a function — here the Sobel operator — for approximate
//! hardware. The paper's point: a *point-estimate* network amplifies
//! generalization error through downstream conditionals (`s(p) > 0.1`
//! suffers a 36% false-positive rate), whereas **Parakeet** wraps a
//! Bayesian neural network's posterior predictive distribution (PPD) in
//! `Uncertain<T>`, letting developers pick their own precision/recall
//! balance with the conditional threshold α (Fig. 16).
//!
//! Everything is built from scratch in this crate:
//!
//! * [`Mlp`] — a feed-forward network (tanh hidden layers, linear output)
//!   with exact backprop gradients,
//! * [`SgdTrainer`] — plain stochastic gradient descent (the Parrot
//!   baseline's training loop),
//! * [`sobel`] — the Sobel gradient operator and a synthetic 3×3-patch
//!   dataset generator (the substitute for Parrot's image suite, see
//!   DESIGN.md §4),
//! * [`Hmc`] — hybrid (Hamiltonian) Monte Carlo over network weights, the
//!   algorithm the paper adopts from Neal \[20\]; run offline, retaining a
//!   thinned pool of weight samples,
//! * [`Parrot`] / [`Parakeet`] — the two contestants of Fig. 15/16,
//! * [`eval`] — precision/recall sweeps over the conditional threshold α.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod eval;
mod hmc;
mod network;
mod parakeet;
mod parrot;
pub mod sobel;
mod train;

pub use hmc::{Hmc, HmcConfig, HmcRun, LogDensity};
pub use network::Mlp;
pub use parakeet::{BayesianMlpPosterior, Parakeet};
pub use parrot::Parrot;
pub use train::SgdTrainer;
