//! Parakeet: Bayesian neural networks wrapped in `Uncertain<T>`
//! (paper §5.3).
//!
//! Parakeet learns the **posterior predictive distribution**
//! `p(t|x, D) = ∫ p(t|x, w) p(w|D) dw` instead of a single weight vector:
//! hybrid Monte Carlo samples `p(w|D)` offline, a thinned pool of weight
//! vectors is retained, and at runtime the sampling function draws a
//! network from the pool, runs it on the input, and adds the likelihood
//! noise — giving an `Uncertain<f64>` prediction whose conditionals the
//! developer can calibrate.

use crate::hmc::{Hmc, HmcConfig, LogDensity};
use crate::network::Mlp;
use crate::sobel::Dataset;
use rand::RngCore;
use std::sync::Arc;
use uncertain_core::Uncertain;
use uncertain_dist::{Distribution, Gaussian};

/// The Bayesian posterior over MLP weights for a regression dataset:
/// Gaussian likelihood `t ~ N(y(x; w), σ_noise)` and a Gaussian weight
/// prior `w ~ N(0, σ_prior)` — the standard Bayesian-neural-network setup
/// of Neal \[20\] the paper adopts.
pub struct BayesianMlpPosterior {
    template: Mlp,
    inputs: Vec<Vec<f64>>,
    targets: Vec<f64>,
    noise_sigma: f64,
    prior_sigma: f64,
}

impl std::fmt::Debug for BayesianMlpPosterior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BayesianMlpPosterior")
            .field("architecture", &self.template.sizes())
            .field("examples", &self.inputs.len())
            .field("noise_sigma", &self.noise_sigma)
            .field("prior_sigma", &self.prior_sigma)
            .finish()
    }
}

impl BayesianMlpPosterior {
    /// Builds the posterior for `data` under the given architecture.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or the sigmas are not positive.
    pub fn new(
        architecture: &[usize],
        data: &Dataset,
        noise_sigma: f64,
        prior_sigma: f64,
        rng: &mut dyn RngCore,
    ) -> Self {
        assert!(!data.is_empty(), "posterior needs training data");
        assert!(noise_sigma > 0.0, "noise sigma must be positive");
        assert!(prior_sigma > 0.0, "prior sigma must be positive");
        Self {
            template: Mlp::new(architecture, rng),
            inputs: data.inputs.clone(),
            targets: data.targets.clone(),
            noise_sigma,
            prior_sigma,
        }
    }

    /// The likelihood noise σ (also the runtime PPD noise).
    pub fn noise_sigma(&self) -> f64 {
        self.noise_sigma
    }

    /// A stable leapfrog step size for this posterior.
    ///
    /// The sharpest curvature of the log posterior scales like `N/σ²`
    /// (N data terms, each with curvature ~1/σ²), and leapfrog is stable
    /// only below `2/√λ_max`; this returns `0.5·σ/√N`, a comfortable
    /// margin under that threshold. The paper notes HMC "often requires
    /// hand tuning to achieve practical rejection rates" — this is the
    /// tuning rule this reproduction uses.
    pub fn suggested_step_size(&self) -> f64 {
        0.5 * self.noise_sigma / (self.inputs.len() as f64).sqrt()
    }

    /// The maximum-a-posteriori warm start: plain SGD on the data (the
    /// prior's pull is negligible at these scales). Starting the HMC chain
    /// at the MAP avoids wasting the whole burn-in descending from a
    /// random initialization.
    pub fn map_estimate(
        &self,
        epochs: usize,
        learning_rate: f64,
        rng: &mut dyn RngCore,
    ) -> Vec<f64> {
        let mut net = self.template.clone();
        crate::train::SgdTrainer::new(learning_rate, epochs).train(
            &mut net,
            &self.inputs,
            &self.targets,
            rng,
        );
        net.params().to_vec()
    }

    fn network_with(&self, w: &[f64]) -> Mlp {
        Mlp::from_params(self.template.sizes(), w.to_vec())
    }
}

impl LogDensity for BayesianMlpPosterior {
    fn dim(&self) -> usize {
        self.template.num_params()
    }

    fn log_prob(&self, w: &[f64]) -> f64 {
        let net = self.network_with(w);
        let inv_n2 = 1.0 / (self.noise_sigma * self.noise_sigma);
        let data_term: f64 = self
            .inputs
            .iter()
            .zip(&self.targets)
            .map(|(x, &t)| (net.predict(x) - t).powi(2))
            .sum::<f64>()
            * -0.5
            * inv_n2;
        let prior_term: f64 =
            w.iter().map(|wi| wi * wi).sum::<f64>() * -0.5 / (self.prior_sigma * self.prior_sigma);
        data_term + prior_term
    }

    fn grad(&self, w: &[f64]) -> Vec<f64> {
        let net = self.network_with(w);
        let inv_n2 = 1.0 / (self.noise_sigma * self.noise_sigma);
        let mut grad = vec![0.0; w.len()];
        for (x, &t) in self.inputs.iter().zip(&self.targets) {
            let (_, g) = net.grad_squared_error(x, t);
            for (acc, gi) in grad.iter_mut().zip(&g) {
                // d logp = −(y−t)·dy/dw / σ² = −grad_mse / σ².
                *acc -= gi * inv_n2;
            }
        }
        for (acc, wi) in grad.iter_mut().zip(w) {
            *acc -= wi / (self.prior_sigma * self.prior_sigma);
        }
        grad
    }
}

/// The Parakeet predictor: a fixed pool of posterior weight samples whose
/// predictions, plus likelihood noise, form the PPD (paper §5.3).
///
/// # Examples
///
/// ```no_run
/// use uncertain_core::Session;
/// use uncertain_neural::sobel::generate_dataset;
/// use uncertain_neural::{HmcConfig, Parakeet};
/// use rand::SeedableRng;
///
/// let data = generate_dataset(500, 1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let parakeet = Parakeet::train(&data, HmcConfig::default(), &mut rng);
/// let prediction = parakeet.predict(&data.inputs[0]);
/// // Ask a calibrated question instead of reading a point estimate:
/// let mut s = Session::sequential(3);
/// let confident_edge = prediction.gt(0.1).pr_in(&mut s, 0.8);
/// # let _ = confident_edge;
/// ```
#[derive(Debug, Clone)]
pub struct Parakeet {
    pool: Arc<Vec<Mlp>>,
    noise_sigma: f64,
    acceptance_rate: f64,
}

impl Parakeet {
    /// Default likelihood/PPD noise σ.
    pub const DEFAULT_NOISE_SIGMA: f64 = 0.03;
    /// Default weight-prior σ.
    pub const DEFAULT_PRIOR_SIGMA: f64 = 3.0;

    /// Trains Parakeet: builds the Bayesian posterior for `data` (with the
    /// Parrot architecture) and runs HMC offline to capture the weight
    /// pool.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or the HMC configuration is invalid.
    pub fn train(data: &Dataset, hmc: HmcConfig, rng: &mut dyn RngCore) -> Self {
        let posterior = BayesianMlpPosterior::new(
            &crate::parrot::Parrot::ARCHITECTURE,
            data,
            Self::DEFAULT_NOISE_SIGMA,
            Self::DEFAULT_PRIOR_SIGMA,
            rng,
        );
        let init = posterior.map_estimate(40, 0.05, rng);
        Self::from_posterior_with_init(&posterior, hmc, init)
    }

    /// Trains Parakeet fully automatically: MAP warm start by SGD, then
    /// HMC with the posterior's [suggested step
    /// size](BayesianMlpPosterior::suggested_step_size), retaining
    /// `samples` networks.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `samples == 0`.
    pub fn train_tuned(data: &Dataset, samples: usize, seed: u64, rng: &mut dyn RngCore) -> Self {
        let posterior = BayesianMlpPosterior::new(
            &crate::parrot::Parrot::ARCHITECTURE,
            data,
            Self::DEFAULT_NOISE_SIGMA,
            Self::DEFAULT_PRIOR_SIGMA,
            rng,
        );
        let init = posterior.map_estimate(40, 0.05, rng);
        let cfg = HmcConfig {
            step_size: posterior.suggested_step_size(),
            leapfrog_steps: 30,
            burn_in: samples,
            samples,
            thin: 3,
            seed,
        };
        Self::from_posterior_with_init(&posterior, cfg, init)
    }

    /// Trains Parakeet from an explicit posterior (choose your own
    /// architecture and sigmas), starting the chain at the template's
    /// random initialization.
    pub fn from_posterior(posterior: &BayesianMlpPosterior, hmc: HmcConfig) -> Self {
        let init = posterior.template.params().to_vec();
        Self::from_posterior_with_init(posterior, hmc, init)
    }

    /// Trains Parakeet from an explicit posterior and chain start.
    ///
    /// # Panics
    ///
    /// Panics if `init.len()` does not match the posterior's dimension.
    pub fn from_posterior_with_init(
        posterior: &BayesianMlpPosterior,
        hmc: HmcConfig,
        init: Vec<f64>,
    ) -> Self {
        let run = Hmc::new(hmc).sample(posterior, init);
        let pool = run
            .samples
            .iter()
            .map(|w| posterior.network_with(w))
            .collect();
        Self {
            pool: Arc::new(pool),
            noise_sigma: posterior.noise_sigma,
            acceptance_rate: run.acceptance_rate,
        }
    }

    /// Number of networks in the posterior pool.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// The HMC acceptance rate of the offline run (a health diagnostic).
    pub fn acceptance_rate(&self) -> f64 {
        self.acceptance_rate
    }

    /// The PPD for one input, as an `Uncertain<f64>`: each sample picks a
    /// network uniformly from the pool, runs it, and adds the likelihood
    /// noise. "If the sample size is sufficiently large, this approach
    /// approximates true sampling well" (§5.3).
    ///
    /// # Panics
    ///
    /// Panics if `patch.len()` does not match the network input layer.
    pub fn predict(&self, patch: &[f64]) -> Uncertain<f64> {
        let pool = Arc::clone(&self.pool);
        let noise =
            Gaussian::new(0.0, self.noise_sigma).expect("noise sigma validated at training");
        let patch = patch.to_vec();
        assert_eq!(
            patch.len(),
            pool[0].sizes()[0],
            "input size must match the network architecture"
        );
        Uncertain::from_fn("Parakeet PPD", move |rng| {
            use rand::Rng;
            let i = rng.gen_range(0..pool.len());
            pool[i].predict(&patch) + noise.sample(rng)
        })
    }

    /// The ensemble-mean point prediction (for diagnostics/figures).
    pub fn mean_prediction(&self, patch: &[f64]) -> f64 {
        self.pool.iter().map(|net| net.predict(patch)).sum::<f64>() / self.pool.len() as f64
    }

    /// The **Gaussian approximation** to the PPD the paper proposes as the
    /// cheap alternative (§5.3): "a Gaussian approximation \[5\] to the PPD
    /// would mitigate all these downsides, but may be an inappropriate
    /// approximation in some cases. Since the Sobel operator's posterior is
    /// approximately Gaussian, a Gaussian approximation may be
    /// appropriate."
    ///
    /// The whole pool runs **once** here to fit `N(μ, √(σ²_pool + σ²_noise))`;
    /// afterwards each joint sample is a single Gaussian draw instead of a
    /// network execution — the downside it mitigates.
    ///
    /// # Panics
    ///
    /// Panics if `patch.len()` does not match the network input layer.
    pub fn predict_gaussian(&self, patch: &[f64]) -> Uncertain<f64> {
        let outputs: Vec<f64> = self.pool.iter().map(|net| net.predict(patch)).collect();
        let n = outputs.len() as f64;
        let mean = outputs.iter().sum::<f64>() / n;
        let pool_var = if outputs.len() > 1 {
            outputs.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let sd = (pool_var + self.noise_sigma * self.noise_sigma).sqrt();
        Uncertain::from_distribution(
            Gaussian::new(mean, sd.max(1e-12)).expect("positive standard deviation"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sobel::generate_dataset;
    use rand::SeedableRng;
    use uncertain_core::Session;

    fn quick_parakeet() -> (Parakeet, Dataset) {
        // Small HMC budget keeps the unit test fast; the figure binaries
        // use larger budgets.
        let data = generate_dataset(150, 20);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let cfg = HmcConfig {
            step_size: 0.002,
            leapfrog_steps: 12,
            burn_in: 60,
            samples: 40,
            thin: 2,
            seed: 5,
        };
        (Parakeet::train(&data, cfg, &mut rng), data)
    }

    #[test]
    fn pool_has_configured_size() {
        let (p, _) = quick_parakeet();
        assert_eq!(p.pool_size(), 40);
    }

    #[test]
    fn acceptance_rate_is_healthy() {
        let (p, _) = quick_parakeet();
        assert!(
            p.acceptance_rate() > 0.4,
            "acceptance {}",
            p.acceptance_rate()
        );
    }

    #[test]
    fn ppd_is_a_distribution_not_a_point() {
        let (p, data) = quick_parakeet();
        let ppd = p.predict(&data.inputs[0]);
        let mut s = Session::sequential(6);
        let stats = ppd.stats_in(&mut s, 500).unwrap();
        assert!(stats.std_dev() > 0.0, "PPD must have spread");
    }

    #[test]
    fn ppd_tracks_targets_roughly() {
        let (p, data) = quick_parakeet();
        let mut s = Session::sequential(7);
        let mut abs_err = 0.0;
        let n = 30;
        for i in 0..n {
            let e = p.predict(&data.inputs[i]).expected_value_in(&mut s, 200);
            abs_err += (e - data.targets[i]).abs();
        }
        let mae = abs_err / n as f64;
        assert!(mae < 0.15, "mean absolute error {mae}");
    }

    #[test]
    fn gaussian_ppd_matches_monte_carlo_moments() {
        let (p, data) = quick_parakeet();
        let mut s = Session::sequential(8);
        for i in 0..5 {
            let mc = p.predict(&data.inputs[i]).stats_in(&mut s, 2000).unwrap();
            let ga = p
                .predict_gaussian(&data.inputs[i])
                .stats_in(&mut s, 2000)
                .unwrap();
            assert!(
                (mc.mean() - ga.mean()).abs() < 0.03,
                "mean {} vs {}",
                mc.mean(),
                ga.mean()
            );
            assert!(
                (mc.std_dev() - ga.std_dev()).abs() < 0.03,
                "sd {} vs {}",
                mc.std_dev(),
                ga.std_dev()
            );
        }
    }

    #[test]
    fn gaussian_ppd_gives_same_edge_decisions_mostly() {
        let (p, data) = quick_parakeet();
        let mut s = Session::sequential(9);
        let mut agree = 0;
        let n = 40;
        for i in 0..n {
            let mc = p
                .predict(&data.inputs[i])
                .gt(0.1)
                .probability_in(&mut s, 300);
            let ga = p
                .predict_gaussian(&data.inputs[i])
                .gt(0.1)
                .probability_in(&mut s, 300);
            if (mc > 0.5) == (ga > 0.5) {
                agree += 1;
            }
        }
        assert!(agree >= n - 3, "agreement {agree}/{n}");
    }

    #[test]
    fn posterior_gradient_matches_finite_difference() {
        let data = generate_dataset(20, 30);
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let post = BayesianMlpPosterior::new(&[9, 4, 1], &data, 0.05, 2.0, &mut rng);
        let w: Vec<f64> = post.template.params().to_vec();
        let grad = post.grad(&w);
        let eps = 1e-6;
        for k in (0..w.len()).step_by(11) {
            let mut plus = w.clone();
            plus[k] += eps;
            let mut minus = w.clone();
            minus[k] -= eps;
            let numeric = (post.log_prob(&plus) - post.log_prob(&minus)) / (2.0 * eps);
            assert!(
                (grad[k] - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "param {k}: {} vs {numeric}",
                grad[k]
            );
        }
    }
}
