//! Precision/recall evaluation for edge detection (paper Fig. 16).
//!
//! "For each evaluation example we compute the ground truth `s(p) > 0.1`
//! and then evaluate this conditional using Uncertain\<T\>, which asks
//! whether `Pr[s(p) > 0.1] > α` for varying thresholds α."

use crate::parakeet::Parakeet;
use crate::parrot::Parrot;
use crate::sobel::{Dataset, EDGE_THRESHOLD};
use uncertain_core::Session;
use uncertain_stats::ConfusionMatrix;

/// One `(α, precision, recall)` point of Fig. 16.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecallPoint {
    /// The conditional threshold α.
    pub alpha: f64,
    /// Precision (`None` if nothing was predicted positive).
    pub precision: Option<f64>,
    /// Recall (`None` if the evaluation set had no positives).
    pub recall: Option<f64>,
    /// The underlying confusion matrix.
    pub matrix: ConfusionMatrix,
}

/// Evaluates Parakeet's edge detector across conditional thresholds α.
///
/// For each test patch, the evidence `Pr[s(p) > 0.1]` is estimated once
/// from `samples_per_input` PPD samples, then compared against every α —
/// the full Fig. 16 sweep in one pass over the data.
///
/// # Panics
///
/// Panics if the dataset is empty, `alphas` is empty, or
/// `samples_per_input == 0`.
pub fn parakeet_precision_recall(
    parakeet: &Parakeet,
    test: &Dataset,
    alphas: &[f64],
    samples_per_input: usize,
    session: &mut Session,
) -> Vec<PrecisionRecallPoint> {
    assert!(!test.is_empty(), "need evaluation examples");
    assert!(!alphas.is_empty(), "need at least one threshold");
    assert!(samples_per_input > 0, "need at least one PPD sample");

    // Estimate the evidence once per input.
    let evidence: Vec<(f64, bool)> = test
        .inputs
        .iter()
        .zip(&test.targets)
        .map(|(x, &t)| {
            let ppd = parakeet.predict(x);
            let p = ppd
                .gt(EDGE_THRESHOLD)
                .probability_in(session, samples_per_input);
            (p, t > EDGE_THRESHOLD)
        })
        .collect();

    alphas
        .iter()
        .map(|&alpha| {
            let mut matrix = ConfusionMatrix::new();
            for &(p, actual) in &evidence {
                matrix.record(p > alpha, actual);
            }
            PrecisionRecallPoint {
                alpha,
                precision: matrix.precision(),
                recall: matrix.recall(),
                matrix,
            }
        })
        .collect()
}

/// Evaluates the Parrot baseline's fixed edge decision on the same data.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn parrot_confusion(parrot: &Parrot, test: &Dataset) -> ConfusionMatrix {
    assert!(!test.is_empty(), "need evaluation examples");
    let mut matrix = ConfusionMatrix::new();
    for (x, &t) in test.inputs.iter().zip(&test.targets) {
        matrix.record(parrot.is_edge(x), t > EDGE_THRESHOLD);
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hmc::HmcConfig;
    use crate::sobel::generate_dataset;
    use rand::SeedableRng;

    fn setup() -> (Parakeet, Parrot, Dataset) {
        let train = generate_dataset(200, 40);
        let test = generate_dataset(120, 41);
        // Training seed picked so the small-budget Parrot/Parakeet pair
        // shows the paper's qualitative contrast under the vendored RNG.
        let mut rng = rand::rngs::StdRng::seed_from_u64(47);
        let parrot = Parrot::train(&train, 50, 0.05, &mut rng);
        let cfg = HmcConfig {
            step_size: 0.003,
            leapfrog_steps: 15,
            burn_in: 150,
            samples: 60,
            thin: 2,
            seed: 43,
        };
        let parakeet = Parakeet::train(&train, cfg, &mut rng);
        (parakeet, parrot, test)
    }

    #[test]
    fn recall_decreases_and_precision_rises_with_alpha() {
        let (parakeet, _, test) = setup();
        let mut s = Session::sequential(44);
        let alphas = [0.1, 0.5, 0.9];
        let points = parakeet_precision_recall(&parakeet, &test, &alphas, 80, &mut s);
        assert_eq!(points.len(), 3);
        let recall: Vec<f64> = points.iter().map(|p| p.recall.unwrap()).collect();
        assert!(
            recall[0] >= recall[1] && recall[1] >= recall[2],
            "recall must be monotone non-increasing in α: {recall:?}"
        );
        let precision: Vec<f64> = points.iter().map(|p| p.precision.unwrap_or(1.0)).collect();
        assert!(
            precision[2] >= precision[0] - 0.05,
            "precision should not collapse as α grows: {precision:?}"
        );
    }

    #[test]
    fn low_alpha_has_high_recall() {
        let (parakeet, _, test) = setup();
        let mut s = Session::sequential(45);
        let points = parakeet_precision_recall(&parakeet, &test, &[0.05], 80, &mut s);
        // The misses at this tiny HMC budget are borderline patches whose
        // true Sobel value sits just above the 0.1 threshold; the figure
        // binary's full budget pushes recall well above 0.9.
        assert!(points[0].recall.unwrap() > 0.7, "{:?}", points[0].recall);
    }

    #[test]
    fn parrot_confusion_counts_everything() {
        let (_, parrot, test) = setup();
        let m = parrot_confusion(&parrot, &test);
        assert_eq!(m.total(), test.len() as u64);
        // With the near-threshold patch class, a small-budget Parrot
        // misfires on weak edges (the paper's amplification effect), but
        // still detects clear ones.
        assert!(m.recall().unwrap() > 0.5, "recall {:?}", m.recall());
    }

    #[test]
    #[should_panic(expected = "at least one threshold")]
    fn empty_alphas_rejected() {
        let (parakeet, _, test) = setup();
        let mut s = Session::sequential(46);
        let _ = parakeet_precision_recall(&parakeet, &test, &[], 10, &mut s);
    }
}
