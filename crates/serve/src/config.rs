//! Service topology and policy knobs.

use std::net::ToSocketAddrs;
use std::time::Duration;
use uncertain_core::{ConfigError, EvalConfig};
use uncertain_obs::FlightConfig;

/// Configuration for [`Service::start`](crate::Service::start).
///
/// The defaults favor test/bench friendliness (small, deterministic);
/// production deployments mostly raise `shards`, `queue_depth`, and
/// `sessions_per_shard`. Build one with [`ServeConfig::builder`] for
/// validated construction (the `with_*` methods stay available for the
/// infallible knobs).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards. Each shard is one OS thread owning a session pool;
    /// tenants are hashed across shards by [`shard_of`](crate::shard_of).
    pub shards: usize,
    /// Bound of each shard's request queue. A full queue rejects with
    /// [`ServeError::QueueFull`](crate::ServeError::QueueFull) instead of
    /// buffering — load is shed at the edge.
    pub queue_depth: usize,
    /// How many tenants' sessions one shard keeps live (LRU). Evicted
    /// tenants keep their determinism (only the query cursor is retained)
    /// but pay session rebuild + plan recompilation on their next request.
    pub sessions_per_shard: usize,
    /// Root seed of the whole service; tenant `t` samples from the
    /// substream [`tenant_seed`](crate::tenant_seed)`(seed, t)`.
    pub seed: u64,
    /// SPRT knobs applied to every tenant session.
    pub eval: EvalConfig,
    /// Deadline applied to requests that do not carry their own.
    /// `None` = requests wait as long as the work takes.
    pub default_deadline: Option<Duration>,
    /// Where [`Service::listen`](crate::Service::listen) binds its TCP
    /// port. The default `127.0.0.1:0` asks the OS for a free local port
    /// (read it back from [`Listener::local_addr`](crate::Listener::local_addr)).
    pub bind_addr: String,
    /// Retention policy of the service's flight recorder (capacity,
    /// slowest-N per window). Applies only to requests that carry a
    /// sampled [`TraceContext`](uncertain_obs::TraceContext); untraced
    /// requests never touch the recorder.
    pub flight: FlightConfig,
    /// Fraction (`0.0..=1.0`) of *traced* exact-provenance decisions to
    /// shadow-audit against a freshly seeded sampling session. A
    /// disagreement flags the trace `audit_mismatch`, which the flight
    /// recorder always retains. `0.0` (the default) disables auditing.
    /// The shadow session draws from its own seed substream, so audits
    /// never perturb tenant sample streams.
    pub audit_fraction: f64,
    /// Event-loop threads of the TCP listener. Each loop owns a share of
    /// the open connections and drives them with readiness polling, so
    /// this is the listener's *socket-edge* parallelism — decision work
    /// still runs on the `shards` workers. Connection-count independent:
    /// 1024 connections on 2 loops cost 2 threads, not 2048. The default
    /// matches the machine's available parallelism, capped at 4 (the
    /// socket edge saturates long before the shards do).
    pub event_loops: usize,
}

fn default_event_loops() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 4)
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_depth: 128,
            sessions_per_shard: 32,
            seed: 0,
            eval: EvalConfig::default(),
            default_deadline: None,
            bind_addr: "127.0.0.1:0".to_string(),
            flight: FlightConfig::default(),
            audit_fraction: 0.0,
            event_loops: default_event_loops(),
        }
    }
}

impl ServeConfig {
    /// A validating builder, mirroring
    /// [`EvalConfig::builder`](uncertain_core::EvalConfig::builder):
    /// degenerate topologies are rejected at build time with a specific
    /// [`ConfigError`] instead of panicking inside
    /// [`Service::start`](crate::Service::start).
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: Self::default(),
        }
    }

    /// Returns the config with the given shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns the config with the given per-shard queue bound.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Returns the config with the given per-shard session-pool capacity.
    pub fn with_sessions_per_shard(mut self, sessions_per_shard: usize) -> Self {
        self.sessions_per_shard = sessions_per_shard;
        self
    }

    /// Returns the config with the given service seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with the given SPRT configuration.
    pub fn with_eval(mut self, eval: EvalConfig) -> Self {
        self.eval = eval;
        self
    }

    /// Returns the config with a default per-request deadline.
    pub fn with_default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Returns the config with the given TCP bind address (unvalidated —
    /// use [`ServeConfig::builder`] to have it checked up front).
    pub fn with_bind_addr(mut self, bind_addr: impl Into<String>) -> Self {
        self.bind_addr = bind_addr.into();
        self
    }

    /// Returns the config with the given flight-recorder retention policy.
    pub fn with_flight(mut self, flight: FlightConfig) -> Self {
        self.flight = flight;
        self
    }

    /// Returns the config with the given shadow-audit fraction, clamped
    /// to `0.0..=1.0` (NaN disables auditing).
    pub fn with_audit_fraction(mut self, fraction: f64) -> Self {
        self.audit_fraction = if fraction.is_nan() {
            0.0
        } else {
            fraction.clamp(0.0, 1.0)
        };
        self
    }

    /// Returns the config with the given listener event-loop count
    /// (unvalidated — use [`ServeConfig::builder`] to have zero rejected).
    pub fn with_event_loops(mut self, event_loops: usize) -> Self {
        self.event_loops = event_loops;
        self
    }
}

/// Builder for [`ServeConfig`] with validation at
/// [`ServeConfigBuilder::build`].
///
/// # Examples
///
/// ```
/// use uncertain_serve::ServeConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = ServeConfig::builder()
///     .shards(8)
///     .queue_depth(512)
///     .sessions_per_shard(64)
///     .seed(2014)
///     .bind_addr("127.0.0.1:0")
///     .build()?;
/// assert_eq!(config.shards, 8);
///
/// assert!(ServeConfig::builder().shards(0).build().is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Sets the worker shard count (must be ≥ 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Sets the per-shard request queue bound (must be ≥ 1).
    pub fn queue_depth(mut self, queue_depth: usize) -> Self {
        self.config.queue_depth = queue_depth;
        self
    }

    /// Sets the per-shard session-pool capacity (must be ≥ 1).
    pub fn sessions_per_shard(mut self, sessions_per_shard: usize) -> Self {
        self.config.sessions_per_shard = sessions_per_shard;
        self
    }

    /// Sets the service seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the SPRT configuration applied to every tenant session.
    pub fn eval(mut self, eval: EvalConfig) -> Self {
        self.config.eval = eval;
        self
    }

    /// Sets the deadline applied to requests that carry none.
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.config.default_deadline = Some(deadline);
        self
    }

    /// Sets where [`Service::listen`](crate::Service::listen) binds (must
    /// resolve as `host:port`).
    pub fn bind_addr(mut self, bind_addr: impl Into<String>) -> Self {
        self.config.bind_addr = bind_addr.into();
        self
    }

    /// Sets the flight-recorder retention policy.
    pub fn flight(mut self, flight: FlightConfig) -> Self {
        self.config.flight = flight;
        self
    }

    /// Sets the shadow-audit fraction (clamped to `0.0..=1.0`).
    pub fn audit_fraction(mut self, fraction: f64) -> Self {
        self.config = self.config.with_audit_fraction(fraction);
        self
    }

    /// Sets the listener event-loop thread count (must be ≥ 1).
    pub fn event_loops(mut self, event_loops: usize) -> Self {
        self.config.event_loops = event_loops;
        self
    }

    /// Validates and returns the config.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroShards`], [`ConfigError::ZeroQueueDepth`],
    /// [`ConfigError::ZeroSessionPool`], or
    /// [`ConfigError::ZeroEventLoops`] for a degenerate topology;
    /// [`ConfigError::BadBindAddr`] when the bind address does not
    /// resolve as `host:port`.
    pub fn build(self) -> Result<ServeConfig, ConfigError> {
        let c = self.config;
        if c.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if c.queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        if c.sessions_per_shard == 0 {
            return Err(ConfigError::ZeroSessionPool);
        }
        if c.event_loops == 0 {
            return Err(ConfigError::ZeroEventLoops);
        }
        if c.bind_addr.to_socket_addrs().is_err() {
            return Err(ConfigError::BadBindAddr(c.bind_addr));
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accepts_a_sane_config() {
        let config = ServeConfig::builder()
            .shards(2)
            .queue_depth(16)
            .sessions_per_shard(4)
            .seed(7)
            .default_deadline(Duration::from_millis(50))
            .bind_addr("127.0.0.1:0")
            .build()
            .expect("valid config");
        assert_eq!(config.shards, 2);
        assert_eq!(config.queue_depth, 16);
        assert_eq!(config.sessions_per_shard, 4);
        assert_eq!(config.seed, 7);
        assert_eq!(config.default_deadline, Some(Duration::from_millis(50)));
        assert_eq!(config.bind_addr, "127.0.0.1:0");
    }

    #[test]
    fn builder_rejects_degenerate_topologies() {
        assert!(matches!(
            ServeConfig::builder().shards(0).build(),
            Err(ConfigError::ZeroShards)
        ));
        assert!(matches!(
            ServeConfig::builder().queue_depth(0).build(),
            Err(ConfigError::ZeroQueueDepth)
        ));
        assert!(matches!(
            ServeConfig::builder().sessions_per_shard(0).build(),
            Err(ConfigError::ZeroSessionPool)
        ));
        assert!(matches!(
            ServeConfig::builder().event_loops(0).build(),
            Err(ConfigError::ZeroEventLoops)
        ));
    }

    #[test]
    fn event_loop_default_is_bounded() {
        let config = ServeConfig::default();
        assert!((1..=4).contains(&config.event_loops));
        let config = ServeConfig::builder().event_loops(2).build().unwrap();
        assert_eq!(config.event_loops, 2);
    }

    #[test]
    fn builder_rejects_a_bad_bind_addr() {
        let err = ServeConfig::builder()
            .bind_addr("not an address")
            .build()
            .unwrap_err();
        match err {
            ConfigError::BadBindAddr(addr) => assert_eq!(addr, "not an address"),
            other => panic!("wrong error: {other:?}"),
        }
    }
}
