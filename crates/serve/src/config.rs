//! Service topology and policy knobs.

use std::time::Duration;
use uncertain_core::EvalConfig;

/// Configuration for [`Service::start`](crate::Service::start).
///
/// The defaults favor test/bench friendliness (small, deterministic);
/// production deployments mostly raise `shards`, `queue_depth`, and
/// `sessions_per_shard`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards. Each shard is one OS thread owning a session pool;
    /// tenants are hashed across shards by [`shard_of`](crate::shard_of).
    pub shards: usize,
    /// Bound of each shard's request queue. A full queue rejects with
    /// [`ServeError::QueueFull`](crate::ServeError::QueueFull) instead of
    /// buffering — load is shed at the edge.
    pub queue_depth: usize,
    /// How many tenants' sessions one shard keeps live (LRU). Evicted
    /// tenants keep their determinism (only the query cursor is retained)
    /// but pay session rebuild + plan recompilation on their next request.
    pub sessions_per_shard: usize,
    /// Root seed of the whole service; tenant `t` samples from the
    /// substream [`tenant_seed`](crate::tenant_seed)`(seed, t)`.
    pub seed: u64,
    /// SPRT knobs applied to every tenant session.
    pub eval: EvalConfig,
    /// Deadline applied to requests that do not carry their own.
    /// `None` = requests wait as long as the work takes.
    pub default_deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_depth: 128,
            sessions_per_shard: 32,
            seed: 0,
            eval: EvalConfig::default(),
            default_deadline: None,
        }
    }
}

impl ServeConfig {
    /// Returns the config with the given shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns the config with the given per-shard queue bound.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Returns the config with the given per-shard session-pool capacity.
    pub fn with_sessions_per_shard(mut self, sessions_per_shard: usize) -> Self {
        self.sessions_per_shard = sessions_per_shard;
        self
    }

    /// Returns the config with the given service seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with the given SPRT configuration.
    pub fn with_eval(mut self, eval: EvalConfig) -> Self {
        self.eval = eval;
        self
    }

    /// Returns the config with a default per-request deadline.
    pub fn with_default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }
}
