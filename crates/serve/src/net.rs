//! The TCP edge: [`Listener`] (server side) and [`TcpTransport`] (client
//! side) speaking the frame protocol of [`crate::wire`].
//!
//! # Server
//!
//! [`Service::listen`](crate::Service::listen) binds the config's
//! `bind_addr` nonblocking and drives every connection from a fixed pool
//! of `config.event_loops` event-loop threads using OS readiness polling
//! ([`crate::poll`]: epoll on Linux, `poll(2)` elsewhere). Loop 0 owns
//! the listening socket and hands accepted connections round-robin across
//! the pool, so 1024 open connections cost the same number of threads as
//! 8 — the property that keeps throughput flat under connection fan-in
//! (the old design spawned a reader/writer thread pair per connection and
//! collapsed under scheduler pressure at high counts).
//!
//! Each connection is a small state machine owned by exactly one loop:
//!
//! * **Preamble** — the first 4 bytes sniff the protocol: the `UNC1`
//!   magic starts the binary request loop; `GET ` hands the socket to a
//!   short-lived blocking thread that serves one HTTP request (`/health`,
//!   `/traces`, `/traces/<id>`, else the Prometheus scrape) and closes.
//!   One port, both protocols — no second listener to firewall.
//! * **Binary** — reads are drained to `WouldBlock` into an incremental
//!   [`FrameDecoder`](crate::wire::FrameDecoder) that tolerates arbitrary
//!   partial reads; each complete frame is admitted through the same
//!   [`ChannelTransport`] the in-process client uses, so queue
//!   backpressure surfaces as [`ServeError::QueueFull`], deadlines are
//!   anchored at admission, and per-tenant FIFO plus bitwise determinism
//!   are inherited rather than re-implemented. A completion hook attached
//!   at admission pokes the owning loop's wakeup pipe when the shard
//!   sends the reply, so reply readiness costs O(completions), never a
//!   per-connection blocked thread.
//! * **Replies** flow back in **submission order** per connection (front
//!   of the in-flight queue only), keeping the protocol state small at
//!   the cost of head-of-line blocking on one connection; clients that
//!   care use a pooled transport, where tenants hash across sockets. All
//!   replies ready at once are encoded into one buffer and flushed with a
//!   single write — writev-style coalescing for pipelined workloads.
//!
//! When `accept` fails with `EMFILE`/`ENFILE` the loop pauses accepting
//! with a short backoff (counted in `accept_stalls`) instead of dying;
//! pending connections are picked up when fds free up.
//!
//! Decoded query graphs are cached keyed by their raw bytes: a repeated
//! query hits the cache and reuses the *same* rebuilt `Uncertain` nodes,
//! so the shards' per-tenant plan caches stay hot across requests exactly
//! as they do in-process (a fresh decode per frame would mint fresh node
//! identities and recompile every plan every time).
//!
//! # Shutdown
//!
//! [`Listener::shutdown`] (or drop) sets the stop flag and pokes every
//! loop's wakeup pipe. Each loop closes the listener, stops reading from
//! its connections, keeps pumping until every already-admitted reply has
//! been flushed, then closes the sockets and exits. In-flight work is
//! drained, not dropped — the same contract
//! [`Service::shutdown`](crate::Service::shutdown) gives the in-process
//! path.

use std::collections::{HashMap, VecDeque};
use std::io::{BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use uncertain_core::{ServeError, Uncertain, WireError, WireGraph};

use crate::metrics::NetStats;
use crate::mix64;
use crate::poll::{Interest, PollEvent, Poller};
use crate::service::Inner;
use crate::transport::{
    ChannelTransport, CompletionHook, Reply, ReplyReceiver, Request, RequestKind, Transport,
};
use crate::wire::{self, FrameDecoder, WireBody, MAGIC, MAX_FRAME};

fn io_err(context: &str, e: std::io::Error) -> ServeError {
    ServeError::Transport(format!("{context}: {e}"))
}

// ---------------------------------------------------------------------------
// Server-side decoded-graph cache
// ---------------------------------------------------------------------------

/// Decoded queries keyed by their raw graph bytes, shared by every
/// connection of one listener. Bounded: at capacity the map is dropped
/// wholesale (correctness is unaffected — a re-decoded graph samples
/// bitwise identically; only plan-cache warmth resets).
const GRAPH_CACHE_CAP: usize = 4096;

enum CachedQuery {
    Bool(Uncertain<bool>),
    F64(Uncertain<f64>),
}

#[derive(Default)]
struct GraphCache {
    map: Mutex<HashMap<Vec<u8>, CachedQuery>>,
}

impl GraphCache {
    fn query_bool(&self, bytes: &[u8]) -> Result<Uncertain<bool>, ServeError> {
        let mut map = self.map.lock().expect("graph cache lock");
        if let Some(CachedQuery::Bool(q)) = map.get(bytes) {
            return Ok(q.clone());
        }
        let q = WireGraph::from_bytes(bytes)?.decode_bool()?;
        if map.len() >= GRAPH_CACHE_CAP {
            map.clear();
        }
        map.insert(bytes.to_vec(), CachedQuery::Bool(q.clone()));
        Ok(q)
    }

    fn query_f64(&self, bytes: &[u8]) -> Result<Uncertain<f64>, ServeError> {
        let mut map = self.map.lock().expect("graph cache lock");
        if let Some(CachedQuery::F64(q)) = map.get(bytes) {
            return Ok(q.clone());
        }
        let q = WireGraph::from_bytes(bytes)?.decode_f64()?;
        if map.len() >= GRAPH_CACHE_CAP {
            map.clear();
        }
        map.insert(bytes.to_vec(), CachedQuery::F64(q.clone()));
        Ok(q)
    }
}

// ---------------------------------------------------------------------------
// Event-loop plumbing
// ---------------------------------------------------------------------------

/// Poller token of the listening socket (loop 0 only).
const LISTENER_TOKEN: u64 = 0;
/// Poller token of each loop's wakeup pipe read half.
const WAKE_TOKEN: u64 = 1;
/// First token handed to a connection.
const CONN_BASE: u64 = 2;

/// How long the accept loop backs off after fd exhaustion before retrying.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

/// The cross-thread face of one event loop: shard workers (completion
/// hooks) and the accepting loop talk to it through this, never touching
/// loop-owned state. Every mutation is followed by a byte down the wakeup
/// pipe so the loop notices without polling its mailboxes.
struct LoopShared {
    /// Write half of the wakeup pipe; nonblocking, so a full pipe (wakeup
    /// already pending) is a no-op rather than a stall.
    wake_tx: UnixStream,
    /// Tokens of connections with a newly completed reply.
    ready: Mutex<Vec<u64>>,
    /// Connections accepted by loop 0 and assigned to this loop.
    incoming: Mutex<Vec<TcpStream>>,
}

impl LoopShared {
    fn notify(&self, token: u64) {
        self.ready.lock().expect("ready list lock").push(token);
        self.poke();
    }

    fn push_conn(&self, stream: TcpStream) {
        self.incoming
            .lock()
            .expect("incoming list lock")
            .push(stream);
        self.poke();
    }

    fn poke(&self) {
        let _ = (&self.wake_tx).write(&[1]);
    }
}

/// The completion hook one connection attaches to every admission: the
/// shard worker fires it right after sending the reply, which queues the
/// connection for a reply pump on its owning loop.
struct ConnHook {
    shared: Arc<LoopShared>,
    token: u64,
}

impl CompletionHook for ConnHook {
    fn on_reply(&self) {
        self.shared.notify(self.token);
    }
}

/// One in-flight request on a connection, in submission order. Replies
/// are drained only from the front, which is what gives the remote client
/// in-order replies without a reordering buffer.
enum Entry {
    /// Admitted to a shard; the reply will arrive on the receiver.
    Pending(u64, ReplyReceiver),
    /// Failed before admission (decode error, QueueFull, Shutdown) — the
    /// error reply is already materialized.
    Ready(u64, Reply),
}

enum ConnState {
    /// Collecting the 4-byte protocol preamble.
    Preamble(Vec<u8>),
    /// Binary frame protocol.
    Binary,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    state: ConnState,
    decoder: FrameDecoder,
    inflight: VecDeque<Entry>,
    /// Encoded-but-unflushed reply bytes; `outpos` is the flushed prefix.
    outbuf: Vec<u8>,
    outpos: usize,
    /// Reply frames encoded since the last flush attempt, for the
    /// writev-batching counter.
    pending_frames: usize,
    /// Read side finished (EOF, protocol error, or listener drain): no
    /// more frames in; flush what's owed, then close.
    closing: bool,
    /// Socket is unusable (I/O error or hard hangup): drop immediately.
    dead: bool,
    /// `GET ` preamble seen — hand off to a blocking HTTP thread with
    /// these already-read bytes.
    handoff: Option<Vec<u8>>,
    /// What the poller is currently watching this fd for.
    interest: Interest,
    hook: Arc<ConnHook>,
}

impl Conn {
    fn flushed(&self) -> bool {
        self.outpos == self.outbuf.len()
    }

    fn desired_interest(&self) -> Interest {
        match (self.closing, self.flushed()) {
            (false, true) => Interest::READ,
            (false, false) => Interest::READ_WRITE,
            (true, false) => Interest::WRITE,
            // Draining: nothing socket-side to wait for — the next event
            // is a completion hook poke (or a hangup, always reported).
            (true, true) => Interest::NONE,
        }
    }
}

struct EventLoop {
    poller: Poller,
    wake_rx: UnixStream,
    shared: Arc<LoopShared>,
    /// Every loop's shared face, for round-robin handoff (loop 0).
    all: Arc<Vec<Arc<LoopShared>>>,
    /// The listening socket; only loop 0 has one, dropped at drain.
    listener: Option<TcpListener>,
    /// Backoff deadline while accepting is paused on fd exhaustion.
    accept_paused_until: Option<Instant>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    rr: usize,
    stop: Arc<AtomicBool>,
    draining: bool,
    transport: ChannelTransport,
    inner: Arc<Inner>,
    cache: Arc<GraphCache>,
    net: Arc<NetStats>,
    /// Blocking HTTP handler threads, joined on loop exit (finished ones
    /// are reaped every tick).
    http_handles: Vec<JoinHandle<()>>,
    read_buf: Vec<u8>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            let timeout = if self.draining {
                // Safety heartbeat: completion pokes are the real signal,
                // the tick just bounds the damage if one is ever lost.
                Some(Duration::from_millis(25))
            } else {
                self.accept_paused_until
                    .map(|until| until.saturating_duration_since(Instant::now()))
            };
            if self.poller.wait(&mut events, timeout).is_err() {
                // A broken poller would otherwise spin; back off hard.
                std::thread::sleep(Duration::from_millis(1));
            }
            if self.stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if let Some(until) = self.accept_paused_until {
                if !self.draining && Instant::now() >= until {
                    self.resume_accept();
                }
            }

            let mut accept_ready = false;
            let mut woke = false;
            let mut to_read: Vec<u64> = Vec::new();
            let mut to_write: Vec<u64> = Vec::new();
            let mut to_hup: Vec<u64> = Vec::new();
            for ev in &events {
                match ev.token {
                    LISTENER_TOKEN => accept_ready = true,
                    WAKE_TOKEN => woke = true,
                    token => {
                        if ev.readable {
                            to_read.push(token);
                        }
                        if ev.writable {
                            to_write.push(token);
                        }
                        if ev.hup {
                            to_hup.push(token);
                        }
                    }
                }
            }
            if woke {
                self.drain_wake_pipe();
            }
            // Snapshot the mailboxes *after* draining the pipe: anything
            // pushed later leaves a byte behind and wakes the next tick.
            let notified = std::mem::take(&mut *self.shared.ready.lock().expect("ready list lock"));
            let incoming =
                std::mem::take(&mut *self.shared.incoming.lock().expect("incoming list lock"));

            if !events.is_empty() || !notified.is_empty() || !incoming.is_empty() {
                self.net.event_loop_wakeups.inc();
            }

            if accept_ready {
                self.accept_burst();
            }
            for stream in incoming {
                self.register_conn(stream);
            }
            for token in to_read {
                self.on_conn_event(token, true);
            }
            for token in notified {
                self.on_conn_event(token, false);
            }
            for token in to_write {
                self.on_conn_event(token, false);
            }
            // A hard hangup means the peer is gone both ways: a draining
            // connection can never deliver its remaining replies, so drop
            // it now instead of spinning on the always-reported condition.
            for token in to_hup {
                if self.conns.get(&token).is_some_and(|c| c.closing || c.dead) {
                    if let Some(conn) = self.conns.remove(&token) {
                        self.close_conn(conn);
                    }
                }
            }

            self.reap_http_handles();
            if self.draining && self.conns.is_empty() {
                break;
            }
        }
        for handle in self.http_handles.drain(..) {
            let _ = handle.join();
        }
    }

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    // -- accept path --------------------------------------------------------

    fn accept_burst(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    self.net.accepted.inc();
                    self.net.connections_open.inc();
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() || self.draining {
                        self.net.connections_open.dec();
                        self.net.closed.inc();
                        continue;
                    }
                    let i = self.rr % self.all.len();
                    self.rr += 1;
                    self.all[i].push_conn(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if is_fd_exhaustion(&e) => {
                    // Out of fds: pause accepting instead of dying. The
                    // backlog holds pending connections; accepting
                    // resumes after the backoff, when closes have
                    // hopefully freed descriptors.
                    self.net.accept_stalls.inc();
                    self.pause_accept();
                    return;
                }
                // Transient per-connection failures (ECONNABORTED and
                // kin): readiness re-fires if more are pending.
                Err(_) => return,
            }
        }
    }

    fn pause_accept(&mut self) {
        if let Some(listener) = &self.listener {
            let _ = self.poller.remove(listener.as_raw_fd());
        }
        self.accept_paused_until = Some(Instant::now() + ACCEPT_BACKOFF);
    }

    fn resume_accept(&mut self) {
        self.accept_paused_until = None;
        if let Some(listener) = &self.listener {
            let _ = self
                .poller
                .add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ);
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        if self.draining {
            self.net.connections_open.dec();
            self.net.closed.inc();
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .add(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            self.net.connections_open.dec();
            self.net.closed.inc();
            return;
        }
        self.net.connections_registered.inc();
        let hook = Arc::new(ConnHook {
            shared: Arc::clone(&self.shared),
            token,
        });
        self.conns.insert(
            token,
            Conn {
                stream,
                state: ConnState::Preamble(Vec::with_capacity(4)),
                decoder: FrameDecoder::new(),
                inflight: VecDeque::new(),
                outbuf: Vec::new(),
                outpos: 0,
                pending_frames: 0,
                closing: false,
                dead: false,
                handoff: None,
                interest: Interest::READ,
                hook,
            },
        );
        // Level-triggered polling reports any bytes that raced ahead of
        // the registration on the next wait — no explicit kick needed.
    }

    // -- connection events --------------------------------------------------

    /// Runs one connection through read → pump → flush and re-files it
    /// (or closes / hands it off). Taking the connection out of the map
    /// keeps the borrow checker out of the way of `&mut self` helpers.
    fn on_conn_event(&mut self, token: u64, readable: bool) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        if readable && !conn.closing && !conn.dead {
            self.conn_read(&mut conn);
        }
        self.pump(&mut conn);
        if !conn.dead {
            self.flush(&mut conn);
        }

        if let Some(leftover) = conn.handoff.take() {
            self.http_handoff(conn, leftover);
            return;
        }
        if conn.dead || (conn.closing && conn.inflight.is_empty() && conn.flushed()) {
            self.close_conn(conn);
            return;
        }
        let desired = conn.desired_interest();
        if desired != conn.interest {
            let _ = self.poller.modify(conn.stream.as_raw_fd(), token, desired);
            conn.interest = desired;
        }
        self.conns.insert(token, conn);
    }

    fn close_conn(&mut self, conn: Conn) {
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        self.net.connections_open.dec();
        self.net.closed.inc();
        // Dropping the stream closes the fd; dropping pending entries
        // drops their receivers — a shard reply to one simply vanishes,
        // same as the old per-connection writer dying mid-drain.
    }

    fn http_handoff(&mut self, conn: Conn, leftover: Vec<u8>) {
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        let stream = conn.stream;
        let _ = stream.set_nonblocking(false);
        // Counted before the handler runs so the scrape body it renders
        // already includes this scrape.
        self.net.http_scrapes.inc();
        let inner = Arc::clone(&self.inner);
        let net = Arc::clone(&self.net);
        self.http_handles.push(std::thread::spawn(move || {
            serve_scrape(stream, leftover, &inner);
            net.connections_open.dec();
            net.closed.inc();
        }));
    }

    fn reap_http_handles(&mut self) {
        let mut i = 0;
        while i < self.http_handles.len() {
            if self.http_handles[i].is_finished() {
                let _ = self.http_handles.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
    }

    /// Drains the socket to `WouldBlock`, feeding the preamble sniffer
    /// and then the incremental frame decoder.
    fn conn_read(&mut self, conn: &mut Conn) {
        loop {
            let n = match (&conn.stream).read(&mut self.read_buf) {
                Ok(0) => {
                    // EOF. Mid-frame (or mid-preamble with bytes already
                    // consumed into a frame) is a protocol error; at a
                    // frame boundary it is a clean half-close.
                    conn.closing = true;
                    if matches!(conn.state, ConnState::Binary) && conn.decoder.mid_frame() {
                        self.net.wire_errors.inc();
                    }
                    return;
                }
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if matches!(conn.state, ConnState::Binary) && conn.decoder.mid_frame() {
                        self.net.partial_reads.inc();
                    }
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.net.wire_errors.inc();
                    conn.dead = true;
                    return;
                }
            };
            let mut chunk = &self.read_buf[..n];
            if let ConnState::Preamble(pre) = &mut conn.state {
                let need = 4 - pre.len();
                let take = need.min(chunk.len());
                pre.extend_from_slice(&chunk[..take]);
                chunk = &chunk[take..];
                if pre.len() < 4 {
                    continue;
                }
                if pre[..4] == MAGIC {
                    conn.state = ConnState::Binary;
                } else if &pre[..4] == b"GET " {
                    conn.handoff = Some(chunk.to_vec());
                    return;
                } else {
                    self.net.wire_errors.inc();
                    conn.dead = true;
                    return;
                }
            }
            conn.decoder.push(chunk);
            self.drain_frames(conn);
            if conn.closing || conn.dead {
                return;
            }
        }
    }

    /// Admits every complete frame buffered in the connection's decoder.
    fn drain_frames(&mut self, conn: &mut Conn) {
        loop {
            let payload = match conn.decoder.next_frame() {
                Ok(Some(payload)) => payload,
                Ok(None) => return,
                Err(_) => {
                    // An oversized length prefix leaves the stream
                    // unsynchronized: stop reading, flush what is owed,
                    // close.
                    self.net.wire_errors.inc();
                    conn.closing = true;
                    return;
                }
            };
            self.net.frames_in.inc();
            if payload.len() < 8 {
                // No correlation id to reply to.
                self.net.wire_errors.inc();
                conn.closing = true;
                return;
            }
            let id = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
            let hook: Arc<dyn CompletionHook> = conn.hook.clone();
            match decode_and_submit(&payload[8..], &self.transport, &self.cache, Some(hook)) {
                Ok(rx) => conn.inflight.push_back(Entry::Pending(id, rx)),
                Err(e) => {
                    if matches!(e, ServeError::Wire(_)) {
                        self.net.wire_errors.inc();
                    }
                    conn.inflight
                        .push_back(Entry::Ready(id, Reply::bare(Err(e))));
                }
            }
        }
    }

    /// Encodes every reply that is ready *at the front* of the in-flight
    /// queue into the connection's write buffer. Stopping at the first
    /// still-pending entry is what preserves submission-order replies.
    fn pump(&mut self, conn: &mut Conn) {
        loop {
            let Some(front) = conn.inflight.front_mut() else {
                return;
            };
            let (id, reply) = match front {
                Entry::Ready(..) => match conn.inflight.pop_front() {
                    Some(Entry::Ready(id, reply)) => (id, reply),
                    _ => unreachable!("front was Ready"),
                },
                Entry::Pending(id, rx) => match rx.try_recv() {
                    Ok(reply) => {
                        let id = *id;
                        conn.inflight.pop_front();
                        (id, reply)
                    }
                    Err(TryRecvError::Empty) => return,
                    Err(TryRecvError::Disconnected) => {
                        let id = *id;
                        conn.inflight.pop_front();
                        (
                            id,
                            Reply::bare(Err(ServeError::Transport("shard worker exited".into()))),
                        )
                    }
                },
            };
            let payload = wire::encode_response(id, &reply.result, reply.trace_id);
            // Counted before the flush: once the peer can observe the
            // reply, a metrics snapshot must already include it.
            self.net.frames_out.inc();
            conn.outbuf
                .extend_from_slice(&(payload.len() as u32).to_le_bytes());
            conn.outbuf.extend_from_slice(&payload);
            conn.pending_frames += 1;
        }
    }

    /// Writes the buffered replies out, coalescing every frame encoded
    /// since the last flush into as few syscalls as the socket allows.
    fn flush(&mut self, conn: &mut Conn) {
        if conn.flushed() {
            conn.pending_frames = 0;
            return;
        }
        if conn.pending_frames >= 2 {
            self.net.writev_batches.inc();
        }
        conn.pending_frames = 0;
        while conn.outpos < conn.outbuf.len() {
            match (&conn.stream).write(&conn.outbuf[conn.outpos..]) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(n) => conn.outpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        if conn.flushed() {
            conn.outbuf.clear();
            conn.outpos = 0;
        } else if conn.outpos >= 64 * 1024 {
            conn.outbuf.drain(..conn.outpos);
            conn.outpos = 0;
        }
    }

    // -- drain --------------------------------------------------------------

    fn begin_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            if self.accept_paused_until.is_none() {
                let _ = self.poller.remove(listener.as_raw_fd());
            }
            self.accept_paused_until = None;
        }
        // Stop reading everywhere; idle connections close immediately,
        // the rest pump their remaining replies out first.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(mut conn) = self.conns.remove(&token) else {
                continue;
            };
            conn.closing = true;
            self.pump(&mut conn);
            if !conn.dead {
                self.flush(&mut conn);
            }
            if conn.dead || (conn.inflight.is_empty() && conn.flushed()) {
                self.close_conn(conn);
                continue;
            }
            let desired = conn.desired_interest();
            if desired != conn.interest {
                let _ = self.poller.modify(conn.stream.as_raw_fd(), token, desired);
                conn.interest = desired;
            }
            self.conns.insert(token, conn);
        }
    }
}

fn is_fd_exhaustion(e: &std::io::Error) -> bool {
    // EMFILE (per-process fd limit) = 24, ENFILE (system table) = 23 on
    // every unix this builds for.
    matches!(e.raw_os_error(), Some(24) | Some(23))
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

/// A service's open TCP port. Returned by
/// [`Service::listen`](crate::Service::listen); dropping it (or calling
/// [`Listener::shutdown`]) closes the network edge while leaving the
/// service itself running.
pub struct Listener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    loops: Vec<JoinHandle<()>>,
    shared: Vec<Arc<LoopShared>>,
}

impl Listener {
    pub(crate) fn bind(inner: Arc<Inner>) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(inner.config.bind_addr.as_str())
            .map_err(|e| io_err("bind failed", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err("nonblocking listener", e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| io_err("no local addr", e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let cache = Arc::new(GraphCache::default());
        let n_loops = inner.config.event_loops.max(1);

        let mut shared = Vec::with_capacity(n_loops);
        let mut wake_halves = Vec::with_capacity(n_loops);
        for _ in 0..n_loops {
            let (wake_tx, wake_rx) = UnixStream::pair().map_err(|e| io_err("wakeup pipe", e))?;
            wake_tx
                .set_nonblocking(true)
                .map_err(|e| io_err("wakeup pipe", e))?;
            wake_rx
                .set_nonblocking(true)
                .map_err(|e| io_err("wakeup pipe", e))?;
            shared.push(Arc::new(LoopShared {
                wake_tx,
                ready: Mutex::new(Vec::new()),
                incoming: Mutex::new(Vec::new()),
            }));
            wake_halves.push(wake_rx);
        }
        let all = Arc::new(shared.clone());

        let mut listener_slot = Some(listener);
        let mut loops = Vec::with_capacity(n_loops);
        for (index, wake_rx) in wake_halves.into_iter().enumerate() {
            let mut poller = Poller::new().map_err(|e| io_err("poller", e))?;
            poller
                .add(wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)
                .map_err(|e| io_err("poller", e))?;
            let listener = if index == 0 {
                listener_slot.take()
            } else {
                None
            };
            if let Some(l) = &listener {
                poller
                    .add(l.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
                    .map_err(|e| io_err("poller", e))?;
            }
            let event_loop = EventLoop {
                poller,
                wake_rx,
                shared: Arc::clone(&shared[index]),
                all: Arc::clone(&all),
                listener,
                accept_paused_until: None,
                conns: HashMap::new(),
                next_token: CONN_BASE,
                rr: 0,
                stop: Arc::clone(&stop),
                draining: false,
                transport: ChannelTransport::new(Arc::clone(&inner)),
                inner: Arc::clone(&inner),
                cache: Arc::clone(&cache),
                net: Arc::clone(&inner.net),
                http_handles: Vec::new(),
                read_buf: vec![0u8; 64 * 1024],
            };
            loops.push(std::thread::spawn(move || event_loop.run()));
        }
        Ok(Self {
            addr,
            stop,
            loops,
            shared,
        })
    }

    /// The address actually bound — the way to learn the port after
    /// binding `"127.0.0.1:0"`.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight replies, and joins the event
    /// loops. Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.stop_impl();
    }

    fn stop_impl(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        for s in &self.shared {
            s.poke();
        }
        for handle in self.loops.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.stop_impl();
    }
}

// ---------------------------------------------------------------------------
// HTTP side of the port
// ---------------------------------------------------------------------------

/// How many retained traces one `GET /traces` response returns, newest
/// last. The flight recorder's default ring is the same size, so this is
/// "everything retained" under the default config.
const TRACES_LIMIT: usize = 256;

/// Serves one HTTP request and closes. The `GET ` preamble has already
/// been consumed (any bytes read past it arrive as `leftover`), so the
/// head starts with the path, which routes:
///
/// * `/health` — liveness JSON (uptime, request totals, trace buffer).
/// * `/traces` — the flight recorder's retained traces as JSON-lines,
///   newest last.
/// * `/traces/<id>` — one retained trace by decimal id, or 404.
/// * anything else (canonically `/metrics`) — the Prometheus scrape body.
fn serve_scrape(mut stream: TcpStream, leftover: Vec<u8>, inner: &Inner) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    fn head_complete(seen: &[u8]) -> bool {
        seen.windows(4).any(|w| w == b"\r\n\r\n")
    }
    let mut seen = leftover;
    let mut byte = [0u8; 1];
    while seen.len() < 8192 && !head_complete(&seen) {
        match stream.read(&mut byte) {
            Ok(1) => seen.push(byte[0]),
            _ => break,
        }
    }
    let head = String::from_utf8_lossy(&seen);
    let path = head.split_whitespace().next().unwrap_or("");
    let (status, content_type, body) = match path {
        "/health" => {
            let m = inner.metrics();
            let accepting = inner.accepting.load(Ordering::SeqCst);
            (
                "200 OK",
                "application/json",
                format!(
                    "{{\"status\":\"{}\",\"uptime_seconds\":{:.3},\"shards\":{},\
                     \"requests\":{},\"timeouts\":{},\"rejected\":{},\
                     \"traces_buffered\":{}}}\n",
                    if accepting { "ok" } else { "draining" },
                    m.elapsed.as_secs_f64(),
                    m.shards.len(),
                    m.requests(),
                    m.timeouts(),
                    m.rejected(),
                    m.flight.buffered,
                ),
            )
        }
        "/traces" => {
            let mut body = String::new();
            for t in inner.flight.recent(TRACES_LIMIT) {
                body.push_str(&uncertain_obs::request_trace_to_json(&t));
                body.push('\n');
            }
            ("200 OK", "application/x-ndjson", body)
        }
        _ if path.starts_with("/traces/") => {
            match path["/traces/".len()..]
                .parse::<u64>()
                .ok()
                .and_then(|id| inner.flight.get(id))
            {
                Some(t) => {
                    let mut body = uncertain_obs::request_trace_to_json(&t);
                    body.push('\n');
                    ("200 OK", "application/json", body)
                }
                None => (
                    "404 Not Found",
                    "application/json",
                    "{\"error\":\"trace not retained\"}\n".to_string(),
                ),
            }
        }
        _ => (
            "200 OK",
            "text/plain; version=0.0.4",
            inner.metrics().render_prometheus(),
        ),
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Decodes one request body and admits it through the shard queues,
/// attaching the connection's completion hook so the owning event loop is
/// poked when the reply lands. Admission failures (`QueueFull`,
/// `Shutdown`) and decode failures come back as the error the remote
/// caller should see.
fn decode_and_submit(
    body: &[u8],
    transport: &ChannelTransport,
    cache: &GraphCache,
    hook: Option<Arc<dyn CompletionHook>>,
) -> Result<ReplyReceiver, ServeError> {
    let request = wire::decode_request_body(body)?;
    let kind = match request.body {
        WireBody::Evaluate { threshold, graph } => RequestKind::Evaluate {
            cond: cache.query_bool(&graph)?,
            threshold,
        },
        WireBody::Pr { threshold, graph } => RequestKind::Pr {
            cond: cache.query_bool(&graph)?,
            threshold,
        },
        WireBody::E { n, graph } => RequestKind::E {
            expr: cache.query_f64(&graph)?,
            n: usize::try_from(n)
                .map_err(|_| WireError::Malformed(format!("sample count {n} overflows")))?,
        },
        WireBody::Stats { n, graph } => RequestKind::Stats {
            expr: cache.query_f64(&graph)?,
            n: usize::try_from(n)
                .map_err(|_| WireError::Malformed(format!("sample count {n} overflows")))?,
        },
    };
    // The deadline crossed relative; anchor it here, at admission — the
    // queue wait counts against it exactly as it does in-process.
    let timeout = (request.deadline_ms > 0).then(|| Duration::from_millis(request.deadline_ms));
    transport.submit_hooked(
        Request {
            tenant: request.tenant,
            kind,
            timeout,
            strategy: request.strategy,
            trace: request.trace,
        },
        hook,
    )
}

// ---------------------------------------------------------------------------
// Client-side TCP transport
// ---------------------------------------------------------------------------

/// In-flight requests awaiting replies on one connection, keyed by
/// correlation id.
type PendingMap = Arc<Mutex<HashMap<u64, SyncSender<Reply>>>>;

struct ClientConn {
    /// Kept for the half-close on drop; all writes go through `writer`.
    stream: TcpStream,
    writer: Mutex<BufWriter<TcpStream>>,
    pending: PendingMap,
    alive: Arc<AtomicBool>,
    reader: Mutex<Option<JoinHandle<()>>>,
}

/// A [`Transport`] over one or more pipelined TCP connections to a
/// [`Service::listen`](crate::Service::listen) port.
///
/// Requests are written as frames tagged with a correlation id; a demux
/// thread per connection routes response frames back to their waiting
/// [`Pending`](crate::Pending) handles, so any number of requests can be
/// in flight at once. Tenants are hashed to a fixed connection of the
/// pool: combined with the server's per-connection in-order replies and
/// the shard queues' FIFO, a tenant's requests still execute — and
/// complete — in submission order, while distinct tenants spread across
/// sockets.
///
/// If a connection dies, every request in flight on it fails with
/// [`ServeError::Transport`], and later submits routed to it fail fast
/// the same way; other connections of the pool are unaffected.
pub struct TcpTransport {
    conns: Vec<ClientConn>,
    next_id: AtomicU64,
}

impl TcpTransport {
    /// One connection to `addr` (see [`TcpTransport::connect_pooled`]).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServeError> {
        Self::connect_pooled(addr, 1)
    }

    /// A pool of `connections` connections to `addr`, each with its own
    /// demux thread; tenants are hashed across the pool.
    pub fn connect_pooled<A: ToSocketAddrs>(
        addr: A,
        connections: usize,
    ) -> Result<Self, ServeError> {
        if connections == 0 {
            return Err(ServeError::Transport(
                "a transport pool needs at least one connection".into(),
            ));
        }
        let conns = (0..connections)
            .map(|_| Self::open(&addr))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            conns,
            next_id: AtomicU64::new(1),
        })
    }

    fn open<A: ToSocketAddrs>(addr: &A) -> Result<ClientConn, ServeError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect failed", e))?;
        let _ = stream.set_nodelay(true);
        let mut writer = BufWriter::new(stream.try_clone().map_err(|e| io_err("clone failed", e))?);
        writer
            .write_all(&MAGIC)
            .and_then(|()| writer.flush())
            .map_err(|e| io_err("preamble write failed", e))?;
        let pending: PendingMap = Arc::new(Mutex::new(HashMap::new()));
        let alive = Arc::new(AtomicBool::new(true));
        let reader = {
            let mut read_stream = stream.try_clone().map_err(|e| io_err("clone failed", e))?;
            let pending = Arc::clone(&pending);
            let alive = Arc::clone(&alive);
            std::thread::spawn(move || {
                while let Ok(Some(payload)) = wire::read_frame(&mut read_stream) {
                    let Ok((id, trace_id, result)) = wire::decode_response(&payload) else {
                        // An undecodable reply means the stream is no
                        // longer trustworthy.
                        break;
                    };
                    if let Some(tx) = pending.lock().expect("pending map lock").remove(&id) {
                        let _ = tx.send(Reply { result, trace_id });
                    }
                }
                alive.store(false, Ordering::SeqCst);
                // Fail everything still waiting on this socket.
                let drained: Vec<_> = pending
                    .lock()
                    .expect("pending map lock")
                    .drain()
                    .map(|(_, tx)| tx)
                    .collect();
                for tx in drained {
                    let _ = tx.send(Reply::bare(Err(ServeError::Transport(
                        "connection closed".into(),
                    ))));
                }
            })
        };
        Ok(ClientConn {
            stream,
            writer: Mutex::new(writer),
            pending,
            alive,
            reader: Mutex::new(Some(reader)),
        })
    }
}

impl Transport for TcpTransport {
    fn submit(&self, request: Request) -> Result<ReplyReceiver, ServeError> {
        let conn = &self.conns[(mix64(request.tenant) % self.conns.len() as u64) as usize];
        if !conn.alive.load(Ordering::SeqCst) {
            return Err(ServeError::Transport("connection closed".into()));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let payload = wire::encode_request(id, &request)?;
        debug_assert!(payload.len() <= MAX_FRAME);
        let (tx, rx) = mpsc::sync_channel(1);
        conn.pending
            .lock()
            .expect("pending map lock")
            .insert(id, tx);
        // The frame write is atomic under the writer lock; registering the
        // pending entry first means a fast reply can never miss its slot.
        let write = {
            let mut w = conn.writer.lock().expect("writer lock");
            wire::write_frame(&mut *w, &payload).and_then(|()| w.flush())
        };
        if let Err(e) = write {
            conn.pending.lock().expect("pending map lock").remove(&id);
            conn.alive.store(false, Ordering::SeqCst);
            let _ = conn.stream.shutdown(Shutdown::Both);
            return Err(io_err("request write failed", e));
        }
        Ok(rx)
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        for conn in &self.conns {
            let _ = conn.stream.shutdown(Shutdown::Both);
            if let Some(handle) = conn.reader.lock().expect("reader handle lock").take() {
                let _ = handle.join();
            }
        }
    }
}
