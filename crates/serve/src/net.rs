//! The TCP edge: [`Listener`] (server side) and [`TcpTransport`] (client
//! side) speaking the frame protocol of [`crate::wire`].
//!
//! # Server
//!
//! [`Service::listen`](crate::Service::listen) binds the config's
//! `bind_addr` and accepts connections on a dedicated thread. Each
//! connection sniffs a 4-byte preamble: the `UNC1` magic starts the binary
//! request loop, `GET ` serves one HTTP request and closes (one port, both
//! protocols — no second listener to configure or firewall). The HTTP side
//! routes by path: `/health` (liveness JSON), `/traces` (the flight
//! recorder's retained span trees as JSON-lines), `/traces/<id>` (one
//! trace by id), and everything else — canonically `/metrics` — serves the
//! Prometheus scrape body.
//!
//! A binary connection runs two threads: a reader that decodes request
//! frames and admits them through the same [`ChannelTransport`] the
//! in-process client uses — so queue backpressure surfaces to the remote
//! caller as [`ServeError::QueueFull`], frame deadlines feed the same
//! cooperative-deadline path, and per-tenant FIFO semantics are inherited
//! rather than re-implemented — and a writer that encodes replies back in
//! **submission order**. In-order replies keep the protocol state small
//! (no reordering buffer) at the cost of head-of-line blocking on one
//! connection; clients that care use a pooled transport, where tenants
//! hash across sockets.
//!
//! Decoded query graphs are cached keyed by their raw bytes: a repeated
//! query hits the cache and reuses the *same* rebuilt `Uncertain` nodes,
//! so the shards' per-tenant plan caches stay hot across requests exactly
//! as they do in-process (a fresh decode per frame would mint fresh node
//! identities and recompile every plan every time).
//!
//! # Shutdown
//!
//! [`Listener::shutdown`] (or drop) stops accepting, half-closes every
//! connection's read side, and joins the handlers: readers see EOF, writer
//! threads flush every reply already admitted, then the sockets close.
//! In-flight work is drained, not dropped — the same contract
//! [`Service::shutdown`](crate::Service::shutdown) gives the in-process
//! path.

use std::collections::HashMap;
use std::io::{BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use uncertain_core::{ServeError, Uncertain, WireError, WireGraph};

use crate::metrics::NetStats;
use crate::mix64;
use crate::service::Inner;
use crate::transport::{ChannelTransport, Reply, ReplyReceiver, Request, RequestKind, Transport};
use crate::wire::{self, WireBody, MAGIC, MAX_FRAME};

fn io_err(context: &str, e: std::io::Error) -> ServeError {
    ServeError::Transport(format!("{context}: {e}"))
}

// ---------------------------------------------------------------------------
// Server-side decoded-graph cache
// ---------------------------------------------------------------------------

/// Decoded queries keyed by their raw graph bytes, shared by every
/// connection of one listener. Bounded: at capacity the map is dropped
/// wholesale (correctness is unaffected — a re-decoded graph samples
/// bitwise identically; only plan-cache warmth resets).
const GRAPH_CACHE_CAP: usize = 4096;

enum CachedQuery {
    Bool(Uncertain<bool>),
    F64(Uncertain<f64>),
}

#[derive(Default)]
struct GraphCache {
    map: Mutex<HashMap<Vec<u8>, CachedQuery>>,
}

impl GraphCache {
    fn query_bool(&self, bytes: &[u8]) -> Result<Uncertain<bool>, ServeError> {
        let mut map = self.map.lock().expect("graph cache lock");
        if let Some(CachedQuery::Bool(q)) = map.get(bytes) {
            return Ok(q.clone());
        }
        let q = WireGraph::from_bytes(bytes)?.decode_bool()?;
        if map.len() >= GRAPH_CACHE_CAP {
            map.clear();
        }
        map.insert(bytes.to_vec(), CachedQuery::Bool(q.clone()));
        Ok(q)
    }

    fn query_f64(&self, bytes: &[u8]) -> Result<Uncertain<f64>, ServeError> {
        let mut map = self.map.lock().expect("graph cache lock");
        if let Some(CachedQuery::F64(q)) = map.get(bytes) {
            return Ok(q.clone());
        }
        let q = WireGraph::from_bytes(bytes)?.decode_f64()?;
        if map.len() >= GRAPH_CACHE_CAP {
            map.clear();
        }
        map.insert(bytes.to_vec(), CachedQuery::F64(q.clone()));
        Ok(q)
    }
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

/// Per-listener registry of live connections, for draining shutdown.
///
/// Handlers deregister on exit: a registered clone that outlived its
/// connection would pin the socket open (the peer would never see FIN
/// after `Connection: close`) and leak one fd per served connection.
#[derive(Default)]
struct ConnRegistry {
    next: AtomicU64,
    streams: Mutex<HashMap<u64, TcpStream>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl ConnRegistry {
    fn register(&self, stream: TcpStream) -> u64 {
        let token = self.next.fetch_add(1, Ordering::Relaxed);
        self.streams
            .lock()
            .expect("stream registry lock")
            .insert(token, stream);
        token
    }

    fn deregister(&self, token: u64) {
        self.streams
            .lock()
            .expect("stream registry lock")
            .remove(&token);
    }
}

/// A service's open TCP port. Returned by
/// [`Service::listen`](crate::Service::listen); dropping it (or calling
/// [`Listener::shutdown`]) closes the network edge while leaving the
/// service itself running.
pub struct Listener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    registry: Arc<ConnRegistry>,
}

impl Listener {
    pub(crate) fn bind(inner: Arc<Inner>) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(inner.config.bind_addr.as_str())
            .map_err(|e| io_err("bind failed", e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| io_err("no local addr", e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(ConnRegistry::default());
        let cache = Arc::new(GraphCache::default());
        let accept = {
            let stop = Arc::clone(&stop);
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let net = Arc::clone(&inner.net);
                    net.accepted.inc();
                    net.connections_open.inc();
                    let token = stream
                        .try_clone()
                        .ok()
                        .map(|clone| registry.register(clone));
                    let transport = ChannelTransport::new(Arc::clone(&inner));
                    let cache = Arc::clone(&cache);
                    let metrics_inner = Arc::clone(&inner);
                    let conn_registry = Arc::clone(&registry);
                    let handle = std::thread::spawn(move || {
                        serve_connection(stream, transport, metrics_inner, cache, Arc::clone(&net));
                        if let Some(token) = token {
                            conn_registry.deregister(token);
                        }
                        net.connections_open.dec();
                        net.closed.inc();
                    });
                    registry
                        .handles
                        .lock()
                        .expect("handle registry lock")
                        .push(handle);
                }
            })
        };
        Ok(Self {
            addr,
            stop,
            accept: Some(accept),
            registry,
        })
    }

    /// The address actually bound — the way to learn the port after
    /// binding `"127.0.0.1:0"`.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight replies, and joins every
    /// connection handler. Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.stop_impl();
    }

    fn stop_impl(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Half-close: readers see EOF and stop admitting; writers still
        // flush every already-admitted reply before their threads exit.
        for stream in self
            .registry
            .streams
            .lock()
            .expect("stream registry lock")
            .values()
        {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let handles: Vec<_> = self
            .registry
            .handles
            .lock()
            .expect("handle registry lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.stop_impl();
    }
}

// ---------------------------------------------------------------------------
// Per-connection server loops
// ---------------------------------------------------------------------------

fn serve_connection(
    mut stream: TcpStream,
    transport: ChannelTransport,
    inner: Arc<Inner>,
    cache: Arc<GraphCache>,
    net: Arc<NetStats>,
) {
    let mut preamble = [0u8; 4];
    if stream.read_exact(&mut preamble).is_err() {
        return;
    }
    if preamble == MAGIC {
        serve_binary(stream, transport, cache, net);
    } else if &preamble == b"GET " {
        net.http_scrapes.inc();
        serve_scrape(stream, &inner);
    } else {
        net.wire_errors.inc();
    }
}

/// How many retained traces one `GET /traces` response returns, newest
/// last. The flight recorder's default ring is the same size, so this is
/// "everything retained" under the default config.
const TRACES_LIMIT: usize = 256;

/// Serves one HTTP request and closes. The `GET ` preamble has already
/// been consumed, so the head starts with the path, which routes:
///
/// * `/health` — liveness JSON (uptime, request totals, trace buffer).
/// * `/traces` — the flight recorder's retained traces as JSON-lines,
///   newest last.
/// * `/traces/<id>` — one retained trace by decimal id, or 404.
/// * anything else (canonically `/metrics`) — the Prometheus scrape body.
fn serve_scrape(mut stream: TcpStream, inner: &Inner) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut seen = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while seen.len() < 8192 && !seen.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => seen.push(byte[0]),
            _ => break,
        }
    }
    let head = String::from_utf8_lossy(&seen);
    let path = head.split_whitespace().next().unwrap_or("");
    let (status, content_type, body) = match path {
        "/health" => {
            let m = inner.metrics();
            let accepting = inner.accepting.load(Ordering::SeqCst);
            (
                "200 OK",
                "application/json",
                format!(
                    "{{\"status\":\"{}\",\"uptime_seconds\":{:.3},\"shards\":{},\
                     \"requests\":{},\"timeouts\":{},\"rejected\":{},\
                     \"traces_buffered\":{}}}\n",
                    if accepting { "ok" } else { "draining" },
                    m.elapsed.as_secs_f64(),
                    m.shards.len(),
                    m.requests(),
                    m.timeouts(),
                    m.rejected(),
                    m.flight.buffered,
                ),
            )
        }
        "/traces" => {
            let mut body = String::new();
            for t in inner.flight.recent(TRACES_LIMIT) {
                body.push_str(&uncertain_obs::request_trace_to_json(&t));
                body.push('\n');
            }
            ("200 OK", "application/x-ndjson", body)
        }
        _ if path.starts_with("/traces/") => {
            match path["/traces/".len()..]
                .parse::<u64>()
                .ok()
                .and_then(|id| inner.flight.get(id))
            {
                Some(t) => {
                    let mut body = uncertain_obs::request_trace_to_json(&t);
                    body.push('\n');
                    ("200 OK", "application/json", body)
                }
                None => (
                    "404 Not Found",
                    "application/json",
                    "{\"error\":\"trace not retained\"}\n".to_string(),
                ),
            }
        }
        _ => (
            "200 OK",
            "text/plain; version=0.0.4",
            inner.metrics().render_prometheus(),
        ),
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

fn serve_binary(
    mut stream: TcpStream,
    transport: ChannelTransport,
    cache: Arc<GraphCache>,
    net: Arc<NetStats>,
) {
    let Ok(write_stream) = stream.try_clone() else {
        return;
    };
    // Replies flow through this queue in submission order; a rendezvous
    // pre-filled with the error result gives failed admissions the same
    // path as real replies.
    let (reply_tx, reply_rx) = mpsc::channel::<(u64, ReplyReceiver)>();
    let writer_net = Arc::clone(&net);
    let writer = std::thread::spawn(move || {
        let mut w = BufWriter::new(write_stream);
        while let Ok((id, reply)) = reply_rx.recv() {
            let reply = reply.recv().unwrap_or_else(|_| {
                Reply::bare(Err(ServeError::Transport("shard worker exited".into())))
            });
            let payload = wire::encode_response(id, &reply.result, reply.trace_id);
            // Counted before the flush: once the peer can observe the
            // reply, a metrics snapshot must already include it.
            writer_net.frames_out.inc();
            if wire::write_frame(&mut w, &payload)
                .and_then(|()| w.flush())
                .is_err()
            {
                break;
            }
        }
    });

    let immediate = |err: ServeError| -> ReplyReceiver {
        let (tx, rx) = mpsc::sync_channel(1);
        let _ = tx.send(Reply::bare(Err(err)));
        rx
    };

    loop {
        let payload = match wire::read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => break,
            Err(_) => {
                // A framing-level failure (oversized prefix, mid-frame
                // EOF) leaves the stream unsynchronized: close it.
                net.wire_errors.inc();
                break;
            }
        };
        net.frames_in.inc();
        if payload.len() < 8 {
            // No correlation id to reply to.
            net.wire_errors.inc();
            break;
        }
        let id = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let reply = match decode_and_submit(&payload[8..], &transport, &cache) {
            Ok(rx) => rx,
            Err(e) => {
                if matches!(e, ServeError::Wire(_)) {
                    net.wire_errors.inc();
                }
                immediate(e)
            }
        };
        if reply_tx.send((id, reply)).is_err() {
            break;
        }
    }
    // Dropping our sender lets the writer drain whatever is still pending
    // and exit; joining it is what makes listener shutdown "drained".
    drop(reply_tx);
    let _ = writer.join();
}

/// Decodes one request body and admits it through the shard queues.
/// Admission failures (`QueueFull`, `Shutdown`) and decode failures come
/// back as the error the remote caller should see.
fn decode_and_submit(
    body: &[u8],
    transport: &ChannelTransport,
    cache: &GraphCache,
) -> Result<ReplyReceiver, ServeError> {
    let request = wire::decode_request_body(body)?;
    let kind = match request.body {
        WireBody::Evaluate { threshold, graph } => RequestKind::Evaluate {
            cond: cache.query_bool(&graph)?,
            threshold,
        },
        WireBody::Pr { threshold, graph } => RequestKind::Pr {
            cond: cache.query_bool(&graph)?,
            threshold,
        },
        WireBody::E { n, graph } => RequestKind::E {
            expr: cache.query_f64(&graph)?,
            n: usize::try_from(n)
                .map_err(|_| WireError::Malformed(format!("sample count {n} overflows")))?,
        },
        WireBody::Stats { n, graph } => RequestKind::Stats {
            expr: cache.query_f64(&graph)?,
            n: usize::try_from(n)
                .map_err(|_| WireError::Malformed(format!("sample count {n} overflows")))?,
        },
    };
    // The deadline crossed relative; anchor it here, at admission — the
    // queue wait counts against it exactly as it does in-process.
    let timeout = (request.deadline_ms > 0).then(|| Duration::from_millis(request.deadline_ms));
    transport.submit(Request {
        tenant: request.tenant,
        kind,
        timeout,
        strategy: request.strategy,
        trace: request.trace,
    })
}

// ---------------------------------------------------------------------------
// Client-side TCP transport
// ---------------------------------------------------------------------------

/// In-flight requests awaiting replies on one connection, keyed by
/// correlation id.
type PendingMap = Arc<Mutex<HashMap<u64, SyncSender<Reply>>>>;

struct ClientConn {
    /// Kept for the half-close on drop; all writes go through `writer`.
    stream: TcpStream,
    writer: Mutex<BufWriter<TcpStream>>,
    pending: PendingMap,
    alive: Arc<AtomicBool>,
    reader: Mutex<Option<JoinHandle<()>>>,
}

/// A [`Transport`] over one or more pipelined TCP connections to a
/// [`Service::listen`](crate::Service::listen) port.
///
/// Requests are written as frames tagged with a correlation id; a demux
/// thread per connection routes response frames back to their waiting
/// [`Pending`](crate::Pending) handles, so any number of requests can be
/// in flight at once. Tenants are hashed to a fixed connection of the
/// pool: combined with the server's per-connection in-order replies and
/// the shard queues' FIFO, a tenant's requests still execute — and
/// complete — in submission order, while distinct tenants spread across
/// sockets.
///
/// If a connection dies, every request in flight on it fails with
/// [`ServeError::Transport`], and later submits routed to it fail fast
/// the same way; other connections of the pool are unaffected.
pub struct TcpTransport {
    conns: Vec<ClientConn>,
    next_id: AtomicU64,
}

impl TcpTransport {
    /// One connection to `addr` (see [`TcpTransport::connect_pooled`]).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServeError> {
        Self::connect_pooled(addr, 1)
    }

    /// A pool of `connections` connections to `addr`, each with its own
    /// demux thread; tenants are hashed across the pool.
    pub fn connect_pooled<A: ToSocketAddrs>(
        addr: A,
        connections: usize,
    ) -> Result<Self, ServeError> {
        if connections == 0 {
            return Err(ServeError::Transport(
                "a transport pool needs at least one connection".into(),
            ));
        }
        let conns = (0..connections)
            .map(|_| Self::open(&addr))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            conns,
            next_id: AtomicU64::new(1),
        })
    }

    fn open<A: ToSocketAddrs>(addr: &A) -> Result<ClientConn, ServeError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect failed", e))?;
        let _ = stream.set_nodelay(true);
        let mut writer = BufWriter::new(stream.try_clone().map_err(|e| io_err("clone failed", e))?);
        writer
            .write_all(&MAGIC)
            .and_then(|()| writer.flush())
            .map_err(|e| io_err("preamble write failed", e))?;
        let pending: PendingMap = Arc::new(Mutex::new(HashMap::new()));
        let alive = Arc::new(AtomicBool::new(true));
        let reader = {
            let mut read_stream = stream.try_clone().map_err(|e| io_err("clone failed", e))?;
            let pending = Arc::clone(&pending);
            let alive = Arc::clone(&alive);
            std::thread::spawn(move || {
                while let Ok(Some(payload)) = wire::read_frame(&mut read_stream) {
                    let Ok((id, trace_id, result)) = wire::decode_response(&payload) else {
                        // An undecodable reply means the stream is no
                        // longer trustworthy.
                        break;
                    };
                    if let Some(tx) = pending.lock().expect("pending map lock").remove(&id) {
                        let _ = tx.send(Reply { result, trace_id });
                    }
                }
                alive.store(false, Ordering::SeqCst);
                // Fail everything still waiting on this socket.
                let drained: Vec<_> = pending
                    .lock()
                    .expect("pending map lock")
                    .drain()
                    .map(|(_, tx)| tx)
                    .collect();
                for tx in drained {
                    let _ = tx.send(Reply::bare(Err(ServeError::Transport(
                        "connection closed".into(),
                    ))));
                }
            })
        };
        Ok(ClientConn {
            stream,
            writer: Mutex::new(writer),
            pending,
            alive,
            reader: Mutex::new(Some(reader)),
        })
    }
}

impl Transport for TcpTransport {
    fn submit(&self, request: Request) -> Result<ReplyReceiver, ServeError> {
        let conn = &self.conns[(mix64(request.tenant) % self.conns.len() as u64) as usize];
        if !conn.alive.load(Ordering::SeqCst) {
            return Err(ServeError::Transport("connection closed".into()));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let payload = wire::encode_request(id, &request)?;
        debug_assert!(payload.len() <= MAX_FRAME);
        let (tx, rx) = mpsc::sync_channel(1);
        conn.pending
            .lock()
            .expect("pending map lock")
            .insert(id, tx);
        // The frame write is atomic under the writer lock; registering the
        // pending entry first means a fast reply can never miss its slot.
        let write = {
            let mut w = conn.writer.lock().expect("writer lock");
            wire::write_frame(&mut *w, &payload).and_then(|()| w.flush())
        };
        if let Err(e) = write {
            conn.pending.lock().expect("pending map lock").remove(&id);
            conn.alive.store(false, Ordering::SeqCst);
            let _ = conn.stream.shutdown(Shutdown::Both);
            return Err(io_err("request write failed", e));
        }
        Ok(rx)
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        for conn in &self.conns {
            let _ = conn.stream.shutdown(Shutdown::Both);
            if let Some(handle) = conn.reader.lock().expect("reader handle lock").take() {
                let _ = handle.join();
            }
        }
    }
}
