//! The service runtime: shard workers, per-shard session pools, request
//! execution, and lifecycle (start → drain → shutdown).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use uncertain_core::{
    CacheStats, Error, EvalConfig, EvalStrategy, HypothesisOutcome, ServeError, Session, Uncertain,
};
use uncertain_obs::{monotonic_ns, FlightRecorder, TraceContext, TraceLog};
use uncertain_stats::{StatsError, Summary};

use crate::client::ServeClient;
use crate::metrics::{NetStats, ServeMetrics, ShardStats};
use crate::net::Listener;
use crate::traced::{kind_name, RequestTracer};
use crate::transport::{Reply, ReplySlot, RequestKind, Response};
use crate::{mix64, tenant_seed, ServeConfig};

/// `e`/`stats` requests draw their samples in fixed chunks of this many
/// joint samples, checking the deadline between chunks. The chunk size is
/// part of the service's deterministic contract: each chunk is one session
/// query, so a request for `n` samples always consumes `ceil(n / CHUNK)`
/// query indices — regardless of shard count, timing, or whether the
/// request aborted halfway.
pub(crate) const SAMPLE_CHUNK: usize = 4096;

/// One queued request.
pub(crate) struct Job {
    pub(crate) tenant: u64,
    pub(crate) kind: RequestKind,
    pub(crate) deadline: Option<Instant>,
    /// Per-request strategy override; `None` inherits the service config.
    pub(crate) strategy: Option<EvalStrategy>,
    /// Wire-propagated tracing context; `None` is the dormant path.
    pub(crate) trace: Option<TraceContext>,
    /// Admission time, for the queue-wait histogram.
    pub(crate) enqueued: Instant,
    /// Admission on the span clock ([`monotonic_ns`]); `0` for requests
    /// that are not sampled (the stamp is skipped entirely).
    pub(crate) enqueued_ns: u64,
    /// Reply channel plus the optional completion hook of the admitting
    /// transport (the event-driven listener's wakeup; `None` in-process).
    pub(crate) reply: ReplySlot,
}

/// Seed salt separating a tenant's shadow-audit substream from its real
/// one: the audit session must never replay (or perturb) the tenant's
/// deterministic sample stream.
const AUDIT_SALT: u64 = 0x00A0_D175_1ADE_D0C5;

fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

// ---------------------------------------------------------------------------
// Per-shard session pool
// ---------------------------------------------------------------------------

struct PoolEntry {
    tenant: u64,
    session: Session,
    last_used: u64,
}

/// A bounded LRU pool of tenant sessions plus the query cursors of every
/// tenant this shard has ever served. The cursor map is what makes
/// eviction safe: a rebuilt session resumes at its stored cursor and draws
/// bitwise the stream the evicted one would have.
struct SessionPool {
    service_seed: u64,
    eval: EvalConfig,
    capacity: usize,
    entries: Vec<PoolEntry>,
    cursors: HashMap<u64, u64>,
    /// Hit/miss/eviction history of evicted sessions' plan caches
    /// (occupancy fields zeroed — an evicted cache holds nothing).
    retired_cache: CacheStats,
    evicted: u64,
    tick: u64,
}

impl SessionPool {
    fn new(service_seed: u64, eval: EvalConfig, capacity: usize) -> Self {
        Self {
            service_seed,
            eval,
            capacity,
            entries: Vec::with_capacity(capacity),
            cursors: HashMap::new(),
            retired_cache: CacheStats::default(),
            evicted: 0,
            tick: 0,
        }
    }

    /// The tenant's session, rebuilt at its stored cursor if it was
    /// evicted (or never seen). Evicts the least-recently-used entry when
    /// the pool is full.
    fn session(&mut self, tenant: u64) -> &mut Session {
        self.tick += 1;
        let tick = self.tick;
        if let Some(i) = self.entries.iter().position(|e| e.tenant == tenant) {
            self.entries[i].last_used = tick;
            return &mut self.entries[i].session;
        }
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("pool is non-empty when full");
            let entry = self.entries.swap_remove(lru);
            let cursor = entry
                .session
                .query_index()
                .expect("pool sessions are substream-seeded");
            self.cursors.insert(entry.tenant, cursor);
            let mut cache = entry.session.cache_stats();
            cache.entries = 0;
            cache.capacity = 0;
            self.retired_cache += cache;
            self.evicted += 1;
        }
        let mut session =
            Session::seeded(tenant_seed(self.service_seed, tenant)).with_config(self.eval);
        if let Some(&cursor) = self.cursors.get(&tenant) {
            session.resume_at(cursor);
        }
        self.entries.push(PoolEntry {
            tenant,
            session,
            last_used: tick,
        });
        &mut self.entries.last_mut().expect("just pushed").session
    }

    /// Plan-cache counters over the whole pool: live sessions plus the
    /// history of evicted ones.
    fn cache_totals(&self) -> CacheStats {
        self.retired_cache
            + self
                .entries
                .iter()
                .map(|e| e.session.cache_stats())
                .sum::<CacheStats>()
    }
}

// ---------------------------------------------------------------------------
// Shard worker
// ---------------------------------------------------------------------------

fn run_shard(
    rx: Receiver<Job>,
    stats: Arc<ShardStats>,
    config: ServeConfig,
    flight: Arc<FlightRecorder>,
    shard_index: usize,
) {
    let mut pool = SessionPool::new(config.seed, config.eval, config.sessions_per_shard.max(1));
    loop {
        let job = match rx.try_recv() {
            Ok(job) => job,
            Err(TryRecvError::Empty) => {
                // Publish before blocking: an idle shard's pool gauges
                // stay exact while it waits, so remote-only workloads
                // (where nothing else forces a request boundary here)
                // never scrape stale cache/session numbers.
                stats.publish_cache(pool.cache_totals(), pool.entries.len(), pool.evicted);
                // `recv` keeps returning queued jobs after every sender is
                // dropped, then errors: shutdown drains the queue for free.
                match rx.recv() {
                    Ok(job) => job,
                    Err(_) => break,
                }
            }
            Err(TryRecvError::Disconnected) => break,
        };
        stats.queue_depth.dec();
        stats.queue_wait_ns.record_duration(job.enqueued.elapsed());
        process(&mut pool, &stats, job, &flight, &config, shard_index);
        // Publish the pool-derived gauges at every request boundary: the
        // walk is O(pool size), a rounding error next to any request that
        // drew samples, and it keeps cache/session gauges current on a
        // shard that never goes idle.
        stats.publish_cache(pool.cache_totals(), pool.entries.len(), pool.evicted);
    }
    stats.publish_cache(pool.cache_totals(), pool.entries.len(), pool.evicted);
}

fn process(
    pool: &mut SessionPool,
    stats: &ShardStats,
    job: Job,
    flight: &FlightRecorder,
    config: &ServeConfig,
    shard_index: usize,
) {
    let Job {
        tenant,
        kind,
        deadline,
        strategy,
        trace,
        enqueued: _,
        enqueued_ns,
        reply,
    } = job;
    // Sampled requests get their tracer before the deadline check so a
    // request that expired *in the queue* still leaves a trace (errors are
    // exactly what the flight recorder wants to retain).
    let mut tracer = match trace {
        Some(ctx) if ctx.sampled => Some(RequestTracer::begin(
            ctx,
            tenant,
            kind_name(&kind),
            shard_index,
            enqueued_ns,
        )),
        _ => None,
    };
    // Expired in the queue: reject without touching the tenant's session
    // (no query index is consumed — the tenant's stream is exactly as if
    // the request was never admitted). Such a request contributes only
    // queue-wait time, not compile/sampling observations.
    let result = if expired(deadline) {
        Err(ServeError::Timeout)
    } else {
        let eval = match strategy {
            Some(s) => pool.eval.with_strategy(s),
            None => pool.eval,
        };
        let service_seed = pool.service_seed;
        let base_eval = pool.eval;
        let session = pool.session(tenant);
        // The request's effective config also becomes the session config
        // for its duration, so strategy-aware session queries (`try_e`,
        // `stats_with_provenance`) see the per-request override. Every
        // request sets it, so a previous override never leaks forward.
        session.set_config(eval);
        let work_started = Instant::now();
        let work_started_ns = if tracer.is_some() { monotonic_ns() } else { 0 };
        let builds_before = session.plan_build_ns();
        let result = match kind {
            RequestKind::Evaluate { cond, threshold } => {
                let r = decide(
                    session,
                    &cond,
                    threshold,
                    &eval,
                    deadline,
                    stats,
                    &mut tracer,
                );
                if let Some(tr) = tracer.as_mut() {
                    maybe_audit(
                        tr,
                        service_seed,
                        tenant,
                        &cond,
                        threshold,
                        base_eval,
                        config,
                    );
                }
                r.map(Response::Outcome)
            }
            RequestKind::Pr { cond, threshold } => {
                let r = decide(
                    session,
                    &cond,
                    threshold,
                    &eval,
                    deadline,
                    stats,
                    &mut tracer,
                );
                if let Some(tr) = tracer.as_mut() {
                    maybe_audit(
                        tr,
                        service_seed,
                        tenant,
                        &cond,
                        threshold,
                        base_eval,
                        config,
                    );
                }
                r.map(|o| Response::Decision(o.accepted))
            }
            RequestKind::E { expr, n } => {
                e_request(session, &expr, n, &eval, deadline, stats, &mut tracer)
                    .map(Response::Mean)
            }
            RequestKind::Stats { expr, n } => {
                stats_request(session, &expr, n, &eval, deadline, stats, &mut tracer)
                    .map(Response::Summary)
            }
        };
        // Split the request's execution time into its plan-compile share
        // (the session counts compile nanoseconds monotonically; the delta
        // is this request's share, 0 on a warm cache) and everything else
        // — which on this path is sampling.
        let total_ns = work_started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let compile_ns = session.plan_build_ns() - builds_before;
        stats.compile_ns.record(compile_ns);
        stats
            .sampling_ns
            .record(total_ns.saturating_sub(compile_ns));
        if let Some(tr) = tracer.as_mut() {
            tr.compile(work_started_ns, compile_ns);
        }
        result
    };
    if matches!(result, Err(ServeError::Timeout)) {
        stats.timeouts.inc();
    }
    stats.requests.inc();
    if let Some(tr) = tracer {
        flight.offer(tr.finish(&result));
    }
    // A dropped receiver means the caller gave up; the work is done either
    // way, and per-tenant stream state is already consistent.
    reply.send(Reply {
        result,
        trace_id: trace.map(|c| c.trace_id),
    });
}

/// Shadow-audits an exact decision: re-decides the same conditional on a
/// freshly seeded, sampling-only session drawn from the tenant's *audit*
/// substream ([`AUDIT_SALT`] keeps it disjoint from the tenant's real
/// stream, so auditing can never perturb tenant-visible results). Runs
/// only for traced requests whose verdict carried exact provenance, and
/// only for the deterministic `audit_fraction` slice of trace ids.
fn maybe_audit(
    tr: &mut RequestTracer,
    service_seed: u64,
    tenant: u64,
    cond: &Uncertain<bool>,
    threshold: f64,
    base_eval: EvalConfig,
    config: &ServeConfig,
) {
    let Some(outcome) = tr.outcome else { return };
    if !outcome.provenance.is_exact() || config.audit_fraction <= 0.0 {
        return;
    }
    // Deterministic selection from the trace id: the same traced request
    // is audited (or not) on every replay, independent of topology.
    let slice = (mix64(tr.trace_id()) >> 11) as f64 / (1u64 << 53) as f64;
    if slice >= config.audit_fraction {
        return;
    }
    let started = monotonic_ns();
    let eval = base_eval.with_strategy(EvalStrategy::SamplingOnly);
    let mut shadow =
        Session::seeded(mix64(tenant_seed(service_seed, tenant) ^ AUDIT_SALT)).with_config(eval);
    if let Ok(Some(sampled)) = shadow.try_evaluate_until(cond, threshold, &eval, |_| true) {
        // Only a *conclusive* sampled verdict can contradict the exact
        // one; an inconclusive SPRT is recorded but is not a mismatch.
        let mismatch = sampled.conclusive && sampled.accepted != outcome.accepted;
        tr.audit(started, &sampled, mismatch);
    }
}

/// Maps a core evaluation error onto the service's wire-expressible error
/// surface: parameter errors keep their payload, everything else (e.g.
/// `NotAnalytic` under an `ExactOnly` request) crosses as an invalid
/// request with its display text.
fn invalid(e: Error) -> ServeError {
    match e {
        Error::Stats(s) => ServeError::Invalid(s),
        other => ServeError::Invalid(StatsError::new(other.to_string())),
    }
}

/// One SPRT decision with cooperative deadline checks between batches.
/// Whether it completes or aborts, it consumes exactly one query index, so
/// later queries are bitwise unaffected by the abort point. Under an
/// [`EvalStrategy::Auto`]/[`EvalStrategy::ExactOnly`] config, recognized
/// analytic graphs decide in closed form with zero samples (counted in
/// the shard's `exact_decisions`).
fn decide(
    session: &mut Session,
    cond: &Uncertain<bool>,
    threshold: f64,
    eval: &EvalConfig,
    deadline: Option<Instant>,
    stats: &ShardStats,
    tracer: &mut Option<RequestTracer>,
) -> Result<HypothesisOutcome, ServeError> {
    // Traced decisions temporarily install a TraceLog recorder so the
    // SPRT's batch trajectory lands in the span as events. Recorders are
    // proven not to perturb sample streams (the runtime draws the same
    // batches with or without one), so the sampled values — and therefore
    // the verdict — are bitwise identical tracing on or off. The previous
    // recorder (if the embedder installed one) is restored afterwards.
    let (started_ns, log, prev) = match tracer {
        Some(_) => {
            let log = TraceLog::new();
            let prev = session.install_recorder(Box::new(log.clone()));
            (monotonic_ns(), Some(log), prev)
        }
        None => (0, None, None),
    };
    let decided = session.try_evaluate_until(cond, threshold, eval, |_| !expired(deadline));
    if let Some(log) = log {
        match prev {
            Some(p) => {
                session.install_recorder(p);
            }
            None => {
                session.take_recorder();
            }
        }
        if let Some(tr) = tracer.as_mut() {
            let traces = log.take();
            tr.decide(
                started_ns,
                session.last_dispatch(),
                traces.last(),
                decided.as_ref().ok().and_then(|o| o.as_ref()),
            );
        }
    }
    match decided {
        Err(e) => Err(invalid(e)),
        Ok(None) => Err(ServeError::Timeout),
        Ok(Some(outcome)) => {
            stats.decisions.inc();
            if outcome.provenance.is_exact() {
                stats.exact_decisions.inc();
            }
            stats.sprt_samples.add(outcome.samples as u64);
            Ok(outcome)
        }
    }
}

/// Routes an `e` request: closed-form mean with zero samples when the
/// strategy admits the analytic backend and the graph is recognized,
/// chunked sampling otherwise; `ExactOnly` on an unrecognized graph is an
/// invalid request.
fn e_request(
    session: &mut Session,
    expr: &Uncertain<f64>,
    n: usize,
    eval: &EvalConfig,
    deadline: Option<Instant>,
    stats: &ShardStats,
    tracer: &mut Option<RequestTracer>,
) -> Result<f64, ServeError> {
    if n == 0 {
        return Err(ServeError::Invalid(StatsError::new(
            "sample requests need n >= 1",
        )));
    }
    if eval.strategy != EvalStrategy::SamplingOnly && session.analyze_f64(expr).is_some() {
        let started_ns = tracer.as_ref().map(|_| monotonic_ns());
        let mean = session.try_e(expr, n).map_err(invalid)?;
        stats.exact_decisions.inc();
        if let Some(tr) = tracer.as_mut() {
            tr.exact(started_ns.unwrap_or(0));
        }
        return Ok(mean);
    }
    if eval.strategy == EvalStrategy::ExactOnly {
        return Err(invalid(Error::from(uncertain_core::NotAnalyticError {
            query: "e",
        })));
    }
    chunked_samples(session, expr, n, deadline, tracer)
        .map(|samples| samples.iter().sum::<f64>() / samples.len() as f64)
}

/// Routes a `stats` request like [`e_request`]; the exact path needs the
/// full shape, so it fires only for all-Gaussian laws.
fn stats_request(
    session: &mut Session,
    expr: &Uncertain<f64>,
    n: usize,
    eval: &EvalConfig,
    deadline: Option<Instant>,
    stats: &ShardStats,
    tracer: &mut Option<RequestTracer>,
) -> Result<Summary, ServeError> {
    if eval.strategy != EvalStrategy::SamplingOnly
        && session.analyze_f64(expr).is_some_and(|law| law.gaussian)
    {
        let started_ns = tracer.as_ref().map(|_| monotonic_ns());
        let outcome = session.stats_with_provenance(expr, n).map_err(invalid)?;
        stats.exact_decisions.inc();
        if let Some(tr) = tracer.as_mut() {
            tr.exact(started_ns.unwrap_or(0));
        }
        return Ok(outcome.summary);
    }
    if eval.strategy == EvalStrategy::ExactOnly {
        return Err(invalid(Error::from(uncertain_core::NotAnalyticError {
            query: "stats",
        })));
    }
    chunked_samples(session, expr, n, deadline, tracer)
        .and_then(|samples| Summary::from_slice(&samples).map_err(ServeError::Invalid))
}

/// Draws `n` joint samples in [`SAMPLE_CHUNK`]-sized queries, checking the
/// deadline between chunks. Completed or aborted, the session's cursor
/// ends at `start + ceil(n / SAMPLE_CHUNK)`: the abort point never leaks
/// into the tenant's later results.
fn chunked_samples(
    session: &mut Session,
    expr: &Uncertain<f64>,
    n: usize,
    deadline: Option<Instant>,
    tracer: &mut Option<RequestTracer>,
) -> Result<Vec<f64>, ServeError> {
    if n == 0 {
        return Err(ServeError::Invalid(uncertain_stats::StatsError::new(
            "sample requests need n >= 1",
        )));
    }
    let start = session
        .query_index()
        .expect("pool sessions are substream-seeded");
    let total_chunks = n.div_ceil(SAMPLE_CHUNK) as u64;
    let mut out = Vec::with_capacity(n);
    let mut remaining = n;
    let mut chunk_index = 0u64;
    while remaining > 0 {
        if expired(deadline) {
            session.resume_at(start + total_chunks);
            return Err(ServeError::Timeout);
        }
        let take = remaining.min(SAMPLE_CHUNK);
        let started_ns = tracer.as_ref().map(|_| monotonic_ns());
        out.extend(session.samples(expr, take));
        if let Some(tr) = tracer.as_mut() {
            tr.chunk(started_ns.unwrap_or(0), chunk_index, take as u64);
        }
        remaining -= take;
        chunk_index += 1;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------------

pub(crate) struct ShardHandle {
    /// `None` once shutdown has begun; taking the sender out is what lets
    /// the shard's `recv` loop terminate after draining.
    pub(crate) tx: Mutex<Option<SyncSender<Job>>>,
    pub(crate) stats: Arc<ShardStats>,
}

pub(crate) struct Inner {
    pub(crate) config: ServeConfig,
    pub(crate) shards: Vec<ShardHandle>,
    pub(crate) accepting: AtomicBool,
    pub(crate) started: Instant,
    /// Network-edge counters, shared with every [`Listener`] the service
    /// opens (all zeros when the service is used purely in-process).
    pub(crate) net: Arc<NetStats>,
    /// The service's flight recorder: shard workers offer completed
    /// traced requests; the `/traces` endpoints read retained ones.
    pub(crate) flight: Arc<FlightRecorder>,
}

impl Inner {
    pub(crate) fn metrics(&self) -> ServeMetrics {
        ServeMetrics {
            shards: self.shards.iter().map(|s| s.stats.snapshot()).collect(),
            net: self.net.snapshot(),
            flight: self.flight.stats(),
            elapsed: self.started.elapsed(),
        }
    }
}

/// A running sharded evaluation service. See the crate docs for the
/// architecture; [`Service::client`] hands out cheap cloneable handles,
/// [`Service::shutdown`] drains and stops it.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Spawns the shard workers and starts accepting requests.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards`, `config.queue_depth`, or
    /// `config.sessions_per_shard` is zero — a service with no workers, no
    /// queue, or no tenancy cannot serve anything.
    pub fn start(config: ServeConfig) -> Self {
        assert!(config.shards > 0, "a service needs at least one shard");
        assert!(config.queue_depth > 0, "request queues need depth >= 1");
        assert!(
            config.sessions_per_shard > 0,
            "shards need room for at least one session"
        );
        let flight = Arc::new(FlightRecorder::new(config.flight));
        let mut shards = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard_index in 0..config.shards {
            let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth);
            let stats = Arc::new(ShardStats::default());
            let worker_stats = Arc::clone(&stats);
            let worker_config = config.clone();
            let worker_flight = Arc::clone(&flight);
            workers.push(std::thread::spawn(move || {
                run_shard(rx, worker_stats, worker_config, worker_flight, shard_index)
            }));
            shards.push(ShardHandle {
                tx: Mutex::new(Some(tx)),
                stats,
            });
        }
        Self {
            inner: Arc::new(Inner {
                config,
                shards,
                accepting: AtomicBool::new(true),
                started: Instant::now(),
                net: Arc::new(NetStats::default()),
                flight,
            }),
            workers,
        }
    }

    /// A new client handle. Handles are independent and cheap; all of them
    /// route a given tenant to the same shard.
    pub fn client(&self) -> ServeClient {
        ServeClient::new(Arc::clone(&self.inner))
    }

    /// Starts accepting TCP clients on the config's `bind_addr` (use
    /// `"127.0.0.1:0"` to let the OS pick a free port, then
    /// [`Listener::local_addr`] to learn it).
    ///
    /// One socket speaks both protocols, sniffed from the connection
    /// preamble: the `UNC1` magic starts the binary request protocol (see
    /// [`TcpTransport`](crate::TcpTransport)), while `GET ` serves one
    /// plain-text Prometheus scrape of [`Service::metrics`] and closes.
    /// The listener's lifetime is independent of the service handle's
    /// methods: dropping (or [`Listener::shutdown`]ting) it stops the
    /// network edge, finishes in-flight replies, and leaves the service
    /// itself running.
    pub fn listen(&self) -> Result<Listener, ServeError> {
        Listener::bind(Arc::clone(&self.inner))
    }

    /// A live metrics snapshot. Request/decision counters are exact;
    /// pool-derived gauges (plan-cache counters, live/evicted sessions)
    /// refresh at every request boundary, so they lag at most the request
    /// currently executing. [`Service::shutdown`]'s snapshot is exact.
    pub fn metrics(&self) -> ServeMetrics {
        self.inner.metrics()
    }

    /// The most recent `limit` traces the flight recorder retained,
    /// newest last — the in-process form of `GET /traces`.
    pub fn traces(&self, limit: usize) -> Vec<Arc<uncertain_obs::RequestTrace>> {
        self.inner.flight.recent(limit)
    }

    /// Looks up one retained trace by id — the in-process form of
    /// `GET /traces/<id>`. `None` if the policy dropped it or the ring
    /// has since evicted it.
    pub fn trace(&self, trace_id: u64) -> Option<Arc<uncertain_obs::RequestTrace>> {
        self.inner.flight.get(trace_id)
    }

    /// Graceful shutdown: stops admitting, lets every already-queued
    /// request run to a real reply (in-flight work is drained, not
    /// dropped), joins the workers, and returns the final metrics.
    pub fn shutdown(mut self) -> ServeMetrics {
        self.stop();
        self.inner.metrics()
    }

    fn stop(&mut self) {
        self.inner.accepting.store(false, Ordering::SeqCst);
        for shard in &self.inner.shards {
            shard.tx.lock().expect("shard sender lock").take();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop();
    }
}
