//! Server-side span assembly for traced requests.
//!
//! A [`RequestTracer`] rides the shard worker's stack for the lifetime
//! of one sampled request and turns what the worker already knows —
//! admission time, plan-compile nanoseconds, the SPRT's
//! [`DecisionTrace`], chunk boundaries, the audit verdict — into the
//! span taxonomy the flight recorder retains:
//!
//! ```text
//! request                      admission → reply, tenant/kind/shard/status
//! ├─ queue                     admission → dequeue
//! ├─ compile                   plan-compile share (omitted on warm cache)
//! ├─ decide                    SPRT or exact verdict; sprt_batch events
//! │                            (dispatch = exact | kernel | closure)
//! ├─ sample_chunk × k          e/stats sampling path, one per 4096-chunk
//! ├─ exact                     e/stats analytic path (zero samples)
//! └─ audit                     shadow-sample check of an exact verdict
//! ```
//!
//! The tracer is plain owned data — building spans takes no locks; the
//! one synchronized step is `FlightRecorder::offer` at the end. Nothing
//! in this module runs for untraced requests.

use uncertain_core::{DecisionTrace, Dispatch, HypothesisOutcome, ServeError};
use uncertain_obs::{monotonic_ns, AttrValue, RequestTrace, SpanEvent, TraceBuilder, TraceContext};

use crate::transport::{RequestKind, Response};

/// Cap on `sprt_batch` events copied into a `decide` span. A
/// near-threshold decision can run thousands of batches; the trajectory
/// head is where the boundaries and estimate settle, and the span notes
/// how many batches were dropped.
const MAX_BATCH_EVENTS: usize = 128;

/// The stable span-attribute name of a request kind.
pub(crate) fn kind_name(kind: &RequestKind) -> &'static str {
    match kind {
        RequestKind::Evaluate { .. } => "evaluate",
        RequestKind::Pr { .. } => "pr",
        RequestKind::E { .. } => "e",
        RequestKind::Stats { .. } => "stats",
    }
}

/// The stable status string of a finished request.
pub(crate) fn status_of(result: &Result<Response, ServeError>) -> &'static str {
    match result {
        Ok(_) => "ok",
        Err(ServeError::Timeout) => "timeout",
        Err(ServeError::QueueFull) => "queue_full",
        Err(ServeError::Shutdown) => "shutdown",
        Err(ServeError::Invalid(_)) => "invalid",
        Err(ServeError::Wire(_)) => "wire",
        Err(ServeError::Transport(_)) => "transport",
        Err(_) => "error",
    }
}

/// Builds one traced request's span tree on the shard worker's stack.
pub(crate) struct RequestTracer {
    b: TraceBuilder,
    root: u64,
    tenant: u64,
    kind: &'static str,
    started_ns: u64,
    /// The decision outcome, stashed so the audit step can inspect the
    /// provenance/verdict after `kind` has been consumed.
    pub(crate) outcome: Option<HypothesisOutcome>,
    exact: bool,
    audit_mismatch: bool,
}

impl RequestTracer {
    /// Opens the `request` root (parented under the wire-propagated
    /// caller span) and its `queue` child covering admission → now.
    /// `enqueued_ns == 0` (an edge that didn't stamp admission) degrades
    /// to an empty queue span rather than a bogus epoch-length one.
    pub(crate) fn begin(
        ctx: TraceContext,
        tenant: u64,
        kind: &'static str,
        shard: usize,
        enqueued_ns: u64,
    ) -> Self {
        let mut b = TraceBuilder::new(ctx);
        let now = monotonic_ns();
        let admitted = if enqueued_ns > 0 {
            enqueued_ns.min(now)
        } else {
            now
        };
        let root = b.start_at("request", ctx.parent_span, admitted);
        b.attr(root, "tenant", AttrValue::U64(tenant));
        b.attr(root, "kind", AttrValue::Str(kind.into()));
        b.attr(root, "shard", AttrValue::U64(shard as u64));
        let queue = b.start_at("queue", root, admitted);
        b.end_at(queue, now);
        Self {
            b,
            root,
            tenant,
            kind,
            started_ns: admitted,
            outcome: None,
            exact: false,
            audit_mismatch: false,
        }
    }

    /// The id this trace is recorded (and echoed) under.
    pub(crate) fn trace_id(&self) -> u64 {
        self.b.trace_id()
    }

    /// Synthesizes the `compile` span from the session's monotonic
    /// plan-compile counter delta. Compilation happens at the front of
    /// the execution phase (the executor is built before sampling), so
    /// the span is anchored at the phase start. No span on a warm cache.
    pub(crate) fn compile(&mut self, work_start_ns: u64, compile_ns: u64) {
        if compile_ns == 0 {
            return;
        }
        let s = self.b.start_at("compile", self.root, work_start_ns);
        self.b.end_at(s, work_start_ns.saturating_add(compile_ns));
    }

    /// Records the `decide` span of an evaluate/pr request: dispatch
    /// backend, outcome attributes, and the SPRT trajectory as
    /// `sprt_batch` events. Batch *order and content* come verbatim from
    /// the [`DecisionTrace`] the stopping rule emitted; batch
    /// *timestamps* are interpolated evenly across the measured SPRT
    /// wall time (the trace records no per-batch clock).
    pub(crate) fn decide(
        &mut self,
        started_ns: u64,
        dispatch: Option<Dispatch>,
        trace: Option<&DecisionTrace>,
        outcome: Option<&HypothesisOutcome>,
    ) {
        let s = self.b.start_at("decide", self.root, started_ns);
        if let Some(d) = dispatch {
            self.b
                .attr(s, "dispatch", AttrValue::Str(d.as_str().into()));
        }
        if let Some(o) = outcome {
            self.outcome = Some(*o);
            self.exact |= o.provenance.is_exact();
            self.b.attr(s, "samples", AttrValue::U64(o.samples as u64));
            self.b.attr(s, "estimate", AttrValue::F64(o.estimate));
            self.b.attr(s, "accepted", AttrValue::Bool(o.accepted));
            self.b.attr(s, "conclusive", AttrValue::Bool(o.conclusive));
        }
        let end_ns = monotonic_ns().max(started_ns);
        if let Some(t) = trace {
            self.b
                .attr(s, "stopping", AttrValue::Str(t.stopping.as_str().into()));
            let total = t.batches.len();
            let span_ns = end_ns - started_ns;
            for (i, p) in t.batches.iter().take(MAX_BATCH_EVENTS).enumerate() {
                let at_ns =
                    started_ns + span_ns.saturating_mul(i as u64 + 1) / (total.max(1) as u64);
                self.b.event(
                    s,
                    SpanEvent {
                        name: "sprt_batch",
                        at_ns,
                        attrs: vec![
                            ("samples", AttrValue::U64(p.samples as u64)),
                            ("successes", AttrValue::U64(p.successes)),
                            ("llr", AttrValue::F64(p.llr)),
                        ],
                    },
                );
            }
            if total > MAX_BATCH_EVENTS {
                self.b.attr(
                    s,
                    "batches_dropped",
                    AttrValue::U64((total - MAX_BATCH_EVENTS) as u64),
                );
            }
        }
        self.b.end_at(s, end_ns);
    }

    /// Records the `exact` span of an `e`/`stats` request answered by
    /// the analytic backend with zero samples.
    pub(crate) fn exact(&mut self, started_ns: u64) {
        self.exact = true;
        let s = self.b.start_at("exact", self.root, started_ns);
        self.b.end(s);
    }

    /// Records one `sample_chunk` span of the chunked `e`/`stats` path.
    pub(crate) fn chunk(&mut self, started_ns: u64, index: u64, samples: u64) {
        let s = self.b.start_at("sample_chunk", self.root, started_ns);
        self.b.attr(s, "chunk", AttrValue::U64(index));
        self.b.attr(s, "samples", AttrValue::U64(samples));
        self.b.end(s);
    }

    /// Records the `audit` span: an exact verdict was re-decided by a
    /// shadow sampling session. A conclusive disagreement marks the
    /// whole trace `audit_mismatch`, which the flight recorder always
    /// retains.
    pub(crate) fn audit(&mut self, started_ns: u64, shadow: &HypothesisOutcome, mismatch: bool) {
        self.audit_mismatch |= mismatch;
        let s = self.b.start_at("audit", self.root, started_ns);
        self.b
            .attr(s, "shadow_accepted", AttrValue::Bool(shadow.accepted));
        self.b
            .attr(s, "shadow_conclusive", AttrValue::Bool(shadow.conclusive));
        self.b
            .attr(s, "shadow_samples", AttrValue::U64(shadow.samples as u64));
        self.b.attr(s, "mismatch", AttrValue::Bool(mismatch));
        self.b.end(s);
    }

    /// Closes the root span and packages the finished [`RequestTrace`]
    /// for the flight recorder.
    pub(crate) fn finish(mut self, result: &Result<Response, ServeError>) -> RequestTrace {
        let status = status_of(result);
        self.b
            .attr(self.root, "status", AttrValue::Str(status.into()));
        self.b.end(self.root);
        let mut out = RequestTrace::new(self.b.trace_id(), self.tenant, self.kind);
        out.status = status;
        out.error = result.is_err();
        out.exact = self.exact;
        out.audit_mismatch = self.audit_mismatch;
        out.started_ns = self.started_ns;
        let spans = self.b.finish();
        out.total_ns = spans
            .first()
            .map(|root| root.end_ns.saturating_sub(root.start_ns))
            .unwrap_or(0);
        out.spans = spans;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_builds_a_connected_tree() {
        let ctx = TraceContext::root();
        let t0 = monotonic_ns();
        let mut tr = RequestTracer::begin(ctx.child(5), 42, "evaluate", 1, t0);
        tr.compile(t0, 1_000);
        tr.decide(t0, Some(Dispatch::Kernel), None, None);
        let trace = tr.finish(&Ok(Response::Decision(true)));
        assert_eq!(trace.trace_id, ctx.trace_id);
        assert_eq!(trace.tenant, 42);
        assert_eq!(trace.status, "ok");
        assert!(!trace.error);
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["request", "queue", "compile", "decide"]);
        // The root nests under the wire parent; everything else under it.
        assert_eq!(trace.spans[0].parent, 5);
        for s in &trace.spans[1..] {
            assert_eq!(s.parent, trace.spans[0].id);
        }
    }

    #[test]
    fn errors_and_status_strings_are_recorded() {
        let tr = RequestTracer::begin(TraceContext::root(), 1, "e", 0, 0);
        let trace = tr.finish(&Err(ServeError::Timeout));
        assert_eq!(trace.status, "timeout");
        assert!(trace.error);
        assert_eq!(status_of(&Err(ServeError::QueueFull)), "queue_full");
        assert_eq!(status_of(&Ok(Response::Mean(0.0))), "ok");
    }

    #[test]
    fn batch_events_are_capped_not_unbounded() {
        use uncertain_core::{StoppingReason, TracePoint};
        let batches: Vec<TracePoint> = (1..=500)
            .map(|i| TracePoint {
                samples: i * 64,
                successes: (i * 32) as u64,
                llr: 0.0,
            })
            .collect();
        let dtrace = DecisionTrace {
            root: uncertain_core::Uncertain::bernoulli(0.5).unwrap().id(),
            threshold: 0.5,
            upper: 1.0,
            lower: -1.0,
            batches,
            samples: 32_000,
            successes: 16_000,
            estimate: 0.5,
            stopping: StoppingReason::BudgetCapped,
            elapsed: std::time::Duration::from_millis(1),
        };
        let mut tr = RequestTracer::begin(TraceContext::root(), 1, "pr", 0, 0);
        tr.decide(monotonic_ns(), Some(Dispatch::Closure), Some(&dtrace), None);
        let trace = tr.finish(&Ok(Response::Decision(false)));
        let decide = trace.spans.iter().find(|s| s.name == "decide").unwrap();
        assert_eq!(decide.events.len(), MAX_BATCH_EVENTS);
        assert!(decide
            .attrs
            .iter()
            .any(|(k, v)| *k == "batches_dropped" && *v == AttrValue::U64(372)));
    }
}
