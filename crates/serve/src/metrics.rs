//! Service observability, built on the `uncertain-obs` primitives:
//! lock-light per-shard counters/gauges, log-bucketed latency histograms
//! splitting each request into queue-wait / plan-compile / sampling time,
//! and the aggregated snapshot handed to callers — renderable as a
//! Prometheus scrape body via [`ServeMetrics::render_prometheus`].

use std::time::Duration;
use uncertain_core::CacheStats;
use uncertain_obs::{Counter, FlightStats, Gauge, HistogramSnapshot, LogHistogram, PromWriter};

/// Shared mutable metrics of one shard. The shard worker owns the write
/// side (except `queue_depth` and `rejected`, maintained at the client
/// edge); snapshots read with relaxed ordering — metrics are advisory.
#[derive(Debug, Default)]
pub(crate) struct ShardStats {
    pub(crate) queue_depth: Gauge,
    pub(crate) requests: Counter,
    pub(crate) decisions: Counter,
    pub(crate) exact_decisions: Counter,
    pub(crate) sprt_samples: Counter,
    pub(crate) timeouts: Counter,
    pub(crate) rejected: Counter,
    // Pool-derived gauges, published by the shard worker from snapshots.
    cache_hits: Gauge,
    cache_misses: Gauge,
    cache_evictions: Gauge,
    cache_entries: Gauge,
    cache_capacity: Gauge,
    sessions_live: Gauge,
    sessions_evicted: Gauge,
    /// Time from admission to dequeue, per request.
    pub(crate) queue_wait_ns: LogHistogram,
    /// Plan-compilation time per executed request (0 on a warm cache).
    pub(crate) compile_ns: LogHistogram,
    /// Execution time net of compilation, per executed request.
    pub(crate) sampling_ns: LogHistogram,
}

impl ShardStats {
    /// Publishes the shard's pool-wide plan-cache totals.
    pub(crate) fn publish_cache(&self, cache: CacheStats, live: usize, evicted: u64) {
        self.cache_hits.set(cache.hits as i64);
        self.cache_misses.set(cache.misses as i64);
        self.cache_evictions.set(cache.evictions as i64);
        self.cache_entries.set(cache.entries as i64);
        self.cache_capacity.set(cache.capacity as i64);
        self.sessions_live.set(live as i64);
        self.sessions_evicted.set(evicted as i64);
    }

    pub(crate) fn snapshot(&self) -> ShardMetrics {
        ShardMetrics {
            queue_depth: self.queue_depth.get().max(0) as usize,
            requests: self.requests.get(),
            decisions: self.decisions.get(),
            exact_decisions: self.exact_decisions.get(),
            sprt_samples: self.sprt_samples.get(),
            timeouts: self.timeouts.get(),
            rejected: self.rejected.get(),
            cache: CacheStats {
                hits: self.cache_hits.get() as u64,
                misses: self.cache_misses.get() as u64,
                evictions: self.cache_evictions.get() as u64,
                entries: self.cache_entries.get() as usize,
                capacity: self.cache_capacity.get() as usize,
            },
            sessions_live: self.sessions_live.get() as usize,
            sessions_evicted: self.sessions_evicted.get() as u64,
            queue_wait: self.queue_wait_ns.snapshot(),
            compile: self.compile_ns.snapshot(),
            sampling: self.sampling_ns.snapshot(),
        }
    }
}

/// Shared mutable counters of the service's network edge, maintained by
/// [`Listener`](crate::Listener) connection handlers on accept/close and
/// per frame. All zeros for a service never exposed on a socket.
#[derive(Debug, Default)]
pub(crate) struct NetStats {
    /// Connections currently open (binary and HTTP alike).
    pub(crate) connections_open: Gauge,
    pub(crate) accepted: Counter,
    pub(crate) closed: Counter,
    pub(crate) frames_in: Counter,
    pub(crate) frames_out: Counter,
    pub(crate) wire_errors: Counter,
    pub(crate) http_scrapes: Counter,
    /// Accept pauses forced by fd exhaustion (`EMFILE`/`ENFILE`).
    pub(crate) accept_stalls: Counter,
    /// Times an event loop woke from its poll wait with work to do.
    pub(crate) event_loop_wakeups: Counter,
    /// Socket reads that left a frame incomplete in a connection's
    /// incremental decoder.
    pub(crate) partial_reads: Counter,
    /// Write flushes that coalesced two or more reply frames into one
    /// syscall.
    pub(crate) writev_batches: Counter,
    /// Connections handed to an event loop and registered with its
    /// poller, lifetime.
    pub(crate) connections_registered: Counter,
}

impl NetStats {
    pub(crate) fn snapshot(&self) -> NetMetrics {
        NetMetrics {
            connections_open: self.connections_open.get().max(0) as usize,
            accepted: self.accepted.get(),
            closed: self.closed.get(),
            frames_in: self.frames_in.get(),
            frames_out: self.frames_out.get(),
            wire_errors: self.wire_errors.get(),
            http_scrapes: self.http_scrapes.get(),
            accept_stalls: self.accept_stalls.get(),
            event_loop_wakeups: self.event_loop_wakeups.get(),
            partial_reads: self.partial_reads.get(),
            writev_batches: self.writev_batches.get(),
            connections_registered: self.connections_registered.get(),
        }
    }
}

/// Point-in-time counters of the service's network edge. Published on
/// connection accept/close events and per decoded/encoded frame, so they
/// are exact whenever no frame is mid-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetMetrics {
    /// TCP connections currently open.
    pub connections_open: usize,
    /// Connections accepted over the listener's lifetime.
    pub accepted: u64,
    /// Connections closed over the listener's lifetime.
    pub closed: u64,
    /// Request frames decoded off sockets.
    pub frames_in: u64,
    /// Response frames written to sockets.
    pub frames_out: u64,
    /// Frames rejected as malformed, truncated, or unsupported.
    pub wire_errors: u64,
    /// Prometheus scrapes served over the HTTP side of the port.
    pub http_scrapes: u64,
    /// Accept pauses forced by fd exhaustion (`EMFILE`/`ENFILE`): each
    /// stall backs the accept loop off instead of killing it.
    pub accept_stalls: u64,
    /// Times an event loop woke from its poll wait with work to do
    /// (socket readiness, a completed reply, or a shutdown signal).
    pub event_loop_wakeups: u64,
    /// Socket reads that ended with a frame still incomplete in the
    /// connection's incremental decoder — the partial reads the
    /// event-driven decode path exists to tolerate.
    pub partial_reads: u64,
    /// Write flushes that coalesced two or more pipelined reply frames
    /// into a single syscall.
    pub writev_batches: u64,
    /// Connections registered with an event loop's poller, lifetime.
    pub connections_registered: u64,
}

/// Point-in-time counters of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Requests currently queued (admitted, not yet dequeued).
    pub queue_depth: usize,
    /// Requests answered, whatever the outcome.
    pub requests: u64,
    /// SPRT decisions completed (`evaluate`/`pr` requests that ran to a
    /// verdict rather than timing out or being rejected as invalid).
    pub decisions: u64,
    /// Requests answered by the analytic backend in closed form with
    /// zero samples (decisions plus exact `e`/`stats` replies), under an
    /// `Auto`/`ExactOnly` strategy.
    pub exact_decisions: u64,
    /// Joint samples drawn by completed SPRT decisions.
    pub sprt_samples: u64,
    /// Requests that expired — in the queue or mid-decision.
    pub timeouts: u64,
    /// Requests refused at the edge because the queue was full.
    pub rejected: u64,
    /// Plan-cache counters summed over the shard's session pool (live
    /// sessions plus the history of evicted ones).
    pub cache: CacheStats,
    /// Tenant sessions currently resident.
    pub sessions_live: usize,
    /// Tenant sessions evicted over the shard's lifetime.
    pub sessions_evicted: u64,
    /// Admission-to-dequeue latency, per request (nanoseconds).
    pub queue_wait: HistogramSnapshot,
    /// Plan-compilation time per executed request (nanoseconds; 0 when
    /// every plan came from the session's cache).
    pub compile: HistogramSnapshot,
    /// Execution time net of compilation, per executed request
    /// (nanoseconds) — SPRT sampling for `evaluate`/`pr`, chunked
    /// drawing for `e`/`stats`.
    pub sampling: HistogramSnapshot,
}

/// A service-wide metrics snapshot: per-shard counters plus the service
/// uptime they were collected over.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardMetrics>,
    /// Network-edge counters (all zeros for an in-process-only service).
    pub net: NetMetrics,
    /// Flight-recorder activity (all zeros when no request ever carried
    /// a sampled trace context).
    pub flight: FlightStats,
    /// Time since [`Service::start`](crate::Service::start).
    pub elapsed: Duration,
}

impl ServeMetrics {
    /// Total requests answered.
    pub fn requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Total SPRT decisions completed.
    pub fn decisions(&self) -> u64 {
        self.shards.iter().map(|s| s.decisions).sum()
    }

    /// Total requests answered analytically with zero samples.
    pub fn exact_decisions(&self) -> u64 {
        self.shards.iter().map(|s| s.exact_decisions).sum()
    }

    /// Total joint samples drawn by completed decisions.
    pub fn sprt_samples(&self) -> u64 {
        self.shards.iter().map(|s| s.sprt_samples).sum()
    }

    /// Total expired requests.
    pub fn timeouts(&self) -> u64 {
        self.shards.iter().map(|s| s.timeouts).sum()
    }

    /// Total requests shed by full queues.
    pub fn rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected).sum()
    }

    /// Aggregate decision throughput over the service's lifetime.
    pub fn decisions_per_sec(&self) -> f64 {
        self.decisions() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Plan-cache counters summed across every shard's pool.
    pub fn cache(&self) -> CacheStats {
        self.shards.iter().map(|s| s.cache).sum()
    }

    /// Fraction of plan-cache lookups served without recompiling,
    /// service-wide (`0.0` before any lookup happened).
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache().hit_rate()
    }

    /// Per-shard queue occupancy, in shard order.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.queue_depth).collect()
    }

    /// Tenant sessions resident across all shards.
    pub fn sessions_live(&self) -> usize {
        self.shards.iter().map(|s| s.sessions_live).sum()
    }

    /// Tenant sessions evicted across all shards, lifetime.
    pub fn sessions_evicted(&self) -> u64 {
        self.shards.iter().map(|s| s.sessions_evicted).sum()
    }

    fn pooled(&self, pick: impl Fn(&ShardMetrics) -> HistogramSnapshot) -> HistogramSnapshot {
        self.shards
            .iter()
            .map(&pick)
            .fold(HistogramSnapshot::default(), |acc, s| acc.merge(&s))
    }

    /// Admission-to-dequeue latency pooled over shards (`count`/`sum`/
    /// `max` exact; quantiles are per-shard maxima, a conservative upper
    /// estimate).
    pub fn queue_wait(&self) -> HistogramSnapshot {
        self.pooled(|s| s.queue_wait)
    }

    /// Plan-compile time per executed request, pooled over shards.
    pub fn compile(&self) -> HistogramSnapshot {
        self.pooled(|s| s.compile)
    }

    /// Execution time net of compilation, pooled over shards.
    pub fn sampling(&self) -> HistogramSnapshot {
        self.pooled(|s| s.sampling)
    }

    /// The snapshot as a Prometheus text-exposition scrape body
    /// (format 0.0.4): counters and gauges service-wide, queue depth as
    /// one series per shard, and the three request-phase latency
    /// histograms as summaries with p50/p90/p99/max quantiles.
    pub fn render_prometheus(&self) -> String {
        let cache = self.cache();
        let mut w = PromWriter::new();
        w.counter(
            "uncertain_requests_total",
            "Requests answered, whatever the outcome.",
            self.requests(),
        );
        w.counter(
            "uncertain_decisions_total",
            "SPRT decisions run to a verdict.",
            self.decisions(),
        );
        w.counter(
            "uncertain_decisions_exact_total",
            "Requests answered by the analytic backend with zero samples.",
            self.exact_decisions(),
        );
        w.counter(
            "uncertain_sprt_samples_total",
            "Joint samples drawn by completed SPRT decisions.",
            self.sprt_samples(),
        );
        w.counter(
            "uncertain_timeouts_total",
            "Requests that expired in the queue or mid-computation.",
            self.timeouts(),
        );
        w.counter(
            "uncertain_rejected_total",
            "Requests refused at admission because a queue was full.",
            self.rejected(),
        );
        w.counter(
            "uncertain_plan_cache_hits_total",
            "Plan-cache lookups served without recompiling.",
            cache.hits,
        );
        w.counter(
            "uncertain_plan_cache_misses_total",
            "Plan-cache lookups that compiled a fresh plan.",
            cache.misses,
        );
        w.counter(
            "uncertain_plan_cache_evictions_total",
            "Compiled plans dropped by cache pressure.",
            cache.evictions,
        );
        w.gauge(
            "uncertain_plan_cache_hit_rate",
            "Fraction of plan-cache lookups served without recompiling.",
            self.cache_hit_rate(),
        );
        w.gauge(
            "uncertain_plan_cache_entries",
            "Compiled plans currently resident across live sessions.",
            cache.entries as f64,
        );
        w.gauge(
            "uncertain_sessions_live",
            "Tenant sessions currently resident.",
            self.sessions_live() as f64,
        );
        w.counter(
            "uncertain_sessions_evicted_total",
            "Tenant sessions evicted from shard pools.",
            self.sessions_evicted(),
        );
        w.gauge_per(
            "uncertain_queue_depth",
            "Requests admitted but not yet dequeued.",
            "shard",
            &self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| (i.to_string(), s.queue_depth as f64))
                .collect::<Vec<_>>(),
        );
        w.summary(
            "uncertain_queue_wait_ns",
            "Admission-to-dequeue latency per request.",
            &self.queue_wait(),
        );
        w.summary(
            "uncertain_compile_ns",
            "Plan-compilation time per executed request.",
            &self.compile(),
        );
        w.summary(
            "uncertain_sampling_ns",
            "Execution time net of compilation per executed request.",
            &self.sampling(),
        );
        w.gauge(
            "uncertain_net_connections",
            "TCP connections currently open.",
            self.net.connections_open as f64,
        );
        w.counter(
            "uncertain_net_accepted_total",
            "TCP connections accepted.",
            self.net.accepted,
        );
        w.counter(
            "uncertain_net_closed_total",
            "TCP connections closed.",
            self.net.closed,
        );
        w.counter(
            "uncertain_net_frames_in_total",
            "Request frames decoded off sockets.",
            self.net.frames_in,
        );
        w.counter(
            "uncertain_net_frames_out_total",
            "Response frames written to sockets.",
            self.net.frames_out,
        );
        w.counter(
            "uncertain_net_wire_errors_total",
            "Frames rejected as malformed, truncated, or unsupported.",
            self.net.wire_errors,
        );
        w.counter(
            "uncertain_net_http_scrapes_total",
            "Prometheus scrapes served over the metrics endpoint.",
            self.net.http_scrapes,
        );
        w.counter(
            "uncertain_net_accept_stalls_total",
            "Accept pauses forced by fd exhaustion (EMFILE/ENFILE).",
            self.net.accept_stalls,
        );
        w.counter(
            "uncertain_net_event_loop_wakeups_total",
            "Event-loop poll wakeups with work to do.",
            self.net.event_loop_wakeups,
        );
        w.counter(
            "uncertain_net_partial_reads_total",
            "Socket reads that left a frame incomplete in the decoder.",
            self.net.partial_reads,
        );
        w.counter(
            "uncertain_net_writev_batches_total",
            "Write flushes that coalesced multiple reply frames.",
            self.net.writev_batches,
        );
        w.counter(
            "uncertain_net_connections_registered_total",
            "Connections registered with an event loop's poller.",
            self.net.connections_registered,
        );
        w.counter(
            "uncertain_traces_offered_total",
            "Completed traced requests offered to the flight recorder.",
            self.flight.offered,
        );
        w.counter(
            "uncertain_traces_retained_total",
            "Traces the tail-based retention policy kept.",
            self.flight.retained,
        );
        w.gauge(
            "uncertain_traces_buffered",
            "Traces currently buffered in the flight recorder's ring.",
            self.flight.buffered as f64,
        );
        w.gauge(
            "uncertain_uptime_seconds",
            "Time since the service started.",
            self.elapsed.as_secs_f64(),
        );
        w.finish()
    }
}
