//! Service observability: lock-free per-shard counters and the aggregated
//! snapshot handed to callers.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;
use uncertain_core::CacheStats;

/// Shared mutable counters of one shard. The shard worker owns the write
/// side (except `queue_depth` and `rejected`, maintained at the client
/// edge); snapshots read with relaxed ordering — metrics are advisory.
#[derive(Default)]
pub(crate) struct ShardStats {
    pub(crate) queue_depth: AtomicUsize,
    pub(crate) requests: AtomicU64,
    pub(crate) decisions: AtomicU64,
    pub(crate) sprt_samples: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_misses: AtomicU64,
    pub(crate) cache_evictions: AtomicU64,
    pub(crate) cache_entries: AtomicU64,
    pub(crate) cache_capacity: AtomicU64,
    pub(crate) sessions_live: AtomicUsize,
    pub(crate) sessions_evicted: AtomicU64,
}

impl ShardStats {
    /// Publishes the shard's pool-wide plan-cache totals.
    pub(crate) fn publish_cache(&self, cache: CacheStats, live: usize, evicted: u64) {
        self.cache_hits.store(cache.hits, Ordering::Relaxed);
        self.cache_misses.store(cache.misses, Ordering::Relaxed);
        self.cache_evictions
            .store(cache.evictions, Ordering::Relaxed);
        self.cache_entries
            .store(cache.entries as u64, Ordering::Relaxed);
        self.cache_capacity
            .store(cache.capacity as u64, Ordering::Relaxed);
        self.sessions_live.store(live, Ordering::Relaxed);
        self.sessions_evicted.store(evicted, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ShardMetrics {
        ShardMetrics {
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            decisions: self.decisions.load(Ordering::Relaxed),
            sprt_samples: self.sprt_samples.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            cache: CacheStats {
                hits: self.cache_hits.load(Ordering::Relaxed),
                misses: self.cache_misses.load(Ordering::Relaxed),
                evictions: self.cache_evictions.load(Ordering::Relaxed),
                entries: self.cache_entries.load(Ordering::Relaxed) as usize,
                capacity: self.cache_capacity.load(Ordering::Relaxed) as usize,
            },
            sessions_live: self.sessions_live.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time counters of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Requests currently queued (admitted, not yet dequeued).
    pub queue_depth: usize,
    /// Requests answered, whatever the outcome.
    pub requests: u64,
    /// SPRT decisions completed (`evaluate`/`pr` requests that ran to a
    /// verdict rather than timing out or being rejected as invalid).
    pub decisions: u64,
    /// Joint samples drawn by completed SPRT decisions.
    pub sprt_samples: u64,
    /// Requests that expired — in the queue or mid-decision.
    pub timeouts: u64,
    /// Requests refused at the edge because the queue was full.
    pub rejected: u64,
    /// Plan-cache counters summed over the shard's session pool (live
    /// sessions plus the history of evicted ones).
    pub cache: CacheStats,
    /// Tenant sessions currently resident.
    pub sessions_live: usize,
    /// Tenant sessions evicted over the shard's lifetime.
    pub sessions_evicted: u64,
}

/// A service-wide metrics snapshot: per-shard counters plus the service
/// uptime they were collected over.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardMetrics>,
    /// Time since [`Service::start`](crate::Service::start).
    pub elapsed: Duration,
}

impl ServeMetrics {
    /// Total requests answered.
    pub fn requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Total SPRT decisions completed.
    pub fn decisions(&self) -> u64 {
        self.shards.iter().map(|s| s.decisions).sum()
    }

    /// Total joint samples drawn by completed decisions.
    pub fn sprt_samples(&self) -> u64 {
        self.shards.iter().map(|s| s.sprt_samples).sum()
    }

    /// Total expired requests.
    pub fn timeouts(&self) -> u64 {
        self.shards.iter().map(|s| s.timeouts).sum()
    }

    /// Total requests shed by full queues.
    pub fn rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected).sum()
    }

    /// Aggregate decision throughput over the service's lifetime.
    pub fn decisions_per_sec(&self) -> f64 {
        self.decisions() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Plan-cache counters summed across every shard's pool.
    pub fn cache(&self) -> CacheStats {
        self.shards.iter().map(|s| s.cache).sum()
    }

    /// Fraction of plan-cache lookups served without recompiling,
    /// service-wide (`0.0` before any lookup happened).
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache().hit_rate()
    }

    /// Per-shard queue occupancy, in shard order.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.queue_depth).collect()
    }
}
