//! The binary frame format of the TCP transport.
//!
//! A connection opens with the 4-byte magic `UNC1`, then carries
//! length-prefixed frames in both directions: `[len: u32 LE][payload]`,
//! with `len` capped at [`MAX_FRAME`] so a hostile length prefix cannot
//! make the peer allocate unboundedly.
//!
//! **Request payload** (client → server):
//!
//! ```text
//! [id: u64]                correlation id, echoed in the response
//! [tenant: u64]            whose seeded session executes the request
//! [deadline_ms: u64]       relative deadline; 0 = use the server default
//! [strategy: u8]           0 inherit | 1 Auto | 2 SamplingOnly | 3 ExactOnly
//! [trace: u8]              0 none | bit0 context follows, bit1 sampled
//!   [trace_id: u64]        present iff bit0 — the trace this request joins
//!   [parent_span: u64]     present iff bit0 — caller span to nest under
//! [kind: u8]               1 Evaluate | 2 Pr | 3 E | 4 Stats
//! [threshold: f64]         kinds 1–2
//! [n: u64]                 kinds 3–4
//! [graph bytes]            a `WireGraph` encoding, to end of payload
//! ```
//!
//! The deadline crosses the wire *relative* (milliseconds from admission),
//! not as a wall-clock instant, so client and server clocks never need to
//! agree; the server anchors it at admission, feeding the same cooperative
//! deadline path in-process requests use.
//!
//! **Response payload** (server → client):
//!
//! ```text
//! [id: u64]
//! [trace: u8]              0 none | 1 trace id follows
//!   [trace_id: u64]        present iff 1 — echo of the request's trace id
//! [status: u8]
//! status 0 (ok):    [kind: u8][typed payload]         — see `Response`
//! status 1..=7:     a `ServeError`, some with a string payload
//! ```
//!
//! The trace context rides the request so one trace id names the whole
//! journey of a request — client, wire, shard — and the reply echoes it
//! so the client can fetch the server-side span tree from `/traces/<id>`
//! without any side channel.
//!
//! Strings are `[len: u32 LE][utf8]`. Every decoder in this module returns
//! [`WireError`] instead of panicking, whatever the bytes; the graph
//! payload gets the same treatment from `WireGraph::from_bytes`.

use std::io::{self, Read, Write};

use uncertain_core::{
    EvalStrategy, ExactMethod, HypothesisOutcome, Provenance, ServeError, WireGraph,
};
use uncertain_obs::TraceContext;
use uncertain_stats::{StatsError, Summary};

use crate::transport::{Request, RequestKind, Response};
use uncertain_core::WireError;

/// Connection preamble of the binary protocol. An HTTP `GET ` in its place
/// routes the connection to the metrics endpoint instead.
pub const MAGIC: [u8; 4] = *b"UNC1";

/// Upper bound on one frame's payload. Large enough for a `stats` reply
/// carrying ~2M observations; small enough that a corrupt length prefix
/// cannot balloon memory.
pub const MAX_FRAME: usize = 16 << 20;

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one `[len][payload]` frame. Does not flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME, "oversized outbound frame");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame. `Ok(None)` is a clean close (EOF at a frame
/// boundary); EOF mid-frame or an oversized length prefix is an error.
pub(crate) fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let mut rest = [0u8; 3];
    r.read_exact(&mut rest)?;
    let len = u32::from_le_bytes([first[0], rest[0], rest[1], rest[2]]) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Incremental twin of `read_frame` for nonblocking sockets.
///
/// A blocking reader can `read_exact` its way through a frame; an
/// event-loop connection instead receives bytes in whatever chunks the
/// kernel delivers and must resume mid-frame across poll wakeups. Bytes
/// go in via [`push`](Self::push); complete frames come out of
/// [`next_frame`](Self::next_frame), which applies the same [`MAX_FRAME`]
/// cap as the blocking reader — and applies it to the *length prefix*,
/// before any payload arrives, so a hostile header is rejected without
/// buffering a byte of its claimed payload.
///
/// The split between arriving chunks is invisible in the output: for any
/// byte stream, the sequence of frames (and the error, if the stream is
/// corrupt) is identical to what repeated `read_frame` calls would
/// produce. A proptest in this module pins that equivalence over
/// arbitrary split points.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly received bytes to the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete frame payload, if the buffered bytes
    /// hold one. `Ok(None)` means "need more bytes"; an error means the
    /// stream is corrupt (oversized length prefix) and the connection
    /// should be dropped — the decoder makes no progress past it.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        let hdr = &self.buf[self.pos..self.pos + 4];
        let len = u32::from_le_bytes(hdr.try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            return Err(WireError::Malformed(format!(
                "frame length {len} exceeds the {MAX_FRAME}-byte cap"
            )));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let start = self.pos + 4;
        let payload = self.buf[start..start + len].to_vec();
        self.pos = start + len;
        self.compact();
        Ok(Some(payload))
    }

    /// Whether undecoded bytes are buffered — i.e. the stream stopped
    /// mid-frame. EOF with `mid_frame()` is a protocol error (the peer
    /// died inside a frame); EOF without is a clean close, exactly
    /// mirroring `read_frame`'s `Ok(None)`-vs-error distinction.
    pub fn mid_frame(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn compact(&mut self) {
        // Reclaim consumed prefix bytes once they dominate the buffer, so
        // a long-lived connection doesn't grow its buffer without bound
        // while amortizing the memmove across many frames.
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

// ---------------------------------------------------------------------------
// Byte-level reader (the serve-side twin of core's graph reader)
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string payload is not UTF-8".into()))
    }

    fn rest(&mut self) -> &'a [u8] {
        let out = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        out
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload".into()))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

const KIND_EVALUATE: u8 = 1;
const KIND_PR: u8 = 2;
const KIND_E: u8 = 3;
const KIND_STATS: u8 = 4;

/// A decoded request header plus its still-encoded graph payload. The
/// graph bytes stay raw here so the server can use them as a cache key and
/// decode each distinct graph once (keeping per-tenant plan caches hot
/// across requests — a fresh decode per frame would mint fresh node ids
/// and defeat them).
pub(crate) struct WireRequest {
    pub(crate) tenant: u64,
    /// Relative deadline in milliseconds; 0 = none carried.
    pub(crate) deadline_ms: u64,
    /// Per-request strategy override; `None` inherits the server config.
    pub(crate) strategy: Option<EvalStrategy>,
    /// Wire-propagated trace context; `None` for untraced requests.
    pub(crate) trace: Option<TraceContext>,
    pub(crate) body: WireBody,
}

// Trace-context flag byte: bit 0 = a context (trace id + parent span)
// follows, bit 1 = the context is sampled. Legal values are 0 (none),
// 1 (context, unsampled — ids propagate for reply echo only), and
// 3 (context, sampled).
const TRACE_PRESENT: u8 = 0b01;
const TRACE_SAMPLED: u8 = 0b10;

fn put_trace_context(out: &mut Vec<u8>, trace: Option<&TraceContext>) {
    match trace {
        None => out.push(0),
        Some(ctx) => {
            let mut flags = TRACE_PRESENT;
            if ctx.sampled {
                flags |= TRACE_SAMPLED;
            }
            out.push(flags);
            out.extend_from_slice(&ctx.trace_id.to_le_bytes());
            out.extend_from_slice(&ctx.parent_span.to_le_bytes());
        }
    }
}

fn decode_trace_context(r: &mut Reader<'_>) -> Result<Option<TraceContext>, WireError> {
    let flags = r.u8()?;
    if flags == 0 {
        return Ok(None);
    }
    if flags & TRACE_PRESENT == 0 || flags & !(TRACE_PRESENT | TRACE_SAMPLED) != 0 {
        return Err(WireError::Malformed(format!(
            "unknown trace flag byte {flags}"
        )));
    }
    Ok(Some(TraceContext {
        trace_id: r.u64()?,
        parent_span: r.u64()?,
        sampled: flags & TRACE_SAMPLED != 0,
    }))
}

const STRATEGY_INHERIT: u8 = 0;
const STRATEGY_AUTO: u8 = 1;
const STRATEGY_SAMPLING_ONLY: u8 = 2;
const STRATEGY_EXACT_ONLY: u8 = 3;

fn encode_strategy(strategy: Option<EvalStrategy>) -> u8 {
    match strategy {
        None => STRATEGY_INHERIT,
        Some(EvalStrategy::Auto) => STRATEGY_AUTO,
        Some(EvalStrategy::SamplingOnly) => STRATEGY_SAMPLING_ONLY,
        Some(EvalStrategy::ExactOnly) => STRATEGY_EXACT_ONLY,
    }
}

fn decode_strategy(byte: u8) -> Result<Option<EvalStrategy>, WireError> {
    match byte {
        STRATEGY_INHERIT => Ok(None),
        STRATEGY_AUTO => Ok(Some(EvalStrategy::Auto)),
        STRATEGY_SAMPLING_ONLY => Ok(Some(EvalStrategy::SamplingOnly)),
        STRATEGY_EXACT_ONLY => Ok(Some(EvalStrategy::ExactOnly)),
        other => Err(WireError::Malformed(format!(
            "unknown strategy byte {other}"
        ))),
    }
}

pub(crate) enum WireBody {
    Evaluate { threshold: f64, graph: Vec<u8> },
    Pr { threshold: f64, graph: Vec<u8> },
    E { n: u64, graph: Vec<u8> },
    Stats { n: u64, graph: Vec<u8> },
}

/// Encodes one request as a frame payload. Fails only if the query graph
/// is not wire-expressible.
pub fn encode_request(id: u64, request: &Request) -> Result<Vec<u8>, ServeError> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&request.tenant.to_le_bytes());
    // A zero relative deadline means "none"; clamp an explicit
    // `Duration::ZERO` up to 1 ms so it still crosses as a deadline.
    let deadline_ms = request
        .timeout
        .map(|t| (t.as_millis().min(u64::MAX as u128) as u64).max(1))
        .unwrap_or(0);
    out.extend_from_slice(&deadline_ms.to_le_bytes());
    out.push(encode_strategy(request.strategy));
    put_trace_context(&mut out, request.trace.as_ref());
    // `RequestKind` is `#[non_exhaustive]`; in-crate the wildcard is
    // unreachable today, but it is the designed behavior for a request
    // kind this wire version cannot express.
    #[allow(unreachable_patterns)]
    match &request.kind {
        RequestKind::Evaluate { cond, threshold } => {
            out.push(KIND_EVALUATE);
            out.extend_from_slice(&threshold.to_le_bytes());
            out.extend_from_slice(&WireGraph::from_bool(cond)?.to_bytes());
        }
        RequestKind::Pr { cond, threshold } => {
            out.push(KIND_PR);
            out.extend_from_slice(&threshold.to_le_bytes());
            out.extend_from_slice(&WireGraph::from_bool(cond)?.to_bytes());
        }
        RequestKind::E { expr, n } => {
            out.push(KIND_E);
            out.extend_from_slice(&(*n as u64).to_le_bytes());
            out.extend_from_slice(&WireGraph::from_f64(expr)?.to_bytes());
        }
        RequestKind::Stats { expr, n } => {
            out.push(KIND_STATS);
            out.extend_from_slice(&(*n as u64).to_le_bytes());
            out.extend_from_slice(&WireGraph::from_f64(expr)?.to_bytes());
        }
        _ => {
            return Err(ServeError::Wire(WireError::Unsupported(
                "request kind unknown to this wire version".into(),
            )))
        }
    }
    if out.len() > MAX_FRAME {
        return Err(ServeError::Wire(WireError::Malformed(format!(
            "encoded request ({} bytes) exceeds the frame cap",
            out.len()
        ))));
    }
    Ok(out)
}

/// Decodes a request payload *after* its 8-byte correlation id (which the
/// server peels off first so even malformed requests get a correlated
/// error reply).
pub(crate) fn decode_request_body(bytes: &[u8]) -> Result<WireRequest, WireError> {
    let mut r = Reader::new(bytes);
    let tenant = r.u64()?;
    let deadline_ms = r.u64()?;
    let strategy = decode_strategy(r.u8()?)?;
    let trace = decode_trace_context(&mut r)?;
    let kind = r.u8()?;
    let body = match kind {
        KIND_EVALUATE => WireBody::Evaluate {
            threshold: r.f64()?,
            graph: r.rest().to_vec(),
        },
        KIND_PR => WireBody::Pr {
            threshold: r.f64()?,
            graph: r.rest().to_vec(),
        },
        KIND_E => WireBody::E {
            n: r.u64()?,
            graph: r.rest().to_vec(),
        },
        KIND_STATS => WireBody::Stats {
            n: r.u64()?,
            graph: r.rest().to_vec(),
        },
        other => {
            return Err(WireError::Malformed(format!(
                "unknown request kind {other}"
            )))
        }
    };
    Ok(WireRequest {
        tenant,
        deadline_ms,
        strategy,
        trace,
        body,
    })
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

const STATUS_OK: u8 = 0;
const STATUS_TIMEOUT: u8 = 1;
const STATUS_QUEUE_FULL: u8 = 2;
const STATUS_SHUTDOWN: u8 = 3;
const STATUS_INVALID: u8 = 4;
const STATUS_WIRE_UNSUPPORTED: u8 = 5;
const STATUS_WIRE_TRUNCATED: u8 = 6;
const STATUS_WIRE_MALFORMED: u8 = 7;
const STATUS_TRANSPORT: u8 = 8;

const OK_OUTCOME: u8 = 1;
const OK_DECISION: u8 = 2;
const OK_MEAN: u8 = 3;
const OK_SUMMARY: u8 = 4;

// Provenance of an `OK_OUTCOME` reply: how the verdict was produced.
// 0 means sampled (the outcome's `samples` field holds the draw count);
// nonzero names the analytic method that answered with zero samples.
const PROV_SAMPLED: u8 = 0;
const PROV_BETA_CHAIN: u8 = 1;
const PROV_GAUSSIAN_CDF: u8 = 2;
const PROV_MOMENT: u8 = 3;

fn encode_provenance(p: Provenance) -> u8 {
    match p {
        Provenance::Sampled { .. } => PROV_SAMPLED,
        Provenance::Exact {
            method: ExactMethod::BetaChain,
        } => PROV_BETA_CHAIN,
        Provenance::Exact {
            method: ExactMethod::GaussianCdf,
        } => PROV_GAUSSIAN_CDF,
        Provenance::Exact {
            method: ExactMethod::Moment,
        } => PROV_MOMENT,
    }
}

fn decode_provenance(byte: u8, samples: usize) -> Result<Provenance, WireError> {
    match byte {
        PROV_SAMPLED => Ok(Provenance::Sampled { samples }),
        PROV_BETA_CHAIN => Ok(Provenance::Exact {
            method: ExactMethod::BetaChain,
        }),
        PROV_GAUSSIAN_CDF => Ok(Provenance::Exact {
            method: ExactMethod::GaussianCdf,
        }),
        PROV_MOMENT => Ok(Provenance::Exact {
            method: ExactMethod::Moment,
        }),
        other => Err(WireError::Malformed(format!(
            "unknown provenance byte {other}"
        ))),
    }
}

/// Encodes one reply — success or error — as a frame payload.
/// `trace_echo` is the request's trace id, echoed so a traced client can
/// pair its reply with the server-side span tree.
pub(crate) fn encode_response(
    id: u64,
    result: &Result<Response, ServeError>,
    trace_echo: Option<u64>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&id.to_le_bytes());
    match trace_echo {
        None => out.push(0),
        Some(trace_id) => {
            out.push(1);
            out.extend_from_slice(&trace_id.to_le_bytes());
        }
    }
    // As in `encode_request`: the `Ok(_)` wildcard is today-unreachable
    // forward compatibility for response kinds newer than this encoder.
    #[allow(unreachable_patterns)]
    match result {
        Ok(Response::Outcome(o)) => {
            out.push(STATUS_OK);
            out.push(OK_OUTCOME);
            out.extend_from_slice(&o.threshold.to_le_bytes());
            out.push(o.accepted as u8);
            out.push(o.conclusive as u8);
            out.extend_from_slice(&(o.samples as u64).to_le_bytes());
            out.extend_from_slice(&o.estimate.to_le_bytes());
            out.push(encode_provenance(o.provenance));
        }
        Ok(Response::Decision(b)) => {
            out.push(STATUS_OK);
            out.push(OK_DECISION);
            out.push(*b as u8);
        }
        Ok(Response::Mean(m)) => {
            out.push(STATUS_OK);
            out.push(OK_MEAN);
            out.extend_from_slice(&m.to_le_bytes());
        }
        Ok(Response::Summary(s)) => {
            out.push(STATUS_OK);
            out.push(OK_SUMMARY);
            out.extend_from_slice(&s.mean().to_le_bytes());
            out.extend_from_slice(&s.variance().to_le_bytes());
            let values = s.sorted_values();
            out.extend_from_slice(&(values.len() as u64).to_le_bytes());
            for v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Ok(_) => {
            // A response kind this wire version cannot express: report it
            // as a wire failure rather than silently dropping the reply.
            out.push(STATUS_WIRE_UNSUPPORTED);
            put_string(&mut out, "response kind unknown to this wire version");
        }
        Err(ServeError::Timeout) => out.push(STATUS_TIMEOUT),
        Err(ServeError::QueueFull) => out.push(STATUS_QUEUE_FULL),
        Err(ServeError::Shutdown) => out.push(STATUS_SHUTDOWN),
        Err(ServeError::Invalid(e)) => {
            out.push(STATUS_INVALID);
            put_string(&mut out, e.what());
        }
        Err(ServeError::Wire(WireError::Unsupported(label))) => {
            out.push(STATUS_WIRE_UNSUPPORTED);
            put_string(&mut out, label);
        }
        Err(ServeError::Wire(WireError::Truncated)) => out.push(STATUS_WIRE_TRUNCATED),
        Err(ServeError::Wire(WireError::Malformed(msg))) => {
            out.push(STATUS_WIRE_MALFORMED);
            put_string(&mut out, msg);
        }
        Err(ServeError::Wire(_)) => {
            out.push(STATUS_WIRE_MALFORMED);
            put_string(&mut out, "wire error unknown to this wire version");
        }
        Err(ServeError::Transport(msg)) => {
            out.push(STATUS_TRANSPORT);
            put_string(&mut out, msg);
        }
        Err(_) => {
            out.push(STATUS_TRANSPORT);
            put_string(&mut out, "error kind unknown to this wire version");
        }
    }
    out
}

/// Decodes one reply payload into its correlation id, the echoed trace
/// id (if the request carried one), and the result.
#[allow(clippy::type_complexity)]
pub fn decode_response(
    bytes: &[u8],
) -> Result<(u64, Option<u64>, Result<Response, ServeError>), WireError> {
    let mut r = Reader::new(bytes);
    let id = r.u64()?;
    let trace_echo = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        other => {
            return Err(WireError::Malformed(format!(
                "unknown trace echo byte {other}"
            )))
        }
    };
    let status = r.u8()?;
    let result = match status {
        STATUS_OK => Ok(decode_ok(&mut r)?),
        STATUS_TIMEOUT => Err(ServeError::Timeout),
        STATUS_QUEUE_FULL => Err(ServeError::QueueFull),
        STATUS_SHUTDOWN => Err(ServeError::Shutdown),
        STATUS_INVALID => Err(ServeError::Invalid(StatsError::new(r.string()?))),
        STATUS_WIRE_UNSUPPORTED => Err(ServeError::Wire(WireError::Unsupported(r.string()?))),
        STATUS_WIRE_TRUNCATED => Err(ServeError::Wire(WireError::Truncated)),
        STATUS_WIRE_MALFORMED => Err(ServeError::Wire(WireError::Malformed(r.string()?))),
        STATUS_TRANSPORT => Err(ServeError::Transport(r.string()?)),
        other => {
            return Err(WireError::Malformed(format!(
                "unknown response status {other}"
            )))
        }
    };
    r.finish()?;
    Ok((id, trace_echo, result))
}

fn decode_ok(r: &mut Reader<'_>) -> Result<Response, WireError> {
    match r.u8()? {
        OK_OUTCOME => {
            let threshold = r.f64()?;
            let accepted = decode_bool(r.u8()?)?;
            let conclusive = decode_bool(r.u8()?)?;
            let samples = r.u64()? as usize;
            let estimate = r.f64()?;
            let provenance = decode_provenance(r.u8()?, samples)?;
            Ok(Response::Outcome(HypothesisOutcome {
                threshold,
                accepted,
                conclusive,
                samples,
                estimate,
                provenance,
            }))
        }
        OK_DECISION => Ok(Response::Decision(decode_bool(r.u8()?)?)),
        OK_MEAN => Ok(Response::Mean(r.f64()?)),
        OK_SUMMARY => {
            let mean = r.f64()?;
            let variance = r.f64()?;
            let count = r.u64()? as usize;
            // Bound the allocation by what the frame can actually hold.
            if count > bytes_remaining(r) / 8 + 1 {
                return Err(WireError::Truncated);
            }
            let mut sorted = Vec::with_capacity(count);
            for _ in 0..count {
                sorted.push(r.f64()?);
            }
            let summary = Summary::from_parts(sorted, mean, variance)
                .map_err(|e| WireError::Malformed(e.to_string()))?;
            Ok(Response::Summary(summary))
        }
        other => Err(WireError::Malformed(format!(
            "unknown success payload kind {other}"
        ))),
    }
}

fn bytes_remaining(r: &Reader<'_>) -> usize {
    r.bytes.len() - r.pos
}

fn decode_bool(byte: u8) -> Result<bool, WireError> {
    match byte {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(WireError::Malformed(format!(
            "boolean byte must be 0 or 1, got {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use uncertain_core::Uncertain;

    fn roundtrip_response(result: Result<Response, ServeError>) -> Result<Response, ServeError> {
        let bytes = encode_response(99, &result, None);
        let (id, echo, decoded) = decode_response(&bytes).expect("well-formed reply");
        assert_eq!(id, 99);
        assert_eq!(echo, None);
        decoded
    }

    #[test]
    fn responses_roundtrip_bitwise() {
        let outcome = HypothesisOutcome {
            threshold: 0.9,
            accepted: true,
            conclusive: false,
            samples: 4242,
            estimate: 0.912_345_678_9,
            provenance: Provenance::Sampled { samples: 4242 },
        };
        assert_eq!(
            roundtrip_response(Ok(Response::Outcome(outcome))),
            Ok(Response::Outcome(outcome))
        );
        assert_eq!(
            roundtrip_response(Ok(Response::Decision(true))),
            Ok(Response::Decision(true))
        );
        let mean = std::f64::consts::PI;
        match roundtrip_response(Ok(Response::Mean(mean))) {
            Ok(Response::Mean(m)) => assert_eq!(m.to_bits(), mean.to_bits()),
            other => panic!("wrong decode: {other:?}"),
        }
        let summary = Summary::from_slice(&[3.0, 1.0, 2.0, 2.5]).unwrap();
        assert_eq!(
            roundtrip_response(Ok(Response::Summary(summary.clone()))),
            Ok(Response::Summary(summary))
        );
    }

    #[test]
    fn errors_roundtrip() {
        for err in [
            ServeError::Timeout,
            ServeError::QueueFull,
            ServeError::Shutdown,
            ServeError::Invalid(StatsError::new("bad threshold")),
            ServeError::Wire(WireError::Unsupported("from_fn leaf".into())),
            ServeError::Wire(WireError::Truncated),
            ServeError::Wire(WireError::Malformed("nope".into())),
            ServeError::Transport("connection reset".into()),
        ] {
            assert_eq!(roundtrip_response(Err(err.clone())), Err(err));
        }
    }

    #[test]
    fn requests_roundtrip_through_header_decode() {
        let cond = Uncertain::normal(0.0, 1.0).unwrap().gt(0.5);
        let request = Request {
            tenant: 7,
            kind: RequestKind::Evaluate {
                cond: cond.clone(),
                threshold: 0.9,
            },
            timeout: Some(std::time::Duration::from_millis(250)),
            strategy: Some(EvalStrategy::Auto),
            trace: None,
        };
        let payload = encode_request(11, &request).expect("expressible");
        assert_eq!(u64::from_le_bytes(payload[..8].try_into().unwrap()), 11);
        let decoded = decode_request_body(&payload[8..]).expect("well-formed");
        assert_eq!(decoded.tenant, 7);
        assert_eq!(decoded.deadline_ms, 250);
        assert_eq!(decoded.strategy, Some(EvalStrategy::Auto));
        match decoded.body {
            WireBody::Evaluate { threshold, graph } => {
                assert_eq!(threshold, 0.9);
                assert_eq!(graph, WireGraph::from_bool(&cond).unwrap().to_bytes());
            }
            _ => panic!("wrong request kind"),
        }
    }

    #[test]
    fn strategy_and_provenance_roundtrip() {
        // Every strategy override crosses the request header intact.
        for strategy in [
            None,
            Some(EvalStrategy::Auto),
            Some(EvalStrategy::SamplingOnly),
            Some(EvalStrategy::ExactOnly),
        ] {
            let request = Request {
                tenant: 3,
                kind: RequestKind::Pr {
                    cond: Uncertain::bernoulli(0.5).unwrap(),
                    threshold: 0.5,
                },
                timeout: None,
                strategy,
                trace: None,
            };
            let payload = encode_request(1, &request).expect("expressible");
            let decoded = decode_request_body(&payload[8..]).expect("well-formed");
            assert_eq!(decoded.strategy, strategy);
        }
        // Every exact method crosses the outcome payload intact.
        for method in [
            ExactMethod::BetaChain,
            ExactMethod::GaussianCdf,
            ExactMethod::Moment,
        ] {
            let outcome = HypothesisOutcome {
                threshold: 0.5,
                accepted: true,
                conclusive: true,
                samples: 0,
                estimate: 0.75,
                provenance: Provenance::Exact { method },
            };
            assert_eq!(
                roundtrip_response(Ok(Response::Outcome(outcome))),
                Ok(Response::Outcome(outcome))
            );
        }
    }

    #[test]
    fn opaque_graphs_fail_request_encode() {
        let opaque = Uncertain::from_fn("custom", |rng| {
            use rand::Rng;
            rng.gen::<f64>()
        });
        let request = Request {
            tenant: 0,
            kind: RequestKind::E {
                expr: opaque,
                n: 16,
            },
            timeout: None,
            strategy: None,
            trace: None,
        };
        assert!(matches!(
            encode_request(0, &request),
            Err(ServeError::Wire(WireError::Unsupported(_)))
        ));
    }

    #[test]
    fn trace_context_roundtrips_the_request_header() {
        for (ctx, label) in [
            (
                Some(TraceContext {
                    trace_id: 0xDEAD_BEEF_CAFE_F00D,
                    parent_span: 7,
                    sampled: true,
                }),
                "sampled",
            ),
            (
                Some(TraceContext {
                    trace_id: 42,
                    parent_span: 0,
                    sampled: false,
                }),
                "unsampled",
            ),
            (None, "absent"),
        ] {
            let request = Request {
                tenant: 9,
                kind: RequestKind::Pr {
                    cond: Uncertain::bernoulli(0.5).unwrap(),
                    threshold: 0.5,
                },
                timeout: None,
                strategy: None,
                trace: ctx,
            };
            let payload = encode_request(2, &request).expect("expressible");
            let decoded = decode_request_body(&payload[8..]).expect("well-formed");
            assert_eq!(decoded.trace, ctx, "{label}");
        }
    }

    #[test]
    fn trace_echo_roundtrips_the_response() {
        let bytes = encode_response(4, &Ok(Response::Decision(true)), Some(0x1234_5678));
        let (id, echo, decoded) = decode_response(&bytes).expect("well-formed");
        assert_eq!(id, 4);
        assert_eq!(echo, Some(0x1234_5678));
        assert_eq!(decoded, Ok(Response::Decision(true)));
    }

    #[test]
    fn bad_trace_flag_bytes_are_malformed_not_panics() {
        // A well-formed traced request, then corrupt its trace flag byte
        // (offset: id 8 + tenant 8 + deadline 8 + strategy 1 = byte 25).
        let request = Request {
            tenant: 1,
            kind: RequestKind::Pr {
                cond: Uncertain::bernoulli(0.5).unwrap(),
                threshold: 0.5,
            },
            timeout: None,
            strategy: None,
            trace: Some(TraceContext {
                trace_id: 1,
                parent_span: 0,
                sampled: true,
            }),
        };
        let mut payload = encode_request(0, &request).expect("expressible");
        assert_eq!(payload[25], TRACE_PRESENT | TRACE_SAMPLED);
        payload[25] = 0xFF;
        assert!(matches!(
            decode_request_body(&payload[8..]),
            Err(WireError::Malformed(_))
        ));
        // Flag bit1 without bit0 (sampled-but-no-context) is also illegal.
        payload[25] = TRACE_SAMPLED;
        assert!(decode_request_body(&payload[8..]).is_err());
        // And a bad response echo byte is malformed too.
        let mut reply = encode_response(0, &Ok(Response::Decision(false)), Some(3));
        reply[8] = 9;
        assert!(matches!(
            decode_response(&reply),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");

        let hostile = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let mut cursor = io::Cursor::new(hostile.to_vec());
        assert!(read_frame(&mut cursor).is_err(), "oversize cap");

        // EOF mid-frame is an error, not a clean close.
        let mut truncated = Vec::new();
        write_frame(&mut truncated, b"full frame").unwrap();
        truncated.truncate(7);
        let mut cursor = io::Cursor::new(truncated);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn incremental_decoder_matches_blocking_reader_byte_by_byte() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"alpha").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, &[7u8; 300]).unwrap();

        // Worst-case fragmentation: one byte per push.
        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        for b in &stream {
            dec.push(std::slice::from_ref(b));
            while let Some(f) = dec.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], b"alpha");
        assert_eq!(frames[1], b"");
        assert_eq!(frames[2], vec![7u8; 300]);
        assert!(!dec.mid_frame(), "stream ended at a frame boundary");
    }

    #[test]
    fn incremental_decoder_rejects_oversize_before_payload_arrives() {
        let mut dec = FrameDecoder::new();
        dec.push(&((MAX_FRAME + 1) as u32).to_le_bytes());
        assert!(dec.next_frame().is_err(), "hostile prefix, zero payload");
    }

    #[test]
    fn incremental_decoder_reports_mid_frame_state() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"cut short").unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&stream[..stream.len() - 2]);
        assert_eq!(dec.next_frame().unwrap(), None, "incomplete");
        assert!(dec.mid_frame(), "EOF here would be a protocol error");
        dec.push(&stream[stream.len() - 2..]);
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"cut short");
        assert!(!dec.mid_frame());
    }

    #[test]
    fn incremental_decoder_compacts_consumed_prefix() {
        // Many frames through one decoder must not grow the buffer
        // linearly with bytes ever received.
        let mut frame = Vec::new();
        write_frame(&mut frame, &[9u8; 1024]).unwrap();
        let mut dec = FrameDecoder::new();
        for _ in 0..256 {
            dec.push(&frame);
            assert_eq!(dec.next_frame().unwrap().unwrap(), vec![9u8; 1024]);
        }
        assert_eq!(dec.buffered(), 0);
        assert!(
            dec.buf.capacity() < 64 * 1024,
            "buffer kept growing: {} bytes after 256 KiB-scale frames",
            dec.buf.capacity()
        );
    }

    proptest! {
        /// The incremental decoder is bitwise equivalent to the blocking
        /// `read_frame` oracle on the same byte stream, however the
        /// stream is split into `push` chunks: same frames in the same
        /// order, and corrupt streams fail at the same frame index.
        #[test]
        fn incremental_decoder_matches_one_shot_oracle(
            payload_lens in proptest::collection::vec(0usize..200, 0..8),
            corrupt_flag in 0u8..2,
            splits in proptest::collection::vec(1usize..64, 1..32),
        ) {
            let corrupt = corrupt_flag == 1;
            let mut stream = Vec::new();
            for &len in &payload_lens {
                write_frame(&mut stream, &vec![0xAB; len]).unwrap();
            }
            if corrupt {
                // A frame whose length prefix exceeds the cap: both
                // decoders must reject it after the good frames.
                stream.extend_from_slice(&((MAX_FRAME + 1) as u32).to_le_bytes());
            }

            // Oracle: the blocking reader over the whole stream.
            let mut oracle_frames = Vec::new();
            let mut cursor = io::Cursor::new(stream.clone());
            let oracle_err = loop {
                match read_frame(&mut cursor) {
                    Ok(Some(f)) => oracle_frames.push(f),
                    Ok(None) => break false,
                    Err(_) => break true,
                }
            };

            // Subject: the incremental decoder fed arbitrary chunks.
            let mut dec = FrameDecoder::new();
            let mut dec_frames = Vec::new();
            let mut dec_err = false;
            let mut offset = 0;
            let mut split_iter = splits.iter().cycle();
            'feed: while offset < stream.len() {
                let take = (*split_iter.next().unwrap()).min(stream.len() - offset);
                dec.push(&stream[offset..offset + take]);
                offset += take;
                loop {
                    match dec.next_frame() {
                        Ok(Some(f)) => dec_frames.push(f),
                        Ok(None) => break,
                        Err(_) => {
                            dec_err = true;
                            break 'feed;
                        }
                    }
                }
            }

            prop_assert_eq!(dec_frames, oracle_frames);
            prop_assert_eq!(dec_err, oracle_err);
        }

        /// Every strict prefix of a well-formed response payload decodes
        /// to an error, never a panic or a bogus success.
        #[test]
        fn response_prefixes_never_panic(cut in 0usize..64) {
            let summary = Summary::from_slice(&[1.0, 2.0, 3.0]).unwrap();
            let bytes = encode_response(5, &Ok(Response::Summary(summary)), Some(17));
            let cut = cut.min(bytes.len().saturating_sub(1));
            prop_assert!(decode_response(&bytes[..cut]).is_err());
        }

        /// Arbitrary byte soup never panics the response decoder.
        #[test]
        fn response_decoder_survives_noise(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
            let _ = decode_response(&bytes);
        }

        /// Arbitrary byte soup never panics the request decoder.
        #[test]
        fn request_decoder_survives_noise(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
            let _ = decode_request_body(&bytes);
        }

        /// Scalar replies round-trip bitwise for arbitrary floats
        /// (including negative zero; NaN compares by bit pattern).
        #[test]
        fn means_roundtrip_bitwise(bits in 0u64..=u64::MAX) {
            let m = f64::from_bits(bits);
            let bytes = encode_response(1, &Ok(Response::Mean(m)), Some(bits));
            let (_, echo, decoded) = decode_response(&bytes).unwrap();
            prop_assert_eq!(echo, Some(bits));
            match decoded {
                Ok(Response::Mean(d)) => prop_assert_eq!(d.to_bits(), bits),
                other => return Err(TestCaseError::fail(format!("wrong decode: {other:?}"))),
            }
        }
    }
}
