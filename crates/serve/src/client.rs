//! The typed client handle.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use uncertain_core::{HypothesisOutcome, ServeError, Uncertain};
use uncertain_stats::Summary;

use crate::service::{Inner, Job, RequestKind, Response};
use crate::shard_of;

/// A reply that has been admitted to a shard queue but not yet waited on.
///
/// Returned by the `submit_*` methods; lets one client keep many requests
/// in flight (pipelining), which is how a bounded queue is actually
/// saturated — the shard dequeues back-to-back instead of idling between
/// synchronous round-trips. Per-tenant ordering still holds: a tenant's
/// requests share one FIFO shard queue, so replies complete in the
/// tenant's submission order.
#[must_use = "a pending reply does nothing until waited on"]
pub struct Pending<T> {
    rx: Receiver<Result<Response, ServeError>>,
    map: fn(Response) -> T,
}

impl<T> Pending<T> {
    /// Blocks until the service answers this request.
    pub fn wait(self) -> Result<T, ServeError> {
        let response = self.rx.recv().map_err(|_| ServeError::Shutdown)??;
        Ok((self.map)(response))
    }
}

/// A handle for submitting requests to a running
/// [`Service`](crate::Service).
///
/// Handles are cheap to clone and safe to use from many threads; every
/// handle routes a given tenant to the same shard, so a tenant's requests
/// execute one at a time, in queue order, on one seeded session.
///
/// Each method blocks until the service replies; the `submit_*` variants
/// instead return a [`Pending`] handle so many requests can be kept in
/// flight. `*_within` variants attach a deadline: the request fails with
/// [`ServeError::Timeout`] if it expires in the queue or mid-computation
/// (the timed-out request still consumes the tenant's query indices it
/// would have, so later results are unaffected).
#[derive(Clone)]
pub struct ServeClient {
    inner: Arc<Inner>,
}

impl ServeClient {
    pub(crate) fn new(inner: Arc<Inner>) -> Self {
        Self { inner }
    }

    /// Full SPRT verdict for `Pr[cond] > threshold` on `tenant`'s session.
    pub fn evaluate(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
    ) -> Result<HypothesisOutcome, ServeError> {
        self.submit_evaluate(tenant, cond, threshold, None)?.wait()
    }

    /// [`ServeClient::evaluate`] with a deadline.
    pub fn evaluate_within(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
        timeout: Duration,
    ) -> Result<HypothesisOutcome, ServeError> {
        self.submit_evaluate(tenant, cond, threshold, Some(timeout))?
            .wait()
    }

    /// Pipelined [`ServeClient::evaluate`]: admits the request and returns
    /// without waiting. `QueueFull`/`Shutdown` surface here, at admission;
    /// `Timeout`/`Invalid` surface from [`Pending::wait`].
    pub fn submit_evaluate(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
        timeout: Option<Duration>,
    ) -> Result<Pending<HypothesisOutcome>, ServeError> {
        let kind = RequestKind::Evaluate {
            cond: cond.clone(),
            threshold,
        };
        self.submit(tenant, kind, timeout, |r| match r {
            Response::Outcome(o) => o,
            _ => unreachable!("evaluate requests yield outcomes"),
        })
    }

    /// The paper's conditional: does the evidence support
    /// `Pr[cond] > threshold`?
    pub fn pr(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
    ) -> Result<bool, ServeError> {
        self.submit_pr(tenant, cond, threshold, None)?.wait()
    }

    /// [`ServeClient::pr`] with a deadline.
    pub fn pr_within(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
        timeout: Duration,
    ) -> Result<bool, ServeError> {
        self.submit_pr(tenant, cond, threshold, Some(timeout))?
            .wait()
    }

    /// Pipelined [`ServeClient::pr`].
    pub fn submit_pr(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
        timeout: Option<Duration>,
    ) -> Result<Pending<bool>, ServeError> {
        let kind = RequestKind::Pr {
            cond: cond.clone(),
            threshold,
        };
        self.submit(tenant, kind, timeout, |r| match r {
            Response::Decision(b) => b,
            _ => unreachable!("pr requests yield decisions"),
        })
    }

    /// Expected value of `expr` from `n` joint samples on `tenant`'s
    /// session.
    pub fn e(&self, tenant: u64, expr: &Uncertain<f64>, n: usize) -> Result<f64, ServeError> {
        self.submit_e(tenant, expr, n, None)?.wait()
    }

    /// [`ServeClient::e`] with a deadline.
    pub fn e_within(
        &self,
        tenant: u64,
        expr: &Uncertain<f64>,
        n: usize,
        timeout: Duration,
    ) -> Result<f64, ServeError> {
        self.submit_e(tenant, expr, n, Some(timeout))?.wait()
    }

    /// Pipelined [`ServeClient::e`].
    pub fn submit_e(
        &self,
        tenant: u64,
        expr: &Uncertain<f64>,
        n: usize,
        timeout: Option<Duration>,
    ) -> Result<Pending<f64>, ServeError> {
        let kind = RequestKind::E {
            expr: expr.clone(),
            n,
        };
        self.submit(tenant, kind, timeout, |r| match r {
            Response::Mean(m) => m,
            _ => unreachable!("e requests yield means"),
        })
    }

    /// Descriptive summary of `expr` from `n` joint samples.
    pub fn stats(
        &self,
        tenant: u64,
        expr: &Uncertain<f64>,
        n: usize,
    ) -> Result<Summary, ServeError> {
        self.submit_stats(tenant, expr, n, None)?.wait()
    }

    /// [`ServeClient::stats`] with a deadline.
    pub fn stats_within(
        &self,
        tenant: u64,
        expr: &Uncertain<f64>,
        n: usize,
        timeout: Duration,
    ) -> Result<Summary, ServeError> {
        self.submit_stats(tenant, expr, n, Some(timeout))?.wait()
    }

    /// Pipelined [`ServeClient::stats`].
    pub fn submit_stats(
        &self,
        tenant: u64,
        expr: &Uncertain<f64>,
        n: usize,
        timeout: Option<Duration>,
    ) -> Result<Pending<Summary>, ServeError> {
        let kind = RequestKind::Stats {
            expr: expr.clone(),
            n,
        };
        self.submit(tenant, kind, timeout, |r| match r {
            Response::Summary(s) => s,
            _ => unreachable!("stats requests yield summaries"),
        })
    }

    /// Admits one request to its tenant's shard queue.
    fn submit<T>(
        &self,
        tenant: u64,
        kind: RequestKind,
        timeout: Option<Duration>,
        map: fn(Response) -> T,
    ) -> Result<Pending<T>, ServeError> {
        if !self.inner.accepting.load(Ordering::SeqCst) {
            return Err(ServeError::Shutdown);
        }
        let shard = &self.inner.shards[shard_of(tenant, self.inner.shards.len())];
        let deadline = timeout
            .or(self.inner.config.default_deadline)
            .map(|t| Instant::now() + t);
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let job = Job {
            tenant,
            kind,
            deadline,
            enqueued: Instant::now(),
            reply: reply_tx,
        };
        {
            let guard = shard.tx.lock().expect("shard sender lock");
            let Some(tx) = guard.as_ref() else {
                return Err(ServeError::Shutdown);
            };
            // Count the admission before sending so the shard's matching
            // decrement can never observe a missing increment.
            shard.stats.queue_depth.inc();
            match tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    shard.stats.queue_depth.dec();
                    shard.stats.rejected.inc();
                    return Err(ServeError::QueueFull);
                }
                Err(TrySendError::Disconnected(_)) => {
                    shard.stats.queue_depth.dec();
                    return Err(ServeError::Shutdown);
                }
            }
        }
        // The shard always replies — even to drained-at-shutdown or
        // timed-out requests. A dropped reply channel therefore means the
        // worker is gone.
        Ok(Pending { rx: reply_rx, map })
    }
}
