//! The typed client handle, generic over its [`Transport`].

use std::net::ToSocketAddrs;
use std::sync::Arc;
use std::time::Duration;

use uncertain_core::{EvalStrategy, HypothesisOutcome, ServeError, Uncertain};
use uncertain_obs::TraceContext;
use uncertain_stats::Summary;

use crate::net::TcpTransport;
use crate::service::Inner;
use crate::transport::{
    ChannelTransport, ReplyReceiver, Request, RequestKind, Response, Transport,
};

/// A reply that has been admitted for execution but not yet waited on.
///
/// Returned by the `submit_*` methods; lets one client keep many requests
/// in flight (pipelining), which is how a bounded queue is actually
/// saturated — the shard dequeues back-to-back instead of idling between
/// synchronous round-trips. Per-tenant ordering still holds: a tenant's
/// requests share one FIFO shard queue, so replies complete in the
/// tenant's submission order. The type is transport-agnostic — the reply
/// may come from an in-process shard or from a socket's demux thread, and
/// waiting looks identical either way.
#[must_use = "a pending reply does nothing until waited on"]
pub struct Pending<T> {
    rx: ReplyReceiver,
    map: fn(Response) -> T,
    /// The trace id this request was submitted under, `None` untraced.
    trace_id: Option<u64>,
}

impl<T> Pending<T> {
    /// Blocks until the service answers this request.
    pub fn wait(self) -> Result<T, ServeError> {
        self.wait_traced().map(|(value, _)| value)
    }

    /// Blocks like [`Pending::wait`], also returning the trace id the
    /// service echoed on the reply — the key into `GET /traces/<id>` (or
    /// [`Service::trace`](crate::Service::trace)). `None` when the
    /// request carried no trace context or the reply path dropped the
    /// echo (e.g. a frame rejected before its header was parsed).
    pub fn wait_traced(self) -> Result<(T, Option<u64>), ServeError> {
        let reply = self.rx.recv().map_err(|_| ServeError::Shutdown)?;
        let response = reply.result?;
        Ok(((self.map)(response), reply.trace_id))
    }

    /// The trace id this request was *submitted* under (available before
    /// the reply arrives), `None` for untraced requests.
    pub fn trace_id(&self) -> Option<u64> {
        self.trace_id
    }
}

/// A handle for submitting requests to a [`Service`](crate::Service) —
/// in-process or across a socket.
///
/// Handles are cheap to clone and safe to use from many threads; every
/// handle routes a given tenant to the same shard, so a tenant's requests
/// execute one at a time, in queue order, on one seeded session.
///
/// Each method blocks until the service replies; the `submit_*` variants
/// instead return a [`Pending`] handle so many requests can be kept in
/// flight. `*_within` variants attach a deadline: the request fails with
/// [`ServeError::Timeout`] if it expires in the queue or mid-computation
/// (the timed-out request still consumes the tenant's query indices it
/// would have, so later results are unaffected).
///
/// The handle is a thin typed layer over a [`Transport`]:
/// [`Service::client`](crate::Service::client) builds one over the
/// in-process [`ChannelTransport`], [`ServeClient::connect`] over a
/// [`TcpTransport`], and [`ServeClient::with_transport`] over anything
/// else. The typed surface — and the results it returns — is identical
/// across transports.
#[derive(Clone)]
pub struct ServeClient {
    transport: Arc<dyn Transport>,
}

impl ServeClient {
    /// The in-process constructor [`Service::client`](crate::Service::client)
    /// uses: a [`ChannelTransport`] straight into the shard queues.
    pub(crate) fn new(inner: Arc<Inner>) -> Self {
        Self::with_transport(Arc::new(ChannelTransport::new(inner)))
    }

    /// A client over an arbitrary [`Transport`].
    pub fn with_transport(transport: Arc<dyn Transport>) -> Self {
        Self { transport }
    }

    /// A client over one TCP connection to a service listening at `addr`
    /// (see [`Service::listen`](crate::Service::listen)).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServeError> {
        Ok(Self::with_transport(Arc::new(TcpTransport::connect(addr)?)))
    }

    /// A client over a pool of `connections` TCP connections; tenants are
    /// hashed across the pool, so per-tenant ordering is preserved while
    /// distinct tenants pipeline on distinct sockets.
    pub fn connect_pooled<A: ToSocketAddrs>(
        addr: A,
        connections: usize,
    ) -> Result<Self, ServeError> {
        Ok(Self::with_transport(Arc::new(
            TcpTransport::connect_pooled(addr, connections)?,
        )))
    }

    /// Full SPRT verdict for `Pr[cond] > threshold` on `tenant`'s session.
    pub fn evaluate(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
    ) -> Result<HypothesisOutcome, ServeError> {
        self.submit_evaluate(tenant, cond, threshold, None)?.wait()
    }

    /// [`ServeClient::evaluate`] with a deadline.
    pub fn evaluate_within(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
        timeout: Duration,
    ) -> Result<HypothesisOutcome, ServeError> {
        self.submit_evaluate(tenant, cond, threshold, Some(timeout))?
            .wait()
    }

    /// [`ServeClient::evaluate`] with a per-request strategy override —
    /// e.g. [`EvalStrategy::Auto`] to let a recognized analytic graph
    /// answer in closed form with zero samples. The outcome's
    /// `provenance` records which backend actually answered.
    pub fn evaluate_with_strategy(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
        strategy: EvalStrategy,
    ) -> Result<HypothesisOutcome, ServeError> {
        self.submit_evaluate_with_strategy(tenant, cond, threshold, None, strategy)?
            .wait()
    }

    /// Pipelined [`ServeClient::evaluate`]: admits the request and returns
    /// without waiting. `QueueFull`/`Shutdown` surface here, at admission;
    /// `Timeout`/`Invalid` surface from [`Pending::wait`].
    pub fn submit_evaluate(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
        timeout: Option<Duration>,
    ) -> Result<Pending<HypothesisOutcome>, ServeError> {
        self.submit_evaluate_inner(tenant, cond, threshold, timeout, None)
    }

    /// Pipelined [`ServeClient::evaluate_with_strategy`].
    pub fn submit_evaluate_with_strategy(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
        timeout: Option<Duration>,
        strategy: EvalStrategy,
    ) -> Result<Pending<HypothesisOutcome>, ServeError> {
        self.submit_evaluate_inner(tenant, cond, threshold, timeout, Some(strategy))
    }

    fn submit_evaluate_inner(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
        timeout: Option<Duration>,
        strategy: Option<EvalStrategy>,
    ) -> Result<Pending<HypothesisOutcome>, ServeError> {
        let kind = RequestKind::Evaluate {
            cond: cond.clone(),
            threshold,
        };
        self.submit(tenant, kind, timeout, strategy, |r| match r {
            Response::Outcome(o) => o,
            _ => unreachable!("evaluate requests yield outcomes"),
        })
    }

    /// [`ServeClient::evaluate`] with request tracing on: the service
    /// records a span tree for the request (queue wait, plan compile, the
    /// SPRT trajectory) under a fresh trace id, offers it to the flight
    /// recorder, and echoes the id on the reply. Returns the outcome and
    /// that id — the key into `GET /traces/<id>`.
    ///
    /// Tracing never changes what is computed: the sampled values, the
    /// verdict, and the tenant's stream position are bitwise identical to
    /// the untraced call.
    pub fn evaluate_traced(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
    ) -> Result<(HypothesisOutcome, Option<u64>), ServeError> {
        self.submit_evaluate_traced(tenant, cond, threshold, None)?
            .wait_traced()
    }

    /// Pipelined [`ServeClient::evaluate_traced`]. The submitted trace id
    /// is readable immediately via [`Pending::trace_id`]; the echoed one
    /// comes back from [`Pending::wait_traced`].
    pub fn submit_evaluate_traced(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
        timeout: Option<Duration>,
    ) -> Result<Pending<HypothesisOutcome>, ServeError> {
        let kind = RequestKind::Evaluate {
            cond: cond.clone(),
            threshold,
        };
        self.submit_with_trace(
            tenant,
            kind,
            timeout,
            None,
            Some(TraceContext::root()),
            |r| match r {
                Response::Outcome(o) => o,
                _ => unreachable!("evaluate requests yield outcomes"),
            },
        )
    }

    /// The paper's conditional: does the evidence support
    /// `Pr[cond] > threshold`?
    pub fn pr(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
    ) -> Result<bool, ServeError> {
        self.submit_pr(tenant, cond, threshold, None)?.wait()
    }

    /// [`ServeClient::pr`] with a deadline.
    pub fn pr_within(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
        timeout: Duration,
    ) -> Result<bool, ServeError> {
        self.submit_pr(tenant, cond, threshold, Some(timeout))?
            .wait()
    }

    /// [`ServeClient::pr`] with a per-request strategy override.
    pub fn pr_with_strategy(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
        strategy: EvalStrategy,
    ) -> Result<bool, ServeError> {
        let kind = RequestKind::Pr {
            cond: cond.clone(),
            threshold,
        };
        self.submit(tenant, kind, None, Some(strategy), |r| match r {
            Response::Decision(b) => b,
            _ => unreachable!("pr requests yield decisions"),
        })?
        .wait()
    }

    /// Pipelined [`ServeClient::pr`].
    pub fn submit_pr(
        &self,
        tenant: u64,
        cond: &Uncertain<bool>,
        threshold: f64,
        timeout: Option<Duration>,
    ) -> Result<Pending<bool>, ServeError> {
        let kind = RequestKind::Pr {
            cond: cond.clone(),
            threshold,
        };
        self.submit(tenant, kind, timeout, None, |r| match r {
            Response::Decision(b) => b,
            _ => unreachable!("pr requests yield decisions"),
        })
    }

    /// Expected value of `expr` from `n` joint samples on `tenant`'s
    /// session.
    pub fn e(&self, tenant: u64, expr: &Uncertain<f64>, n: usize) -> Result<f64, ServeError> {
        self.submit_e(tenant, expr, n, None)?.wait()
    }

    /// [`ServeClient::e`] with a deadline.
    pub fn e_within(
        &self,
        tenant: u64,
        expr: &Uncertain<f64>,
        n: usize,
        timeout: Duration,
    ) -> Result<f64, ServeError> {
        self.submit_e(tenant, expr, n, Some(timeout))?.wait()
    }

    /// [`ServeClient::e`] with a per-request strategy override.
    pub fn e_with_strategy(
        &self,
        tenant: u64,
        expr: &Uncertain<f64>,
        n: usize,
        strategy: EvalStrategy,
    ) -> Result<f64, ServeError> {
        let kind = RequestKind::E {
            expr: expr.clone(),
            n,
        };
        self.submit(tenant, kind, None, Some(strategy), |r| match r {
            Response::Mean(m) => m,
            _ => unreachable!("e requests yield means"),
        })?
        .wait()
    }

    /// Pipelined [`ServeClient::e`].
    pub fn submit_e(
        &self,
        tenant: u64,
        expr: &Uncertain<f64>,
        n: usize,
        timeout: Option<Duration>,
    ) -> Result<Pending<f64>, ServeError> {
        let kind = RequestKind::E {
            expr: expr.clone(),
            n,
        };
        self.submit(tenant, kind, timeout, None, |r| match r {
            Response::Mean(m) => m,
            _ => unreachable!("e requests yield means"),
        })
    }

    /// Descriptive summary of `expr` from `n` joint samples.
    pub fn stats(
        &self,
        tenant: u64,
        expr: &Uncertain<f64>,
        n: usize,
    ) -> Result<Summary, ServeError> {
        self.submit_stats(tenant, expr, n, None)?.wait()
    }

    /// [`ServeClient::stats`] with a deadline.
    pub fn stats_within(
        &self,
        tenant: u64,
        expr: &Uncertain<f64>,
        n: usize,
        timeout: Duration,
    ) -> Result<Summary, ServeError> {
        self.submit_stats(tenant, expr, n, Some(timeout))?.wait()
    }

    /// [`ServeClient::stats`] with a per-request strategy override.
    pub fn stats_with_strategy(
        &self,
        tenant: u64,
        expr: &Uncertain<f64>,
        n: usize,
        strategy: EvalStrategy,
    ) -> Result<Summary, ServeError> {
        let kind = RequestKind::Stats {
            expr: expr.clone(),
            n,
        };
        self.submit(tenant, kind, None, Some(strategy), |r| match r {
            Response::Summary(s) => s,
            _ => unreachable!("stats requests yield summaries"),
        })?
        .wait()
    }

    /// Pipelined [`ServeClient::stats`].
    pub fn submit_stats(
        &self,
        tenant: u64,
        expr: &Uncertain<f64>,
        n: usize,
        timeout: Option<Duration>,
    ) -> Result<Pending<Summary>, ServeError> {
        let kind = RequestKind::Stats {
            expr: expr.clone(),
            n,
        };
        self.submit(tenant, kind, timeout, None, |r| match r {
            Response::Summary(s) => s,
            _ => unreachable!("stats requests yield summaries"),
        })
    }

    /// Admits one untraced request through the transport.
    fn submit<T>(
        &self,
        tenant: u64,
        kind: RequestKind,
        timeout: Option<Duration>,
        strategy: Option<EvalStrategy>,
        map: fn(Response) -> T,
    ) -> Result<Pending<T>, ServeError> {
        self.submit_with_trace(tenant, kind, timeout, strategy, None, map)
    }

    /// Admits one request, optionally under a trace context.
    fn submit_with_trace<T>(
        &self,
        tenant: u64,
        kind: RequestKind,
        timeout: Option<Duration>,
        strategy: Option<EvalStrategy>,
        trace: Option<TraceContext>,
        map: fn(Response) -> T,
    ) -> Result<Pending<T>, ServeError> {
        let rx = self.transport.submit(Request {
            tenant,
            kind,
            timeout,
            strategy,
            trace,
        })?;
        Ok(Pending {
            rx,
            map,
            trace_id: trace.map(|c| c.trace_id),
        })
    }
}
