//! The transport abstraction under [`ServeClient`](crate::ServeClient).
//!
//! A [`Transport`] is "somewhere requests can be admitted": the client's
//! typed methods build a [`Request`], hand it to the transport, and get
//! back the channel its reply will eventually arrive on. Two transports
//! ship with the crate:
//!
//! * [`ChannelTransport`] — the original in-process path. Admission *is*
//!   the shard queue's `try_send`; backpressure and shutdown surface
//!   synchronously, exactly as they did before the trait existed.
//! * [`TcpTransport`](crate::TcpTransport) — the same requests over a
//!   pooled, pipelined TCP connection to a [`Service`](crate::Service)
//!   listening on a socket (see [`Service::listen`](crate::Service::listen)).
//!
//! Both deliver replies through a plain [`std::sync::mpsc`] receiver, so
//! [`Pending`](crate::Pending) — and everything built on it — is
//! transport-agnostic: a pipelined client loop written against the
//! in-process service works unchanged against a remote one.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use uncertain_core::{EvalStrategy, HypothesisOutcome, ServeError, Uncertain};
use uncertain_obs::TraceContext;
use uncertain_stats::Summary;

use crate::service::{Inner, Job};
use crate::shard_of;

/// What a request asks of its tenant's session.
///
/// Marked `#[non_exhaustive]`: the service may grow request kinds without
/// a breaking release, so third-party [`Transport`]s must tolerate
/// variants they do not know (typically by rejecting them as
/// [`ServeError::Wire`] with an `Unsupported` payload).
#[derive(Clone)]
#[non_exhaustive]
pub enum RequestKind {
    /// Full SPRT verdict for `Pr[cond] > threshold`.
    Evaluate {
        /// The conditional under test.
        cond: Uncertain<bool>,
        /// The probability threshold θ.
        threshold: f64,
    },
    /// Boolean form of the same decision (the paper's conditional).
    Pr {
        /// The conditional under test.
        cond: Uncertain<bool>,
        /// The probability threshold θ.
        threshold: f64,
    },
    /// Expected value from `n` joint samples.
    E {
        /// The expression to sample.
        expr: Uncertain<f64>,
        /// How many joint samples to draw.
        n: usize,
    },
    /// Descriptive summary from `n` joint samples.
    Stats {
        /// The expression to sample.
        expr: Uncertain<f64>,
        /// How many joint samples to draw.
        n: usize,
    },
}

/// The typed success payload, matched by the client into the per-method
/// return type.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Response {
    /// Reply to [`RequestKind::Evaluate`].
    Outcome(HypothesisOutcome),
    /// Reply to [`RequestKind::Pr`].
    Decision(bool),
    /// Reply to [`RequestKind::E`].
    Mean(f64),
    /// Reply to [`RequestKind::Stats`].
    Summary(Summary),
}

/// One request as a [`Transport`] sees it: who is asking, what they ask,
/// and how long they are willing to wait.
pub struct Request {
    /// The tenant whose seeded session executes the request.
    pub tenant: u64,
    /// The question.
    pub kind: RequestKind,
    /// Per-request deadline, measured from admission. `None` defers to the
    /// service's `default_deadline`.
    pub timeout: Option<Duration>,
    /// Per-request evaluation-strategy override. `None` inherits the
    /// service's configured [`EvalConfig`](uncertain_core::EvalConfig)
    /// strategy; `Some` rewrites it for this request only (e.g.
    /// [`EvalStrategy::Auto`] to let a recognized analytic graph answer
    /// with zero samples).
    pub strategy: Option<EvalStrategy>,
    /// Tracing context for this request. `None` (the default everywhere)
    /// is the dormant path; `Some` with `sampled = true` makes the shard
    /// record a span tree and the reply carry the trace id back.
    pub trace: Option<TraceContext>,
}

/// One reply as it travels back from the service: the result plus the
/// echo of the request's trace id (when the request carried a context),
/// so a traced client can pair its outcome with the server-side span
/// tree in `/traces/<id>` with no side channel.
#[derive(Debug)]
pub struct Reply {
    /// The request's outcome.
    pub result: Result<Response, ServeError>,
    /// Echo of the request's trace id, `None` for untraced requests.
    pub trace_id: Option<u64>,
}

impl Reply {
    /// An untraced reply (the common case for error short-circuits).
    pub(crate) fn bare(result: Result<Response, ServeError>) -> Self {
        Self {
            result,
            trace_id: None,
        }
    }
}

/// Where a submitted request's reply eventually arrives.
pub type ReplyReceiver = Receiver<Reply>;

/// A callback fired *after* a reply lands on its channel.
///
/// The event-driven listener cannot block a poll loop on a
/// [`ReplyReceiver`]; instead it attaches a hook at admission that pokes
/// the owning loop's wakeup pipe once the reply is sent, making reply
/// readiness O(completions) instead of O(open connections) per tick. The
/// hook runs on the shard worker thread, so implementations must be cheap
/// and must never block.
pub(crate) trait CompletionHook: Send + Sync {
    fn on_reply(&self);
}

/// The reply side of a job: the channel every reply goes down, plus the
/// optional completion hook the event-driven listener uses to learn the
/// reply is there without blocking on the channel.
pub(crate) struct ReplySlot {
    tx: mpsc::SyncSender<Reply>,
    hook: Option<Arc<dyn CompletionHook>>,
}

impl ReplySlot {
    /// Sends the reply, then fires the hook. Order matters: the hook's
    /// observer must find the reply already receivable when it wakes. A
    /// send failure (receiver dropped — the submitter gave up) still
    /// fires the hook so a listener-side observer can retire the entry.
    pub(crate) fn send(&self, reply: Reply) {
        let _ = self.tx.send(reply);
        if let Some(hook) = &self.hook {
            hook.on_reply();
        }
    }
}

/// A way to get requests to a service and replies back.
///
/// `submit` must be cheap and non-blocking in the sense of the in-process
/// path: it either admits the request (returning the reply channel) or
/// fails fast — [`ServeError::QueueFull`] for backpressure,
/// [`ServeError::Shutdown`] once the service stops accepting,
/// [`ServeError::Transport`] when the medium itself fails. Implementations
/// must preserve **per-tenant ordering**: two requests for the same tenant
/// submitted from one thread execute in submission order.
pub trait Transport: Send + Sync {
    /// Admits one request; the reply arrives on the returned receiver.
    fn submit(&self, request: Request) -> Result<ReplyReceiver, ServeError>;
}

/// The in-process transport: admission directly into the tenant's shard
/// queue, with no serialization at all. This is what
/// [`Service::client`](crate::Service::client) hands out, byte-for-byte
/// the pre-trait behavior.
pub struct ChannelTransport {
    inner: Arc<Inner>,
}

impl ChannelTransport {
    pub(crate) fn new(inner: Arc<Inner>) -> Self {
        Self { inner }
    }

    /// [`Transport::submit`] with an optional completion hook attached to
    /// the reply slot. This is the one admission path — every QueueFull /
    /// Shutdown / deadline-anchoring decision lives here, whether the
    /// caller is an in-process client (no hook) or the event-driven
    /// listener (hook pokes the owning poll loop).
    pub(crate) fn submit_hooked(
        &self,
        request: Request,
        hook: Option<Arc<dyn CompletionHook>>,
    ) -> Result<ReplyReceiver, ServeError> {
        let Request {
            tenant,
            kind,
            timeout,
            strategy,
            trace,
        } = request;
        if !self.inner.accepting.load(Ordering::SeqCst) {
            return Err(ServeError::Shutdown);
        }
        let shard = &self.inner.shards[shard_of(tenant, self.inner.shards.len())];
        let deadline = timeout
            .or(self.inner.config.default_deadline)
            .map(|t| Instant::now() + t);
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let job = Job {
            tenant,
            kind,
            deadline,
            strategy,
            trace,
            enqueued: Instant::now(),
            // Sampled requests stamp their admission on the span clock so
            // the queue span starts exactly where the wait did; dormant
            // requests skip even that read.
            enqueued_ns: match trace {
                Some(ctx) if ctx.sampled => uncertain_obs::monotonic_ns(),
                _ => 0,
            },
            reply: ReplySlot { tx: reply_tx, hook },
        };
        {
            let guard = shard.tx.lock().expect("shard sender lock");
            let Some(tx) = guard.as_ref() else {
                return Err(ServeError::Shutdown);
            };
            // Count the admission before sending so the shard's matching
            // decrement can never observe a missing increment.
            shard.stats.queue_depth.inc();
            match tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    shard.stats.queue_depth.dec();
                    shard.stats.rejected.inc();
                    return Err(ServeError::QueueFull);
                }
                Err(TrySendError::Disconnected(_)) => {
                    shard.stats.queue_depth.dec();
                    return Err(ServeError::Shutdown);
                }
            }
        }
        // The shard always replies — even to drained-at-shutdown or
        // timed-out requests. A dropped reply channel therefore means the
        // worker is gone.
        Ok(reply_rx)
    }
}

impl Transport for ChannelTransport {
    fn submit(&self, request: Request) -> Result<ReplyReceiver, ServeError> {
        self.submit_hooked(request, None)
    }
}
