//! A sharded, multi-tenant evaluation service over
//! [`uncertain_core::Session`].
//!
//! The paper's conditional (`Pr[cond] > θ`, decided by Wald's SPRT) is a
//! per-query decision procedure, which makes it the natural unit of a
//! request/response service: a request carries a network and a question,
//! the response carries a [`HypothesisOutcome`](uncertain_core::HypothesisOutcome). This crate turns the
//! single-process [`Session`](uncertain_core::Session) runtime into such a service:
//!
//! * **Sharding** — [`Service::start`] spawns N worker shards. A tenant id
//!   is hashed to one shard ([`shard_of`]) and *always* lands there, so a
//!   tenant's compiled-plan cache stays hot and its seeded sample stream
//!   stays deterministic: all of a tenant's requests are executed by one
//!   single-threaded worker, in queue order, with no interleaving inside a
//!   decision.
//! * **Tenancy** — each shard owns a bounded LRU pool of `Session`s, one
//!   per active tenant, seeded by [`tenant_seed`] (a pure function of the
//!   service seed and the tenant id — *not* of the shard count). Evicting
//!   a tenant saves only its query cursor ([`Session::query_index`](uncertain_core::Session::query_index)); a
//!   later request rebuilds the session with [`Session::resume_at`](uncertain_core::Session::resume_at) and
//!   every future sample is bitwise what the evicted session would have
//!   drawn. Determinism survives eviction; only cache warmth is lost.
//! * **Backpressure** — each shard is fronted by a bounded MPSC queue.
//!   When it is full the client's request fails fast with
//!   [`ServeError::QueueFull`] instead of buffering unboundedly.
//! * **Deadlines** — a request may carry a deadline. It is checked when
//!   the request is dequeued and again between SPRT batches (and between
//!   fixed-size sampling chunks for `e`/`stats`), so an expensive decision
//!   aborts promptly with [`ServeError::Timeout`] — without poisoning the
//!   shard: the aborted request consumes exactly the query indices the
//!   completed request would have, so subsequent results are unaffected.
//! * **Graceful shutdown** — [`Service::shutdown`] stops admitting new
//!   requests, drains every queued request (each gets a real reply), joins
//!   the shard workers, and returns the final [`ServeMetrics`].
//!
//! # Example
//!
//! ```
//! use uncertain_core::Uncertain;
//! use uncertain_serve::{ServeConfig, Service};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = Service::start(ServeConfig::default().with_shards(2).with_seed(7));
//! let client = service.client();
//!
//! let speed = Uncertain::normal(57.0, 6.0)?;
//! let outcome = client.evaluate(42, &speed.gt(60.0), 0.9)?;
//! assert!(!outcome.accepted, "not 90% sure the speed exceeds 60");
//!
//! let mean = client.e(42, &speed, 1000)?;
//! assert!((mean - 57.0).abs() < 1.0);
//!
//! let metrics = service.shutdown();
//! assert_eq!(metrics.requests(), 2);
//! # Ok(())
//! # }
//! ```

mod client;
mod config;
mod metrics;
mod net;
pub mod poll;
mod service;
mod traced;
mod transport;
pub mod wire;

pub use client::{Pending, ServeClient};
pub use config::{ServeConfig, ServeConfigBuilder};
pub use metrics::{NetMetrics, ServeMetrics, ShardMetrics};
pub use net::{Listener, TcpTransport};
pub use service::Service;
pub use transport::{
    ChannelTransport, Reply, ReplyReceiver, Request, RequestKind, Response, Transport,
};
/// Re-export: the request-failure error (defined in `uncertain-core` so it
/// participates in the unified [`uncertain_core::Error`]).
pub use uncertain_core::ServeError;
/// Re-export: the latency-summary type [`ShardMetrics`] exposes for the
/// queue-wait / plan-compile / sampling phases of a request.
pub use uncertain_obs::HistogramSnapshot;
/// Re-exports: the tracing vocabulary requests and introspection speak —
/// the wire-propagated [`TraceContext`], the retained [`RequestTrace`]
/// span trees, and the flight recorder's policy/stats types.
pub use uncertain_obs::{FlightConfig, FlightStats, RequestTrace, Span, SpanEvent, TraceContext};

/// SplitMix64 finalizer: the same avalanche the core runtime uses for
/// substream derivation, applied here to tenant ids and shard routing.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The substream seed of `tenant`'s sessions under `service_seed`.
///
/// A pure function of the two ids and nothing else — in particular not of
/// the shard count or pool occupancy — which is what makes per-tenant
/// results reproducible across service topologies. Exposed so tests and
/// offline replays can run `Session::seeded(tenant_seed(s, t))` as the
/// reference for what the service must return.
pub fn tenant_seed(service_seed: u64, tenant: u64) -> u64 {
    mix64(service_seed ^ mix64(tenant))
}

/// The shard that owns `tenant` in a service with `shards` workers.
///
/// Deterministic, so every client handle routes a tenant to the same
/// queue; distinct from [`tenant_seed`]'s mixing so that changing the
/// shard count only remaps tenants, never reseeds them.
pub fn shard_of(tenant: u64, shards: usize) -> usize {
    (mix64(tenant ^ 0xA076_1D64_78BD_642F) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_seed_ignores_topology() {
        // Same inputs, same seed; different tenants, different seeds.
        assert_eq!(tenant_seed(1, 2), tenant_seed(1, 2));
        assert_ne!(tenant_seed(1, 2), tenant_seed(1, 3));
        assert_ne!(tenant_seed(1, 2), tenant_seed(2, 2));
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for shards in [1, 2, 4, 8] {
            for tenant in 0..100 {
                let s = shard_of(tenant, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(tenant, shards));
            }
        }
    }

    #[test]
    fn shard_routing_spreads_tenants() {
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for tenant in 0..1000 {
            counts[shard_of(tenant, shards)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 150, "shard {i} got only {c}/1000 tenants");
        }
    }
}
