//! A minimal OS readiness-polling shim — the mechanism under the
//! event-driven [`Listener`](crate::Listener).
//!
//! On Linux this is epoll through raw `extern "C"` declarations (the
//! symbols live in the libc that `std` already links, so no new crate
//! dependency); elsewhere on unix it falls back to `poll(2)`, rebuilding
//! the pollfd array from a registration table per wait. Both backends are
//! **level-triggered**: a socket with unread input (or unflushed output
//! interest) keeps reporting ready until it is drained, which is the
//! forgiving semantics the connection state machines are written against.
//!
//! The module is public so that load generators (`bench_net` drives
//! thousands of client sockets from two threads with it) and tests can
//! reuse the shim instead of spawning a thread per socket — but it is an
//! implementation detail of this crate, not a stable, general-purpose
//! polling API.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// What a registered file descriptor should be watched for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or closed/errored — hangup and error
    /// conditions are reported as readable so the read path discovers
    /// them).
    pub readable: bool,
    /// Wake when the fd accepts writes again.
    pub writable: bool,
}

impl Interest {
    /// Read-side interest only — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read and write interest — a connection with a backed-up write
    /// buffer still wants to hear about inbound frames.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    /// Write-side interest only — a draining connection that has stopped
    /// reading but still owes the peer replies.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };

    /// No interest — a draining connection waiting only on completion
    /// wakeups. The fd stays registered (error/hangup conditions are
    /// still reported) but neither data direction wakes the loop.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable — includes hangup/error, so a read is always the probe.
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Hard hangup or error: the peer is gone in both directions (or the
    /// fd errored). Reported regardless of interest; a connection that is
    /// only draining replies should give up when it sees this.
    pub hup: bool,
}

const fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        // Round up so a 100µs backoff never becomes a busy-loop of
        // zero-timeout waits.
        Some(d) => {
            let ms = d.as_millis();
            let ms = if ms > i32::MAX as u128 {
                i32::MAX as u128
            } else {
                ms
            };
            if ms == 0 {
                1
            } else {
                ms as i32
            }
        }
        None => -1,
    }
}

// ---------------------------------------------------------------------------
// Linux: epoll
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod imp {
    use super::{timeout_ms, Interest, PollEvent};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// The kernel's `struct epoll_event`. Packed on x86 so the 64-bit data
    /// field sits at offset 4, matching the ABI `epoll_wait` fills.
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
    #[derive(Clone, Copy, Debug)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        // EOF arrives as EPOLLIN (read then returns 0), so plain
        // read-interest is enough to notice a half-close; ERR/HUP are
        // reported unconditionally by the kernel.
        let mut m = 0;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    /// The epoll backend.
    #[derive(Debug)]
    pub struct Poller {
        epfd: c_int,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Self {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(|_| ())
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            let n = loop {
                let ret = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as c_int,
                        timeout_ms(timeout),
                    )
                };
                match cvt(ret) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &self.buf[..n] {
                let bits = ev.events;
                events.push(PollEvent {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                    hup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Other unix: poll(2)
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{timeout_ms, Interest, PollEvent};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const POLLNVAL: c_short = 0x020;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// The `poll(2)` backend: a registration table, re-flattened into a
    /// pollfd array on every wait. O(registered fds) per wait instead of
    /// epoll's O(ready fds) — correct everywhere unix, merely slower.
    #[derive(Debug)]
    pub struct Poller {
        registered: HashMap<RawFd, (u64, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Self {
                registered: HashMap::new(),
            })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.registered.insert(fd, (token, interest)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            match self.registered.get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            match self.registered.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            let mut fds: Vec<PollFd> = self
                .registered
                .iter()
                .map(|(&fd, &(_, interest))| PollFd {
                    fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            loop {
                let ret =
                    unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms(timeout)) };
                if ret >= 0 {
                    break;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            }
            for pfd in &fds {
                if pfd.revents == 0 {
                    continue;
                }
                let (token, _) = self.registered[&pfd.fd];
                events.push(PollEvent {
                    token,
                    readable: pfd.revents & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: pfd.revents & (POLLOUT | POLLERR | POLLHUP) != 0,
                    hup: pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
                });
            }
            Ok(())
        }
    }
}

/// A level-triggered readiness poller over nonblocking file descriptors:
/// epoll on Linux, `poll(2)` on other unix platforms.
///
/// Registered fds are identified by a caller-chosen `token`, which is what
/// [`Poller::wait`] hands back. The poller never owns the fds — callers
/// keep their sockets and must [`Poller::remove`] before closing them (the
/// `poll(2)` backend would otherwise keep polling a dead fd).
#[derive(Debug)]
pub struct Poller {
    inner: imp::Poller,
}

impl Poller {
    /// A new, empty poller.
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            inner: imp::Poller::new()?,
        })
    }

    /// Starts watching `fd` under `token`.
    pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.add(fd, token, interest)
    }

    /// Changes what an already-registered `fd` is watched for.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd, token, interest)
    }

    /// Stops watching `fd`.
    pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
        self.inner.remove(fd)
    }

    /// Blocks until at least one registered fd is ready (or the timeout
    /// passes — an empty `events` after return means timeout), filling
    /// `events` with the ready set.
    pub fn wait(
        &mut self,
        events: &mut Vec<PollEvent>,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        self.inner.wait(events, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poller_reports_readable_after_write() {
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        let mut poller = Poller::new().expect("poller");
        poller.add(b.as_raw_fd(), 7, Interest::READ).expect("add");

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty(), "nothing written yet");

        a.write_all(b"x").expect("write");
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: still readable until drained.
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        let mut buf = [0u8; 8];
        let n = (&b).read(&mut buf).expect("read");
        assert_eq!(n, 1);
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty(), "drained");
    }

    #[test]
    fn poller_reports_hangup_as_readable() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        let mut poller = Poller::new().expect("poller");
        poller.add(b.as_raw_fd(), 3, Interest::READ).expect("add");
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert!(
            events.iter().any(|e| e.token == 3 && e.readable),
            "peer close must surface as readable (read then sees EOF)"
        );
    }

    #[test]
    fn poller_modify_and_remove_change_the_ready_set() {
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        let mut poller = Poller::new().expect("poller");
        poller.add(b.as_raw_fd(), 1, Interest::READ).expect("add");
        a.write_all(b"y").expect("write");

        // Drop read interest: the pending byte no longer wakes us (an idle
        // socket is trivially writable, so watch nothing instead).
        poller
            .modify(
                b.as_raw_fd(),
                1,
                Interest {
                    readable: false,
                    writable: false,
                },
            )
            .expect("modify");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty(), "read interest was dropped");

        poller
            .modify(b.as_raw_fd(), 1, Interest::READ_WRITE)
            .expect("modify");
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert!(events.iter().any(|e| e.readable && e.writable));

        poller.remove(b.as_raw_fd()).expect("remove");
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty(), "removed fd must not report");
    }
}
