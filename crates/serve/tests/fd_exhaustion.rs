//! Accept-path degradation under file-descriptor exhaustion: when
//! `accept` fails with `EMFILE`, the listener must pause (counted in
//! `accept_stalls`), survive, and pick the pending connection up once
//! descriptors free up — instead of spinning or dying.
//!
//! This test lowers `RLIMIT_NOFILE` for the whole process, so it lives
//! alone in its own integration-test binary.

#![cfg(target_os = "linux")]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::FromRawFd;
use std::time::{Duration, Instant};

use uncertain_core::Uncertain;
use uncertain_serve::wire::{self, MAGIC};
use uncertain_serve::{Request, RequestKind, ServeClient, ServeConfig, Service};

const RLIMIT_NOFILE: i32 = 7;
const AF_INET: i32 = 2;
const SOCK_STREAM: i32 = 1;

#[repr(C)]
#[derive(Clone, Copy)]
struct RLimit {
    cur: u64,
    max: u64,
}

#[repr(C)]
struct SockAddrIn {
    family: u16,
    /// Network byte order.
    port: u16,
    /// Network byte order.
    addr: u32,
    zero: [u8; 8],
}

extern "C" {
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn connect(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
}

/// Restores the saved fd limit on drop, so a failing assertion cannot
/// leave the process crippled for the harness's own teardown.
struct LimitGuard(RLimit);

impl Drop for LimitGuard {
    fn drop(&mut self) {
        unsafe { setrlimit(RLIMIT_NOFILE, &self.0) };
    }
}

fn open_fds() -> u64 {
    std::fs::read_dir("/proc/self/fd")
        .expect("proc fd dir")
        .count() as u64
}

#[test]
fn fd_exhaustion_pauses_accepting_and_recovers() {
    let service = Service::start(
        ServeConfig::builder()
            .shards(1)
            .seed(2014)
            .event_loops(1)
            .bind_addr("127.0.0.1:0")
            .build()
            .expect("valid config"),
    );
    let listener = service.listen().expect("listen");
    let addr = listener.local_addr();
    let SocketAddr::V4(v4) = addr else {
        panic!("loopback listener is v4");
    };

    // Baseline round-trip: everything the service needs (event loop,
    // wake pipes, shard channels) is already allocated.
    let client = ServeClient::connect(addr).expect("baseline connect");
    client
        .evaluate(1, &Uncertain::bernoulli(0.9).unwrap(), 0.5)
        .expect("baseline evaluate");
    drop(client);

    // The client socket is created *before* the limit drops — connect(2)
    // on an existing fd allocates nothing, while the server's accept(2)
    // must allocate and will hit EMFILE.
    let fd = unsafe { socket(AF_INET, SOCK_STREAM, 0) };
    assert!(fd >= 0, "pre-created client socket");

    let mut old = RLimit { cur: 0, max: 0 };
    assert_eq!(unsafe { getrlimit(RLIMIT_NOFILE, &mut old) }, 0);
    let _guard = LimitGuard(old);
    let lowered = RLimit {
        cur: open_fds(),
        max: old.max,
    };
    assert_eq!(
        unsafe { setrlimit(RLIMIT_NOFILE, &lowered) },
        0,
        "lower fd limit to current usage"
    );

    let sockaddr = SockAddrIn {
        family: AF_INET as u16,
        port: v4.port().to_be(),
        addr: u32::from(*v4.ip()).to_be(),
        zero: [0; 8],
    };
    assert_eq!(
        unsafe { connect(fd, &sockaddr, std::mem::size_of::<SockAddrIn>() as u32) },
        0,
        "handshake completes in the backlog even though accept cannot run"
    );

    // The listener's readiness fires, accept fails with EMFILE, and the
    // loop must record the stall and pause rather than spin or die.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if service.metrics().net.accept_stalls > 0 {
            break;
        }
        assert!(Instant::now() < deadline, "accept stall was never recorded");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Free descriptors again; within one backoff the loop resumes and
    // the parked connection gets accepted and served.
    assert_eq!(unsafe { setrlimit(RLIMIT_NOFILE, &old) }, 0);

    let mut stream = unsafe { TcpStream::from_raw_fd(fd) };
    stream.write_all(&MAGIC).expect("preamble");
    let payload = wire::encode_request(
        11,
        &Request {
            tenant: 2,
            kind: RequestKind::Evaluate {
                cond: Uncertain::bernoulli(0.9).unwrap(),
                threshold: 0.5,
            },
            timeout: None,
            strategy: None,
            trace: None,
        },
    )
    .expect("encode");
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .expect("frame length");
    stream.write_all(&payload).expect("frame payload");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut len = [0u8; 4];
    stream
        .read_exact(&mut len)
        .expect("parked connection served");
    let mut reply = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut reply).expect("reply payload");
    let (id, _trace, result) = wire::decode_response(&reply).expect("decode reply");
    assert_eq!(id, 11);
    result.expect("decision over the recovered connection");
    drop(stream);

    // Fresh connections work again too.
    let client = ServeClient::connect(addr).expect("post-recovery connect");
    client
        .evaluate(3, &Uncertain::bernoulli(0.9).unwrap(), 0.5)
        .expect("post-recovery evaluate");
    drop(client);
    drop(listener);

    let metrics = service.shutdown();
    assert!(metrics.net.accept_stalls >= 1);
}
