//! Telemetry tests of the service: request-phase latency histograms,
//! pool-gauge freshness under load, and Prometheus exposition.

use std::time::Duration;
use uncertain_core::Uncertain;
use uncertain_obs::PromWriter;
use uncertain_serve::{ServeClient, ServeConfig, Service};

fn decisive() -> Uncertain<bool> {
    Uncertain::bernoulli(0.9).unwrap()
}

#[test]
fn request_phase_histograms_cover_every_request() {
    let service = Service::start(ServeConfig::default().with_shards(2).with_seed(13));
    let client = service.client();
    let cond = decisive();
    const N: u64 = 20;
    for tenant in 0..4 {
        for _ in 0..N / 4 {
            client.evaluate(tenant, &cond, 0.5).unwrap();
        }
    }
    let metrics = service.shutdown();

    // Every answered request was dequeued once and executed once, so each
    // phase histogram saw exactly one observation per request.
    assert_eq!(metrics.queue_wait().count, N);
    assert_eq!(metrics.compile().count, N);
    assert_eq!(metrics.sampling().count, N);
    // Four cold sessions compiled a plan; those requests spent real time
    // compiling, while the 16 warm ones recorded an exact zero.
    assert!(metrics.compile().max > 0, "cold-cache compiles took time");
    assert!(
        metrics.compile().p50 == 0,
        "most requests hit the plan cache and compiled nothing, p50 = {}",
        metrics.compile().p50
    );
    assert!(metrics.sampling().sum > 0, "SPRT decisions drew samples");
    // Phase split is consistent per shard: sampling excludes compile.
    for shard in &metrics.shards {
        assert_eq!(shard.queue_wait.count, shard.requests);
        assert_eq!(shard.compile.count, shard.sampling.count);
    }
}

#[test]
fn pool_gauges_are_fresh_at_request_boundaries_under_load() {
    // A shard that never goes idle must still publish its pool-derived
    // gauges (cache counters, live sessions) after each request — not
    // only when its queue drains.
    let service = Service::start(ServeConfig::default().with_shards(1).with_seed(17));
    let client = service.client();
    let slow = Uncertain::from_fn("slow", |rng| {
        std::thread::sleep(Duration::from_millis(2));
        rng.next_u32() % 10 < 9
    });

    // Three pipelined requests keep the worker continuously busy: it goes
    // straight from one to the next without an idle boundary.
    let pending: Vec<_> = (0..3)
        .map(|_| client.submit_evaluate(1, &slow, 0.5, None).unwrap())
        .collect();
    let mut pending = pending.into_iter();
    pending.next().unwrap().wait().unwrap();
    pending.next().unwrap().wait().unwrap();
    // The second reply precedes the worker's boundary publication by a
    // hair; give it a moment, while the third request keeps it busy.
    std::thread::sleep(Duration::from_millis(20));

    let metrics = service.metrics();
    assert_eq!(metrics.sessions_live(), 1, "live session gauge is fresh");
    assert!(
        metrics.cache().misses >= 1,
        "the session's plan compile is already visible"
    );
    pending.next().unwrap().wait().unwrap();
    service.shutdown();
}

#[test]
fn prometheus_rendering_reports_the_scrape_series() {
    let service = Service::start(ServeConfig::default().with_shards(2).with_seed(19));
    let client = service.client();
    let cond = decisive();
    for tenant in 0..4 {
        client.evaluate(tenant, &cond, 0.5).unwrap();
    }
    let metrics = service.shutdown();
    let body = metrics.render_prometheus();

    assert!(body.contains("# TYPE uncertain_requests_total counter"));
    assert!(body.contains("uncertain_requests_total 4\n"));
    assert!(body.contains("uncertain_decisions_total 4\n"));
    assert!(body.contains("# TYPE uncertain_queue_wait_ns summary"));
    assert!(body.contains("uncertain_queue_wait_ns{quantile=\"0.99\"}"));
    assert!(body.contains("uncertain_queue_wait_ns_count 4\n"));
    assert!(body.contains("uncertain_compile_ns_count 4\n"));
    assert!(body.contains("uncertain_sampling_ns_count 4\n"));
    assert!(body.contains("uncertain_plan_cache_misses_total 4\n"));
    assert!(body.contains("uncertain_sessions_live 4\n"));
    // One queue-depth series per shard, all drained.
    assert!(body.contains("uncertain_queue_depth{shard=\"0\"} 0\n"));
    assert!(body.contains("uncertain_queue_depth{shard=\"1\"} 0\n"));
    // Every series the exposition format requires is newline-terminated.
    assert!(body.ends_with('\n'));
}

#[test]
fn event_loop_counters_reach_the_scrape_and_labels_stay_escaped() {
    let service = Service::start(
        ServeConfig::builder()
            .shards(2)
            .seed(23)
            .event_loops(1)
            .bind_addr("127.0.0.1:0")
            .build()
            .expect("valid config"),
    );
    let listener = service.listen().expect("listen");
    let client = ServeClient::connect(listener.local_addr()).expect("connect");
    let cond = decisive();
    // Pipelined submits give the coalescer a chance to batch replies.
    let pending: Vec<_> = (0..8)
        .map(|t| client.submit_evaluate(t, &cond, 0.5, None).expect("submit"))
        .collect();
    for p in pending {
        p.wait().expect("evaluate");
    }
    drop(client);
    drop(listener);
    let metrics = service.shutdown();
    let body = metrics.render_prometheus();

    // The event-loop counters all reach the scrape, typed and sampled.
    for series in [
        "uncertain_net_accept_stalls_total",
        "uncertain_net_event_loop_wakeups_total",
        "uncertain_net_partial_reads_total",
        "uncertain_net_writev_batches_total",
        "uncertain_net_connections_registered_total",
    ] {
        assert!(
            body.contains(&format!("# TYPE {series} counter")),
            "missing TYPE line for {series}"
        );
        assert!(
            body.lines().any(|l| {
                l.strip_prefix(series)
                    .and_then(|rest| rest.strip_prefix(' '))
                    .is_some_and(|v| v.parse::<u64>().is_ok())
            }),
            "missing sample line for {series}"
        );
    }
    // One registered connection, one event loop that provably woke up.
    assert!(body.contains("uncertain_net_connections_registered_total 1\n"));
    assert!(!body.contains("uncertain_net_event_loop_wakeups_total 0\n"));

    // A hostile label value must not be able to terminate the quoted
    // string or inject a sample line — the same writer the service's
    // scrape uses escapes it.
    let mut w = PromWriter::new();
    let hostile = "evil\"} 1\nuncertain_net_accept_stalls_total 9999\\";
    w.gauge_per(
        "uncertain_probe",
        "escape probe",
        "shard",
        &[(hostile.to_string(), 1.0)],
    );
    let rendered = w.finish();
    assert!(
        rendered.contains(
            "uncertain_probe{shard=\"evil\\\"} 1\\nuncertain_net_accept_stalls_total 9999\\\\\"} 1\n"
        ),
        "label value was not escaped: {rendered}"
    );
    assert!(
        !rendered.contains("\nuncertain_net_accept_stalls_total 9999"),
        "hostile label injected a fresh sample line"
    );
}
