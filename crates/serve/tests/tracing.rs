//! End-to-end tests of request tracing: a traced TCP request must yield
//! one connected span tree whose id round-trips the wire and is served by
//! `GET /traces/<id>`; tracing must never change what is computed; and
//! the flight recorder must retain errors unconditionally.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use uncertain_core::Uncertain;
use uncertain_serve::{ServeClient, ServeConfig, ServeError, Service};

/// A network with shared sub-expressions and enough variety that traced
/// requests exercise compile + SPRT sampling.
fn evidence() -> Uncertain<bool> {
    let x = Uncertain::normal(0.0, 1.0).unwrap();
    let y = Uncertain::uniform(-1.0, 2.0).unwrap();
    let sum = &x + &y;
    (&sum + &x).lt(4.0) & (sum * 2.0).gt(-8.0) & Uncertain::bernoulli(0.95).unwrap()
}

fn expr() -> Uncertain<f64> {
    let x = Uncertain::normal(3.0, 1.0).unwrap();
    let r = Uncertain::rayleigh(2.0).unwrap();
    (&x * &x + r).sqrt()
}

/// One bounded HTTP GET against the service's port, returning the raw
/// response (status line + headers + body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes())
        .expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    response
}

#[test]
fn traced_tcp_requests_build_a_connected_span_tree_served_over_http() {
    const TENANTS: u64 = 5;
    // Two shards, one-session pools: every tenant switch forces an
    // eviction, so traced requests run through session rebuild + plan
    // recompile — the compile span must appear.
    let config = ServeConfig::builder()
        .shards(2)
        .sessions_per_shard(1)
        .seed(2014)
        .bind_addr("127.0.0.1:0")
        .build()
        .expect("valid config");
    let service = Service::start(config);
    let listener = service.listen().expect("listen");
    let addr = listener.local_addr();
    let tcp = ServeClient::connect_pooled(addr, 2).expect("connect");

    let cond = evidence();
    let mut traced_ids = Vec::new();
    for round in 0..2 {
        for tenant in 0..TENANTS {
            let (outcome, echoed) = tcp
                .evaluate_traced(tenant, &cond, 0.5)
                .expect("traced evaluate");
            assert!(outcome.samples > 0, "this network needs sampling");
            let id = echoed.expect("traced replies echo the trace id");
            if round == 0 {
                traced_ids.push((tenant, id));
            }
        }
    }

    // Each first-round trace: fetch it back over HTTP by the id the
    // *client* observed — the round-trip the wire header exists for.
    for &(tenant, id) in &traced_ids {
        let response = http_get(addr, &format!("/traces/{id}"));
        assert!(
            response.starts_with("HTTP/1.1 200 OK"),
            "trace {id} not retained: {response:.120}"
        );
        let body = response
            .split("\r\n\r\n")
            .nth(1)
            .expect("body after headers");
        assert!(body.contains(&format!("\"trace_id\":{id}")));
        assert!(body.contains(&format!("\"tenant\":{tenant}")));

        // The span tree is connected: exactly one root (parent 0 — the
        // client sent no parent span), and every other span parented at
        // an id that exists in the same trace.
        let trace = service.trace(id).expect("trace retained server-side");
        assert_eq!(trace.trace_id, id);
        let roots: Vec<_> = trace.spans.iter().filter(|s| s.parent == 0).collect();
        assert_eq!(roots.len(), 1, "one connected tree");
        assert_eq!(roots[0].name, "request");
        for span in &trace.spans {
            if span.parent != 0 {
                assert!(
                    trace.spans.iter().any(|s| s.id == span.parent),
                    "span {} is orphaned",
                    span.name
                );
            }
            assert!(span.end_ns >= span.start_ns);
        }
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"queue"), "queue span missing: {names:?}");
        assert!(
            names.contains(&"compile"),
            "forced eviction means a cold plan cache: {names:?}"
        );
        assert!(names.contains(&"decide"), "decide span missing: {names:?}");
        let decide = trace.spans.iter().find(|s| s.name == "decide").unwrap();
        assert!(
            decide.events.iter().any(|e| e.name == "sprt_batch"),
            "the SPRT trajectory must land as events"
        );
    }

    // The JSON-lines listing serves the retained set, newest last.
    let listing = http_get(addr, "/traces");
    assert!(listing.starts_with("HTTP/1.1 200 OK"));
    assert!(listing.contains("application/x-ndjson"));
    let body = listing.split("\r\n\r\n").nth(1).unwrap_or("");
    assert!(
        body.lines().count() >= traced_ids.len(),
        "all first-round traces retained under the default policy"
    );

    // /health answers liveness; an unknown id 404s.
    let health = http_get(addr, "/health");
    assert!(health.starts_with("HTTP/1.1 200 OK"));
    assert!(health.contains("\"status\":\"ok\""));
    let missing = http_get(addr, "/traces/1");
    assert!(missing.starts_with("HTTP/1.1 404"), "got: {missing:.80}");

    let metrics = service.metrics();
    assert_eq!(metrics.flight.offered, 2 * TENANTS);
    assert!(metrics.flight.retained >= traced_ids.len() as u64);

    listener.shutdown();
    service.shutdown();
}

#[test]
fn tracing_never_changes_what_is_computed() {
    // Identical services; one answers every request traced, the other
    // untraced. Decisions, means, and summaries must be bitwise equal —
    // tracing observes the sample stream, it never participates in it.
    let config = ServeConfig::builder()
        .shards(2)
        .sessions_per_shard(1)
        .seed(77)
        .build()
        .expect("valid config");
    let traced_service = Service::start(config.clone());
    let plain_service = Service::start(config);
    let traced = traced_service.client();
    let plain = plain_service.client();

    let cond = evidence();
    let expr = expr();
    for tenant in 0..4u64 {
        for _round in 0..3 {
            let (a, id) = traced
                .evaluate_traced(tenant, &cond, 0.5)
                .expect("traced evaluate");
            let b = plain.evaluate(tenant, &cond, 0.5).expect("plain evaluate");
            assert_eq!(a, b, "tracing changed a verdict (tenant {tenant})");
            assert!(id.is_some());

            // Interleave sampling queries so any perturbation of the
            // cursor or stream would surface downstream too.
            let ma = traced.e(tenant, &expr, 500).expect("traced-service e");
            let mb = plain.e(tenant, &expr, 500).expect("plain-service e");
            assert_eq!(ma.to_bits(), mb.to_bits());
        }
    }

    assert!(traced_service.metrics().flight.offered >= 12);
    assert_eq!(plain_service.metrics().flight.offered, 0);
    traced_service.shutdown();
    plain_service.shutdown();
}

#[test]
fn errors_are_always_retained_by_the_flight_recorder() {
    let service = Service::start(ServeConfig::default().with_shards(1).with_seed(9));
    let client = service.client();

    let expr = expr();
    let pending = client
        .submit_evaluate_traced(1, &evidence(), 0.5, Some(Duration::from_millis(0)))
        .expect("submit");
    let submitted = pending.trace_id().expect("submitted under a trace id");
    let err = pending.wait_traced().expect_err("0ms deadline must expire");
    assert_eq!(err, ServeError::Timeout);

    let trace = service
        .trace(submitted)
        .expect("timeout traces are retained unconditionally");
    assert_eq!(trace.status, "timeout");
    assert!(trace.error);

    // The tenant's stream is untouched by the traced failure: results
    // keep matching a fresh reference service.
    let reference = Service::start(ServeConfig::default().with_shards(1).with_seed(9));
    let a = client.e(1, &expr, 400).expect("after failure");
    let b = reference.client().e(1, &expr, 400).expect("reference");
    assert_eq!(a.to_bits(), b.to_bits());

    service.shutdown();
    reference.shutdown();
}
