//! End-to-end tests of the TCP transport: remote decisions must be
//! bitwise identical to in-process ones, hostile frames must be rejected
//! without harming the service, and the metrics endpoint must answer a
//! plain HTTP scrape.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use uncertain_core::{Uncertain, WireGraph};
use uncertain_serve::{ServeClient, ServeConfig, ServeError, Service};

/// A wire-expressible evidence network with shared sub-expressions, so
/// the round-trip also covers correlation-preserving decode.
fn evidence() -> Uncertain<bool> {
    let x = Uncertain::normal(0.0, 1.0).unwrap();
    let y = Uncertain::uniform(-1.0, 2.0).unwrap();
    let sum = &x + &y;
    (&sum + &x).lt(4.0) & (sum * 2.0).gt(-8.0) & Uncertain::bernoulli(0.95).unwrap()
}

fn expr() -> Uncertain<f64> {
    let x = Uncertain::normal(3.0, 1.0).unwrap();
    let r = Uncertain::rayleigh(2.0).unwrap();
    (&x * &x + r).sqrt()
}

fn service_pair(shards: usize) -> (Service, Service) {
    let config = ServeConfig::builder()
        .shards(shards)
        // A one-session pool forces an eviction on every tenant switch:
        // the remote path must stay bitwise correct through constant
        // session rebuild + cursor resume.
        .sessions_per_shard(1)
        .seed(2014)
        .bind_addr("127.0.0.1:0")
        .build()
        .expect("valid config");
    (Service::start(config.clone()), Service::start(config))
}

#[test]
fn tcp_results_are_bitwise_identical_to_in_process() {
    const TENANTS: u64 = 6;
    for shards in [1usize, 2, 4] {
        let (reference, remote) = service_pair(shards);
        let listener = remote.listen().expect("listen");
        let local = reference.client();
        let tcp = ServeClient::connect_pooled(listener.local_addr(), 2).expect("connect");

        let cond = evidence();
        let expr = expr();
        for _round in 0..3 {
            for tenant in 0..TENANTS {
                let a = local.evaluate(tenant, &cond, 0.5).expect("local evaluate");
                let b = tcp.evaluate(tenant, &cond, 0.5).expect("tcp evaluate");
                assert_eq!(a, b, "outcome diverged (shards={shards}, tenant={tenant})");

                let ma = local.e(tenant, &expr, 700).expect("local e");
                let mb = tcp.e(tenant, &expr, 700).expect("tcp e");
                assert_eq!(
                    ma.to_bits(),
                    mb.to_bits(),
                    "mean diverged (shards={shards}, tenant={tenant})"
                );

                let sa = local.stats(tenant, &expr, 300).expect("local stats");
                let sb = tcp.stats(tenant, &expr, 300).expect("tcp stats");
                assert_eq!(
                    sa, sb,
                    "summary diverged (shards={shards}, tenant={tenant})"
                );
            }
        }

        let remote_metrics = remote.metrics();
        assert!(remote_metrics.net.frames_in >= TENANTS * 9);
        assert_eq!(remote_metrics.net.frames_in, remote_metrics.net.frames_out);
        if shards < TENANTS as usize {
            assert!(
                remote_metrics.sessions_evicted() > 0,
                "the one-session pools should be evicting"
            );
        }
        listener.shutdown();
        remote.shutdown();
        reference.shutdown();
    }
}

/// Raw-socket framing helpers for the hostile-bytes tests.
fn send_frame(stream: &mut TcpStream, payload: &[u8]) {
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .and_then(|()| stream.write_all(payload))
        .expect("frame write");
}

fn recv_frame(stream: &mut TcpStream) -> Vec<u8> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("frame length");
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut payload).expect("frame payload");
    payload
}

#[test]
fn malformed_frames_get_error_replies_and_the_service_survives() {
    let service = Service::start(ServeConfig::default().with_shards(1).with_seed(7));
    let listener = service.listen().expect("listen");
    let addr = listener.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"UNC1").expect("magic");

    // Garbage after a valid correlation id: correlated error reply, and
    // the connection stays usable.
    let mut garbage = 42u64.to_le_bytes().to_vec();
    garbage.extend_from_slice(&[0xFF; 9]);
    send_frame(&mut stream, &garbage);
    let reply = recv_frame(&mut stream);
    assert_eq!(u64::from_le_bytes(reply[..8].try_into().unwrap()), 42);
    assert_eq!(reply[8], 0, "error replies echo no trace id");
    assert_ne!(reply[9], 0, "garbage must not decode to a success");

    // A hand-assembled valid Pr request on the same connection.
    let cond = Uncertain::bernoulli(0.9).unwrap();
    let mut valid = Vec::new();
    valid.extend_from_slice(&43u64.to_le_bytes()); // id
    valid.extend_from_slice(&1u64.to_le_bytes()); // tenant
    valid.extend_from_slice(&0u64.to_le_bytes()); // no deadline
    valid.push(0); // strategy: inherit
    valid.push(0); // trace: none
    valid.push(2); // kind: Pr
    valid.extend_from_slice(&0.5f64.to_le_bytes()); // threshold
    valid.extend_from_slice(&WireGraph::from_bool(&cond).unwrap().to_bytes());
    send_frame(&mut stream, &valid);
    let reply = recv_frame(&mut stream);
    assert_eq!(u64::from_le_bytes(reply[..8].try_into().unwrap()), 43);
    assert_eq!(reply[8], 0, "untraced replies carry no trace echo");
    assert_eq!(reply[9], 0, "valid request must succeed");
    assert_eq!(reply[10], 2, "Pr replies are decisions");
    assert_eq!(reply[11], 1, "Pr[bernoulli(0.9)] > 0.5 holds");
    drop(stream);

    // A frame that claims more bytes than it delivers: the server closes
    // that connection...
    let mut truncated = TcpStream::connect(addr).expect("connect");
    truncated.write_all(b"UNC1").expect("magic");
    truncated.write_all(&100u32.to_le_bytes()).expect("length");
    truncated.write_all(&[0u8; 10]).expect("partial payload");
    drop(truncated);

    // ...and an oversized length prefix likewise...
    let mut oversized = TcpStream::connect(addr).expect("connect");
    oversized.write_all(b"UNC1").expect("magic");
    oversized
        .write_all(&u32::MAX.to_le_bytes())
        .expect("length");
    oversized.flush().expect("flush");
    let mut end = Vec::new();
    let _ = oversized.read_to_end(&mut end); // server hangs up
    assert!(end.is_empty());

    // ...while the service keeps serving fresh connections.
    let tcp = ServeClient::connect(addr).expect("connect");
    assert!(tcp.pr(9, &cond, 0.5).expect("post-hostility request"));

    let metrics = service.metrics();
    assert!(metrics.net.wire_errors >= 1, "hostility must be counted");
    assert!(metrics.net.accepted >= 4);
    listener.shutdown();
    service.shutdown();
}

#[test]
fn http_scrape_returns_prometheus_metrics() {
    let service = Service::start(ServeConfig::default().with_shards(2).with_seed(3));
    let listener = service.listen().expect("listen");

    // Put some work through first so counters are non-trivial.
    let tcp = ServeClient::connect(listener.local_addr()).expect("connect");
    let cond = evidence();
    tcp.evaluate(5, &cond, 0.5).expect("decision");

    let mut stream = TcpStream::connect(listener.local_addr()).expect("connect");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .expect("request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("response");
    assert!(body.starts_with("HTTP/1.1 200 OK"), "got: {body:.80}");
    assert!(body.contains("uncertain_requests_total"));
    assert!(body.contains("uncertain_net_frames_in_total"));
    assert!(body.contains("uncertain_net_http_scrapes_total 1"));
    listener.shutdown();
    service.shutdown();
}

#[test]
fn deadlines_cross_the_wire_and_abort_cooperatively() {
    let service = Service::start(ServeConfig::default().with_shards(1).with_seed(11));
    let listener = service.listen().expect("listen");
    let tcp = ServeClient::connect(listener.local_addr()).expect("connect");

    let expr = expr();
    let err = tcp
        .e_within(1, &expr, 30_000_000, Duration::from_millis(1))
        .expect_err("a 30M-sample request cannot finish in 1ms");
    assert_eq!(err, ServeError::Timeout);

    // The tenant's stream position is deterministic regardless of where
    // the abort landed: the next request matches in-process exactly.
    let reference = Service::start(ServeConfig::default().with_shards(1).with_seed(11));
    let local = reference.client();
    let _ = local.e_within(1, &expr, 30_000_000, Duration::from_millis(1));
    let a = local.e(1, &expr, 500).expect("local");
    let b = tcp.e(1, &expr, 500).expect("tcp");
    assert_eq!(a.to_bits(), b.to_bits());

    listener.shutdown();
    service.shutdown();
    reference.shutdown();
}

#[test]
fn queue_backpressure_maps_to_queue_full_over_the_wire() {
    let config = ServeConfig::builder()
        .shards(1)
        .queue_depth(1)
        .seed(5)
        .build()
        .expect("valid config");
    let service = Service::start(config);
    let listener = service.listen().expect("listen");
    let tcp = ServeClient::connect(listener.local_addr()).expect("connect");

    let expr = expr();
    let pending: Vec<_> = (0..32)
        .map(|_| tcp.submit_e(1, &expr, 1_000_000, None).expect("submit"))
        .collect();
    let results: Vec<_> = pending.into_iter().map(|p| p.wait()).collect();
    assert!(
        results.iter().any(|r| r.is_ok()),
        "some requests must execute"
    );
    assert!(
        results.iter().any(|r| r == &Err(ServeError::QueueFull)),
        "a depth-1 queue under a 32-deep burst must shed load"
    );
    listener.shutdown();
    service.shutdown();
}

#[test]
fn listener_shutdown_drains_inflight_replies() {
    let service = Service::start(ServeConfig::default().with_shards(2).with_seed(21));
    let listener = service.listen().expect("listen");
    let tcp = ServeClient::connect_pooled(listener.local_addr(), 2).expect("connect");

    let expr = expr();
    let pending: Vec<_> = (0..16)
        .map(|t| tcp.submit_e(t, &expr, 50_000, None).expect("submit"))
        .collect();
    listener.shutdown();
    // Every already-admitted request still gets a real reply (the writer
    // drains before the socket closes); nothing hangs.
    for p in pending {
        match p.wait() {
            Ok(m) => assert!(m.is_finite()),
            // A reply can race the half-close; it must fail loudly, not hang.
            Err(ServeError::Transport(_)) | Err(ServeError::Shutdown) => {}
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    // The service itself is still alive for in-process use.
    assert!(service
        .client()
        .e(3, &expr, 100)
        .expect("in-process")
        .is_finite());
    service.shutdown();
}
