//! The service's concurrency contract, tested under real thread
//! interleaving (run these under `RUST_TEST_THREADS=4` in CI):
//!
//! 1. one tenant's requests from two client handles never interleave
//!    within an SPRT decision,
//! 2. per-tenant results are bitwise identical for any shard count (even
//!    under constant session eviction),
//! 3. deadline expiry returns `Timeout` without poisoning the shard or
//!    the tenant's stream.

use std::time::Duration;
use uncertain_core::{EvalConfig, HypothesisOutcome, ServeError, Session, Uncertain};
use uncertain_serve::{tenant_seed, ServeConfig, Service};

fn decisive() -> Uncertain<bool> {
    Uncertain::bernoulli(0.9).unwrap()
}

/// Sort key for comparing outcome multisets.
fn key(o: &HypothesisOutcome) -> (usize, u64, bool, bool) {
    (o.samples, o.estimate.to_bits(), o.accepted, o.conclusive)
}

#[test]
fn same_tenant_requests_from_two_handles_never_interleave() {
    // Every request from either handle is one whole SPRT decision = one
    // session query. If two decisions ever interleaved their sample draws,
    // the observed outcomes could not all come from the reference stream
    // of whole queries 0..2K — so multiset equality against that stream
    // is exactly the non-interleaving property.
    let config = ServeConfig::default().with_shards(2).with_seed(77);
    let service = Service::start(config.clone());
    // Varied sample counts per decision make interleaving detectable.
    let cond = Uncertain::bernoulli(0.7).unwrap();
    const K: usize = 24;
    let tenant = 13;

    let handles: Vec<_> = (0..2)
        .map(|_| {
            let client = service.client();
            let cond = cond.clone();
            std::thread::spawn(move || {
                (0..K)
                    .map(|_| client.evaluate(tenant, &cond, 0.5).unwrap())
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut observed: Vec<HypothesisOutcome> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    service.shutdown();

    let mut reference = Session::seeded(tenant_seed(77, tenant)).with_config(config.eval);
    let mut expected: Vec<HypothesisOutcome> =
        (0..2 * K).map(|_| reference.evaluate(&cond, 0.5)).collect();

    observed.sort_by_key(key);
    expected.sort_by_key(key);
    assert_eq!(observed, expected);
}

#[test]
fn per_tenant_results_are_identical_across_shard_counts() {
    // 16 tenants, a pool of only 2 sessions per shard: the 1-shard run
    // evicts constantly while the 4-shard run keeps more tenants hot.
    // Results must not notice — eviction persists only the query cursor,
    // and tenant seeds are independent of topology.
    let cond = decisive();
    let x = Uncertain::normal(5.0, 2.0).unwrap();
    let run = |shards: usize| -> Vec<Vec<u64>> {
        let service = Service::start(
            ServeConfig::default()
                .with_shards(shards)
                .with_sessions_per_shard(2)
                .with_seed(1234),
        );
        let client = service.client();
        let results = (0..16u64)
            .map(|tenant| {
                let mut bits = Vec::new();
                for _ in 0..3 {
                    let o = client.evaluate(tenant, &cond, 0.5).unwrap();
                    bits.push(o.samples as u64);
                    bits.push(o.estimate.to_bits());
                    bits.push(u64::from(client.pr(tenant, &cond, 0.5).unwrap()));
                    bits.push(client.e(tenant, &x, 500).unwrap().to_bits());
                }
                bits
            })
            .collect();
        service.shutdown();
        results
    };

    let one = run(1);
    let two = run(2);
    let four = run(4);
    assert_eq!(one, two);
    assert_eq!(one, four);
}

#[test]
fn deadline_expiry_returns_timeout_without_poisoning_the_shard() {
    let config = ServeConfig::default().with_shards(1).with_seed(55);
    let service = Service::start(config.clone());
    let client = service.client();
    let tenant = 2;

    // (a) Expired while queued: rejected before touching the session, so
    // no query index is consumed.
    let queue_expired = client.evaluate_within(tenant, &decisive(), 0.5, Duration::ZERO);
    assert_eq!(queue_expired, Err(ServeError::Timeout));

    // (b) Expired mid-SPRT: a conditional pinned at its threshold with
    // slow leaves cannot decide before the deadline; the shard aborts at a
    // batch boundary. The aborted decision consumes exactly one query.
    let slow_marginal = Uncertain::from_fn("slow coin", |rng| {
        std::thread::sleep(Duration::from_millis(1));
        rng.next_u32() & 1 == 0
    });
    let no_cap = EvalConfig::default().with_max_samples(10_000_000);
    let service2 = Service::start(
        ServeConfig::default()
            .with_shards(1)
            .with_seed(55)
            .with_eval(no_cap),
    );
    let client2 = service2.client();
    let aborted = client2.evaluate_within(tenant, &slow_marginal, 0.5, Duration::from_millis(30));
    assert_eq!(aborted, Err(ServeError::Timeout));

    // (c) The tenant's stream is exactly one query further along, and the
    // shard keeps answering — for this tenant and others.
    let cond = decisive();
    let after = client2.evaluate(tenant, &cond, 0.5).unwrap();
    let mut reference = Session::seeded(tenant_seed(55, tenant)).with_config(no_cap);
    reference.resume_at(1);
    assert_eq!(after, reference.evaluate(&cond, 0.5));
    assert!(client2.pr(99, &cond, 0.5).unwrap());
    assert_eq!(service2.metrics().timeouts(), 1);
    service2.shutdown();

    // Back on the first service: the queue-expired request left tenant 2
    // at query 0, exactly as if it had never been admitted.
    let first_real = client.evaluate(tenant, &cond, 0.5).unwrap();
    let mut untouched = Session::seeded(tenant_seed(55, tenant)).with_config(config.eval);
    assert_eq!(first_real, untouched.evaluate(&cond, 0.5));
    assert_eq!(service.metrics().timeouts(), 1);
    service.shutdown();
}

#[test]
fn timed_out_e_requests_keep_the_chunk_cursor_deterministic() {
    // An aborted multi-chunk `e` advances the cursor to where a completed
    // one would have, so the next request is bitwise unaffected.
    let slow = Uncertain::from_fn("slow value", |rng| {
        std::thread::sleep(Duration::from_micros(50));
        rng.next_u32() as f64
    });
    let fast = Uncertain::normal(1.0, 0.5).unwrap();
    let tenant = 4;
    let service = Service::start(ServeConfig::default().with_shards(1).with_seed(91));
    let client = service.client();

    // 3 chunks of 4096; at ~50µs per sample the deadline hits mid-run.
    let aborted = client.e_within(tenant, &slow, 3 * 4096, Duration::from_millis(40));
    assert_eq!(aborted, Err(ServeError::Timeout));
    let after = client.e(tenant, &fast, 100).unwrap();
    service.shutdown();

    // Reference: the aborted request consumed its full 3 query indices.
    let mut reference = Session::seeded(tenant_seed(91, tenant));
    reference.resume_at(3);
    let expected = reference.samples(&fast, 100).iter().sum::<f64>() / 100.0;
    assert_eq!(after.to_bits(), expected.to_bits());
}
