//! Robustness tests of the event-driven listener: a slow-dripping
//! connection must not stall its loop-mates, and hostile framing
//! (truncated, oversized) must close the one connection without harming
//! the service.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::Duration;

use uncertain_core::Uncertain;
use uncertain_serve::wire::{self, MAGIC, MAX_FRAME};
use uncertain_serve::{Request, RequestKind, ServeClient, ServeConfig, Service};

fn cond() -> Uncertain<bool> {
    Uncertain::bernoulli(0.9).unwrap()
}

/// One event loop on purpose: every connection in these tests shares it,
/// so any per-connection stall would be visible to all of them.
fn start_service() -> Service {
    Service::start(
        ServeConfig::builder()
            .shards(2)
            .seed(2014)
            .event_loops(1)
            .bind_addr("127.0.0.1:0")
            .build()
            .expect("valid config"),
    )
}

#[test]
fn a_one_byte_per_tick_writer_does_not_stall_other_connections() {
    let service = start_service();
    let listener = service.listen().expect("listen");
    let addr = listener.local_addr();

    // A valid request frame, to be dribbled one byte per tick — the
    // slowloris shape: always mid-frame, never done.
    let payload = wire::encode_request(
        7,
        &Request {
            tenant: 3,
            kind: RequestKind::Evaluate {
                cond: cond(),
                threshold: 0.5,
            },
            timeout: None,
            strategy: None,
            trace: None,
        },
    )
    .expect("encode");
    let mut framed = Vec::from(MAGIC);
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&payload);

    let slow = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("slow connect");
        for &b in &framed {
            stream.write_all(&[b]).expect("slow write");
            std::thread::sleep(Duration::from_millis(5));
        }
        // The dribbled frame is valid, so it still earns a real reply.
        let mut len = [0u8; 4];
        stream.read_exact(&mut len).expect("reply length");
        let mut reply = vec![0u8; u32::from_le_bytes(len) as usize];
        stream.read_exact(&mut reply).expect("reply payload");
        let (id, _trace, result) = wire::decode_response(&reply).expect("decode reply");
        assert_eq!(id, 7);
        result.expect("slow client's decision");
    });

    // Meanwhile a normal client on the *same* event loop must sail
    // through; if the loop ever blocked on the dripping socket, these
    // round-trips would hang and the timeout below would fire.
    let (done_tx, done_rx) = mpsc::channel();
    let fast = std::thread::spawn(move || {
        let client = ServeClient::connect(addr).expect("fast connect");
        let cond = cond();
        for _round in 0..40 {
            for tenant in 0..3 {
                client.evaluate(tenant, &cond, 0.5).expect("fast evaluate");
            }
        }
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("fast client stalled behind the slowloris connection");
    fast.join().unwrap();
    slow.join().unwrap();

    drop(listener);
    let metrics = service.shutdown();
    assert!(
        metrics.net.partial_reads > 0,
        "byte-at-a-time delivery must surface as partial reads"
    );
    assert_eq!(metrics.net.wire_errors, 0);
}

#[test]
fn truncated_and_oversized_frames_close_the_connection_but_not_the_service() {
    let service = start_service();
    let listener = service.listen().expect("listen");
    let addr = listener.local_addr();

    // Truncated: a frame that promises 100 bytes delivers 10, then EOF.
    // Mid-frame EOF is a protocol error — no reply, connection closed.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&MAGIC).unwrap();
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[0u8; 10]).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(
            stream.read(&mut buf).unwrap(),
            0,
            "server must close a truncated connection without replying"
        );
    }

    // Oversized: a length prefix beyond MAX_FRAME is rejected from the
    // prefix alone — the server never buffers toward a 16 MiB payload it
    // already knows is illegal.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&MAGIC).unwrap();
        stream
            .write_all(&((MAX_FRAME as u32) + 1).to_le_bytes())
            .unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(
            stream.read(&mut buf).unwrap(),
            0,
            "server must close on an oversized length prefix"
        );
    }

    // Both rejections cost one connection each, nothing more: the
    // service still answers a well-formed client.
    let client = ServeClient::connect(addr).expect("connect");
    client.evaluate(1, &cond(), 0.5).expect("service survived");

    drop(client);
    drop(listener);
    let metrics = service.shutdown();
    assert!(
        metrics.net.wire_errors >= 2,
        "both hostile frames must be counted, saw {}",
        metrics.net.wire_errors
    );
}
