//! Behavioral tests of the sharded evaluation service: request/response
//! round-trips against reference sessions, backpressure, shutdown
//! draining, and metrics.

use std::time::Duration;
use uncertain_core::{ServeError, Session, Uncertain};
use uncertain_serve::{tenant_seed, ServeConfig, Service};

fn decisive() -> Uncertain<bool> {
    Uncertain::bernoulli(0.9).unwrap()
}

#[test]
fn evaluate_matches_a_reference_session_bitwise() {
    let config = ServeConfig::default().with_shards(2).with_seed(11);
    let service = Service::start(config.clone());
    let client = service.client();
    let cond = decisive();

    let tenant = 5;
    let served: Vec<_> = (0..6)
        .map(|_| client.evaluate(tenant, &cond, 0.5).unwrap())
        .collect();
    service.shutdown();

    let mut reference = Session::seeded(tenant_seed(11, tenant)).with_config(config.eval);
    for outcome in served {
        assert_eq!(outcome, reference.evaluate(&cond, 0.5));
    }
}

#[test]
fn pr_is_the_boolean_view_of_evaluate() {
    let service = Service::start(ServeConfig::default().with_shards(1).with_seed(3));
    let client = service.client();
    let likely = Uncertain::bernoulli(0.9).unwrap();
    let unlikely = Uncertain::bernoulli(0.1).unwrap();
    assert!(client.pr(1, &likely, 0.5).unwrap());
    assert!(!client.pr(1, &unlikely, 0.5).unwrap());
    service.shutdown();
}

#[test]
fn e_matches_a_reference_session_for_single_chunk_requests() {
    let config = ServeConfig::default().with_shards(4).with_seed(29);
    let service = Service::start(config.clone());
    let client = service.client();
    let x = Uncertain::normal(3.0, 1.0).unwrap();

    let tenant = 8;
    let mean = client.e(tenant, &x, 1000).unwrap();
    service.shutdown();

    // Requests under one chunk (4096 samples) are a single session query.
    let mut reference = Session::seeded(tenant_seed(29, tenant)).with_config(config.eval);
    let expected = reference.samples(&x, 1000).iter().sum::<f64>() / 1000.0;
    assert_eq!(mean.to_bits(), expected.to_bits());
}

#[test]
fn stats_returns_a_real_summary() {
    let service = Service::start(ServeConfig::default().with_seed(4));
    let client = service.client();
    let x = Uncertain::normal(10.0, 2.0).unwrap();
    let summary = client.stats(7, &x, 4000).unwrap();
    assert!((summary.mean() - 10.0).abs() < 0.2);
    assert!((summary.std_dev() - 2.0).abs() < 0.2);
    service.shutdown();
}

#[test]
fn invalid_requests_report_invalid_not_panic() {
    let service = Service::start(ServeConfig::default());
    let client = service.client();
    let cond = decisive();
    assert!(matches!(
        client.evaluate(1, &cond, 1.5),
        Err(ServeError::Invalid(_))
    ));
    let x = Uncertain::normal(0.0, 1.0).unwrap();
    assert!(matches!(client.e(1, &x, 0), Err(ServeError::Invalid(_))));
    // The shard survives invalid requests.
    assert!(client.evaluate(1, &cond, 0.5).is_ok());
    service.shutdown();
}

#[test]
fn full_queue_rejects_instead_of_buffering() {
    // One shard, queue depth 1: occupy the worker with a slow request,
    // park a second in the queue, and the third must be shed.
    let service = Service::start(
        ServeConfig::default()
            .with_shards(1)
            .with_queue_depth(1)
            .with_seed(5),
    );
    let slow = Uncertain::from_fn("slow", |rng| {
        std::thread::sleep(Duration::from_millis(2));
        rng.next_u32() & 1 == 0
    });
    let in_flight = {
        let client = service.client();
        let slow = slow.clone();
        std::thread::spawn(move || {
            client.evaluate_within(1, &slow, 0.5, Duration::from_millis(400))
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    let queued = {
        let client = service.client();
        let slow = slow.clone();
        std::thread::spawn(move || {
            client.evaluate_within(1, &slow, 0.5, Duration::from_millis(400))
        })
    };
    std::thread::sleep(Duration::from_millis(50));

    let client = service.client();
    let shed = client.evaluate(1, &decisive(), 0.5);
    assert_eq!(shed, Err(ServeError::QueueFull));
    assert_eq!(service.metrics().rejected(), 1);

    // The slow requests themselves resolve (verdict or timeout), and the
    // service stays usable.
    let _ = in_flight.join().unwrap();
    let _ = queued.join().unwrap();
    assert!(client.evaluate(1, &decisive(), 0.5).is_ok());
    service.shutdown();
}

#[test]
fn shutdown_drains_admitted_requests_and_refuses_new_ones() {
    let service = Service::start(ServeConfig::default().with_shards(2).with_seed(6));
    let x = Uncertain::normal(0.0, 1.0).unwrap();

    // Park several requests (some queued behind each other), then shut
    // down while they are in flight: every admitted request must get a
    // real answer, never a Shutdown error.
    let workers: Vec<_> = (0..6)
        .map(|tenant| {
            let client = service.client();
            let x = x.clone();
            std::thread::spawn(move || client.e(tenant, &x, 200_000))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(20));

    let late_client = service.client();
    let metrics = service.shutdown();
    for w in workers {
        let result = w.join().unwrap();
        match result {
            Ok(mean) => assert!(mean.abs() < 0.1),
            Err(e) => panic!("admitted request was dropped at shutdown: {e}"),
        }
    }
    assert_eq!(metrics.requests(), 6);

    let refused = late_client.e(0, &x, 10);
    assert_eq!(refused, Err(ServeError::Shutdown));
}

#[test]
fn metrics_count_decisions_samples_and_cache_reuse() {
    let config = ServeConfig::default().with_shards(2).with_seed(8);
    let service = Service::start(config);
    let client = service.client();
    let cond = decisive();
    for tenant in 0..4 {
        for _ in 0..5 {
            client.evaluate(tenant, &cond, 0.5).unwrap();
        }
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.requests(), 20);
    assert_eq!(metrics.decisions(), 20);
    assert!(
        metrics.sprt_samples() >= 20 * 10,
        "each decision draws >= one batch"
    );
    assert_eq!(metrics.timeouts(), 0);
    assert_eq!(metrics.rejected(), 0);
    // 4 tenants compile the plan once each; the other 16 requests hit.
    let cache = metrics.cache();
    assert_eq!(cache.misses, 4, "one compile per tenant session");
    assert_eq!(cache.hits, 16);
    assert!(metrics.cache_hit_rate() > 0.75);
    assert!(metrics.decisions_per_sec() > 0.0);
    assert_eq!(metrics.queue_depths().iter().sum::<usize>(), 0);
    // All four sessions stayed resident.
    let live: usize = metrics.shards.iter().map(|s| s.sessions_live).sum();
    assert_eq!(live, 4);
}

#[test]
fn pipelined_submission_matches_blocking_calls_bitwise() {
    // A window of in-flight submit_evaluate calls must produce, in order,
    // exactly the replies the blocking API would — pipelining changes
    // scheduling, never results.
    let config = ServeConfig::default().with_shards(2).with_seed(21);
    let cond = Uncertain::bernoulli(0.7).unwrap();
    const N: usize = 32;

    let pipelined: Vec<_> = {
        let service = Service::start(config.clone());
        let client = service.client();
        let pending: Vec<_> = (0..N)
            .map(|i| {
                client
                    .submit_evaluate(i as u64 % 4, &cond, 0.5, None)
                    .unwrap()
            })
            .collect();
        let out = pending.into_iter().map(|p| p.wait().unwrap()).collect();
        service.shutdown();
        out
    };
    let blocking: Vec<_> = {
        let service = Service::start(config);
        let client = service.client();
        let out = (0..N)
            .map(|i| client.evaluate(i as u64 % 4, &cond, 0.5).unwrap())
            .collect();
        service.shutdown();
        out
    };
    assert_eq!(pipelined, blocking);
}

#[test]
fn tenants_are_isolated_from_each_others_traffic() {
    // Tenant A's results must not depend on how much traffic tenant B
    // sends in between.
    let config = ServeConfig::default().with_shards(2).with_seed(9);
    let cond = decisive();

    let quiet = {
        let service = Service::start(config.clone());
        let client = service.client();
        let r: Vec<_> = (0..4)
            .map(|_| client.evaluate(100, &cond, 0.5).unwrap())
            .collect();
        service.shutdown();
        r
    };
    let noisy = {
        let service = Service::start(config.clone());
        let client = service.client();
        let mut r = Vec::new();
        for _ in 0..4 {
            for other in 0..20 {
                client.evaluate(other, &cond, 0.5).unwrap();
            }
            r.push(client.evaluate(100, &cond, 0.5).unwrap());
        }
        service.shutdown();
        r
    };
    assert_eq!(quiet, noisy);
}
