//! Speed from GPS fixes — the computation that compounds error (paper §2).

use crate::error_model::GpsReading;
use crate::geo::{GeoCoordinate, EARTH_RADIUS_M};
use uncertain_core::{Session, Uncertain};
use uncertain_dist::{Rayleigh, Uniform};

/// Meters-per-second to miles-per-hour.
pub const MPS_TO_MPH: f64 = 2.236_936_292_054_402;

/// The naive speed computation of paper Fig. 5(a): treat both fixes as
/// facts, divide distance by time, get absurdities.
///
/// # Panics
///
/// Panics if `dt_seconds` is not strictly positive.
///
/// # Examples
///
/// ```
/// use uncertain_gps::{naive_speed, GeoCoordinate, GpsReading};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = GpsReading::new(GeoCoordinate::new(47.0, -122.0), 4.0)?;
/// let b = GpsReading::new(a.center().destination(10.0, 90.0), 4.0)?;
/// let mph = naive_speed(&a, &b, 1.0);
/// assert!((mph - 10.0 * 2.23694).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn naive_speed(from: &GpsReading, to: &GpsReading, dt_seconds: f64) -> f64 {
    assert!(dt_seconds > 0.0, "dt must be positive");
    from.center().distance_meters(&to.center()) / dt_seconds * MPS_TO_MPH
}

/// The uncertain speed computation of paper Fig. 5(b): both locations are
/// distributions, `Speed = Distance / dt` is a Bayesian network, and the
/// result is an `Uncertain<f64>` in mph.
///
/// The network is built entirely from scalar leaves and primitive
/// arithmetic/trig operations (destination formula + haversine, ~56
/// nodes), so the runtime compiles it to the columnar batch kernel —
/// rather than hiding the geometry inside one opaque closure per fix.
///
/// # Panics
///
/// Panics if `dt_seconds` is not strictly positive.
///
/// # Examples
///
/// ```
/// use uncertain_core::Session;
/// use uncertain_gps::{uncertain_speed, GeoCoordinate, GpsReading};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = GpsReading::new(GeoCoordinate::new(47.0, -122.0), 4.0)?;
/// let b = GpsReading::new(a.center().destination(1.5, 90.0), 4.0)?;
/// let speed = uncertain_speed(&a, &b, 1.0);
/// let mut s = Session::sequential(0);
/// // The point distance is 1.5 m ≈ 3.4 mph, but the distribution is wide.
/// let stats = speed.stats_in(&mut s, 2000)?;
/// assert!(stats.std_dev() > 1.0);
/// # Ok(())
/// # }
/// ```
pub fn uncertain_speed(from: &GpsReading, to: &GpsReading, dt_seconds: f64) -> Uncertain<f64> {
    assert!(dt_seconds > 0.0, "dt must be positive");
    let (lat1, lon1, cos_lat1) = uncertain_fix_radians(from);
    let (lat2, lon2, cos_lat2) = uncertain_fix_radians(to);
    // Haversine between the two uncertain fixes. The squared half-chord
    // terms are genuinely shared subexpressions: `&s * &s` hands the same
    // node to both sides of the multiply, so the DAG evaluates each sine
    // once per joint sample (paper Fig. 8).
    let half_dlat_sin = ((&lat2 - &lat1) * 0.5).sin();
    let half_dlon_sin = ((&lon2 - &lon1) * 0.5).sin();
    let a = &half_dlat_sin * &half_dlat_sin
        + (&cos_lat1 * &cos_lat2) * (&half_dlon_sin * &half_dlon_sin);
    let distance = a.sqrt().asin() * (2.0 * EARTH_RADIUS_M);
    distance / dt_seconds * MPS_TO_MPH
}

/// The true position implied by one GPS fix, decomposed into primitive
/// arithmetic on scalar distributions: a Rayleigh radial error and a
/// uniform bearing pushed through the great-circle destination formula,
/// with the fix's reported center folded into plain-`f64` constants.
///
/// Returns `(latitude_rad, longitude_rad, cos(latitude_rad))` — the three
/// quantities the haversine in [`uncertain_speed`] consumes. Because every
/// node is a built-in leaf or a tagged arithmetic/trig primitive, the whole
/// speed network compiles to the columnar batch kernel instead of falling
/// back to opaque per-sample closures.
///
/// The longitude is left unnormalized: the haversine only ever sees it
/// through `sin²(Δλ/2)`, which is π-periodic, so wrapping into
/// `[−180°, 180°]` would change nothing downstream.
fn uncertain_fix_radians(reading: &GpsReading) -> (Uncertain<f64>, Uncertain<f64>, Uncertain<f64>) {
    let center = reading.center();
    let sin_lat_c = center.latitude.to_radians().sin();
    let cos_lat_c = center.latitude.to_radians().cos();
    let lon_c = center.longitude.to_radians();

    // The paper's error model (§4.1): radial distance ~ Rayleigh(ρ),
    // bearing ~ Uniform(0°, 360°). Same draws, in the same order, as
    // `GpsReading::location` — only the downstream geometry is lifted.
    let radial = Rayleigh::new(reading.rho()).expect("accuracy validated at construction");
    let bearing_deg =
        Uncertain::from_distribution(Uniform::new(0.0, 360.0).expect("static bounds are valid"));
    let r = Uncertain::from_distribution(radial);

    let ang = r / EARTH_RADIUS_M;
    let sin_ang = ang.sin();
    let cos_ang = ang.cos();
    let bearing = bearing_deg.to_radians();

    // Destination formula with φc folded: sin φ₂ = sin φc·cos δ + cos φc·sin δ·cos β.
    let sin_lat2 = &cos_ang * sin_lat_c + (&sin_ang * bearing.cos()) * cos_lat_c;
    let lat2 = sin_lat2.asin();
    let cos_lat2 = lat2.cos();
    // λ₂ = λc + atan2(sin β·sin δ·cos φc, cos δ − sin φc·sin φ₂).
    let east = bearing.sin() * &sin_ang * cos_lat_c;
    let north = &cos_ang - &sin_lat2 * sin_lat_c;
    let lon2 = east.atan2(&north) + lon_c;
    (lat2, lon2, cos_lat2)
}

/// The paper's Fig. 4 quantity: the probability that the conditional
/// `Speed > limit_mph` fires for a driver whose *true* speed is
/// `true_speed_mph`, with GPS accuracy `epsilon` and fixes `dt` apart.
///
/// Monte Carlo over both the sensor (fresh pair of fixes per trial) and
/// the posterior (one evidence estimate per pair), using `trials × 1`
/// posterior samples; with the implicit operator a ticket is issued when
/// more than half the posterior mass exceeds the limit.
pub fn ticket_probability(
    true_speed_mph: f64,
    epsilon: f64,
    limit_mph: f64,
    dt_seconds: f64,
    trials: usize,
    session: &mut Session,
) -> f64 {
    use crate::sensor::SimulatedGps;
    let gps = SimulatedGps::new(epsilon).expect("epsilon validated by caller");
    let start = GeoCoordinate::new(47.6, -122.3);
    let meters = true_speed_mph / MPS_TO_MPH * dt_seconds;
    let end = start.destination(meters, 90.0);
    let mut tickets = 0usize;
    for _ in 0..trials {
        let a = gps.read(&start, session.rng());
        let b = gps.read(&end, session.rng());
        // The naive conditional: one point estimate against the limit.
        if naive_speed(&a, &b, dt_seconds) > limit_mph {
            tickets += 1;
        }
    }
    tickets as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::SimulatedGps;

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        let a = GpsReading::new(GeoCoordinate::new(0.0, 0.0), 4.0).unwrap();
        let _ = naive_speed(&a, &a, 0.0);
    }

    #[test]
    fn naive_speed_of_identical_fixes_is_zero() {
        let a = GpsReading::new(GeoCoordinate::new(47.0, -122.0), 4.0).unwrap();
        assert_eq!(naive_speed(&a, &a, 1.0), 0.0);
    }

    #[test]
    fn uncertain_speed_mean_tracks_compound_error() {
        // Even for a stationary user, E[speed] > 0: distance between two
        // independent error clouds is positive — exactly the paper's
        // compounding-error point.
        let truth = GeoCoordinate::new(47.6, -122.3);
        let gps = SimulatedGps::new(4.0).unwrap();
        let mut s = Session::sequential(1);
        let a = gps.read(&truth, s.rng());
        let b = gps.read(&truth, s.rng());
        let speed = uncertain_speed(&a, &b, 1.0);
        let e = speed.expected_value_in(&mut s, 2000);
        assert!(e > 2.0, "stationary user, E[speed] = {e} mph");
    }

    #[test]
    fn walking_speed_is_dominated_by_noise_at_1s() {
        // ε = 4 m over 1 s: the 95% interval of speed spans >10 mph
        // (the paper quotes 12.7 mph).
        let start = GeoCoordinate::new(47.6, -122.3);
        let end = start.destination(1.34, 90.0); // 3 mph for 1 s
        let a = GpsReading::new(start, 4.0).unwrap();
        let b = GpsReading::new(end, 4.0).unwrap();
        let speed = uncertain_speed(&a, &b, 1.0);
        let mut s = Session::sequential(2);
        let st = speed.stats_in(&mut s, 4000).unwrap();
        let (lo, hi) = st.coverage_interval(0.95);
        assert!(hi - lo > 8.0, "95% interval = [{lo:.1}, {hi:.1}] mph");
    }

    #[test]
    fn longer_dt_suppresses_noise() {
        let start = GeoCoordinate::new(47.6, -122.3);
        let a = GpsReading::new(start, 4.0).unwrap();
        let b1 = GpsReading::new(start.destination(1.34, 90.0), 4.0).unwrap();
        let b60 = GpsReading::new(start.destination(80.4, 90.0), 4.0).unwrap();
        let mut s = Session::sequential(3);
        let sd1 = uncertain_speed(&a, &b1, 1.0)
            .stats_in(&mut s, 3000)
            .unwrap()
            .std_dev();
        let sd60 = uncertain_speed(&a, &b60, 60.0)
            .stats_in(&mut s, 3000)
            .unwrap()
            .std_dev();
        assert!(sd60 < sd1 / 20.0, "sd1={sd1} sd60={sd60}");
    }

    #[test]
    fn ticket_probability_shape() {
        // Fig. 4: well below the limit → ~0; at the limit → ~0.5; well
        // above → ~1. And at 57 mph with ε = 4 m the paper quotes ~32%.
        let mut s = Session::sequential(4);
        let below = ticket_probability(40.0, 4.0, 60.0, 1.0, 400, &mut s);
        let at = ticket_probability(60.0, 4.0, 60.0, 1.0, 400, &mut s);
        let above = ticket_probability(80.0, 4.0, 60.0, 1.0, 400, &mut s);
        assert!(below < 0.05, "below={below}");
        assert!((at - 0.5).abs() < 0.1, "at={at}");
        assert!(above > 0.95, "above={above}");
        let near = ticket_probability(57.0, 4.0, 60.0, 1.0, 1000, &mut s);
        assert!(near > 0.15 && near < 0.45, "57mph → {near}");
    }
}
