//! Preset prior distributions for GPS quantities (paper §3.5, §5.1).
//!
//! "Expert developers add preset prior distributions to their libraries for
//! common cases. For example, GPS libraries would include priors for
//! driving (roads and driving speeds), walking (walking speeds), and being
//! on land." This module is that library: named constructors for the speed
//! priors, plus the one-line `apply` that turns a raw speed estimate into a
//! prior-improved posterior (Fig. 13's "Improved speed").

use crate::error_model::GpsReading;
use crate::speed::MPS_TO_MPH;
use std::sync::Arc;
use uncertain_core::Uncertain;
use uncertain_dist::{Continuous, Gaussian, Rician, Truncated};

/// Prior over plausible *walking* speeds (mph): a Gaussian centered at the
/// typical 3 mph, truncated to `[0, 8]` — "humans are incredibly unlikely
/// to walk at 60 mph or even 10 mph" (§5.1).
///
/// # Examples
///
/// ```
/// use uncertain_dist::Continuous;
/// let prior = uncertain_gps::priors::walking_speed();
/// assert!(prior.pdf(3.0) > prior.pdf(7.0));
/// assert_eq!(prior.pdf(20.0), 0.0);
/// ```
pub fn walking_speed() -> Truncated {
    Truncated::new(
        Arc::new(Gaussian::new(3.0, 1.5).expect("static parameters are valid")),
        0.0,
        8.0,
    )
    .expect("static truncation bounds are valid")
}

/// Prior over plausible *running* speeds (mph): centered at 6 mph,
/// truncated to `[2, 14]`.
pub fn running_speed() -> Truncated {
    Truncated::new(
        Arc::new(Gaussian::new(6.0, 2.0).expect("static parameters are valid")),
        2.0,
        14.0,
    )
    .expect("static truncation bounds are valid")
}

/// Prior over plausible urban *driving* speeds (mph): centered at 30 mph,
/// truncated to `[0, 90]`.
pub fn driving_speed() -> Truncated {
    Truncated::new(
        Arc::new(Gaussian::new(30.0, 15.0).expect("static parameters are valid")),
        0.0,
        90.0,
    )
    .expect("static truncation bounds are valid")
}

/// Applies a speed prior to a raw speed estimate:
/// `posterior ∝ likelihood × prior` by importance resampling.
///
/// # Examples
///
/// ```
/// use uncertain_core::{Session, Uncertain};
/// use uncertain_gps::priors;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A speed estimate so noisy it allows 59 mph while walking…
/// let raw = Uncertain::normal(5.0, 20.0)?;
/// let improved = priors::apply(&raw, priors::walking_speed());
/// let mut s = Session::sequential(0);
/// // …is pulled back into the plausible range.
/// let e = improved.expected_value_in(&mut s, 2000);
/// assert!(e >= 0.0 && e <= 8.0);
/// # Ok(())
/// # }
/// ```
pub fn apply(speed: &Uncertain<f64>, prior: impl Continuous + 'static) -> Uncertain<f64> {
    speed.with_prior(prior)
}

/// The full Bayesian speed posterior for a pair of GPS fixes:
/// samples the *prior* over speeds and weights by the *likelihood* of the
/// observed displacement (the structure of Park et al.'s `bayes` operator,
/// which the paper cites as the way forward for composable priors, §3.5).
///
/// Unlike [`apply`] — which resamples the likelihood and can only keep
/// values the noisy estimate happens to produce — this form stays inside
/// the prior's support even when a multipath glitch puts the measured
/// displacement far outside it, which is exactly the paper's "remove the
/// absurd 59 mph" scenario (Fig. 13).
///
/// The likelihood is the *exact* error model: given a true movement of
/// length `s·dt`, the observed displacement between two fixes with
/// isotropic per-axis noise `ρ₁, ρ₂` is `Rician(s·dt, √(ρ₁² + ρ₂²))` —
/// implemented with the overflow-safe Bessel machinery in
/// `uncertain-dist`.
///
/// # Panics
///
/// Panics if `dt_seconds` is not strictly positive.
pub fn posterior_speed(
    from: &GpsReading,
    to: &GpsReading,
    dt_seconds: f64,
    prior: impl Continuous + 'static,
) -> Uncertain<f64> {
    assert!(dt_seconds > 0.0, "dt must be positive");
    let d_obs = from.center().distance_meters(&to.center());
    // Per-axis noise of the displacement between the two fixes.
    let sigma = (from.rho().powi(2) + to.rho().powi(2)).sqrt().max(1e-6);
    let ln_likelihood = move |s: &f64| {
        let expected_m = (s.max(0.0)) / MPS_TO_MPH * dt_seconds;
        match Rician::new(expected_m, sigma) {
            Ok(rician) => rician.ln_pdf(d_obs),
            Err(_) => f64::NEG_INFINITY,
        }
    };
    // Log-space weighting: a 100 m multipath glitch makes every candidate's
    // raw likelihood underflow, but the *relative* log-likelihoods still
    // rank candidates correctly.
    Uncertain::from_distribution(prior).weight_by_ln_k(ln_likelihood, 32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_core::Session;

    #[test]
    fn walking_prior_bounds() {
        let p = walking_speed();
        assert_eq!(p.support(), (0.0, 8.0));
        assert!(p.pdf(3.0) > 0.0);
        assert_eq!(p.pdf(-1.0), 0.0);
        assert_eq!(p.pdf(9.0), 0.0);
    }

    #[test]
    fn priors_are_ordered_by_speed() {
        let w = walking_speed();
        let r = running_speed();
        let d = driving_speed();
        assert!(w.mean() < r.mean());
        assert!(r.mean() < d.mean());
    }

    #[test]
    fn applying_prior_removes_absurd_speeds() {
        // A raw estimate with heavy mass above 10 mph.
        let raw = Uncertain::normal(3.0, 10.0).unwrap();
        let improved = apply(&raw, walking_speed());
        let mut s = Session::sequential(1);
        let absurd = (0..2000).filter(|_| s.sample(&improved) > 10.0).count();
        assert_eq!(absurd, 0, "no sample may exceed the prior's support");
    }

    #[test]
    fn posterior_speed_stays_in_prior_support() {
        use crate::geo::GeoCoordinate;
        // A multipath glitch: the fixes are 30 m apart over one second
        // (67 mph!), yet the walking posterior must stay ≤ 8 mph.
        let a = GpsReading::new(GeoCoordinate::new(47.6, -122.3), 4.0).unwrap();
        let b = GpsReading::new(a.center().destination(30.0, 45.0), 4.0).unwrap();
        let post = posterior_speed(&a, &b, 1.0, walking_speed());
        let mut s = Session::sequential(3);
        for _ in 0..500 {
            let v = s.sample(&post);
            assert!((0.0..=8.0).contains(&v), "v={v}");
        }
        // And the evidence pushes toward the fast end of the support.
        let e = post.expected_value_in(&mut s, 2000);
        assert!(e > 3.0, "glitch should pull the posterior up: e={e}");
    }

    #[test]
    fn posterior_speed_tracks_consistent_observations() {
        use crate::geo::GeoCoordinate;
        // Fixes 1.3 m apart (a genuine 3 mph step): posterior ≈ prior mean.
        let a = GpsReading::new(GeoCoordinate::new(47.6, -122.3), 4.0).unwrap();
        let b = GpsReading::new(a.center().destination(1.3, 45.0), 4.0).unwrap();
        let post = posterior_speed(&a, &b, 1.0, walking_speed());
        let mut s = Session::sequential(4);
        let e = post.expected_value_in(&mut s, 2000);
        assert!((e - 3.0).abs() < 1.0, "e={e}");
    }

    #[test]
    fn prior_tightens_confidence_interval() {
        let raw = Uncertain::normal(3.0, 8.0).unwrap();
        let improved = apply(&raw, walking_speed());
        let mut s = Session::sequential(2);
        let raw_sd = raw.stats_in(&mut s, 3000).unwrap().std_dev();
        let improved_sd = improved.stats_in(&mut s, 3000).unwrap().std_dev();
        assert!(
            improved_sd < raw_sd / 2.0,
            "raw σ={raw_sd:.2}, improved σ={improved_sd:.2}"
        );
    }
}
