//! The paper's GPS error model (§4.1, Fig. 11).
//!
//! A GPS fix is a center point plus a 95% confidence radius ε ("horizontal
//! accuracy"). The paper derives the posterior for the *true* location:
//! its distance from the reported point follows `Rayleigh(ε / √ln 400)`
//! with uniform direction — so the true location is *unlikely to be at the
//! center* of the circle, and most likely at a fixed radius ρ from it.

use crate::geo::GeoCoordinate;
use uncertain_core::Uncertain;
use uncertain_dist::{ParamError, Rayleigh, Uniform};

/// Converts a 95% horizontal-accuracy radius ε (meters) to the Rayleigh
/// scale ρ = ε/√ln 400 of the paper's GPS posterior.
///
/// # Examples
///
/// ```
/// let rho = uncertain_gps::rho_from_accuracy(4.0);
/// assert!((rho - 1.634).abs() < 1e-3);
/// ```
pub fn rho_from_accuracy(epsilon: f64) -> f64 {
    epsilon / (400.0_f64).ln().sqrt()
}

/// The radius containing probability mass `confidence` of a Rayleigh with
/// scale `rho`: `r = ρ·√(−2 ln(1 − c))`.
///
/// This is the conversion behind the paper's Fig. 2: the same error
/// distribution drawn as a 95% circle (Windows Phone) or a 68% circle
/// (Android) — the *smaller* circle can be the *less* accurate fix.
///
/// # Examples
///
/// ```
/// use uncertain_gps::{radius_for_confidence, rho_from_accuracy};
///
/// let rho = rho_from_accuracy(4.0);
/// // By construction, the 95% radius recovers ε.
/// assert!((radius_for_confidence(rho, 0.95) - 4.0).abs() < 1e-9);
/// // The 68% circle is visibly smaller for the same accuracy.
/// assert!(radius_for_confidence(rho, 0.68) < 2.5);
/// ```
pub fn radius_for_confidence(rho: f64, confidence: f64) -> f64 {
    rho * (-2.0 * (1.0 - confidence).ln()).sqrt()
}

/// One GPS fix: the reported point plus its 95% horizontal accuracy —
/// exactly the fields of the Windows Phone API the paper quotes in §2.
///
/// # Examples
///
/// ```
/// use uncertain_core::Session;
/// use uncertain_gps::{GeoCoordinate, GpsReading};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fix = GpsReading::new(GeoCoordinate::new(47.0, -122.0), 4.0)?;
/// // The uncertain location: a distribution, not a point.
/// let location = fix.location();
/// let mut s = Session::sequential(0);
/// let sample = s.sample(&location);
/// assert!(fix.center().distance_meters(&sample) < 20.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsReading {
    center: GeoCoordinate,
    accuracy: f64,
}

impl GpsReading {
    /// Creates a reading from the reported point and the 95%
    /// horizontal-accuracy radius (meters).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `accuracy` is positive and finite.
    pub fn new(center: GeoCoordinate, accuracy: f64) -> Result<Self, ParamError> {
        if accuracy <= 0.0 || !accuracy.is_finite() {
            return Err(ParamError::new(format!(
                "horizontal accuracy must be positive and finite, got {accuracy}"
            )));
        }
        Ok(Self { center, accuracy })
    }

    /// The reported point (what naive code treats as *the* location).
    pub fn center(&self) -> GeoCoordinate {
        self.center
    }

    /// The 95% horizontal-accuracy radius ε, in meters.
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// The Rayleigh scale ρ of the location posterior.
    pub fn rho(&self) -> f64 {
        rho_from_accuracy(self.accuracy)
    }

    /// The paper's `GPS.GetLocation()` (Fig. 12): the posterior
    /// distribution over the user's true location, as an
    /// `Uncertain<GeoCoordinate>` whose sampling function draws a Rayleigh
    /// radial distance and a uniform bearing around the reported point.
    pub fn location(&self) -> Uncertain<GeoCoordinate> {
        let center = self.center;
        let radial = Rayleigh::new(self.rho()).expect("accuracy validated at construction");
        let bearing = Uniform::new(0.0, 360.0).expect("static bounds are valid");
        Uncertain::from_fn("GPS location", move |rng| {
            use uncertain_dist::Distribution;
            let r = radial.sample(rng);
            let b = bearing.sample(rng);
            center.destination(r, b)
        })
    }

    /// Probability density of the true location being `point`, under the
    /// radial Rayleigh model (per square meter, isotropic).
    ///
    /// The model "Rayleigh radial distance, uniform bearing" is exactly an
    /// isotropic 2D Gaussian with per-axis σ = ρ, so this density is
    /// `exp(−r²/2ρ²) / 2πρ²` — usable directly as a fusion likelihood.
    pub fn density_at(&self, point: &GeoCoordinate) -> f64 {
        let r = self.center.distance_meters(point);
        let rho2 = self.rho() * self.rho();
        (-r * r / (2.0 * rho2)).exp() / (2.0 * std::f64::consts::PI * rho2)
    }

    /// **Sensor fusion**: the posterior over the true location given *two*
    /// independent fixes, `p(loc | a, b) ∝ p(a | loc) · p(b | loc)` —
    /// Bayes' theorem made one line by `Uncertain<T>` (§3.5: abstractions
    /// that capture only point estimates cannot do this).
    ///
    /// Implemented by importance-resampling this fix's posterior with the
    /// other fix's likelihood. For two equal-accuracy fixes the fused
    /// posterior centers midway between them with per-axis spread `ρ/√2`.
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::Session;
    /// use uncertain_gps::{GeoCoordinate, GpsReading};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let a = GpsReading::new(GeoCoordinate::new(47.6, -122.3), 8.0)?;
    /// let b = GpsReading::new(a.center().destination(4.0, 90.0), 8.0)?;
    /// let fused = a.fuse(&b);
    /// let mut s = Session::sequential(0);
    /// let midpoint = a.center().destination(2.0, 90.0);
    /// let err = fused.expect_by_in(&mut s, 2000, |p| midpoint.distance_meters(p));
    /// assert!(err < 8.0); // tighter than either individual fix
    /// # Ok(())
    /// # }
    /// ```
    pub fn fuse(&self, other: &GpsReading) -> Uncertain<GeoCoordinate> {
        let other = *other;
        self.location()
            .weight_by_k(move |p| other.density_at(p), 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_core::Session;

    fn reading() -> GpsReading {
        GpsReading::new(GeoCoordinate::new(47.6, -122.3), 4.0).unwrap()
    }

    #[test]
    fn rejects_bad_accuracy() {
        let c = GeoCoordinate::new(0.0, 0.0);
        assert!(GpsReading::new(c, 0.0).is_err());
        assert!(GpsReading::new(c, -4.0).is_err());
        assert!(GpsReading::new(c, f64::NAN).is_err());
    }

    #[test]
    fn ninety_five_percent_within_epsilon() {
        // The defining property of ρ = ε/√ln400: 95% of posterior mass lies
        // within ε of the reported point.
        let r = reading();
        let loc = r.location();
        let mut s = Session::sequential(1);
        let n = 10_000;
        let inside = (0..n)
            .filter(|_| {
                let p = s.sample(&loc);
                r.center().distance_meters(&p) <= r.accuracy()
            })
            .count() as f64
            / n as f64;
        assert!((inside - 0.95).abs() < 0.01, "inside={inside}");
    }

    #[test]
    fn true_location_unlikely_at_center() {
        // Fig. 11: the posterior mode is at radius ρ, not at the center.
        let r = reading();
        let loc = r.location();
        let mut s = Session::sequential(2);
        let n = 10_000;
        let near_center = (0..n)
            .filter(|_| {
                let p = s.sample(&loc);
                r.center().distance_meters(&p) <= 0.2
            })
            .count();
        // With ρ ≈ 1.63 m, mass within 0.2 m of center is < 1%.
        assert!(near_center < n / 50, "near_center={near_center}");
    }

    #[test]
    fn direction_is_isotropic() {
        let r = reading();
        let loc = r.location();
        let mut s = Session::sequential(3);
        let n = 4000;
        let east = (0..n)
            .filter(|_| s.sample(&loc).longitude > r.center().longitude)
            .count() as f64
            / n as f64;
        assert!((east - 0.5).abs() < 0.03, "east={east}");
    }

    #[test]
    fn confidence_circle_conversion() {
        // Fig. 2: a 95% circle of 4 m and a 68% circle of 4 m imply very
        // different accuracies — the 68% one is ~1.7x worse.
        let rho95 = rho_from_accuracy(4.0); // circle IS the 95% radius
        let rho68 = 4.0 / (-2.0 * (1.0 - 0.68_f64).ln()).sqrt();
        assert!(rho68 > 1.6 * rho95, "rho68={rho68} rho95={rho95}");
        assert!((radius_for_confidence(rho95, 0.95) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn density_is_a_proper_2d_gaussian() {
        // Integrates to 1 over the plane (polar integration).
        let r = reading();
        let mut total = 0.0;
        let dr = 0.02;
        let mut radius = dr / 2.0;
        while radius < 25.0 {
            let p = r.center().destination(radius, 45.0);
            total += r.density_at(&p) * 2.0 * std::f64::consts::PI * radius * dr;
            radius += dr;
        }
        assert!((total - 1.0).abs() < 1e-3, "total={total}");
    }

    #[test]
    fn fusion_halves_the_variance() {
        // Two identical-accuracy fixes at the same point: the fused
        // posterior's radial spread shrinks by ≈ √2.
        let a = reading();
        let b = reading();
        let fused = a.fuse(&b);
        let single = a.location();
        let mut s = Session::sequential(4);
        let spread = |loc: &uncertain_core::Uncertain<GeoCoordinate>, s: &mut Session| {
            let center = a.center();
            (0..4000)
                .map(|_| center.distance_meters(&s.sample(loc)).powi(2))
                .sum::<f64>()
                / 4000.0
        };
        let fused_ms = spread(&fused, &mut s);
        let single_ms = spread(&single, &mut s);
        let ratio = fused_ms / single_ms;
        assert!((ratio - 0.5).abs() < 0.1, "ratio={ratio}");
    }

    #[test]
    fn fusion_centers_between_disagreeing_fixes() {
        let a = reading();
        let b = GpsReading::new(a.center().destination(3.0, 90.0), 4.0).unwrap();
        let fused = a.fuse(&b);
        let midpoint = a.center().destination(1.5, 90.0);
        let mut s = Session::sequential(5);
        let mean_err = fused.expect_by_in(&mut s, 4000, |p| midpoint.distance_meters(p));
        let a_err = fused.expect_by_in(&mut s, 4000, |p| a.center().distance_meters(p));
        assert!(mean_err < a_err, "fused mass sits nearer the midpoint");
    }

    #[test]
    fn density_peaks_near_rho() {
        let r = reading();
        let at = |d: f64| {
            let p = r.center().destination(d, 90.0);
            r.density_at(&p)
        };
        // The 2D density (radial Rayleigh / circumference) is monotone
        // decreasing in r for this model, and finite everywhere off-center.
        assert!(at(0.5) > at(3.0));
        assert!(at(3.0) > at(8.0));
        assert!(at(1.0).is_finite());
    }
}
