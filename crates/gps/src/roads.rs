//! Road-snapping priors over locations (paper §3.5, Fig. 10).
//!
//! "A developer working with GPS can provide a prior distribution that
//! assigns high probabilities to roads and lower probabilities elsewhere.
//! This prior distribution achieves a 'road-snapping' behavior, fixing the
//! user's location to nearby roads unless GPS evidence to the contrary is
//! very strong." This module is that prior: a polyline road map plus a
//! distance-based density applied to an `Uncertain<GeoCoordinate>` by
//! importance resampling — the posterior mean shifts from the raw fix `p`
//! toward the snapped point `s`, exactly the figure's geometry.

use crate::geo::GeoCoordinate;
use uncertain_core::Uncertain;
use uncertain_dist::ParamError;

/// A road network as a set of great-circle-short segments (endpoints in
/// degrees). Segments are short enough in practice (city blocks) that a
/// local equirectangular projection is exact to well under GPS noise.
#[derive(Debug, Clone, PartialEq)]
pub struct RoadMap {
    segments: Vec<(GeoCoordinate, GeoCoordinate)>,
}

impl RoadMap {
    /// Creates a road map from line segments.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `segments` is empty or any segment is
    /// degenerate (identical endpoints).
    pub fn new(segments: Vec<(GeoCoordinate, GeoCoordinate)>) -> Result<Self, ParamError> {
        if segments.is_empty() {
            return Err(ParamError::new("road map needs at least one segment"));
        }
        for (a, b) in &segments {
            if a == b {
                return Err(ParamError::new(format!("degenerate road segment at {a}")));
            }
        }
        Ok(Self { segments })
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the map has no segments (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Distance in meters from `point` to the nearest road.
    pub fn distance_to_road(&self, point: &GeoCoordinate) -> f64 {
        self.segments
            .iter()
            .map(|(a, b)| point_segment_distance(point, a, b))
            .fold(f64::INFINITY, f64::min)
    }

    /// Applies the road prior to an uncertain location: candidates near a
    /// road carry weight `≈ 1`, candidates `d` meters away carry
    /// `exp(−d²/2σ²) + background` — the `background` floor keeps truly
    /// off-road evidence representable ("unless GPS evidence to the
    /// contrary is very strong").
    ///
    /// # Panics
    ///
    /// Panics unless `road_sigma > 0` and `background ≥ 0`.
    pub fn snap(
        &self,
        location: &Uncertain<GeoCoordinate>,
        road_sigma: f64,
        background: f64,
    ) -> Uncertain<GeoCoordinate> {
        assert!(road_sigma > 0.0, "road sigma must be positive");
        assert!(background >= 0.0, "background weight must be non-negative");
        let map = self.clone();
        location.weight_by_k(
            move |p| {
                let d = map.distance_to_road(p);
                (-0.5 * (d / road_sigma).powi(2)).exp() + background
            },
            32,
        )
    }
}

/// Point-to-segment distance in meters using a local equirectangular
/// projection centered on the query point.
fn point_segment_distance(p: &GeoCoordinate, a: &GeoCoordinate, b: &GeoCoordinate) -> f64 {
    let meters_per_deg_lat = std::f64::consts::PI * crate::geo::EARTH_RADIUS_M / 180.0;
    let meters_per_deg_lon = meters_per_deg_lat * p.latitude.to_radians().cos();
    let to_xy = |g: &GeoCoordinate| {
        (
            (g.longitude - p.longitude) * meters_per_deg_lon,
            (g.latitude - p.latitude) * meters_per_deg_lat,
        )
    };
    let (ax, ay) = to_xy(a);
    let (bx, by) = to_xy(b);
    // p is the origin of the local frame.
    let (dx, dy) = (bx - ax, by - ay);
    let len2 = dx * dx + dy * dy;
    let t = if len2 == 0.0 {
        0.0
    } else {
        (-(ax * dx + ay * dy) / len2).clamp(0.0, 1.0)
    };
    let (cx, cy) = (ax + t * dx, ay + t * dy);
    (cx * cx + cy * cy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_model::GpsReading;
    use uncertain_core::Session;

    /// A straight east-west road through the reference point.
    fn straight_road() -> RoadMap {
        let c = GeoCoordinate::new(47.6, -122.3);
        RoadMap::new(vec![(
            c.destination(500.0, 270.0),
            c.destination(500.0, 90.0),
        )])
        .unwrap()
    }

    #[test]
    fn rejects_bad_maps() {
        assert!(RoadMap::new(vec![]).is_err());
        let p = GeoCoordinate::new(1.0, 1.0);
        assert!(RoadMap::new(vec![(p, p)]).is_err());
    }

    #[test]
    fn distance_to_road_geometry() {
        let road = straight_road();
        let c = GeoCoordinate::new(47.6, -122.3);
        assert!(road.distance_to_road(&c) < 0.5, "on the road");
        let north = c.destination(30.0, 0.0);
        let d = road.distance_to_road(&north);
        assert!((d - 30.0).abs() < 0.5, "30 m north: d={d}");
        // Beyond the segment end, distance is to the endpoint.
        let far_east = c.destination(800.0, 90.0);
        let d = road.distance_to_road(&far_east);
        assert!((d - 300.0).abs() < 1.0, "past the end: d={d}");
    }

    #[test]
    fn snapping_shifts_the_mean_toward_the_road() {
        // Fig. 10: a fix 10 m north of the road; the posterior mean moves
        // from p toward the snapped point s on the road.
        let road = straight_road();
        let c = GeoCoordinate::new(47.6, -122.3);
        let fix_center = c.destination(10.0, 0.0);
        let fix = GpsReading::new(fix_center, 8.0).unwrap();
        let raw = fix.location();
        // σ_road = 2 m: posterior mean distance ≈ 10·σ²/(σ² + ρ²) ≈ 2.7 m.
        let snapped = road.snap(&raw, 2.0, 1e-6);

        let mut s = Session::sequential(1);
        let raw_offset = raw.expect_by_in(&mut s, 2000, |p| road.distance_to_road(p));
        let snapped_offset = snapped.expect_by_in(&mut s, 2000, |p| road.distance_to_road(p));
        assert!(
            snapped_offset < raw_offset / 2.0,
            "snap must pull toward the road: {snapped_offset:.2} vs {raw_offset:.2}"
        );
    }

    #[test]
    fn strong_contrary_evidence_survives() {
        // A fix 200 m from any road with tight accuracy: the background
        // weight keeps the posterior near the evidence instead of
        // teleporting onto the road.
        let road = straight_road();
        let c = GeoCoordinate::new(47.6, -122.3);
        let off_road = c.destination(200.0, 0.0);
        let fix = GpsReading::new(off_road, 4.0).unwrap();
        let snapped = road.snap(&fix.location(), 4.0, 1e-3);
        let mut s = Session::sequential(2);
        let mean_dist_from_fix =
            snapped.expect_by_in(&mut s, 1000, |p| off_road.distance_meters(p));
        assert!(
            mean_dist_from_fix < 50.0,
            "posterior stayed near the strong evidence: {mean_dist_from_fix:.1} m"
        );
    }

    #[test]
    fn multi_segment_maps_pick_the_nearest() {
        let c = GeoCoordinate::new(47.6, -122.3);
        let road = RoadMap::new(vec![
            (c.destination(100.0, 270.0), c.destination(100.0, 90.0)), // through c
            (
                c.destination(1000.0, 0.0).destination(100.0, 270.0),
                c.destination(1000.0, 0.0).destination(100.0, 90.0),
            ), // 1 km north
        ])
        .unwrap();
        assert_eq!(road.len(), 2);
        let near_second = c.destination(990.0, 0.0);
        let d = road.distance_to_road(&near_second);
        assert!(d < 15.0, "nearest segment wins: d={d}");
    }
}
