//! GPS substrate and the **GPS-Walking** case study (paper §2, §4.1, §5.1).
//!
//! The paper's motivating example: smartphone GPS returns an estimated
//! location plus a "horizontal accuracy" that almost every application
//! ignores, and computing speed from two such estimates compounds the error
//! into absurdities (59 mph while walking). This crate builds everything
//! that experiment needs, from scratch:
//!
//! * [`GeoCoordinate`] and geodesy (haversine distance, destination points),
//! * the paper's GPS error model — the posterior
//!   `Rayleigh(ε / √ln 400)` over distance from the reported point
//!   ([`GpsReading::location`], §4.1, Fig. 11),
//! * a **simulated sensor** over synthetic walking trajectories
//!   ([`WalkSimulator`], [`SimulatedGps`]) substituting for the authors'
//!   phone traces (see DESIGN.md §4 — the effects reproduced are properties
//!   of the error model, not of a particular trace),
//! * speed computation both ways ([`naive_speed`], [`uncertain_speed`]),
//! * walking-speed priors ([`priors`]) that remove the absurd values
//!   (Fig. 13),
//! * the GPS-Walking application itself ([`GpsWalking`], Fig. 5) and the
//!   full experiment driver ([`WalkExperiment`]) behind Figs. 3 and 13.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod app;
mod error_model;
mod experiment;
mod geo;
pub mod priors;
mod roads;
mod sensor;
mod speed;
mod trajectory;

pub use app::{Action, GpsWalking};
pub use error_model::{radius_for_confidence, rho_from_accuracy, GpsReading};
pub use experiment::{WalkExperiment, WalkRecord, WalkResult};
pub use geo::{GeoCoordinate, EARTH_RADIUS_M};
pub use roads::RoadMap;
pub use sensor::SimulatedGps;
pub use speed::{naive_speed, ticket_probability, uncertain_speed, MPS_TO_MPH};
pub use trajectory::{TruePosition, WalkSimulator};
