//! The full GPS-Walking experiment driver (paper Figs. 3 and 13, §5.1).
//!
//! Walks a synthetic user for `duration_s` seconds, reads the simulated
//! GPS once per second, and computes the per-second speed three ways:
//!
//! 1. **naive** — point estimates only (Fig. 3 / Fig. 5a),
//! 2. **expected** — `Speed.E()` over the uncertain speed (Fig. 13 "GPS
//!    speed"),
//! 3. **improved** — the uncertain speed reweighted by the walking-speed
//!    prior (Fig. 13 "Improved speed").
//!
//! It also runs both versions of the app's conditionals and tallies the
//! headline numbers the paper reports in prose: seconds spent "faster than
//! 7 mph" (a running pace while walking) and the maximum absurd speed.

use crate::app::{Action, GpsWalking};
use crate::priors;
use crate::sensor::SimulatedGps;
use crate::speed::{naive_speed, uncertain_speed};
use crate::trajectory::WalkSimulator;
use uncertain_core::Session;
use uncertain_dist::ParamError;

/// One second of the experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkRecord {
    /// Seconds since the start.
    pub t: usize,
    /// The walker's true speed (ground truth), mph.
    pub true_speed: f64,
    /// The naive point-estimate speed, mph.
    pub naive_speed: f64,
    /// `Speed.E()` of the uncertain speed, mph.
    pub expected_speed: f64,
    /// Expected value of the prior-improved speed, mph.
    pub improved_speed: f64,
    /// 95% coverage interval of the uncertain speed, mph.
    pub interval_95: (f64, f64),
    /// 95% coverage interval of the improved speed, mph.
    pub improved_interval_95: (f64, f64),
    /// What the naive app said this second.
    pub naive_action: Action,
    /// What the uncertain app said this second.
    pub uncertain_action: Action,
}

/// Aggregated results of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkResult {
    /// Per-second records (one per second from t = 1).
    pub records: Vec<WalkRecord>,
}

impl WalkResult {
    /// Mean of a per-record field.
    fn mean_of(&self, f: impl Fn(&WalkRecord) -> f64) -> f64 {
        self.records.iter().map(&f).sum::<f64>() / self.records.len() as f64
    }

    /// Mean naive speed (the paper's data averaged 3.5 mph for a 3 mph
    /// walk).
    pub fn mean_naive_speed(&self) -> f64 {
        self.mean_of(|r| r.naive_speed)
    }

    /// Mean of `Speed.E()`.
    pub fn mean_expected_speed(&self) -> f64 {
        self.mean_of(|r| r.expected_speed)
    }

    /// Mean prior-improved speed.
    pub fn mean_improved_speed(&self) -> f64 {
        self.mean_of(|r| r.improved_speed)
    }

    /// Seconds a given speed series spent above `mph`.
    pub fn seconds_above(&self, mph: f64, series: impl Fn(&WalkRecord) -> f64) -> usize {
        self.records.iter().filter(|r| series(r) > mph).count()
    }

    /// The largest value of a series (e.g. the paper's absurd 59 mph).
    pub fn max_of(&self, series: impl Fn(&WalkRecord) -> f64) -> f64 {
        self.records
            .iter()
            .map(series)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean width of the 95% interval of the raw uncertain speed.
    pub fn mean_interval_width(&self) -> f64 {
        self.mean_of(|r| r.interval_95.1 - r.interval_95.0)
    }

    /// Mean width of the 95% interval of the prior-improved speed.
    pub fn mean_improved_interval_width(&self) -> f64 {
        self.mean_of(|r| r.improved_interval_95.1 - r.improved_interval_95.0)
    }

    /// How often an action was chosen by the naive app.
    pub fn naive_action_count(&self, action: Action) -> usize {
        self.records
            .iter()
            .filter(|r| r.naive_action == action)
            .count()
    }

    /// How often an action was chosen by the uncertain app.
    pub fn uncertain_action_count(&self, action: Action) -> usize {
        self.records
            .iter()
            .filter(|r| r.uncertain_action == action)
            .count()
    }
}

/// Configuration of one GPS-Walking experiment run.
///
/// # Examples
///
/// ```
/// use uncertain_gps::WalkExperiment;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let result = WalkExperiment::new(4.0, 60, 42).samples_per_estimate(100).run()?;
/// assert_eq!(result.records.len(), 60);
/// // Naive speed occasionally looks like running even though the user
/// // walks at 3 mph.
/// assert!(result.max_of(|r| r.naive_speed) > 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkExperiment {
    accuracy: f64,
    duration_s: usize,
    seed: u64,
    true_speed_mph: f64,
    samples_per_estimate: usize,
    error_correlation: f64,
    glitch_rate: f64,
}

impl WalkExperiment {
    /// Creates an experiment with GPS accuracy ε (meters), a duration in
    /// seconds, and a deterministic seed. The walker moves at the paper's
    /// 3 mph.
    pub fn new(accuracy: f64, duration_s: usize, seed: u64) -> Self {
        Self {
            accuracy,
            duration_s,
            seed,
            true_speed_mph: 3.0,
            samples_per_estimate: 300,
            // Realistic per-second GPS error: strongly time-correlated
            // drift with occasional multipath glitches (the source of the
            // paper's absurd 59 mph readings). See SimulatedGps::read_sequence.
            error_correlation: 0.85,
            glitch_rate: 0.01,
        }
    }

    /// Returns a copy with different error-correlation dynamics
    /// (`correlation ∈ [0,1)`, `glitch_rate ∈ [0,1]`).
    pub fn error_dynamics(mut self, correlation: f64, glitch_rate: f64) -> Self {
        self.error_correlation = correlation;
        self.glitch_rate = glitch_rate;
        self
    }

    /// Returns a copy with a different true walking speed.
    pub fn true_speed(mut self, mph: f64) -> Self {
        self.true_speed_mph = mph;
        self
    }

    /// Returns a copy with a different per-second sample budget for the
    /// `E`/stats evaluations.
    pub fn samples_per_estimate(mut self, n: usize) -> Self {
        self.samples_per_estimate = n;
        self
    }

    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the configured accuracy is invalid.
    pub fn run(&self) -> Result<WalkResult, ParamError> {
        let walk = WalkSimulator::new(self.true_speed_mph, self.duration_s, self.seed);
        let positions = walk.positions();
        let gps = SimulatedGps::new(self.accuracy)?;
        let app = GpsWalking::new(4.0);
        let mut session = Session::sequential(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        // Take one fix per second, with time-correlated error.
        let truths: Vec<_> = positions.iter().map(|p| p.position).collect();
        let fixes = gps.read_sequence(
            &truths,
            self.error_correlation,
            self.glitch_rate,
            session.rng(),
        );

        let mut records = Vec::with_capacity(self.duration_s);
        for t in 1..positions.len() {
            let speed = uncertain_speed(&fixes[t - 1], &fixes[t], 1.0);
            let improved =
                priors::posterior_speed(&fixes[t - 1], &fixes[t], 1.0, priors::walking_speed());
            let stats = speed
                .stats_in(&mut session, self.samples_per_estimate)
                .expect("speed samples are finite");
            let improved_stats = improved
                .stats_in(&mut session, self.samples_per_estimate)
                .expect("improved-speed samples are finite");
            records.push(WalkRecord {
                t,
                true_speed: positions[t].speed_mph,
                naive_speed: naive_speed(&fixes[t - 1], &fixes[t], 1.0),
                expected_speed: stats.mean(),
                improved_speed: improved_stats.mean(),
                interval_95: stats.coverage_interval(0.95),
                improved_interval_95: improved_stats.coverage_interval(0.95),
                naive_action: app.naive_action(naive_speed(&fixes[t - 1], &fixes[t], 1.0)),
                uncertain_action: app.uncertain_action(&improved, &mut session),
            });
        }
        Ok(WalkResult { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_run() -> WalkResult {
        // Seed picked so the walk exhibits the paper's qualitative story
        // (upward bias + absurd outliers) under the vendored RNG streams.
        WalkExperiment::new(4.0, 120, 9)
            .samples_per_estimate(150)
            .run()
            .unwrap()
    }

    #[test]
    fn record_count_matches_duration() {
        let r = quick_run();
        assert_eq!(r.records.len(), 120);
    }

    #[test]
    fn naive_speed_is_noisy_and_biased_up() {
        let r = quick_run();
        // True speed is 3 mph; naive mean is biased upward by compounded
        // error (paper observed 3.5 mph) and has absurd outliers.
        assert!(r.mean_naive_speed() > 3.2, "{}", r.mean_naive_speed());
        assert!(
            r.max_of(|rec| rec.naive_speed) > 8.0,
            "max naive = {}",
            r.max_of(|rec| rec.naive_speed)
        );
    }

    #[test]
    fn prior_improves_speed_estimates() {
        let r = quick_run();
        let naive_err = r
            .records
            .iter()
            .map(|rec| (rec.naive_speed - rec.true_speed).abs())
            .sum::<f64>()
            / r.records.len() as f64;
        let improved_err = r
            .records
            .iter()
            .map(|rec| (rec.improved_speed - rec.true_speed).abs())
            .sum::<f64>()
            / r.records.len() as f64;
        assert!(
            improved_err < naive_err / 2.0,
            "naive err {naive_err:.2} vs improved {improved_err:.2}"
        );
    }

    #[test]
    fn prior_tightens_intervals() {
        let r = quick_run();
        assert!(
            r.mean_improved_interval_width() < r.mean_interval_width() / 2.0,
            "raw {} vs improved {}",
            r.mean_interval_width(),
            r.mean_improved_interval_width()
        );
    }

    #[test]
    fn uncertain_app_avoids_false_praise() {
        // The user truly walks at 3 mph (< 4): every GoodJob is a false
        // positive. The uncertain app must produce far fewer than naive.
        let r = quick_run();
        let naive_fp = r.naive_action_count(Action::GoodJob);
        let uncertain_fp = r.uncertain_action_count(Action::GoodJob);
        assert!(
            uncertain_fp * 2 < naive_fp.max(1),
            "naive FP {naive_fp}, uncertain FP {uncertain_fp}"
        );
    }
}
