//! Geographic coordinates and geodesy.

use std::fmt;

/// Mean Earth radius in meters (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_000.0;

/// A latitude/longitude pair in degrees — the paper's `GeoCoordinate`,
/// "a pair of doubles (latitude and longitude), and so … numeric"
/// (Fig. 5 caption).
///
/// # Examples
///
/// ```
/// use uncertain_gps::GeoCoordinate;
///
/// let redmond = GeoCoordinate::new(47.674, -122.121);
/// let nearby = redmond.destination(100.0, 90.0); // 100 m due east
/// let d = redmond.distance_meters(&nearby);
/// assert!((d - 100.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GeoCoordinate {
    /// Latitude in degrees, positive north.
    pub latitude: f64,
    /// Longitude in degrees, positive east.
    pub longitude: f64,
}

impl GeoCoordinate {
    /// Creates a coordinate from degrees.
    pub fn new(latitude: f64, longitude: f64) -> Self {
        Self {
            latitude,
            longitude,
        }
    }

    /// Great-circle (haversine) distance to `other`, in meters.
    pub fn distance_meters(&self, other: &GeoCoordinate) -> f64 {
        let lat1 = self.latitude.to_radians();
        let lat2 = other.latitude.to_radians();
        let dlat = (other.latitude - self.latitude).to_radians();
        let dlon = (other.longitude - self.longitude).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Initial great-circle bearing toward `other`, in degrees clockwise
    /// from north, normalized to `[0, 360)`.
    pub fn bearing_to(&self, other: &GeoCoordinate) -> f64 {
        let lat1 = self.latitude.to_radians();
        let lat2 = other.latitude.to_radians();
        let dlon = (other.longitude - self.longitude).to_radians();
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        (y.atan2(x).to_degrees() + 360.0) % 360.0
    }

    /// The point `distance_m` meters away along `bearing_deg` (degrees
    /// clockwise from north), on the great circle.
    pub fn destination(&self, distance_m: f64, bearing_deg: f64) -> GeoCoordinate {
        let ang = distance_m / EARTH_RADIUS_M;
        let bearing = bearing_deg.to_radians();
        let lat1 = self.latitude.to_radians();
        let lon1 = self.longitude.to_radians();
        let lat2 = (lat1.sin() * ang.cos() + lat1.cos() * ang.sin() * bearing.cos()).asin();
        let lon2 = lon1
            + (bearing.sin() * ang.sin() * lat1.cos()).atan2(ang.cos() - lat1.sin() * lat2.sin());
        GeoCoordinate {
            latitude: lat2.to_degrees(),
            longitude: ((lon2.to_degrees() + 540.0) % 360.0) - 180.0,
        }
    }
}

impl fmt::Display for GeoCoordinate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}°, {:.6}°)", self.latitude, self.longitude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEATTLE: GeoCoordinate = GeoCoordinate {
        latitude: 47.6062,
        longitude: -122.3321,
    };
    const PORTLAND: GeoCoordinate = GeoCoordinate {
        latitude: 45.5152,
        longitude: -122.6784,
    };

    #[test]
    fn distance_to_self_is_zero() {
        assert_eq!(SEATTLE.distance_meters(&SEATTLE), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let ab = SEATTLE.distance_meters(&PORTLAND);
        let ba = PORTLAND.distance_meters(&SEATTLE);
        assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn seattle_portland_distance() {
        // Known ≈ 233 km great-circle.
        let d = SEATTLE.distance_meters(&PORTLAND);
        assert!((d - 233_000.0).abs() < 3_000.0, "d={d}");
    }

    #[test]
    fn destination_round_trip() {
        for bearing in [0.0, 45.0, 90.0, 180.0, 270.0, 333.0] {
            let p = SEATTLE.destination(500.0, bearing);
            let d = SEATTLE.distance_meters(&p);
            assert!((d - 500.0).abs() < 0.05, "bearing {bearing}: d={d}");
            let back = SEATTLE.bearing_to(&p);
            assert!(
                (back - bearing).abs() < 0.1 || (back - bearing).abs() > 359.9,
                "bearing {bearing} vs {back}"
            );
        }
    }

    #[test]
    fn small_displacements_are_locally_euclidean() {
        let east = SEATTLE.destination(30.0, 90.0);
        let north = SEATTLE.destination(40.0, 0.0);
        // 30-40-50 triangle.
        let d = east.distance_meters(&north);
        assert!((d - 50.0).abs() < 0.05, "d={d}");
    }

    #[test]
    fn bearing_cardinal_directions() {
        let north = SEATTLE.destination(100.0, 0.0);
        let east = SEATTLE.destination(100.0, 90.0);
        let b_north = SEATTLE.bearing_to(&north);
        assert!(!(0.01..=359.99).contains(&b_north), "b_north={b_north}");
        assert!((SEATTLE.bearing_to(&east) - 90.0).abs() < 0.01);
    }

    #[test]
    fn longitude_normalized() {
        let near_dateline = GeoCoordinate::new(0.0, 179.9999);
        let p = near_dateline.destination(10_000.0, 90.0);
        assert!((-180.0..=180.0).contains(&p.longitude));
    }

    #[test]
    fn display_format() {
        let s = format!("{SEATTLE}");
        assert!(s.contains("47.6062"));
    }
}
