//! The GPS-Walking application (paper Fig. 5).
//!
//! A fitness app that encourages walking faster than 4 mph. The naive
//! version branches directly on a point estimate; the `Uncertain<T>`
//! version evaluates evidence, and deliberately demands *stronger* evidence
//! (90%) before admonishing the user — the developer chooses their own
//! balance of false positives and negatives (§3.4).

use uncertain_core::{EvalConfig, Session, Uncertain};

/// What GPS-Walking says to the user after a speed measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// "Good job" — walking faster than 4 mph.
    GoodJob,
    /// "Speed up" — confidently walking slower than 4 mph.
    SpeedUp,
    /// Say nothing — the evidence is not strong enough either way (only
    /// the uncertain version can choose this).
    Silent,
}

/// The GPS-Walking application logic, in both variants of paper Fig. 5.
///
/// # Examples
///
/// ```
/// use uncertain_core::{Session, Uncertain};
/// use uncertain_gps::{Action, GpsWalking};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app = GpsWalking::new(4.0);
/// // Naive: any point estimate above 4 is "good job" — noise included.
/// assert_eq!(app.naive_action(33.0), Action::GoodJob);
///
/// // Uncertain: confidently slow → SpeedUp.
/// let mut s = Session::sequential(0);
/// let slow = Uncertain::normal(1.0, 0.5)?;
/// assert_eq!(app.uncertain_action(&slow, &mut s), Action::SpeedUp);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsWalking {
    threshold_mph: f64,
    admonish_confidence: f64,
    config: EvalConfig,
}

impl GpsWalking {
    /// Creates the app with the given target speed (the paper uses 4 mph)
    /// and the default 0.9 confidence requirement for `SpeedUp`.
    pub fn new(threshold_mph: f64) -> Self {
        Self {
            threshold_mph,
            admonish_confidence: 0.9,
            config: EvalConfig::default(),
        }
    }

    /// Returns a copy demanding a different confidence before admonishing.
    pub fn with_admonish_confidence(mut self, confidence: f64) -> Self {
        self.admonish_confidence = confidence;
        self
    }

    /// Returns a copy using a custom hypothesis-test configuration.
    pub fn with_config(mut self, config: EvalConfig) -> Self {
        self.config = config;
        self
    }

    /// The target speed in mph.
    pub fn threshold_mph(&self) -> f64 {
        self.threshold_mph
    }

    /// Fig. 5(a): the naive app. A point estimate above the threshold is
    /// `GoodJob`, anything else `SpeedUp` — no third option, no notion of
    /// evidence.
    pub fn naive_action(&self, speed_mph: f64) -> Action {
        if speed_mph > self.threshold_mph {
            Action::GoodJob
        } else {
            Action::SpeedUp
        }
    }

    /// Fig. 5(b): the `Uncertain<T>` app.
    ///
    /// ```text
    /// if (Speed > 4)              GoodJob();   // implicit: more likely than not
    /// else if ((Speed < 4).Pr(0.9)) SpeedUp(); // explicit: strong evidence only
    /// else                        /* silent */
    /// ```
    pub fn uncertain_action(&self, speed: &Uncertain<f64>, session: &mut Session) -> Action {
        let fast = speed.gt(self.threshold_mph);
        if session.evaluate_with(&fast, 0.5, &self.config).to_bool() {
            Action::GoodJob
        } else if session
            .evaluate_with(
                &speed.lt(self.threshold_mph),
                self.admonish_confidence,
                &self.config,
            )
            .is_true()
        {
            Action::SpeedUp
        } else {
            Action::Silent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_is_binary() {
        let app = GpsWalking::new(4.0);
        assert_eq!(app.naive_action(4.1), Action::GoodJob);
        assert_eq!(app.naive_action(3.9), Action::SpeedUp);
        assert_eq!(app.naive_action(4.0), Action::SpeedUp);
    }

    #[test]
    fn confident_fast_walker_gets_praise() {
        let app = GpsWalking::new(4.0);
        let mut s = Session::sequential(1);
        let speed = Uncertain::normal(6.0, 0.5).unwrap();
        assert_eq!(app.uncertain_action(&speed, &mut s), Action::GoodJob);
    }

    #[test]
    fn confident_slow_walker_is_admonished() {
        let app = GpsWalking::new(4.0);
        let mut s = Session::sequential(2);
        let speed = Uncertain::normal(2.0, 0.3).unwrap();
        assert_eq!(app.uncertain_action(&speed, &mut s), Action::SpeedUp);
    }

    #[test]
    fn borderline_slow_walker_is_left_alone() {
        // Mean below 4 but with spread: not 90% sure they're slow, and not
        // more-likely-than-not fast → stay silent. This branch does not
        // exist in the naive app.
        let app = GpsWalking::new(4.0);
        let mut s = Session::sequential(3);
        let speed = Uncertain::normal(3.7, 2.0).unwrap();
        let mut silent = 0;
        for _ in 0..20 {
            if app.uncertain_action(&speed, &mut s) == Action::Silent {
                silent += 1;
            }
        }
        assert!(silent >= 15, "silent={silent}/20");
    }

    #[test]
    fn lower_confidence_admonishes_more() {
        let strict = GpsWalking::new(4.0); // 0.9
        let lax = GpsWalking::new(4.0).with_admonish_confidence(0.55);
        let speed = Uncertain::normal(3.3, 1.2).unwrap();
        let mut s = Session::sequential(4);
        let strict_speedups = (0..30)
            .filter(|_| strict.uncertain_action(&speed, &mut s) == Action::SpeedUp)
            .count();
        let lax_speedups = (0..30)
            .filter(|_| lax.uncertain_action(&speed, &mut s) == Action::SpeedUp)
            .count();
        assert!(
            lax_speedups > strict_speedups,
            "lax={lax_speedups} strict={strict_speedups}"
        );
    }
}
