//! Synthetic walking trajectories — the ground-truth substrate.
//!
//! The paper's evaluation walked outside for 15 minutes with a Windows
//! Phone; those traces are unavailable, so this module generates the
//! closest synthetic equivalent: a walker moving at a nominal speed with
//! smoothly drifting heading, sampled once per second (see DESIGN.md §4 for
//! why this substitution preserves the experiment).

use crate::geo::GeoCoordinate;
use crate::speed::MPS_TO_MPH;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A timestamped true position on the walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruePosition {
    /// Seconds since the start of the walk.
    pub t: f64,
    /// The walker's true position.
    pub position: GeoCoordinate,
    /// The walker's true instantaneous speed, in mph.
    pub speed_mph: f64,
}

/// Generates a deterministic synthetic walk.
///
/// The walker moves at `speed_mph` with small per-second speed jitter and a
/// heading that drifts as a random walk — the shape of a real outdoor
/// stroll without the authors' exact trace.
///
/// # Examples
///
/// ```
/// use uncertain_gps::WalkSimulator;
///
/// let walk = WalkSimulator::new(3.0, 60, 42).positions();
/// assert_eq!(walk.len(), 61); // t = 0..=60 s
/// // Consecutive positions are ~1.3 m apart at 3 mph.
/// let step = walk[0].position.distance_meters(&walk[1].position);
/// assert!(step > 0.5 && step < 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkSimulator {
    speed_mph: f64,
    duration_s: usize,
    seed: u64,
    start: GeoCoordinate,
    heading_volatility_deg: f64,
    speed_jitter_mph: f64,
}

impl WalkSimulator {
    /// Creates a walk at `speed_mph` lasting `duration_s` seconds, with a
    /// deterministic seed.
    pub fn new(speed_mph: f64, duration_s: usize, seed: u64) -> Self {
        Self {
            speed_mph,
            duration_s,
            seed,
            start: GeoCoordinate::new(47.6062, -122.3321),
            heading_volatility_deg: 10.0,
            speed_jitter_mph: 0.15,
        }
    }

    /// Returns a copy starting from a different coordinate.
    pub fn with_start(mut self, start: GeoCoordinate) -> Self {
        self.start = start;
        self
    }

    /// Returns a copy with a different per-second heading drift (degrees).
    pub fn with_heading_volatility(mut self, degrees: f64) -> Self {
        self.heading_volatility_deg = degrees;
        self
    }

    /// The nominal walking speed in mph.
    pub fn speed_mph(&self) -> f64 {
        self.speed_mph
    }

    /// Generates the positions at t = 0, 1, …, `duration_s` seconds
    /// (`duration_s + 1` entries).
    pub fn positions(&self) -> Vec<TruePosition> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut heading: f64 = rng.gen_range(0.0..360.0);
        let mut here = self.start;
        let mut out = Vec::with_capacity(self.duration_s + 1);
        let mut speed = self.speed_mph;
        out.push(TruePosition {
            t: 0.0,
            position: here,
            speed_mph: speed,
        });
        for t in 1..=self.duration_s {
            // Smooth heading drift and small speed jitter.
            heading =
                (heading + gaussian(&mut rng) * self.heading_volatility_deg).rem_euclid(360.0);
            speed = (self.speed_mph + gaussian(&mut rng) * self.speed_jitter_mph).max(0.0);
            let meters = speed / MPS_TO_MPH; // speed [mph] → m per 1 s step
            here = here.destination(meters, heading);
            out.push(TruePosition {
                t: t as f64,
                position: here,
                speed_mph: speed,
            });
        }
        out
    }
}

/// One standard-normal draw (Box–Muller) from a plain RNG.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let a = WalkSimulator::new(3.0, 30, 7).positions();
        let b = WalkSimulator::new(3.0, 30, 7).positions();
        assert_eq!(a, b);
        let c = WalkSimulator::new(3.0, 30, 8).positions();
        assert_ne!(a, c);
    }

    #[test]
    fn length_and_timestamps() {
        let walk = WalkSimulator::new(3.0, 10, 0).positions();
        assert_eq!(walk.len(), 11);
        for (i, p) in walk.iter().enumerate() {
            assert_eq!(p.t, i as f64);
        }
    }

    #[test]
    fn true_speed_stays_near_nominal() {
        let walk = WalkSimulator::new(3.0, 900, 1).positions();
        let mean: f64 = walk.iter().map(|p| p.speed_mph).sum::<f64>() / walk.len() as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
        assert!(walk.iter().all(|p| p.speed_mph < 4.5 && p.speed_mph >= 0.0));
    }

    #[test]
    fn step_lengths_match_speed() {
        let walk = WalkSimulator::new(3.0, 100, 2).positions();
        for w in walk.windows(2) {
            let d = w[0].position.distance_meters(&w[1].position);
            // 3 mph ≈ 1.34 m/s; jitter keeps it in a narrow band.
            assert!(d > 0.8 && d < 2.0, "step={d}");
        }
    }

    #[test]
    fn heading_drift_bends_the_path() {
        // With drift, the end-to-end displacement is well below the path
        // length (a straight line would match it).
        let walk = WalkSimulator::new(3.0, 900, 3).positions();
        let path_len: f64 = walk
            .windows(2)
            .map(|w| w[0].position.distance_meters(&w[1].position))
            .sum();
        let displacement = walk[0]
            .position
            .distance_meters(&walk.last().unwrap().position);
        assert!(
            displacement < 0.9 * path_len,
            "displacement={displacement} path={path_len}"
        );
    }

    #[test]
    fn builder_overrides_apply() {
        let start = GeoCoordinate::new(1.0, 2.0);
        let walk = WalkSimulator::new(2.0, 5, 0)
            .with_start(start)
            .with_heading_volatility(0.0)
            .positions();
        assert_eq!(walk[0].position, start);
    }
}
