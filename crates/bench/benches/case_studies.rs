//! Per-operation costs inside the three case studies: one Life cell
//! update per variant, one PPD sample / edge decision for Parakeet, and
//! one prior-weighted GPS speed sample.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uncertain_core::Session;
use uncertain_life::{BayesLife, Board, LifeVariant, NaiveLife, NoisySensor, SensorLife};
use uncertain_neural::sobel::generate_dataset;
use uncertain_neural::{Parakeet, Parrot};

fn bench_life_cell_update(c: &mut Criterion) {
    let board = Board::random(20, 20, 0.35, 7);
    let sensor = NoisySensor::new(0.2).unwrap();
    let naive = NaiveLife::new(sensor);
    let sensor_life = SensorLife::new(sensor);
    let bayes = BayesLife::new(sensor);
    let mut group = c.benchmark_group("Life cell update (σ=0.2)");
    group.bench_function("NaiveLife", |bencher| {
        let mut s = Session::seeded(1);
        bencher.iter(|| black_box(naive.decide(&board, 10, 10, &mut s)));
    });
    group.bench_function("SensorLife", |bencher| {
        let mut s = Session::seeded(1);
        bencher.iter(|| black_box(sensor_life.decide(&board, 10, 10, &mut s)));
    });
    group.bench_function("BayesLife", |bencher| {
        let mut s = Session::seeded(1);
        bencher.iter(|| black_box(bayes.decide(&board, 10, 10, &mut s)));
    });
    group.finish();
}

fn bench_parakeet(c: &mut Criterion) {
    let train = generate_dataset(300, 1);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
    let parrot = Parrot::train(&train, 30, 0.05, &mut rng);
    let parakeet = Parakeet::train_tuned(&train, 60, 3, &mut rng);
    let input = train.inputs[0].clone();
    let mut group = c.benchmark_group("Sobel prediction");
    group.bench_function("Parrot point estimate", |bencher| {
        bencher.iter(|| black_box(parrot.predict(&input)));
    });
    group.bench_function("Parakeet PPD joint sample", |bencher| {
        let mut s = Session::seeded(4);
        let ppd = parakeet.predict(&input);
        bencher.iter(|| black_box(s.sample(&ppd)));
    });
    group.bench_function("Parakeet edge decision .pr(0.8)", |bencher| {
        let mut s = Session::seeded(4);
        let edge = parakeet.predict(&input).gt(0.1);
        bencher.iter(|| black_box(edge.pr_in(&mut s, 0.8)));
    });
    group.finish();
}

fn bench_gps_prior(c: &mut Criterion) {
    use uncertain_gps::{priors, uncertain_speed, GeoCoordinate, GpsReading};
    let start = GeoCoordinate::new(47.6, -122.3);
    let a = GpsReading::new(start, 4.0).unwrap();
    let b = GpsReading::new(start.destination(1.34, 90.0), 4.0).unwrap();
    let speed = uncertain_speed(&a, &b, 1.0);
    let improved = priors::apply(&speed, priors::walking_speed());
    let mut group = c.benchmark_group("GPS speed joint sample");
    group.bench_function("raw speed", |bencher| {
        let mut s = Session::seeded(5);
        bencher.iter(|| black_box(s.sample(&speed)));
    });
    group.bench_function("prior-weighted speed (SIR k=16)", |bencher| {
        let mut s = Session::seeded(5);
        bencher.iter(|| black_box(s.sample(&improved)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_life_cell_update,
    bench_parakeet,
    bench_gps_prior
);
criterion_main!(benches);
