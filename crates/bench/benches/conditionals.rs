//! The headline ablation of paper §4.3: the SPRT's goal-directed sampling
//! against a fixed sample pool and against the group-sequential (Pocock)
//! design — in wall-clock time and in samples drawn per decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uncertain_core::{EvalConfig, Session, Uncertain};
use uncertain_stats::{FixedSampleTest, GroupSequentialTest, SequentialTest};

/// Conditional decisions over evidence strengths: the SPRT gets cheaper as
/// the conditional gets easier; a fixed pool pays full price everywhere.
fn bench_conditional_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide Pr[x]>0.5");
    for &(label, p) in &[
        ("easy p=0.95", 0.95),
        ("medium p=0.7", 0.7),
        ("hard p=0.55", 0.55),
    ] {
        let bern = Uncertain::bernoulli(p).unwrap();
        group.bench_with_input(BenchmarkId::new("sprt", label), &bern, |bencher, b| {
            let mut s = Session::seeded(1);
            let test = SequentialTest::at_threshold(0.5).unwrap();
            bencher.iter(|| black_box(test.run(|| s.sample(b))));
        });
        group.bench_with_input(
            BenchmarkId::new("fixed-1000", label),
            &bern,
            |bencher, b| {
                let mut s = Session::seeded(1);
                let test = FixedSampleTest::new(0.5, 1000).unwrap();
                bencher.iter(|| black_box(test.run(|| s.sample(b))));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pocock-5x200", label),
            &bern,
            |bencher, b| {
                let mut s = Session::seeded(1);
                let test = GroupSequentialTest::new(0.5, 5, 200).unwrap();
                bencher.iter(|| black_box(test.run(|| s.sample(b))));
            },
        );
    }
    group.finish();
}

/// Batch-size ablation: the paper's k = 10 against smaller and larger
/// batches on a moderately easy conditional.
fn bench_batch_size(c: &mut Criterion) {
    let speed = Uncertain::normal(5.0, 1.5).unwrap();
    let fast = speed.gt(4.0);
    let mut group = c.benchmark_group("SPRT batch size k");
    for k in [1usize, 10, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bencher, &k| {
            let mut s = Session::seeded(2);
            let cfg = EvalConfig::default().with_batch(k);
            bencher.iter(|| black_box(s.evaluate_with(&fast, 0.5, &cfg)));
        });
    }
    group.finish();
}

/// End-to-end conditional on a real network (the GPS-Walking comparison),
/// implicit vs. 0.9-explicit.
fn bench_gps_conditional(c: &mut Criterion) {
    use uncertain_gps::{uncertain_speed, GeoCoordinate, GpsReading};
    let start = GeoCoordinate::new(47.6, -122.3);
    let a = GpsReading::new(start, 4.0).unwrap();
    let b = GpsReading::new(start.destination(1.34, 90.0), 4.0).unwrap();
    let speed = uncertain_speed(&a, &b, 1.0);
    let mut group = c.benchmark_group("GPS-Walking conditional");
    group.bench_function("implicit Speed>4", |bencher| {
        let mut s = Session::seeded(3);
        let fast = speed.gt(4.0);
        bencher.iter(|| black_box(s.evaluate_with(&fast, 0.5, &EvalConfig::default())));
    });
    group.bench_function("explicit (Speed<4).pr(0.9)", |bencher| {
        let mut s = Session::seeded(3);
        let slow = speed.lt(4.0);
        bencher.iter(|| black_box(s.evaluate_with(&slow, 0.9, &EvalConfig::default())));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_conditional_strategies,
    bench_batch_size,
    bench_gps_conditional
);
criterion_main!(benches);
