//! Compiled evaluation plans vs the tree-walk interpreter — the hot path
//! of every SPRT-decided conditional. The tree-walk pays a `NodeId` hash
//! probe, a `Box` allocation, and an `Any` downcast per node per joint
//! sample; a compiled [`Plan`] replaces all three with an indexed slot
//! read/write. `bench_plan` (src/bin) measures the same contrast outside
//! Criterion and records the speedup in `BENCH_plan.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uncertain_core::{Evaluator, ParSampler, Session, Uncertain};

/// A GPS-flavored network of `3n + 6` nodes: shared-leaf arithmetic chains
/// on each side of a comparison, plus the conjunction gluing them together.
fn network(n: usize) -> Uncertain<bool> {
    let x = Uncertain::normal(0.0, 1.0).unwrap();
    let y = Uncertain::normal(1.0, 2.0).unwrap();
    let mut left = x.clone();
    let mut right = y.clone();
    for _ in 0..n {
        left = left + &x;
        right = right * 0.99 + &y;
    }
    let a = left.lt(&right);
    let b = (&x + &y).gt(-10.0);
    &a & &b
}

/// One joint sample, interpreter vs compiled plan, across network sizes.
fn bench_single_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("joint sample: plan vs tree-walk");
    for n in [5usize, 50, 500] {
        let expr = network(n);
        group.bench_with_input(BenchmarkId::new("tree-walk", n), &expr, |bencher, e| {
            let mut s = Session::seeded(1);
            bencher.iter(|| black_box(s.sample_interpreted(e)));
        });
        group.bench_with_input(BenchmarkId::new("plan", n), &expr, |bencher, e| {
            let mut eval = Evaluator::new(e, 1);
            bencher.iter(|| black_box(eval.sample()));
        });
    }
    group.finish();
}

/// The conditional fast path end to end: one SPRT decision per iteration.
fn bench_sprt_decision(c: &mut Criterion) {
    let expr = network(50);
    let mut group = c.benchmark_group("SPRT decision, 156-node conditional");
    group.bench_function("Evaluator::decide (plan + cached test)", |bencher| {
        let mut eval = Evaluator::new(&expr, 2);
        bencher.iter(|| black_box(eval.decide(0.5)));
    });
    group.bench_function("Session::pr (cached plan)", |bencher| {
        let mut s = Session::seeded(2);
        bencher.iter(|| black_box(s.pr(&expr, 0.5)));
    });
    group.bench_function(
        "Session::pr (cache disabled, per-call compile)",
        |bencher| {
            let mut s = Session::seeded(2).with_cache_capacity(0);
            bencher.iter(|| black_box(s.pr(&expr, 0.5)));
        },
    );
    group.finish();
}

/// Deterministic batch sampling by worker count — the batch is bitwise
/// identical in every row; only the wall-clock changes.
fn bench_parallel_batches(c: &mut Criterion) {
    let expr = network(200);
    let mut group = c.benchmark_group("4096-sample batch by thread count");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |bencher, &threads| {
                let mut par = ParSampler::with_threads(&expr, 3, threads);
                bencher.iter(|| black_box(par.sample_batch(4096)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_sample,
    bench_sprt_decision,
    bench_parallel_batches
);
criterion_main!(benches);
