//! Runtime costs of the core abstraction: network construction, joint
//! sampling, and the memoization that implements shared-dependence
//! tracking. These are the ablation benches DESIGN.md calls out for the
//! operator layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uncertain_core::{Session, Uncertain};

/// Building `a + b` allocates two nodes and never samples: construction is
/// the cheap, lazy phase of the paper's design.
fn bench_construction(c: &mut Criterion) {
    let a = Uncertain::normal(0.0, 1.0).unwrap();
    let b = Uncertain::normal(0.0, 1.0).unwrap();
    c.bench_function("construct a+b (no sampling)", |bencher| {
        bencher.iter(|| black_box(&a) + black_box(&b));
    });
}

/// One joint sample of expression chains of increasing depth — the
/// ancestral-sampling cost is linear in network size.
fn bench_chain_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("joint sample, chain of +");
    for depth in [1usize, 10, 100] {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let mut expr = x.clone();
        for _ in 0..depth {
            expr = expr + Uncertain::normal(0.0, 1.0).unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(depth), &expr, |bencher, e| {
            let mut s = Session::seeded(1);
            bencher.iter(|| black_box(s.sample(e)));
        });
    }
    group.finish();
}

/// Memoization ablation: a diamond-shaped network (the same leaf reused
/// many times) is sampled once per joint sample thanks to node identity;
/// the encapsulated variant redraws every use.
fn bench_shared_vs_independent(c: &mut Criterion) {
    let x = Uncertain::normal(0.0, 1.0).unwrap();
    let mut shared = x.clone();
    let mut independent = x.encapsulate();
    for _ in 0..32 {
        shared = shared + &x;
        independent = independent + x.encapsulate();
    }
    let mut group = c.benchmark_group("32 reuses of one leaf");
    group.bench_function("shared (memoized once)", |bencher| {
        let mut s = Session::seeded(2);
        bencher.iter(|| black_box(s.sample(&shared)));
    });
    group.bench_function("independent (encapsulated)", |bencher| {
        let mut s = Session::seeded(2);
        bencher.iter(|| black_box(s.sample(&independent)));
    });
    group.finish();
}

/// The expected-value operator at several sample budgets.
fn bench_expected_value(c: &mut Criterion) {
    let speed = Uncertain::normal(3.0, 6.0).unwrap();
    let mut group = c.benchmark_group("E[x] by sample budget");
    for n in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, &n| {
            let mut s = Session::seeded(3);
            bencher.iter(|| black_box(speed.expected_value_in(&mut s, n)));
        });
    }
    group.finish();
}

/// Session (interpreted, fresh memo walk) vs Evaluator (compiled plan,
/// reused context) on a 100-node chain — the allocation-churn ablation.
fn bench_evaluator_vs_sampler(c: &mut Criterion) {
    use uncertain_core::Evaluator;
    let mut expr = Uncertain::normal(0.0, 1.0).unwrap();
    for _ in 0..100 {
        expr = expr + Uncertain::normal(0.0, 1.0).unwrap();
    }
    let mut group = c.benchmark_group("100-node chain, one joint sample");
    group.bench_function("Session tree-walk (fresh context)", |bencher| {
        let mut s = Session::seeded(4);
        bencher.iter(|| black_box(s.sample_interpreted(&expr)));
    });
    group.bench_function("Evaluator (reused context)", |bencher| {
        let mut e = Evaluator::new(&expr, 4);
        bencher.iter(|| black_box(e.sample()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_construction,
    bench_chain_sampling,
    bench_shared_vs_independent,
    bench_expected_value,
    bench_evaluator_vs_sampler
);
criterion_main!(benches);
