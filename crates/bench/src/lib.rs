//! Shared helpers for the figure-regeneration binaries.
//!
//! Each `src/bin/fig*.rs` binary regenerates one table or figure from the
//! paper's evaluation (see DESIGN.md's per-experiment index) and prints the
//! series the paper plots. Binaries run at paper scale by default; set
//! `QUICK=1` in the environment for a fast smoke-scale run.

/// Returns `quick` when the `QUICK` environment variable is set to a
/// non-empty, non-`0` value; otherwise `full`.
pub fn scaled<T>(full: T, quick: T) -> T {
    match std::env::var("QUICK") {
        Ok(v) if !v.is_empty() && v != "0" => quick,
        _ => full,
    }
}

/// Prints a title with an underline rule, marking which figure a binary
/// regenerates.
pub fn header(title: &str) {
    println!("{title}");
    println!("{}", "=".repeat(title.chars().count()));
}

/// Formats a float cell with fixed width/precision for aligned tables.
pub fn cell(value: f64) -> String {
    format!("{value:>10.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_full_by_default() {
        // Tests may run concurrently; only assert the unset/0 behavior on a
        // variable private to this test.
        std::env::remove_var("QUICK_TEST_SENTINEL");
        assert_eq!(scaled(5, 1), if quick_env_set() { 1 } else { 5 });
    }

    fn quick_env_set() -> bool {
        matches!(std::env::var("QUICK"), Ok(v) if !v.is_empty() && v != "0")
    }

    #[test]
    fn cell_is_fixed_width() {
        assert_eq!(cell(1.0).len(), 10);
        assert_eq!(cell(-123.45678).len(), 10);
    }
}
