//! Measures the sharded evaluation service on repeated Fig. 9-style
//! evidence decisions across 1/2/4/8 shards, and appends machine-readable
//! JSON lines to `BENCH_serve.json` (in the working directory).
//!
//! The workload is many-tenant: more tenants than one shard's session
//! pool holds. Sharding therefore scales the service's *aggregate hot
//! cache capacity*: a 1-shard service evicts tenant sessions on every
//! round (each decision pays session rebuild + plan recompilation), while
//! a 4-shard service keeps the whole working set resident. That — not CPU
//! parallelism, which a single-core runner cannot grant — is what the
//! throughput column measures, and it is the same effect production
//! sharding buys when tenants outnumber one box's memory.
//!
//! Two workloads, because the capacity mechanism's headroom is exactly
//! the workload's cold/hot decision-cost ratio:
//!
//! - `evidence_chain`: a 159-node GPS-flavored evidence conditional (the
//!   `bench_session`/`bench_plan` family), where plan compilation
//!   dominates a decision. This is where sharding's capacity effect
//!   shows: ≳4× decision throughput from 1 → 4 shards.
//! - `fig9_gps`: the literal Fig. 9 network (`Speed < 4 mph` on the GPS
//!   walking evidence). Transcendental-heavy sampling used to bound its
//!   capacity win near the raw cold/hot ratio (~1.2–1.4× on one core);
//!   the columnar batch kernel cut hot sampling several-fold, so cache
//!   residency is now worth ≳3× here too.
//!
//! Also reports closed-loop tail latency under saturation (4 client
//! threads), and checks the service's determinism contract: per-tenant
//! outcome fingerprints must be bitwise identical for every shard count.
//!
//! Run `cargo run --release --bin bench_serve`; `--quick` (or `QUICK=1`)
//! shrinks the budget for smoke runs.

use std::collections::VecDeque;
use std::fs::OpenOptions;
use std::io::Write;
use std::time::{Instant, SystemTime, UNIX_EPOCH};
use uncertain_bench::{header, scaled};
use uncertain_core::{HypothesisOutcome, Uncertain};
use uncertain_gps::{uncertain_speed, GeoCoordinate, GpsReading, MPS_TO_MPH};
use uncertain_serve::{Pending, ServeConfig, Service};

/// More tenants than one shard's pool: the working set fits only when the
/// aggregate capacity (shards × pool) covers it.
const TENANTS: u64 = 48;
const POOL: usize = 16;
const SEED: u64 = 2014;
const THRESHOLD: f64 = 0.5;

/// The literal Fig. 9 evidence network: walking at a true 3 mph with
/// ε = 4 m GPS fixes, asking the paper's `Speed < 4` question.
fn fig9_gps() -> Uncertain<bool> {
    let start = GeoCoordinate::new(47.6, -122.3);
    let end = start.destination(3.0 / MPS_TO_MPH, 90.0);
    let a = GpsReading::new(start, 4.0).expect("valid accuracy");
    let b = GpsReading::new(end, 4.0).expect("valid accuracy");
    uncertain_speed(&a, &b, 1.0).lt(4.0)
}

/// A `3n + 7`-node GPS-flavored evidence conditional — the same
/// shared-leaf family as `bench_session` and `bench_plan`. The comparison
/// margin keeps the conditional decisive (minimum SPRT budget), so plan
/// compilation, not sampling, dominates a cold decision: the workload
/// where a session cache's capacity is worth the most.
fn evidence_chain(n: usize) -> Uncertain<bool> {
    let x = Uncertain::normal(0.0, 1.0).unwrap();
    let y = Uncertain::normal(1.0, 2.0).unwrap();
    let mut left = x.clone();
    let mut right = y.clone();
    for _ in 0..n {
        left = left + &x;
        right = right * 0.99 + &y;
    }
    let a = left.lt(&(right + 40.0 + 8.0 * n as f64));
    let b = (&x + &y).gt(-10.0);
    &a & &b
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct TopologyRun {
    throughput_dps: f64,
    decisions: usize,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    cache_hit_rate: f64,
    sessions_evicted: u64,
    sprt_samples: u64,
    /// Per-tenant fold of (samples, estimate-bits) over every decision —
    /// the bitwise-determinism witness compared across shard counts.
    fingerprints: Vec<u64>,
}

/// In-flight requests per driver in the pipelined throughput loop — deep
/// enough to keep every shard's queue non-empty, well under the service
/// queue depth so nothing is shed.
const WINDOW: usize = 64;

/// Single-driver closed loop: round-robin over all tenants for `rounds`
/// rounds. Cache behavior is the steady state of a cyclic working set.
///
/// The throughput phase pipelines `WINDOW` requests so shards process
/// back-to-back from their queues; otherwise the per-request wakeup
/// round-trip (≈10 µs on this box) would swamp the 6–14 µs decision cost
/// the topologies differ in. Latency percentiles come from a separate
/// blocking phase, where per-request timing is meaningful.
fn run_topology(shards: usize, rounds: usize, cond: &Uncertain<bool>) -> TopologyRun {
    let service = Service::start(
        ServeConfig::default()
            .with_shards(shards)
            .with_sessions_per_shard(POOL)
            .with_queue_depth(256)
            .with_seed(SEED),
    );
    let client = service.client();
    // One untimed warmup round: topology-independent (every tenant's
    // stream advances by one query on every path).
    for tenant in 0..TENANTS {
        client.evaluate(tenant, cond, THRESHOLD).expect("warmup");
    }
    let mut fingerprints = vec![0u64; TENANTS as usize];
    let fold = |fingerprints: &mut Vec<u64>, tenant: u64, samples: usize, bits: u64| {
        let fp = &mut fingerprints[tenant as usize];
        *fp = mix(*fp ^ samples as u64 ^ bits);
    };

    // Blocking phase: unloaded request latency, one request in flight.
    let lat_rounds = (rounds / 8).max(2);
    let mut latencies = Vec::with_capacity(lat_rounds * TENANTS as usize);
    for _ in 0..lat_rounds {
        for tenant in 0..TENANTS {
            let t0 = Instant::now();
            let o = client.evaluate(tenant, cond, THRESHOLD).expect("decision");
            latencies.push(t0.elapsed().as_nanos() as u64);
            fold(&mut fingerprints, tenant, o.samples, o.estimate.to_bits());
        }
    }

    // Pipelined phase: sustained decision throughput.
    let mut window: VecDeque<(u64, Pending<HypothesisOutcome>)> = VecDeque::with_capacity(WINDOW);
    let start = Instant::now();
    for _ in 0..rounds {
        for tenant in 0..TENANTS {
            if window.len() == WINDOW {
                let (t, pending) = window.pop_front().expect("non-empty window");
                let o = pending.wait().expect("decision");
                fold(&mut fingerprints, t, o.samples, o.estimate.to_bits());
            }
            let pending = client
                .submit_evaluate(tenant, cond, THRESHOLD, None)
                .expect("submit");
            window.push_back((tenant, pending));
        }
    }
    for (t, pending) in window {
        let o = pending.wait().expect("decision");
        fold(&mut fingerprints, t, o.samples, o.estimate.to_bits());
    }
    let elapsed = start.elapsed();
    let metrics = service.shutdown();
    latencies.sort_unstable();
    let decisions = rounds * TENANTS as usize;
    TopologyRun {
        throughput_dps: decisions as f64 / elapsed.as_secs_f64(),
        decisions,
        p50_us: percentile(&latencies, 0.50) as f64 / 1e3,
        p95_us: percentile(&latencies, 0.95) as f64 / 1e3,
        p99_us: percentile(&latencies, 0.99) as f64 / 1e3,
        cache_hit_rate: metrics.cache_hit_rate(),
        sessions_evicted: metrics.shards.iter().map(|s| s.sessions_evicted).sum(),
        sprt_samples: metrics.sprt_samples(),
        fingerprints,
    }
}

/// Saturating closed-loop load: 4 client threads, each hammering its own
/// tenant slice with zero think time, so every shard queue stays busy.
/// Returns sorted latencies (ns).
fn saturating_latencies(shards: usize, per_thread: usize, cond: &Uncertain<bool>) -> Vec<u64> {
    const CLIENTS: u64 = 4;
    let service = Service::start(
        ServeConfig::default()
            .with_shards(shards)
            .with_sessions_per_shard(POOL)
            .with_queue_depth(256)
            .with_seed(SEED),
    );
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let client = service.client();
            let cond = cond.clone();
            let slice = TENANTS / CLIENTS;
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(per_thread);
                for i in 0..per_thread {
                    let tenant = c * slice + (i as u64 % slice);
                    let t0 = Instant::now();
                    client.evaluate(tenant, &cond, THRESHOLD).expect("decision");
                    lat.push(t0.elapsed().as_nanos() as u64);
                }
                lat
            })
        })
        .collect();
    let mut all: Vec<u64> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("client thread"))
        .collect();
    service.shutdown();
    all.sort_unstable();
    all
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--quick") {
        std::env::set_var("QUICK", "1");
    }
    header("Serve: evidence decisions/sec vs shard count (48 tenants, pool 16/shard)");
    let rounds = scaled(400, 40);
    let sat_per_thread = scaled(400, 20);
    let stamp = SystemTime::now().duration_since(UNIX_EPOCH)?.as_secs();
    let mut out = OpenOptions::new()
        .create(true)
        .append(true)
        .open("BENCH_serve.json")?;
    let workloads: [(&str, Uncertain<bool>); 2] = [
        ("evidence_chain", evidence_chain(50)),
        ("fig9_gps", fig9_gps()),
    ];

    let mut records = 0usize;
    for (workload, cond) in &workloads {
        println!("\n[{workload}]");
        println!(
            "{:>6} {:>12} {:>10} {:>10} {:>10} {:>9} {:>9}",
            "shards", "dec/s", "p50 µs", "p99 µs", "sat p99", "hit rate", "evicted"
        );
        let mut runs = Vec::new();
        for shards in [1usize, 2, 4, 8] {
            let run = run_topology(shards, rounds, cond);
            let sat = saturating_latencies(shards, sat_per_thread, cond);
            let sat_p50_us = percentile(&sat, 0.50) as f64 / 1e3;
            let sat_p95_us = percentile(&sat, 0.95) as f64 / 1e3;
            let sat_p99_us = percentile(&sat, 0.99) as f64 / 1e3;
            println!(
                "{shards:>6} {:>12.0} {:>10.1} {:>10.1} {:>10.1} {:>9.3} {:>9}",
                run.throughput_dps,
                run.p50_us,
                run.p99_us,
                sat_p99_us,
                run.cache_hit_rate,
                run.sessions_evicted
            );
            writeln!(
                out,
                "{{\"bench\":\"serve_scaling\",\"workload\":\"{workload}\",\
                 \"unix_time\":{stamp},\"shards\":{shards},\
                 \"tenants\":{TENANTS},\"sessions_per_shard\":{POOL},\"decisions\":{decisions},\
                 \"throughput_dps\":{dps:.1},\"p50_us\":{p50:.1},\"p95_us\":{p95:.1},\
                 \"p99_us\":{p99:.1},\"sat_clients\":4,\"sat_p50_us\":{sp50:.1},\
                 \"sat_p95_us\":{sp95:.1},\"sat_p99_us\":{sp99:.1},\
                 \"cache_hit_rate\":{hit:.4},\"sessions_evicted\":{evicted},\
                 \"sprt_samples\":{samples},\"tenant_fingerprint\":{fp}}}",
                decisions = run.decisions,
                dps = run.throughput_dps,
                p50 = run.p50_us,
                p95 = run.p95_us,
                p99 = run.p99_us,
                sp50 = sat_p50_us,
                sp95 = sat_p95_us,
                sp99 = sat_p99_us,
                hit = run.cache_hit_rate,
                evicted = run.sessions_evicted,
                samples = run.sprt_samples,
                fp = run.fingerprints.iter().fold(0u64, |acc, &f| mix(acc ^ f)),
            )?;
            records += 1;
            runs.push((shards, run));
        }

        // Determinism contract: per-tenant results bitwise identical
        // whatever the shard count (the fingerprints fold samples and
        // estimate bits of every decision).
        let baseline = &runs[0].1.fingerprints;
        let deterministic = runs.iter().all(|(_, r)| &r.fingerprints == baseline);
        let t1 = runs[0].1.throughput_dps;
        let t4 = runs[2].1.throughput_dps;
        let scaling = t4 / t1;
        println!("1→4 shard scaling: {scaling:.2}x  (aggregate hot-session capacity)");
        println!("per-tenant results identical across shard counts: {deterministic}");
        writeln!(
            out,
            "{{\"bench\":\"serve_summary\",\"workload\":\"{workload}\",\
             \"unix_time\":{stamp},\"shard_counts\":[1,2,4,8],\
             \"scaling_1_to_4\":{scaling:.3},\"deterministic_across_shards\":{deterministic}}}"
        )?;
        records += 1;
        assert!(
            deterministic,
            "per-tenant results changed with the shard count"
        );
    }
    println!("\nappended {records} records to BENCH_serve.json");
    Ok(())
}
