//! Measures what the session's cross-call plan cache buys on the paper's
//! hot path — repeated conditional decisions on the same network (every
//! `if (Speed > 4)` in a loop is this shape) — and appends one
//! machine-readable JSON line per network size to `BENCH_session.json`
//! (in the working directory).
//!
//! "cached" is a default [`Session`]: the first decision compiles the
//! plan, every later decision reuses it. "uncached" is the same session
//! with the cache disabled ([`Session::with_cache_capacity`] 0), paying a
//! fresh compile per decision — the cost every pre-session call site paid.
//!
//! Run `cargo run --release --bin bench_session`; `--quick` (or `QUICK=1`) shrinks the
//! repetition budget for smoke runs.

use std::fs::OpenOptions;
use std::io::Write;
use std::time::{Instant, SystemTime, UNIX_EPOCH};
use uncertain_bench::{header, scaled};
use uncertain_core::{Session, Uncertain};

/// A GPS-flavored conditional of `3n + 7` slotted nodes: shared-leaf
/// arithmetic chains on each side of a comparison, conjoined — the same
/// family as `bench_plan` and the `plan_vs_treewalk` Criterion bench.
/// The comparison margin makes the conditional decisive, so the SPRT
/// terminates at its minimum budget: the repeated-decision hot loop where
/// per-call plan compilation, not sampling, is the dominant cost.
fn network(n: usize) -> Uncertain<bool> {
    let x = Uncertain::normal(0.0, 1.0).unwrap();
    let y = Uncertain::normal(1.0, 2.0).unwrap();
    let mut left = x.clone();
    let mut right = y.clone();
    for _ in 0..n {
        left = left + &x;
        right = right * 0.99 + &y;
    }
    let a = left.lt(&(right + 40.0 + 8.0 * n as f64));
    let b = (&x + &y).gt(-10.0);
    &a & &b
}

/// Median ns/decision over `reps` timed repetitions of `iters` decisions.
fn median_ns(reps: usize, iters: usize, mut run: impl FnMut(usize)) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            run(iters);
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    times[times.len() / 2]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--quick") {
        std::env::set_var("QUICK", "1");
    }
    header("Session plan cache: repeated decisions, cached vs uncached");
    let iters = scaled(2_000, 200);
    let reps = 7;
    let stamp = SystemTime::now().duration_since(UNIX_EPOCH)?.as_secs();
    let mut out = OpenOptions::new()
        .create(true)
        .append(true)
        .open("BENCH_session.json")?;

    println!(
        "{:>6} {:>14} {:>14} {:>9}",
        "nodes", "uncached ns", "cached ns", "speedup"
    );
    for n in [5usize, 50, 500] {
        let expr = network(n);

        let mut cached = Session::seeded(1);
        let nodes = cached.cached_plan(&expr).slot_count();
        let mut checksum = 0usize;
        let cached_ns = median_ns(reps, iters, |k| {
            for _ in 0..k {
                checksum += cached.pr(&expr, 0.5) as usize;
            }
        });
        let stats = cached.cache_stats();

        let mut uncached = Session::seeded(1).with_cache_capacity(0);
        let uncached_ns = median_ns(reps, iters, |k| {
            for _ in 0..k {
                checksum += uncached.pr(&expr, 0.5) as usize;
            }
        });

        let speedup = uncached_ns / cached_ns;
        println!("{nodes:>6} {uncached_ns:>14.1} {cached_ns:>14.1} {speedup:>8.2}x");
        writeln!(
            out,
            "{{\"bench\":\"session_plan_cache\",\"unix_time\":{stamp},\"nodes\":{nodes},\
             \"decisions\":{iters},\"uncached_ns_per_decision\":{uncached_ns:.1},\
             \"cached_ns_per_decision\":{cached_ns:.1},\"speedup\":{speedup:.3},\
             \"cache_hits\":{hits},\"cache_misses\":{misses},\
             \"uncached_misses\":{unc_misses},\"checksum\":{checksum}}}",
            hits = stats.hits,
            misses = stats.misses,
            unc_misses = uncached.cache_stats().misses,
        )?;
    }
    println!("\nappended 3 records to BENCH_session.json");
    Ok(())
}
