//! Figure 14: SensorLife — (a) rate of incorrect decisions and (b) samples
//! drawn per cell update, for NaiveLife / SensorLife / BayesLife across
//! noise levels σ. Paper scale: 20×20 board, 25 generations, 50 runs per
//! point (run with `--release`; set QUICK=1 for a smoke run).

use uncertain_bench::{header, scaled};
use uncertain_life::{LifeExperiment, Variant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Figure 14: SensorLife accuracy and sampling cost vs. noise σ");
    let experiment = scaled(
        LifeExperiment::paper_scale(14),
        LifeExperiment::new(10, 10, 5, 2, 14),
    );
    let sigmas = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4];

    println!("(a) rate of incorrect decisions (95% CI)");
    println!(
        "{:>6} {:>22} {:>22} {:>22}",
        "σ", "NaiveLife", "SensorLife", "BayesLife"
    );
    let mut results = Vec::new();
    for &sigma in &sigmas {
        let mut row = format!("{sigma:>6.2}");
        for variant in Variant::ALL {
            let r = experiment.run(variant, sigma)?;
            let (lo, hi) = r.error_rate_ci();
            row.push_str(&format!(" {:>9.4} [{:.4},{:.4}]", r.error_rate(), lo, hi));
            results.push(r);
        }
        println!("{row}");
    }

    println!();
    println!("(b) samples drawn per cell update");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "σ", "NaiveLife", "SensorLife", "BayesLife"
    );
    for chunk in results.chunks(3) {
        println!(
            "{:>6.2} {:>12.2} {:>12.2} {:>12.2}",
            chunk[0].sigma,
            chunk[0].samples_per_update(),
            chunk[1].samples_per_update(),
            chunk[2].samples_per_update()
        );
    }

    println!();
    println!(
        "updates per point: {}   (paper: 10000 per run × 50 runs)",
        experiment.total_updates()
    );
    println!("expected shape: Naive flat (missed births + threshold noise),");
    println!("Sensor scales with σ and costs the most samples, Bayes ≈ 0 errors");
    println!("with fewer samples than Sensor.");
    Ok(())
}
