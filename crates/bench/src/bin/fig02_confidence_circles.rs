//! Figure 2: confidence circles mislead across platforms.
//!
//! The paper reverse-engineered that Windows Phone draws a 95% confidence
//! circle and Android a 68% one. This binary quantifies the trap: for the
//! same drawn radius, the implied error distributions differ by ~1.7×, so
//! "the smaller circle has a higher standard deviation and is less
//! accurate."

use uncertain_bench::header;
use uncertain_gps::{radius_for_confidence, rho_from_accuracy};

fn main() {
    header("Figure 2: the same circle radius under two confidence conventions");
    println!(
        "{:>12} {:>14} {:>14} {:>16}",
        "radius (m)", "ρ if 95% CI", "ρ if 68% CI", "σ ratio 68/95"
    );
    for radius in [2.0, 4.0, 8.0, 16.0] {
        // If the circle is the 95% radius (WP), ρ = r/√ln400.
        let rho95 = rho_from_accuracy(radius);
        // If the same circle is the 68% radius (Android), invert the
        // Rayleigh CDF at 0.68.
        let rho68 = radius / (-2.0 * (1.0 - 0.68_f64).ln()).sqrt();
        println!(
            "{radius:>12.1} {rho95:>14.3} {rho68:>14.3} {:>16.3}",
            rho68 / rho95
        );
    }
    println!();
    println!("cross-check: a WP circle of 4 m and an Android circle of 3 m:");
    let wp = rho_from_accuracy(4.0);
    let android = 3.0 / (-2.0 * (1.0 - 0.68_f64).ln()).sqrt();
    println!("  WP (95%):      drawn r = 4.0 m  →  ρ = {wp:.3} m");
    println!("  Android (68%): drawn r = 3.0 m  →  ρ = {android:.3} m");
    println!(
        "  the SMALLER circle is the LESS accurate fix ({})",
        if android > wp {
            "confirmed"
        } else {
            "not confirmed"
        }
    );
    println!(
        "  Android's true 95% radius would be {:.2} m",
        radius_for_confidence(android, 0.95)
    );
}
