//! Figure 9: "uncertainty in data means there is only a probability that
//! Speed > 4, not a concrete boolean value." Renders the speed
//! distribution, marks the 4 mph threshold, and reports the shaded area —
//! the evidence the conditional operators evaluate.

use uncertain_bench::{header, scaled};
use uncertain_core::Session;
use uncertain_gps::{uncertain_speed, GeoCoordinate, GpsReading, MPS_TO_MPH};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Figure 9: evidence = area of the Speed distribution right of 4 mph");
    let n = scaled(40_000, 2_000);

    // The walking scenario of Fig. 5: true 3 mph step, ε = 4 m fixes.
    let start = GeoCoordinate::new(47.6, -122.3);
    let end = start.destination(3.0 / MPS_TO_MPH, 90.0);
    let a = GpsReading::new(start, 4.0)?;
    let b = GpsReading::new(end, 4.0)?;
    let speed = uncertain_speed(&a, &b, 1.0);

    let mut session = Session::seeded(9);
    let hist = speed.histogram_in(&mut session, n, 0.0, 20.0, 40)?;
    println!("speed distribution (mph); rows right of the ━ line are the evidence:");
    for (center, count) in hist.iter() {
        let marker = if (center - 4.0).abs() < 0.25 {
            "━"
        } else {
            " "
        };
        let bar = "#".repeat((count as usize * 45 / (n / 12)).min(45));
        println!("{center:>6.2} {marker}| {bar}");
    }

    let evidence = speed.gt(4.0).probability_in(&mut session, n);
    println!();
    println!("Pr[Speed > 4 mph] = {evidence:.3}  (the shaded area of Fig. 9)");
    println!("implicit conditional takes the branch iff this exceeds 0.5;");
    println!("the explicit (Speed < 4).Pr(0.9) requires the complement to exceed 0.9:");
    let complement = speed.lt(4.0).probability_in(&mut session, n);
    println!(
        "Pr[Speed < 4 mph] = {complement:.3} → SpeedUp fires: {}",
        complement > 0.9
    );
    Ok(())
}
