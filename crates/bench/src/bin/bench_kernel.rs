//! Measures the columnar batch kernel against the closure-compiled plan
//! on the SPRT hot path — batched sampling of the same network, same
//! seeds, same substream indexing — and appends one machine-readable JSON
//! line per (workload, batch size) to `BENCH_kernel.json` (in the working
//! directory).
//!
//! Three workloads spanning the shapes the kernel targets:
//!
//! - `fig9_gps`: the literal Fig. 9 conditional (`Speed < 4 mph` from two
//!   ε = 4 m fixes), transcendental-heavy with shared subexpressions.
//! - `evidence_chain`: the 159-node chain the `bench_plan`/`bench_serve`
//!   family uses — long dependency chains, cheap per-node math.
//! - `wide_dag`: a 129-node network: a balanced reduction over 64 Gaussian leaves —
//!   maximum instruction-level breadth per tape step.
//!
//! A fourth section, `leaf_bound`, isolates the per-distribution cost of
//! `FillLeaf` itself: a single-leaf network per distribution, run once as
//! a tagged `from_distribution` leaf (the kernel fills whole columns
//! through the vectorized `fill_column` pass) and once as a `from_fn`
//! closure over the same distribution (the kernel's per-element scalar
//! fallback). The scalar-vs-vectorized ns/sample delta is the leaf
//! batching win with no arithmetic in the way.
//!
//! Both paths draw identical sample streams (asserted bitwise before
//! timing), so the speedup column is pure evaluation-strategy delta:
//! register-tape columns and per-instruction loops versus one nested
//! closure call tree per sample.
//!
//! Run `cargo run --release --bin bench_kernel`; `--quick` (or `QUICK=1`)
//! shrinks the sample budget for smoke runs.

use std::fs::OpenOptions;
use std::io::Write;
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};
use uncertain_bench::{header, scaled};
use uncertain_core::dist::{Bernoulli, Exponential, Gaussian, Rayleigh, Uniform};
use uncertain_core::prelude::Distribution;
use uncertain_core::{Evaluator, ParSampler, Uncertain, Value};
use uncertain_gps::{uncertain_speed, GeoCoordinate, GpsReading, MPS_TO_MPH};

const SEED: u64 = 2014;

/// The literal Fig. 9 evidence network: walking at a true 3 mph with
/// ε = 4 m GPS fixes, asking the paper's `Speed < 4` question.
fn fig9_gps() -> Uncertain<bool> {
    let start = GeoCoordinate::new(47.6, -122.3);
    let end = start.destination(3.0 / MPS_TO_MPH, 90.0);
    let a = GpsReading::new(start, 4.0).expect("valid accuracy");
    let b = GpsReading::new(end, 4.0).expect("valid accuracy");
    uncertain_speed(&a, &b, 1.0).lt(4.0)
}

/// The `3n + 9`-node evidence conditional of `bench_serve` (159 nodes at
/// n = 50): long chains of scalar ops over two shared Gaussian leaves.
fn evidence_chain(n: usize) -> Uncertain<bool> {
    let x = Uncertain::normal(0.0, 1.0).unwrap();
    let y = Uncertain::normal(1.0, 2.0).unwrap();
    let mut left = x.clone();
    let mut right = y.clone();
    for _ in 0..n {
        left = left + &x;
        right = right * 0.99 + &y;
    }
    let a = left.lt(&(right + 40.0 + 8.0 * n as f64));
    let b = (&x + &y).gt(-10.0);
    &a & &b
}

/// A balanced binary reduction over `width` Gaussian leaves compared
/// against a threshold: wide layers of independent adds, the best case
/// for columnar evaluation.
fn wide_dag(width: usize) -> Uncertain<bool> {
    let mut layer: Vec<Uncertain<f64>> = (0..width)
        .map(|i| Uncertain::normal(i as f64 * 0.1, 1.0).unwrap())
        .collect();
    while layer.len() > 1 {
        layer = layer
            .chunks(2)
            .map(|pair| {
                if let [a, b] = pair {
                    a + b
                } else {
                    pair[0].clone()
                }
            })
            .collect();
    }
    let sum = layer.pop().expect("non-empty reduction");
    sum.gt(0.0)
}

/// Median ns/sample over `reps` timed repetitions, each drawing
/// `batches × batch` samples through `run`.
fn median_ns(reps: usize, batches: usize, batch: usize, mut run: impl FnMut(usize)) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batches {
                run(batch);
            }
            start.elapsed().as_nanos() as f64 / (batches * batch) as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    times[times.len() / 2]
}

/// One `leaf_bound` row: times a single-leaf network through the kernel's
/// vectorized column fill (`tagged`) and its per-element scalar fallback
/// (`closure`), and appends the comparison as JSON. Both leaves sample the
/// same distribution, so the streams are asserted bitwise-equal first.
#[allow(clippy::too_many_arguments)]
fn leaf_bound_row<T: Value + PartialEq + std::fmt::Debug>(
    out: &mut impl Write,
    dist: &str,
    tagged: Uncertain<T>,
    closure: Uncertain<T>,
    reps: usize,
    budget: usize,
    stamp: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    let batch = 4096usize;
    let batches = (budget / batch).max(1);

    assert_eq!(
        Evaluator::new(&closure, SEED).sample_batch(10_000),
        Evaluator::new(&tagged, SEED).sample_batch(10_000),
        "vectorized and scalar leaf fills disagree for {dist}"
    );

    let mut scalar_eval = Evaluator::new(&closure, SEED);
    let mut buf = Vec::with_capacity(batch);
    scalar_eval.sample_batch_into(&mut buf, batch); // warm
    let scalar_ns = median_ns(reps, batches, batch, |k| {
        scalar_eval.sample_batch_into(&mut buf, k);
    });

    let mut vector_eval = Evaluator::new(&tagged, SEED);
    vector_eval.sample_batch_into(&mut buf, batch); // warm
    let vector_ns = median_ns(reps, batches, batch, |k| {
        vector_eval.sample_batch_into(&mut buf, k);
    });

    let speedup = scalar_ns / vector_ns;
    println!("{dist:>12} {scalar_ns:>14.2} {vector_ns:>14.2} {speedup:>8.2}x");
    writeln!(
        out,
        "{{\"bench\":\"kernel_columnar\",\"workload\":\"leaf_bound\",\
         \"dist\":\"{dist}\",\"unix_time\":{stamp},\"batch\":{batch},\
         \"samples\":{samples},\"threads\":1,\
         \"scalar_ns_per_sample\":{scalar_ns:.2},\
         \"vector_ns_per_sample\":{vector_ns:.2},\"speedup\":{speedup:.3}}}",
        samples = batches * batch,
    )?;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--quick") {
        std::env::set_var("QUICK", "1");
    }
    header("Columnar kernel vs closure plan: batched sampling (appends BENCH_kernel.json)");
    // Per-repetition sample budget; batches = budget / batch size.
    let budget = scaled(262_144, 8_192);
    let reps = 7;
    let stamp = SystemTime::now().duration_since(UNIX_EPOCH)?.as_secs();
    let mut out = OpenOptions::new()
        .create(true)
        .append(true)
        .open("BENCH_kernel.json")?;

    let workloads: [(&str, Uncertain<bool>); 3] = [
        ("fig9_gps", fig9_gps()),
        ("evidence_chain", evidence_chain(50)),
        ("wide_dag", wide_dag(64)),
    ];

    let mut records = 0usize;
    for (workload, net) in &workloads {
        // Determinism witness first: the two paths must agree bitwise
        // before their timings are comparable at all.
        let reference = ParSampler::with_threads(net, SEED, 1).sample_batch(10_000);
        let columnar = Evaluator::new(net, SEED).sample_batch(10_000);
        assert_eq!(reference, columnar, "kernel and closure paths disagree");

        println!("\n[{workload}] ({} nodes)", net.network().node_count());
        println!(
            "{:>6} {:>14} {:>14} {:>9}",
            "batch", "closure ns", "kernel ns", "speedup"
        );
        for batch in [32usize, 256, 4096] {
            let batches = (budget / batch).max(1);

            let mut closure = ParSampler::with_threads(net, SEED, 1);
            closure.sample_batch(batch); // warm
            let closure_ns = median_ns(reps, batches, batch, |k| {
                let _ = closure.sample_batch(k);
            });

            let mut eval = Evaluator::new(net, SEED);
            let mut buf = Vec::with_capacity(batch);
            eval.sample_batch_into(&mut buf, batch); // warm
            let kernel_ns = median_ns(reps, batches, batch, |k| {
                eval.sample_batch_into(&mut buf, k);
            });

            let speedup = closure_ns / kernel_ns;
            println!("{batch:>6} {closure_ns:>14.1} {kernel_ns:>14.1} {speedup:>8.2}x");
            writeln!(
                out,
                "{{\"bench\":\"kernel_columnar\",\"workload\":\"{workload}\",\
                 \"unix_time\":{stamp},\"nodes\":{nodes},\"batch\":{batch},\
                 \"samples\":{samples},\"threads\":1,\
                 \"closure_ns_per_sample\":{closure_ns:.2},\
                 \"kernel_ns_per_sample\":{kernel_ns:.2},\"speedup\":{speedup:.3}}}",
                nodes = net.network().node_count(),
                samples = batches * batch,
            )?;
            records += 1;
        }
    }
    // Leaf-bound microbench: FillLeaf cost per distribution, scalar
    // fallback vs vectorized column fill, nothing else on the tape.
    println!("\n[leaf_bound] (single-leaf networks, batch 4096)");
    println!(
        "{:>12} {:>14} {:>14} {:>9}",
        "dist", "scalar ns", "vector ns", "speedup"
    );
    macro_rules! f64_leaf {
        ($name:literal, $dist:expr) => {{
            let tagged = Uncertain::from_distribution($dist);
            let d = Arc::new($dist);
            let closure = Uncertain::from_fn(concat!("scalar ", $name), move |rng| d.sample(rng));
            leaf_bound_row(&mut out, $name, tagged, closure, reps, budget, stamp)?;
            records += 1;
        }};
    }
    f64_leaf!("Gaussian", Gaussian::new(0.0, 1.0).unwrap());
    f64_leaf!("Exponential", Exponential::new(1.0).unwrap());
    f64_leaf!("Rayleigh", Rayleigh::new(2.0).unwrap());
    f64_leaf!("Uniform", Uniform::new(0.0, 1.0).unwrap());
    f64_leaf!("Bernoulli", Bernoulli::new(0.3).unwrap());

    println!("\nappended {records} records to BENCH_kernel.json");
    Ok(())
}
