//! Figure 15: the posterior predictive distribution of the approximated
//! Sobel operator for one input where Parrot's point estimate misfires.
//! The PPD's evidence for `s(p) > 0.1` is well below certainty, which is
//! exactly what lets Parakeet suppress the false positive.

use uncertain_bench::{header, scaled};
use uncertain_core::Session;
use uncertain_neural::sobel::{generate_dataset, sobel, EDGE_THRESHOLD};
use uncertain_neural::{Parakeet, Parrot};
use uncertain_stats::Histogram;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Figure 15: Sobel PPD vs. Parrot's point estimate vs. truth");
    let train = generate_dataset(scaled(5000, 300), 150);
    let test = generate_dataset(scaled(500, 100), 151);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(15);

    let parrot = Parrot::train(&train, scaled(60, 20), 0.05, &mut rng);
    let parakeet = Parakeet::train_tuned(&train, scaled(300, 40), 152, &mut rng);
    println!(
        "HMC pool: {} networks, acceptance {:.2}",
        parakeet.pool_size(),
        parakeet.acceptance_rate()
    );

    // Find a Parrot false positive: predicted edge, truly not an edge.
    let mut session = Session::seeded(153);
    let target = test
        .inputs
        .iter()
        .zip(&test.targets)
        .find(|(x, &t)| parrot.is_edge(x) && t <= EDGE_THRESHOLD)
        .map(|(x, _)| x.clone());

    let input = match target {
        Some(x) => x,
        None => {
            println!(
                "no Parrot false positive in this test set; using the closest near-threshold input"
            );
            test.inputs[0].clone()
        }
    };

    let truth = {
        let mut p = [0.0; 9];
        p.copy_from_slice(&input);
        sobel(&p)
    };
    let ppd = parakeet.predict(&input);
    let stats = ppd.stats_in(&mut session, scaled(5000, 500))?;

    println!();
    println!("true s(p)        = {truth:.4}  (edge iff > {EDGE_THRESHOLD})");
    println!(
        "Parrot estimate  = {:.4}  → reports {}",
        parrot.predict(&input),
        if parrot.is_edge(&input) {
            "EDGE (false positive)"
        } else {
            "no edge"
        }
    );
    println!(
        "PPD mean         = {:.4} ± {:.4}",
        stats.mean(),
        stats.std_dev()
    );

    let evidence = ppd
        .gt(EDGE_THRESHOLD)
        .probability_in(&mut session, scaled(5000, 500));
    println!("evidence Pr[s(p) > 0.1] = {evidence:.3} (paper's example: 0.70)");
    println!(
        "explicit conditional .pr(0.8): {}",
        if ppd.gt(EDGE_THRESHOLD).pr_in(&mut session, 0.8) {
            "EDGE"
        } else {
            "no edge — false positive suppressed"
        }
    );

    println!();
    println!("PPD histogram (│ marks the 0.1 threshold):");
    let lo = (stats.min() - 0.02).min(0.0);
    let hi = (stats.max() + 0.02).max(0.2);
    let mut hist = Histogram::new(lo, hi, 25)?;
    hist.extend(session.samples(&ppd, scaled(5000, 500)));
    print!("{}", hist.render(40));
    Ok(())
}
