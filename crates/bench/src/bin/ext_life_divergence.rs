//! Extension experiment: closed-loop SensorLife. The paper evaluates
//! per-update decision accuracy against a ground-truth trajectory; here
//! each noisy Game of Life **evolves its own board** from its own noisy
//! decisions and we track the fraction of cells disagreeing with the true
//! board — computation compounding error at the macro scale.

use uncertain_bench::{header, scaled};
use uncertain_life::{LifeExperiment, Variant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Extension: closed-loop board divergence from ground truth (σ = 0.15)");
    let exp = scaled(
        LifeExperiment::new(20, 20, 20, 10, 77),
        LifeExperiment::new(10, 10, 8, 2, 77),
    );
    let sigma = 0.15;
    let series: Vec<(Variant, Vec<f64>)> = Variant::ALL
        .into_iter()
        .map(|v| Ok::<_, uncertain_core::dist::ParamError>((v, exp.run_closed_loop(v, sigma)?)))
        .collect::<Result<_, _>>()?;

    println!(
        "{:>4} {:>12} {:>12} {:>12}",
        "gen", "NaiveLife", "SensorLife", "BayesLife"
    );
    let generations = series[0].1.len();
    for g in 0..generations {
        println!(
            "{:>4} {:>12.4} {:>12.4} {:>12.4}",
            g + 1,
            series[0].1[g],
            series[1].1[g],
            series[2].1[g]
        );
    }
    println!();
    println!("Naive decorrelates from the truth within a few generations and");
    println!("hovers near the random-overlap plateau; Bayes tracks the truth.");
    Ok(())
}
