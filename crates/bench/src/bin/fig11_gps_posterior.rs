//! Figure 11: the GPS posterior is a Rayleigh over distance from the
//! reported point — the true location is *unlikely to be at the center*.

use uncertain_bench::{header, scaled};
use uncertain_core::Session;
use uncertain_dist::{Continuous, Rayleigh};
use uncertain_gps::{GeoCoordinate, GpsReading};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Figure 11: GPS posterior Rayleigh(ε/√ln400) for ε = 4 m");
    let radial = Rayleigh::from_gps_accuracy(4.0)?;
    println!(
        "scale ρ = {:.4} m   mode = {:.4} m   mean = {:.4} m",
        radial.scale(),
        radial.mode(),
        radial.mean()
    );
    println!();
    println!("radial density (distance from reported point):");
    let mut r = 0.0;
    while r <= 6.0 {
        let d = radial.pdf(r);
        println!(
            "{r:>5.2} m | {:<50} {d:.4}",
            "#".repeat((d * 80.0) as usize)
        );
        r += 0.25;
    }

    println!();
    println!("sampled check against the Uncertain<GeoCoordinate> library:");
    let fix = GpsReading::new(GeoCoordinate::new(47.6, -122.3), 4.0)?;
    let location = fix.location();
    let mut session = Session::seeded(11);
    let n = scaled(20_000, 1_000);
    let dists: Vec<f64> = (0..n)
        .map(|_| fix.center().distance_meters(&session.sample(&location)))
        .collect();
    let within_eps = dists.iter().filter(|&&d| d <= 4.0).count() as f64 / n as f64;
    let within_tenth = dists.iter().filter(|&&d| d <= 0.4).count() as f64 / n as f64;
    println!("  Pr[within ε = 4 m]      = {within_eps:.3} (construction: 0.95)");
    println!(
        "  Pr[within 0.4 m of center] = {within_tenth:.3} — the center is an unlikely location"
    );
    Ok(())
}
