//! Measures the analytic evaluation backend against the columnar-kernel
//! SPRT on recognized graphs, and appends machine-readable JSON lines to
//! `BENCH_exact.json` (in the working directory).
//!
//! Two sections:
//!
//! - `decision`: ns/decision on linear-Gaussian evidence chains (the
//!   `bench_kernel`/`bench_serve` family, 39–465 nodes). The sampling
//!   column pays one SPRT run through the batch kernel per decision; the
//!   exact column answers from the memoized closed-form law with zero
//!   samples. Both consume exactly one query index per decision, so the
//!   comparison is like-for-like on the session's seed stream. The
//!   verdicts are asserted equal before anything is timed.
//! - `serve`: aggregate decisions/s through the sharded service on the
//!   159-node chain, pipelined over many tenants — once under the
//!   default (sampling) strategy and once with a per-request
//!   `EvalStrategy::Auto` override, plus the exact-hit counter as the
//!   witness that the fast path actually served the requests.
//!
//! Run `cargo run --release --bin bench_exact`; `--quick` (or `QUICK=1`)
//! shrinks the budgets for smoke runs.

use std::collections::VecDeque;
use std::fs::OpenOptions;
use std::io::Write;
use std::time::{Instant, SystemTime, UNIX_EPOCH};
use uncertain_bench::{header, scaled};
use uncertain_core::{EvalConfig, EvalStrategy, Session, Uncertain};
use uncertain_serve::{Pending, ServeConfig, Service};

const SEED: u64 = 2014;
const THRESHOLD: f64 = 0.5;

/// The `3n + 9`-node evidence conditional of `bench_serve`/`bench_kernel`
/// (159 nodes at n = 50): affine chains over two shared Gaussian leaves,
/// compared and conjoined — entirely inside the analytic fragment.
fn evidence_chain(n: usize) -> Uncertain<bool> {
    let x = Uncertain::normal(0.0, 1.0).unwrap();
    let y = Uncertain::normal(1.0, 2.0).unwrap();
    let mut left = x.clone();
    let mut right = y.clone();
    for _ in 0..n {
        left = left + &x;
        right = right * 0.99 + &y;
    }
    let a = left.lt(&(right + 40.0 + 8.0 * n as f64));
    let b = (&x + &y).gt(-10.0);
    &a & &b
}

/// Median ns/decision over `reps` timed repetitions of `rounds` decisions.
fn median_ns(reps: usize, rounds: usize, mut run: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..rounds {
                run();
            }
            start.elapsed().as_nanos() as f64 / rounds as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    times[times.len() / 2]
}

/// Pipelined closed-loop decision throughput through the service, with an
/// optional per-request strategy override. Returns (decisions/s, count).
fn serve_throughput(
    service: &Service,
    cond: &Uncertain<bool>,
    tenants: u64,
    rounds: usize,
    strategy: Option<EvalStrategy>,
) -> (f64, usize) {
    const WINDOW: usize = 64;
    let client = service.client();
    let mut inflight: VecDeque<Pending<_>> = VecDeque::with_capacity(WINDOW);
    let total = rounds * tenants as usize;
    let mut submitted = 0usize;
    let start = Instant::now();
    while submitted < total || !inflight.is_empty() {
        while submitted < total && inflight.len() < WINDOW {
            let tenant = (submitted as u64) % tenants;
            let pending = match strategy {
                Some(s) => client
                    .submit_evaluate_with_strategy(tenant, cond, THRESHOLD, None, s)
                    .expect("admit"),
                None => client
                    .submit_evaluate(tenant, cond, THRESHOLD, None)
                    .expect("admit"),
            };
            inflight.push_back(pending);
            submitted += 1;
        }
        let outcome = inflight
            .pop_front()
            .expect("non-empty window")
            .wait()
            .expect("decision");
        assert!(outcome.accepted, "the chain is decisively true");
    }
    (total as f64 / start.elapsed().as_secs_f64(), total)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--quick") {
        std::env::set_var("QUICK", "1");
    }
    header("Analytic backend vs kernel SPRT: ns/decision (appends BENCH_exact.json)");
    let rounds = scaled(4096, 256);
    let reps = 7;
    let stamp = SystemTime::now().duration_since(UNIX_EPOCH)?.as_secs();
    let mut out = OpenOptions::new()
        .create(true)
        .append(true)
        .open("BENCH_exact.json")?;
    let mut records = 0usize;

    println!(
        "\n[decision]\n{:>6} {:>6} {:>14} {:>14} {:>9}",
        "chain", "nodes", "sampled ns", "exact ns", "speedup"
    );
    for n in [10usize, 50, 152] {
        let cond = evidence_chain(n);
        let nodes = cond.network().node_count();
        let sampling = EvalConfig::default();
        let auto = sampling.with_strategy(EvalStrategy::Auto);

        // Verdict parity before timing: the closed form and the SPRT
        // must agree on every chain we score.
        let mut check = Session::seeded(SEED);
        let sampled_outcome = check.try_evaluate(&cond, THRESHOLD, &sampling)?;
        let mut check_exact = Session::seeded(SEED).with_strategy(EvalStrategy::Auto);
        let exact_outcome = check_exact.try_evaluate(&cond, THRESHOLD, &auto)?;
        assert_eq!(exact_outcome.samples, 0, "analytic path must draw nothing");
        assert_eq!(exact_outcome.accepted, sampled_outcome.accepted);

        let mut sampler = Session::seeded(SEED);
        let _ = sampler.try_evaluate(&cond, THRESHOLD, &sampling)?; // warm plan
        let sampled_ns = median_ns(reps, rounds, || {
            let _ = sampler.try_evaluate(&cond, THRESHOLD, &sampling).unwrap();
        });

        let mut exact = Session::seeded(SEED).with_strategy(EvalStrategy::Auto);
        let _ = exact.try_evaluate(&cond, THRESHOLD, &auto)?; // warm memo
        let exact_ns = median_ns(reps, rounds, || {
            let _ = exact.try_evaluate(&cond, THRESHOLD, &auto).unwrap();
        });
        assert_eq!(exact.exact_hits() as usize, 1 + reps * rounds);

        let speedup = sampled_ns / exact_ns;
        println!("{n:>6} {nodes:>6} {sampled_ns:>14.1} {exact_ns:>14.1} {speedup:>8.1}x");
        writeln!(
            out,
            "{{\"bench\":\"exact_backend\",\"section\":\"decision\",\
             \"workload\":\"evidence_chain\",\"unix_time\":{stamp},\
             \"chain\":{n},\"nodes\":{nodes},\"decisions\":{decisions},\
             \"sampled_ns_per_decision\":{sampled_ns:.2},\
             \"exact_ns_per_decision\":{exact_ns:.2},\"speedup\":{speedup:.3}}}",
            decisions = reps * rounds,
        )?;
        records += 1;
    }

    // Service throughput: same chain, same tenants, sampling vs Auto.
    let cond = evidence_chain(50);
    let tenants = 16u64;
    let serve_rounds = scaled(256, 16);
    println!(
        "\n[serve] ({} tenants, 159-node chain)\n{:>10} {:>16} {:>12}",
        tenants, "strategy", "decisions/s", "exact hits"
    );
    let mut serve_row = |label: &str, strategy: Option<EvalStrategy>| -> std::io::Result<()> {
        let service = Service::start(
            ServeConfig::default()
                .with_shards(1)
                .with_seed(SEED)
                .with_sessions_per_shard(tenants as usize),
        );
        let (dps, decisions) = serve_throughput(&service, &cond, tenants, serve_rounds, strategy);
        let exact_hits = service.metrics().exact_decisions();
        service.shutdown();
        println!("{label:>10} {dps:>16.0} {exact_hits:>12}");
        writeln!(
            out,
            "{{\"bench\":\"exact_backend\",\"section\":\"serve\",\
             \"workload\":\"evidence_chain\",\"unix_time\":{stamp},\
             \"strategy\":\"{label}\",\"tenants\":{tenants},\
             \"decisions\":{decisions},\"decisions_per_sec\":{dps:.0},\
             \"exact_decisions\":{exact_hits}}}"
        )
    };
    serve_row("sampling", None)?;
    records += 1;
    serve_row("auto", Some(EvalStrategy::Auto))?;
    records += 1;

    println!("\nappended {records} records to BENCH_exact.json");
    Ok(())
}
