//! Figure 1: a single sample is a poor estimate of a distribution.
//!
//! Draws one sample from a Gaussian and contrasts it with the histogram of
//! the full distribution, reproducing the paper's opening observation:
//! "the outcome of one flip is only a sample and not a good estimate of the
//! true value."

use uncertain_bench::{header, scaled};
use uncertain_core::{Session, Uncertain};
use uncertain_stats::Histogram;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Figure 1: one sample vs. the distribution (Gaussian N(0,1))");
    let n = scaled(100_000, 2_000);

    let x = Uncertain::normal(0.0, 1.0)?;
    let mut session = Session::seeded(1);

    let single = session.sample(&x);
    println!("single sample observed: {single:.3}\n");

    let mut hist = Histogram::new(-4.0, 4.0, 33)?;
    hist.extend(session.samples(&x, n));
    println!("distribution ({n} samples):");
    print!("{}", hist.render(50));

    let stats = x.stats_in(&mut session, n)?;
    println!(
        "\nmean = {:+.4}  (true 0)    σ = {:.4}  (true 1)",
        stats.mean(),
        stats.std_dev()
    );
    let below = session
        .samples(&x, 10_000)
        .into_iter()
        .filter(|v| *v < single)
        .count();
    println!(
        "the single sample sits at the {:.1}th percentile of the distribution",
        100.0 * below as f64 / 10_000.0
    );
    Ok(())
}
