//! Table 1: the operators and methods of `Uncertain<T>`, demonstrated
//! live. Each row of the paper's table is executed and its semantics
//! printed (the behavioral assertions live in `tests/operator_table.rs`).

use uncertain_bench::header;
use uncertain_core::{EvalConfig, Session, Uncertain};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Table 1: Uncertain<T> operators and methods");
    let mut s = Session::seeded(1);
    let a = Uncertain::normal(4.0, 1.0)?;
    let b = Uncertain::normal(5.0, 1.0)?;

    println!("Math  (+ − × ÷) :: U<T> → U<T> → U<T>");
    for (sym, expr) in [
        ("a + b", &a + &b),
        ("a - b", &a - &b),
        ("a * b", &a * &b),
        ("a / b", &a / &b),
    ] {
        println!(
            "  {sym:<6} E = {:7.3}",
            expr.expected_value_in(&mut s, 4000)
        );
    }

    println!("\nOrder (< > ≤ ≥) :: U<T> → U<T> → U<Bool>");
    for (sym, cond) in [
        ("a < b", a.lt(&b)),
        ("a > b", a.gt(&b)),
        ("a ≤ b", a.le(&b)),
        ("a ≥ b", a.ge(&b)),
    ] {
        println!("  {sym:<6} Pr = {:.3}", cond.probability_in(&mut s, 4000));
    }

    println!("\nLogical (∧ ∨) :: U<Bool> → U<Bool> → U<Bool>   Unary (¬) :: U<Bool> → U<Bool>");
    let p = Uncertain::bernoulli(0.7)?;
    let q = Uncertain::bernoulli(0.4)?;
    println!(
        "  p ∧ q  Pr = {:.3} (0.28 analytic)",
        (&p & &q).probability_in(&mut s, 8000)
    );
    println!(
        "  p ∨ q  Pr = {:.3} (0.82 analytic)",
        (&p | &q).probability_in(&mut s, 8000)
    );
    println!(
        "  ¬p     Pr = {:.3} (0.30 analytic)",
        (!&p).probability_in(&mut s, 8000)
    );

    println!("\nPointmass :: T → U<T>");
    let four: Uncertain<f64> = 4.0.into();
    println!(
        "  Uncertain::from(4.0) samples {} every time",
        s.sample(&four)
    );

    println!("\nConditionals:");
    let fast = b.gt(&a); // Pr ≈ Φ(1/√2) ≈ 0.76
    println!(
        "  implicit Pr :: U<Bool> → Bool          if (b > a)       → {}",
        fast.is_probable_in(&mut s)
    );
    println!(
        "  explicit Pr :: U<Bool> → [0,1] → Bool  (b > a).Pr(0.9)  → {}",
        fast.pr_in(&mut s, 0.9)
    );
    let o = s.evaluate_with(&fast, 0.5, &EvalConfig::default());
    println!(
        "  (SPRT used {} samples; estimate {:.2}; conclusive: {})",
        o.samples, o.estimate, o.conclusive
    );

    println!("\nExpected value E :: U<T> → T");
    println!(
        "  (a + b).E() = {:.3}",
        (&a + &b).expected_value_in(&mut s, 4000)
    );
    Ok(())
}
