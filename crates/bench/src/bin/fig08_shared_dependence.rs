//! Figures 7 & 8: Bayesian-network construction and the shared-dependence
//! (SSA) analysis. A wrong network that treats the two uses of X as
//! independent under-states the variance of B = (Y + X) + X; the runtime's
//! node-identity tracking produces the correct network of Fig. 8(b).

use uncertain_bench::{header, scaled};
use uncertain_core::{Session, Uncertain};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Figure 8: B = (Y + X) + X — shared dependence handled correctly");
    let n = scaled(100_000, 5_000);
    let x = Uncertain::normal(0.0, 1.0)?;
    let y = Uncertain::normal(0.0, 1.0)?;

    // Correct: both occurrences are the SAME variable (node identity).
    let a = &y + &x;
    let b = &a + &x;

    // Wrong-on-purpose: a fresh, independent copy of X for the second use
    // (what a naive tree construction would implicitly assume).
    let b_wrong = &a + &x.encapsulate();

    let mut session = Session::seeded(8);
    let correct = b.stats_in(&mut session, n)?;
    let wrong = b_wrong.stats_in(&mut session, n)?;

    println!("analytic:  Var[Y + 2X] = 1 + 4 = 5      (correct network, Fig. 8b)");
    println!("analytic:  Var[Y + X + X'] = 1 + 1 + 1 = 3 (wrong network, Fig. 8a)");
    println!();
    println!(
        "measured (correct, shared X):     Var[B] = {:.3}",
        correct.variance()
    );
    println!(
        "measured (wrong, independent X'): Var[B] = {:.3}",
        wrong.variance()
    );
    println!();
    println!("network for B (note the single shared X leaf):");
    print!("{}", b.to_dot());

    let view = b.network();
    println!(
        "nodes = {}, leaves = {}, edges = {}, depth = {}",
        view.node_count(),
        view.leaf_count(),
        view.edge_count(),
        view.depth()
    );
    Ok(())
}
