//! Quantifies what the observability hooks cost on the decision hot path
//! (the `bench_session` workload: repeated SPRT decisions on one cached
//! plan) and appends a summary line to `BENCH_obs.json`.
//!
//! Three modes of the identical workload:
//!
//! * **no_hooks** — the `obs` feature compiled out. Feature unification
//!   makes that impossible in this binary (`uncertain-serve` turns `obs`
//!   back on), so the number comes from a prior run of
//!   `cargo run --release -p uncertain-core --no-default-features --example obs_baseline`,
//!   which appends its `{"mode":"no_hooks"}` record to the same file.
//! * **disabled** — hooks compiled in, no recorder installed: the shipping
//!   configuration. Measured here; asserted to cost < 3% over `no_hooks`
//!   (`OBS_OVERHEAD_MAX` overrides the percentage for noisy CI boxes).
//! * **recording** — a [`TraceLog`] installed, every decision traced.
//!   Measured and reported, not asserted: recording is opt-in and priced
//!   by the trajectory length, not a fixed tax.
//!
//! Two more modes price the *request tracing* layer (spans + flight
//! recorder) on the same decision workload:
//!
//! * **tracing_dormant** — the per-request guard an untraced request
//!   pays: one `Option<TraceContext>` check per decision, no recorder.
//!   Asserted to cost < 1% over `disabled` (`TRACING_OVERHEAD_MAX`
//!   overrides the percentage for noisy CI boxes).
//! * **tracing_recording** — the full traced-request path per decision:
//!   a [`TraceLog`] recorder, span-tree assembly (request/decide spans,
//!   capped `sprt_batch` events), and a [`FlightRecorder`] offer.
//!   Reported, not asserted.
//!
//! Run the baseline example first, then
//! `cargo run --release --bin bench_obs`; `QUICK=1` shrinks both.

use std::fs::OpenOptions;
use std::io::Write;
use std::time::{Instant, SystemTime, UNIX_EPOCH};
use uncertain_bench::{header, scaled};
use uncertain_core::{Session, Uncertain};
use uncertain_obs::{
    monotonic_ns, AttrValue, FlightConfig, FlightRecorder, RequestTrace, SpanEvent, TraceBuilder,
    TraceContext, TraceLog,
};

// The workload must stay line-for-line identical to the baseline copy in
// crates/core/examples/obs_baseline.rs (see there for why it is a copy).

fn network(n: usize) -> Uncertain<bool> {
    let x = Uncertain::normal(0.0, 1.0).unwrap();
    let y = Uncertain::normal(1.0, 2.0).unwrap();
    let mut left = x.clone();
    let mut right = y.clone();
    for _ in 0..n {
        left = left + &x;
        right = right * 0.99 + &y;
    }
    let a = left.lt(&(right + 40.0 + 8.0 * n as f64));
    let b = (&x + &y).gt(-10.0);
    &a & &b
}

fn median_ns(reps: usize, iters: usize, mut run: impl FnMut(usize)) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            run(iters);
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    times[times.len() / 2]
}

/// ns/decision of `iters` decisions on a warmed session, `reps` medians.
fn measure(
    session: &mut Session,
    expr: &Uncertain<bool>,
    reps: usize,
    iters: usize,
) -> (f64, usize) {
    let mut checksum = 0usize;
    for _ in 0..iters / 10 + 1 {
        checksum += session.pr(expr, 0.5) as usize;
    }
    let ns = median_ns(reps, iters, |k| {
        for _ in 0..k {
            checksum += session.pr(expr, 0.5) as usize;
        }
    });
    (ns, checksum)
}

/// The last `"ns_per_decision"` value on a `"mode":"no_hooks"` line of
/// `BENCH_obs.json`, parsed without a JSON dependency (the file is
/// machine-written, one object per line).
fn last_baseline_ns(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .rev()
        .find(|l| l.contains("\"mode\":\"no_hooks\""))
        .and_then(|l| {
            let rest = &l[l.find("\"ns_per_decision\":")? + "\"ns_per_decision\":".len()..];
            let end = rest.find([',', '}'])?;
            rest[..end].trim().parse().ok()
        })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Observability overhead: decision hot path, hooks out/dormant/recording");
    let n = 50usize;
    let iters = scaled(2_000, 200);
    let reps = 9;
    let stamp = SystemTime::now().duration_since(UNIX_EPOCH)?.as_secs();
    let max_pct: f64 = std::env::var("OBS_OVERHEAD_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);

    let Some(no_hooks_ns) = last_baseline_ns("BENCH_obs.json") else {
        eprintln!(
            "BENCH_obs.json has no no_hooks baseline; run\n  \
             cargo run --release -p uncertain-core --no-default-features --example obs_baseline\n\
             first (QUICK must match)."
        );
        std::process::exit(2);
    };

    let expr = network(n);

    // Hooks compiled in, dormant: what every default build pays.
    let mut disabled = Session::seeded(1);
    let nodes = disabled.cached_plan(&expr).slot_count();
    let (disabled_ns, mut checksum) = measure(&mut disabled, &expr, reps, iters);

    // Hooks live: every decision appends a full LLR trajectory.
    let log = TraceLog::new();
    let mut recording = Session::seeded(1).with_recorder(log.clone());
    let (recording_ns, c2) = measure(&mut recording, &expr, reps, iters);
    checksum += c2;
    let traces = log.len();
    assert!(traces > 0, "the recorder saw every decision");

    // Request tracing, dormant: what every untraced request pays for the
    // tracing layer existing — one Option<TraceContext> check, nothing
    // allocated, nothing timed. Identical code path to `disabled` plus
    // the guard, so the delta is asserted against `disabled`, not the
    // compiled-out baseline.
    let tracing_max_pct: f64 = std::env::var("TRACING_OVERHEAD_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let mut dormant = Session::seeded(1);
    dormant.cached_plan(&expr);
    for _ in 0..iters / 10 + 1 {
        checksum += dormant.pr(&expr, 0.5) as usize;
    }
    let ctx: Option<TraceContext> = None;
    let tracing_dormant_ns = median_ns(reps, iters, |k| {
        for _ in 0..k {
            let tracer = match std::hint::black_box(ctx) {
                Some(c) if c.sampled => Some(TraceBuilder::new(c)),
                _ => None,
            };
            checksum += dormant.pr(&expr, 0.5) as usize;
            checksum += usize::from(tracer.is_some());
        }
    });

    // Request tracing, live: per decision, a sampled root context, span
    // assembly (request + decide spans, batch events from the decision
    // trace), and a flight-recorder offer — the serve crate's traced
    // request path at decision granularity.
    let flight = FlightRecorder::new(FlightConfig::default());
    let traced_log = TraceLog::new();
    let mut traced = Session::seeded(1).with_recorder(traced_log.clone());
    traced.cached_plan(&expr);
    for _ in 0..iters / 10 + 1 {
        checksum += traced.pr(&expr, 0.5) as usize;
    }
    traced_log.take();
    let tracing_recording_ns = median_ns(reps, iters, |k| {
        for _ in 0..k {
            let ctx = TraceContext::root();
            let mut b = TraceBuilder::new(ctx);
            let started = monotonic_ns();
            let root = b.start_at("request", ctx.parent_span, started);
            b.attr(root, "tenant", AttrValue::U64(1));
            let decide = b.start("decide", root);
            checksum += traced.pr(&expr, 0.5) as usize;
            if let Some(t) = traced_log.take().last() {
                b.attr(decide, "samples", AttrValue::U64(t.samples as u64));
                b.attr(decide, "estimate", AttrValue::F64(t.estimate));
                for p in t.batches.iter().take(128) {
                    b.event(
                        decide,
                        SpanEvent {
                            name: "sprt_batch",
                            at_ns: monotonic_ns(),
                            attrs: vec![
                                ("samples", AttrValue::U64(p.samples as u64)),
                                ("llr", AttrValue::F64(p.llr)),
                            ],
                        },
                    );
                }
            }
            b.end(decide);
            b.end(root);
            let mut rt = RequestTrace::new(ctx.trace_id, 1, "pr");
            rt.started_ns = started;
            rt.total_ns = monotonic_ns().saturating_sub(started);
            rt.spans = b.finish();
            checksum += usize::from(flight.offer(rt));
        }
    });
    let flight_stats = flight.stats();
    assert!(flight_stats.offered > 0, "the flight recorder saw offers");

    let overhead_disabled_pct = (disabled_ns / no_hooks_ns - 1.0) * 100.0;
    let overhead_recording_pct = (recording_ns / no_hooks_ns - 1.0) * 100.0;
    let tracing_dormant_pct = (tracing_dormant_ns / disabled_ns - 1.0) * 100.0;
    let tracing_recording_pct = (tracing_recording_ns / disabled_ns - 1.0) * 100.0;
    println!("{nodes} nodes, {iters} decisions/rep:");
    println!("  no_hooks          {no_hooks_ns:>10.1} ns/decision (from baseline record)");
    println!("  disabled          {disabled_ns:>10.1} ns/decision  ({overhead_disabled_pct:+.2}%)");
    println!(
        "  recording         {recording_ns:>10.1} ns/decision  ({overhead_recording_pct:+.2}%)"
    );
    println!(
        "  tracing_dormant   {tracing_dormant_ns:>10.1} ns/decision  ({tracing_dormant_pct:+.2}% vs disabled)"
    );
    println!(
        "  tracing_recording {tracing_recording_ns:>10.1} ns/decision  ({tracing_recording_pct:+.2}% vs disabled)"
    );

    let mut out = OpenOptions::new()
        .create(true)
        .append(true)
        .open("BENCH_obs.json")?;
    writeln!(
        out,
        "{{\"bench\":\"obs_overhead\",\"mode\":\"summary\",\"unix_time\":{stamp},\
         \"nodes\":{nodes},\"decisions\":{iters},\"no_hooks_ns\":{no_hooks_ns:.1},\
         \"disabled_ns\":{disabled_ns:.1},\"recording_ns\":{recording_ns:.1},\
         \"overhead_disabled_pct\":{overhead_disabled_pct:.2},\
         \"overhead_recording_pct\":{overhead_recording_pct:.2},\
         \"traces\":{traces},\"checksum\":{checksum}}}"
    )?;
    writeln!(
        out,
        "{{\"bench\":\"obs_overhead\",\"mode\":\"tracing_dormant\",\"unix_time\":{stamp},\
         \"nodes\":{nodes},\"decisions\":{iters},\
         \"ns_per_decision\":{tracing_dormant_ns:.1},\
         \"overhead_vs_disabled_pct\":{tracing_dormant_pct:.2}}}"
    )?;
    writeln!(
        out,
        "{{\"bench\":\"obs_overhead\",\"mode\":\"tracing_recording\",\"unix_time\":{stamp},\
         \"nodes\":{nodes},\"decisions\":{iters},\
         \"ns_per_decision\":{tracing_recording_ns:.1},\
         \"overhead_vs_disabled_pct\":{tracing_recording_pct:.2},\
         \"traces_offered\":{},\"traces_retained\":{}}}",
        flight_stats.offered, flight_stats.retained
    )?;
    println!("appended summary + tracing records to BENCH_obs.json");

    assert!(
        overhead_disabled_pct < max_pct,
        "dormant hooks cost {overhead_disabled_pct:.2}% (limit {max_pct}%)"
    );
    assert!(
        tracing_dormant_pct < tracing_max_pct,
        "dormant tracing cost {tracing_dormant_pct:.2}% over disabled (limit {tracing_max_pct}%)"
    );
    Ok(())
}
