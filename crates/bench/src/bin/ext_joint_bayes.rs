//! Extension experiment: the paper's §5.2 suggestion realized — "a better
//! implementation could calculate joint likelihoods with multiple samples."
//! Single-sample BayesLife breaks down past σ ≈ 0.4; the joint-likelihood
//! sensor stays accurate well beyond it.

use uncertain_bench::{header, scaled};
use uncertain_core::Session;
use uncertain_life::{BayesLife, Board, JointBayesLife, LifeVariant, NoisySensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Extension: BayesLife vs joint-likelihood BayesLife at extreme noise");
    let board = Board::random(scaled(20, 10), scaled(20, 10), 0.35, 7);
    let reps = scaled(20, 4);
    let reads = 9;

    println!(
        "{:>6} {:>16} {:>22}",
        "σ",
        "BayesLife err",
        format!("JointBayes({reads}) err")
    );
    for sigma in [0.3, 0.4, 0.5, 0.6, 0.7] {
        let sensor = NoisySensor::new(sigma)?;
        let single = BayesLife::new(sensor);
        let joint = JointBayesLife::new(sensor, reads);
        let mut session = Session::seeded((sigma * 1e4) as u64);
        let rate = |v: &dyn LifeVariant, session: &mut Session| -> f64 {
            let mut errors = 0usize;
            let mut updates = 0usize;
            for _ in 0..reps {
                for (x, y) in board.coords() {
                    let truth =
                        uncertain_life::next_state(board.get(x, y), board.live_neighbors(x, y));
                    if v.decide(&board, x, y, session).alive != truth {
                        errors += 1;
                    }
                    updates += 1;
                }
            }
            errors as f64 / updates as f64
        };
        println!(
            "{sigma:>6.2} {:>16.4} {:>22.4}",
            rate(&single, &mut session),
            rate(&joint, &mut session)
        );
    }
    println!();
    println!("the paper: 'at noise levels higher than σ = 0.4, considering");
    println!("individual samples in isolation breaks down'; joint likelihoods");
    println!("shrink the effective noise to σ/√{reads} and keep tracking.");
    Ok(())
}
