//! §6 (related work): the alarm generative model. The paper measured
//! Church taking 20 s to draw 100 posterior samples because rejection-style
//! inference must condition on a rare observation (Pr\[alarm\] ≈ 0.11%).
//! This binary reproduces the *asymmetry*: generative inference by
//! rejection vs. `Uncertain<T>`'s goal-directed conditional evaluation.

use std::time::Instant;
use uncertain_bench::{header, scaled};
use uncertain_core::{Session, Uncertain};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("§6: alarm model — rejection-based inference vs. goal-directed conditionals");

    // The generative model of Fig. 17.
    let earthquake = Uncertain::bernoulli(0.0001)?;
    let burglary = Uncertain::bernoulli(0.001)?;
    let alarm = &earthquake | &burglary;
    let phone_given_eq = |eq: bool| if eq { 0.7 } else { 0.99 };
    let phone_working = earthquake.flat_map("phone|eq", move |eq| {
        Uncertain::bernoulli(phone_given_eq(eq)).expect("valid probability")
    });

    // --- Rejection-style inference: condition on the rare observation. ---
    let n_posterior = scaled(100, 20);
    let mut session = Session::seeded(17);
    let joint = alarm.zip(&phone_working);
    let started = Instant::now();
    let mut kept = 0usize;
    let mut phone_true = 0usize;
    let mut raw_draws = 0u64;
    while kept < n_posterior {
        let (a, p) = session.sample(&joint);
        raw_draws += 1;
        if a {
            kept += 1;
            if p {
                phone_true += 1;
            }
        }
    }
    let rejection_time = started.elapsed();
    println!(
        "rejection inference: {kept} posterior samples required {raw_draws} raw draws \
         ({:.0} draws/sample) in {:.2?}",
        raw_draws as f64 / kept as f64,
        rejection_time
    );
    println!(
        "  Pr[phoneWorking | alarm] ≈ {:.3} (analytic ≈ 0.963)",
        phone_true as f64 / kept as f64
    );

    // --- Uncertain<T>'s question: a conditional on the concrete instance. -
    let started = Instant::now();
    let outcome =
        session.evaluate_with(&phone_working, 0.5, &uncertain_core::EvalConfig::default());
    println!();
    println!(
        "goal-directed conditional `if (phoneWorking)`: decided {} with {} samples in {:.2?}",
        outcome.to_bool(),
        outcome.samples,
        started.elapsed()
    );
    println!();
    println!("the asymmetry the paper reports: inference against a rare observation");
    println!("pays ~1/Pr[observation] per posterior sample, while the application's");
    println!("actual question (a conditional) needs only a handful of samples.");
    Ok(())
}
