//! Figure 10: domain knowledge as a prior distribution improves GPS
//! estimates — the "road-snapping" behavior. The posterior mean shifts
//! from the raw fix `p` toward the snapped point `s` on the road, unless
//! the GPS evidence against the road is very strong.

use uncertain_bench::{header, scaled};
use uncertain_core::Session;
use uncertain_gps::{GeoCoordinate, GpsReading, RoadMap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Figure 10: road-snapping prior over locations");
    let n = scaled(4000, 500);
    let c = GeoCoordinate::new(47.6, -122.3);
    // An east-west road through c.
    let road = RoadMap::new(vec![(
        c.destination(500.0, 270.0),
        c.destination(500.0, 90.0),
    )])?;

    println!("fix offset from road (m) | E[dist to road] raw | snapped | pulled");
    let mut session = Session::seeded(10);
    for offset in [0.0_f64, 5.0, 10.0, 20.0, 50.0, 200.0] {
        let fix = GpsReading::new(c.destination(offset.max(0.01), 0.0), 8.0)?;
        let raw = fix.location();
        let snapped = road.snap(&raw, 3.0, 1e-4);
        let raw_d = raw.expect_by_in(&mut session, n, |p| road.distance_to_road(p));
        let snap_d = snapped.expect_by_in(&mut session, n, |p| road.distance_to_road(p));
        println!(
            "{offset:>23.0}  | {raw_d:>19.2} | {snap_d:>7.2} | {:>5.0}%",
            100.0 * (1.0 - snap_d / raw_d.max(1e-9))
        );
    }
    println!();
    println!("small offsets snap hard onto the road; a 200 m offset (strong");
    println!("contrary evidence) keeps the posterior off-road — the paper's");
    println!("\"unless GPS evidence to the contrary is very strong\".");
    Ok(())
}
