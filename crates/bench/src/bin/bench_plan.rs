//! Measures the compiled-plan speedup over the tree-walk interpreter and
//! appends one machine-readable JSON line per network size to
//! `BENCH_plan.json` (in the working directory), so the speedup is
//! checkable without parsing Criterion output.
//!
//! Run `cargo run --release --bin bench_plan`; `--quick` (or `QUICK=1`)
//! shrinks the sample budget for smoke runs.

use std::fs::OpenOptions;
use std::io::Write;
use std::time::{Instant, SystemTime, UNIX_EPOCH};
use uncertain_bench::{header, scaled};
use uncertain_core::{Evaluator, ParSampler, Session, Uncertain};

/// A mixed arithmetic/comparison network of `3n + 6` slotted nodes with
/// shared leaves — the same family as the `plan_vs_treewalk` Criterion
/// bench.
fn network(n: usize) -> Uncertain<bool> {
    let x = Uncertain::normal(0.0, 1.0).unwrap();
    let y = Uncertain::normal(1.0, 2.0).unwrap();
    let mut left = x.clone();
    let mut right = y.clone();
    for _ in 0..n {
        left = left + &x;
        right = right * 0.99 + &y;
    }
    let a = left.lt(&right);
    let b = (&x + &y).gt(-10.0);
    &a & &b
}

/// Median ns/sample over `reps` timed repetitions of `iters` samples.
fn median_ns(reps: usize, iters: usize, mut run: impl FnMut(usize)) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            run(iters);
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    times[times.len() / 2]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--quick") {
        std::env::set_var("QUICK", "1");
    }
    header("Compiled plan vs tree-walk (appends BENCH_plan.json)");
    let iters = scaled(20_000, 2_000);
    let reps = 7;
    let stamp = SystemTime::now().duration_since(UNIX_EPOCH)?.as_secs();
    let mut out = OpenOptions::new()
        .create(true)
        .append(true)
        .open("BENCH_plan.json")?;

    println!(
        "{:>6} {:>14} {:>14} {:>9}",
        "nodes", "treewalk ns", "plan ns", "speedup"
    );
    for n in [3usize, 48, 498] {
        let expr = network(n);
        let mut eval = Evaluator::new(&expr, 1);
        let nodes = eval.plan().slot_count();
        let mut session = Session::seeded(1);
        let mut checksum = 0usize;
        let tree_ns = median_ns(reps, iters, |k| {
            for _ in 0..k {
                checksum += session.sample_interpreted(&expr) as usize;
            }
        });
        let plan_ns = median_ns(reps, iters, |k| {
            for _ in 0..k {
                checksum += eval.sample() as usize;
            }
        });
        let speedup = tree_ns / plan_ns;
        println!("{nodes:>6} {tree_ns:>14.1} {plan_ns:>14.1} {speedup:>8.2}x");

        // One parallel data point at this size: batch throughput at the
        // machine's parallelism.
        let mut par = ParSampler::new(&expr, 1);
        let par_ns = median_ns(reps, iters, |k| {
            checksum += par.sample_batch(k).into_iter().filter(|&b| b).count();
        });
        writeln!(
            out,
            "{{\"bench\":\"plan_vs_treewalk\",\"unix_time\":{stamp},\"nodes\":{nodes},\
             \"samples\":{iters},\"treewalk_ns_per_sample\":{tree_ns:.1},\
             \"plan_ns_per_sample\":{plan_ns:.1},\"speedup\":{speedup:.3},\
             \"par_threads\":{threads},\"par_ns_per_sample\":{par_ns:.1},\
             \"checksum\":{checksum}}}",
            threads = par.threads(),
        )?;
    }
    println!("\nappended 3 records to BENCH_plan.json");
    Ok(())
}
