//! Figure 6: computation compounds uncertainty — the distribution of
//! `c = a + b` is wider than either operand's.

use uncertain_bench::{header, scaled};
use uncertain_core::{Session, Uncertain};
use uncertain_stats::Histogram;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Figure 6: c = a + b is more uncertain than a or b");
    let n = scaled(50_000, 2_000);
    let a = Uncertain::normal(0.0, 1.0)?;
    let b = Uncertain::normal(0.0, 1.0)?;
    let c = &a + &b;
    let mut session = Session::seeded(6);

    for (name, var) in [("a", &a), ("b", &b), ("c = a + b", &c)] {
        let stats = var.stats_in(&mut session, n)?;
        let (lo, hi) = stats.coverage_interval(0.95);
        println!(
            "{name:<10} σ = {:.3}   95% interval = [{lo:+.2}, {hi:+.2}]",
            stats.std_dev()
        );
    }

    println!("\nhistogram of c (σ = √2 ≈ 1.414):");
    let mut hist = Histogram::new(-5.0, 5.0, 25)?;
    hist.extend(session.samples(&c, n));
    print!("{}", hist.render(40));

    println!("\nBayesian network constructed by the lifted + operator:");
    print!("{}", c.to_dot());
    Ok(())
}
