//! Load-generates the TCP transport: N concurrent connections, each a
//! closed-loop client hammering its own tenant, against one listening
//! service. Appends machine-readable JSON lines to `BENCH_net.json` (in
//! the working directory).
//!
//! The connection-count sweep (8 → 1024) measures what connection
//! concurrency costs the event-driven server: the readiness-polled
//! listener drives every connection from a fixed pool of event-loop
//! threads, so the server's thread count — and therefore its scheduler
//! footprint — is independent of the connection count, and aggregate
//! decision throughput should hold roughly flat across the sweep. The
//! load generator is symmetric: one poller-driven thread multiplexes all
//! N client sockets (one tenant each, one request outstanding each), so
//! the sweep's high rows measure the server, not 2 000 generator
//! threads fighting it for the core. The sweep's throughput-retention
//! ratio (max over min connection count) is the regression line: a
//! change that adds per-connection cost to the event loops shows up
//! here first, at the high-connection rows.
//!
//! Before the sweep, a verification phase runs the same per-tenant
//! request sequence over TCP and in-process against identically
//! configured services and asserts the folded per-tenant outcome
//! fingerprints are bitwise identical: the wire is not allowed to change
//! a single decision, sample count, or estimate bit.
//!
//! Run `cargo run --release --bin bench_net`; `--quick` (or `QUICK=1`)
//! shrinks connection counts and budgets for smoke runs.

use std::fs::OpenOptions;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::{Instant, SystemTime, UNIX_EPOCH};
use uncertain_bench::{header, scaled};
use uncertain_core::{Uncertain, WireGraph};
use uncertain_serve::poll::{Interest, PollEvent, Poller};
use uncertain_serve::wire::{self, FrameDecoder, MAGIC};
use uncertain_serve::{Request, RequestKind, Response, ServeClient, ServeConfig, Service};

const SHARDS: usize = 4;
const POOL: usize = 16;
const SEED: u64 = 2014;
const THRESHOLD: f64 = 0.5;

/// A `3n + 7`-node evidence conditional from the `bench_session` family,
/// built only from kernel-tagged ops so it is wire-expressible. The
/// margin keeps the SPRT decisive: the decision cost is dominated by
/// plan/session state, which is what connection churn stresses.
fn evidence(n: usize) -> Uncertain<bool> {
    let x = Uncertain::normal(0.0, 1.0).unwrap();
    let y = Uncertain::normal(1.0, 2.0).unwrap();
    let mut left = x.clone();
    let mut right = y.clone();
    for _ in 0..n {
        left = left + &x;
        right = right * 0.99 + &y;
    }
    let a = left.lt(&(right + 40.0 + 8.0 * n as f64));
    let b = (&x + &y).gt(-10.0);
    &a & &b
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Service topology for a row with `conns` closed-loop tenants. Shards
/// and seed are fixed; the session pool and queue bound scale with the
/// tenant population so the high-connection rows measure connection
/// concurrency rather than session-eviction thrash or a queue sized for
/// a different row (neither knob can change results: evicted tenants
/// keep their cursors, and a queue that never fills rejects nothing).
/// The pool gets room for *every* tenant on *any* shard — an average
/// fit is not enough, because tenant→shard hashing is imbalanced and a
/// shard pushed past its pool by a few tenants thrashes its LRU on the
/// cyclic closed-loop access pattern (rebuild + recompile per request).
fn service_config(conns: usize) -> ServeConfig {
    ServeConfig::builder()
        .shards(SHARDS)
        .sessions_per_shard(POOL.max(conns))
        .queue_depth(256.max(conns))
        .seed(SEED)
        .bind_addr("127.0.0.1:0")
        .build()
        .expect("valid bench config")
}

/// Folds one decision into a tenant's determinism fingerprint.
fn fold(fp: &mut u64, samples: usize, bits: u64) {
    *fp = mix(*fp ^ samples as u64 ^ bits);
}

struct LoadRun {
    throughput_dps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    frames_in: u64,
    wire_errors: u64,
    fingerprint: u64,
    traces_offered: u64,
    traces_retained: u64,
}

/// One sweep row: `conns` connections, each a closed-loop driver thread
/// owning one tenant and one TCP connection, `per_conn` decisions each.
/// Service and listener are fresh per row so tenant sample streams start
/// from the origin and fingerprints are comparable run to run.
///
/// `traced_fraction` of requests (selected deterministically per tenant
/// and request index) carry a sampled trace context and go through the
/// full span-assembly + flight-recorder path; the rest are untraced.
/// Outcomes are folded into the same fingerprint either way, so rows at
/// different fractions must agree bit for bit.
fn run_load(
    conns: usize,
    per_conn: usize,
    cond: &Uncertain<bool>,
    traced_fraction: f64,
) -> LoadRun {
    let service = Service::start(service_config(conns));
    let listener = service.listen().expect("listen");
    let addr = listener.local_addr();
    // Compare in u64 space: mix(tenant, i) < bar ⇔ "trace this request".
    let trace_bar = if traced_fraction >= 1.0 {
        u64::MAX
    } else {
        (traced_fraction.max(0.0) * u64::MAX as f64) as u64
    };

    let start = Instant::now();
    let drivers: Vec<_> = (0..conns)
        .map(|c| {
            let cond = cond.clone();
            std::thread::spawn(move || {
                let client = ServeClient::connect(addr).expect("connect");
                let tenant = c as u64;
                let mut fp = 0u64;
                let mut lat = Vec::with_capacity(per_conn);
                for i in 0..per_conn {
                    let traced = traced_fraction >= 1.0
                        || mix(tenant.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64) < trace_bar;
                    let t0 = Instant::now();
                    let o = if traced {
                        let (o, id) = client
                            .evaluate_traced(tenant, &cond, THRESHOLD)
                            .expect("traced decision");
                        assert!(id.is_some(), "traced replies echo a trace id");
                        o
                    } else {
                        client.evaluate(tenant, &cond, THRESHOLD).expect("decision")
                    };
                    lat.push(t0.elapsed().as_nanos() as u64);
                    fold(&mut fp, o.samples, o.estimate.to_bits());
                }
                (fp, lat)
            })
        })
        .collect();
    let mut fingerprints = Vec::with_capacity(conns);
    let mut latencies = Vec::with_capacity(conns * per_conn);
    for driver in drivers {
        let (fp, lat) = driver.join().expect("driver thread");
        fingerprints.push(fp);
        latencies.extend(lat);
    }
    let elapsed = start.elapsed();

    listener.shutdown();
    let metrics = service.shutdown();
    latencies.sort_unstable();
    LoadRun {
        throughput_dps: (conns * per_conn) as f64 / elapsed.as_secs_f64(),
        p50_us: percentile(&latencies, 0.50) as f64 / 1e3,
        p95_us: percentile(&latencies, 0.95) as f64 / 1e3,
        p99_us: percentile(&latencies, 0.99) as f64 / 1e3,
        frames_in: metrics.net.frames_in,
        wire_errors: metrics.net.wire_errors,
        fingerprint: fingerprints.iter().fold(0u64, |acc, &f| mix(acc ^ f)),
        traces_offered: metrics.flight.offered,
        traces_retained: metrics.flight.retained,
    }
}

/// One client socket of the polled load generator: a closed-loop tenant
/// with exactly one untraced request in flight, its next request frame
/// prebuilt (only results vary between a tenant's requests, never the
/// request bytes, so encoding once is free repetition later).
struct PolledConn {
    stream: TcpStream,
    frame: Vec<u8>,
    out: Vec<u8>,
    outpos: usize,
    decoder: FrameDecoder,
    remaining: usize,
    t0: Instant,
    fp: u64,
    lat: Vec<u64>,
    interest: Interest,
    done: bool,
}

impl PolledConn {
    /// Queues the next request and restarts its latency clock.
    fn queue_request(&mut self) {
        self.t0 = Instant::now();
        self.out.extend_from_slice(&self.frame);
    }

    fn flush(&mut self) {
        while self.outpos < self.out.len() {
            match (&self.stream).write(&self.out[self.outpos..]) {
                Ok(n) => self.outpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("bench connection write failed: {e}"),
            }
        }
        self.out.clear();
        self.outpos = 0;
    }

    fn desired_interest(&self) -> Interest {
        if self.outpos < self.out.len() {
            Interest::READ_WRITE
        } else {
            Interest::READ
        }
    }
}

/// Like [`run_load`] for untraced rows, but the load generator is a
/// single poller-driven thread multiplexing all `conns` sockets —
/// scaling the generator the same way the server scales, so a
/// 1024-connection row adds 1024 sockets and zero threads on either
/// side. Same tenants, same per-tenant request sequence, same
/// fingerprint folding: rows are bitwise comparable to thread-driven
/// runs of the same shape.
fn run_load_polled(conns: usize, per_conn: usize, cond: &Uncertain<bool>) -> LoadRun {
    let service = Service::start(service_config(conns));
    let listener = service.listen().expect("listen");
    let addr = listener.local_addr();

    // Untimed setup: every connection is established — and each tenant's
    // first decision executed — before the clock starts. The connect
    // storm would otherwise cap actual concurrency at the connect rate
    // (early connections finish before late ones exist), and the first
    // decision carries the tenant's one-time session build + plan
    // compile, a session-layer cold-start cost (bench_session's subject)
    // that scales with the tenant count, not with what this sweep
    // measures — connection concurrency at the socket edge. Warmup
    // outcomes still fold into the fingerprint, so rows stay bitwise
    // comparable to runs that time every request.
    let setup = Instant::now();
    let mut drivers: Vec<PolledConn> = (0..conns)
        .map(|c| {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            let payload = wire::encode_request(
                1, // one request outstanding per socket: a constant id correlates fine
                &Request {
                    tenant: c as u64,
                    kind: RequestKind::Evaluate {
                        cond: cond.clone(),
                        threshold: THRESHOLD,
                    },
                    timeout: None,
                    strategy: None,
                    trace: None,
                },
            )
            .expect("encode request");
            let mut frame = Vec::with_capacity(4 + payload.len());
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&payload);

            // Warmup request, blocking: preamble + first decision.
            stream.write_all(&MAGIC).expect("preamble");
            stream.write_all(&frame).expect("warmup request");
            let mut len = [0u8; 4];
            stream.read_exact(&mut len).expect("warmup reply length");
            let mut reply = vec![0u8; u32::from_le_bytes(len) as usize];
            stream.read_exact(&mut reply).expect("warmup reply");
            let (id, _trace, result) = wire::decode_response(&reply).expect("decode reply");
            assert_eq!(id, 1);
            let mut fp = 0u64;
            match result.expect("warmup decision") {
                Response::Outcome(o) => fold(&mut fp, o.samples, o.estimate.to_bits()),
                other => panic!("evaluate answered {other:?}"),
            }

            stream.set_nonblocking(true).expect("nonblocking");
            PolledConn {
                stream,
                frame,
                out: Vec::new(),
                outpos: 0,
                decoder: FrameDecoder::new(),
                remaining: per_conn - 1,
                t0: setup,
                fp,
                lat: Vec::with_capacity(per_conn),
                interest: Interest::READ_WRITE,
                done: false,
            }
        })
        .collect();

    let start = Instant::now();
    let mut poller = Poller::new().expect("bench poller");
    for (c, conn) in drivers.iter_mut().enumerate() {
        conn.queue_request();
        poller
            .add(conn.stream.as_raw_fd(), c as u64, Interest::READ_WRITE)
            .expect("register");
    }

    let mut live = conns;
    let mut events: Vec<PollEvent> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    while live > 0 {
        poller.wait(&mut events, None).expect("bench poll");
        for ev in &events {
            let conn = &mut drivers[ev.token as usize];
            if conn.done {
                continue;
            }
            if ev.writable {
                conn.flush();
            }
            if ev.readable {
                'read: loop {
                    match (&conn.stream).read(&mut scratch) {
                        Ok(0) => panic!("server closed a bench connection mid-run"),
                        Ok(n) => {
                            conn.decoder.push(&scratch[..n]);
                            while let Some(reply) = conn.decoder.next_frame().expect("reply frame")
                            {
                                let (id, _trace, result) =
                                    wire::decode_response(&reply).expect("decode reply");
                                assert_eq!(id, 1);
                                let o = match result.expect("decision") {
                                    Response::Outcome(o) => o,
                                    other => panic!("evaluate answered {other:?}"),
                                };
                                conn.lat.push(conn.t0.elapsed().as_nanos() as u64);
                                fold(&mut conn.fp, o.samples, o.estimate.to_bits());
                                conn.remaining -= 1;
                                if conn.remaining == 0 {
                                    poller.remove(conn.stream.as_raw_fd()).expect("deregister");
                                    conn.done = true;
                                    live -= 1;
                                    break 'read;
                                }
                                conn.queue_request();
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => panic!("bench connection read failed: {e}"),
                    }
                }
            }
            if !conn.done {
                conn.flush();
                let desired = conn.desired_interest();
                if desired != conn.interest {
                    poller
                        .modify(conn.stream.as_raw_fd(), ev.token, desired)
                        .expect("reregister");
                    conn.interest = desired;
                }
            }
        }
    }
    let elapsed = start.elapsed();

    listener.shutdown();
    let metrics = service.shutdown();
    let mut latencies: Vec<u64> = Vec::with_capacity(conns * per_conn);
    let mut fingerprints: Vec<u64> = Vec::with_capacity(conns);
    for conn in &mut drivers {
        fingerprints.push(conn.fp);
        latencies.append(&mut conn.lat);
    }
    latencies.sort_unstable();
    LoadRun {
        // Throughput and latency cover the timed requests only (one
        // warmup decision per connection ran before the clock started).
        throughput_dps: (conns * (per_conn - 1)) as f64 / elapsed.as_secs_f64(),
        p50_us: percentile(&latencies, 0.50) as f64 / 1e3,
        p95_us: percentile(&latencies, 0.95) as f64 / 1e3,
        p99_us: percentile(&latencies, 0.99) as f64 / 1e3,
        frames_in: metrics.net.frames_in,
        wire_errors: metrics.net.wire_errors,
        fingerprint: fingerprints.iter().fold(0u64, |acc, &f| mix(acc ^ f)),
        traces_offered: metrics.flight.offered,
        traces_retained: metrics.flight.retained,
    }
}

/// Per-tenant outcome fingerprints for `tenants` tenants × `rounds`
/// decisions, driven either over TCP (one connection per tenant) or by
/// the in-process client. Per-tenant sample streams are independent of
/// request interleaving across tenants, so the two are comparable
/// element for element.
fn fingerprints(tenants: u64, rounds: usize, cond: &Uncertain<bool>, remote: bool) -> Vec<u64> {
    let service = Service::start(service_config(tenants as usize));
    let result = if remote {
        let listener = service.listen().expect("listen");
        let addr = listener.local_addr();
        let drivers: Vec<_> = (0..tenants)
            .map(|tenant| {
                let cond = cond.clone();
                std::thread::spawn(move || {
                    let client = ServeClient::connect(addr).expect("connect");
                    let mut fp = 0u64;
                    for _ in 0..rounds {
                        let o = client.evaluate(tenant, &cond, THRESHOLD).expect("decision");
                        fold(&mut fp, o.samples, o.estimate.to_bits());
                    }
                    fp
                })
            })
            .collect();
        let fps = drivers
            .into_iter()
            .map(|d| d.join().expect("driver thread"))
            .collect();
        listener.shutdown();
        fps
    } else {
        let client = service.client();
        (0..tenants)
            .map(|tenant| {
                let mut fp = 0u64;
                for _ in 0..rounds {
                    let o = client.evaluate(tenant, cond, THRESHOLD).expect("decision");
                    fold(&mut fp, o.samples, o.estimate.to_bits());
                }
                fp
            })
            .collect()
    };
    service.shutdown();
    result
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--quick") {
        std::env::set_var("QUICK", "1");
    }
    let quick = std::env::var("QUICK").is_ok();
    header("Net: TCP decision throughput / tail latency vs connection count");

    let cond = evidence(12);
    WireGraph::from_bool(&cond).expect("workload must be wire-expressible");

    let stamp = SystemTime::now().duration_since(UNIX_EPOCH)?.as_secs();
    let mut out = OpenOptions::new()
        .create(true)
        .append(true)
        .open("BENCH_net.json")?;

    // Determinism first: the sweep is meaningless if the wire changes
    // results.
    let v_tenants = 12u64;
    let v_rounds = scaled(12, 4);
    let remote = fingerprints(v_tenants, v_rounds, &cond, true);
    let local = fingerprints(v_tenants, v_rounds, &cond, false);
    let identical = remote == local;
    println!("remote results bitwise-identical to in-process: {identical}");
    writeln!(
        out,
        "{{\"bench\":\"net_determinism\",\"unix_time\":{stamp},\
         \"tenants\":{v_tenants},\"rounds\":{v_rounds},\
         \"remote_matches_in_process\":{identical}}}"
    )?;
    assert!(identical, "TCP transport changed decision results");

    // Total decisions held constant across rows, so throughput compares
    // equal work at different concurrency.
    let total = scaled(8192, 512);
    let conn_counts: &[usize] = if quick { &[4, 16] } else { &[8, 64, 256, 1024] };
    println!(
        "\n{:>6} {:>9} {:>12} {:>10} {:>10} {:>10}",
        "conns", "per-conn", "dec/s", "p50 µs", "p95 µs", "p99 µs"
    );
    let mut records = 1usize;
    let mut throughputs = Vec::new();
    for &conns in conn_counts {
        let per_conn = (total / conns).max(4);
        let run = run_load_polled(conns, per_conn, &cond);
        println!(
            "{conns:>6} {per_conn:>9} {:>12.0} {:>10.1} {:>10.1} {:>10.1}",
            run.throughput_dps, run.p50_us, run.p95_us, run.p99_us
        );
        assert_eq!(run.wire_errors, 0, "load run produced wire errors");
        writeln!(
            out,
            "{{\"bench\":\"net_load\",\"unix_time\":{stamp},\
             \"connections\":{conns},\"per_connection\":{per_conn},\
             \"decisions\":{decisions},\"timed_decisions\":{timed},\
             \"shards\":{SHARDS},\
             \"sessions_per_shard\":{pool},\
             \"throughput_dps\":{dps:.1},\"p50_us\":{p50:.1},\
             \"p95_us\":{p95:.1},\"p99_us\":{p99:.1},\
             \"net_frames_in\":{frames},\"fingerprint\":{fp}}}",
            decisions = conns * per_conn,
            timed = conns * (per_conn - 1),
            pool = POOL.max(conns),
            dps = run.throughput_dps,
            p50 = run.p50_us,
            p95 = run.p95_us,
            p99 = run.p99_us,
            frames = run.frames_in,
            fp = run.fingerprint,
        )?;
        records += 1;
        throughputs.push((conns, run.throughput_dps));
    }

    // Traced-fraction sweep: what carrying spans across the wire costs,
    // from dormant (0%) through tail-sampling-ish (1%) to everything
    // (100%). Fixed concurrency; identical work; fingerprints must agree
    // across fractions because tracing never changes what is computed.
    let t_conns = if quick { 4 } else { 16 };
    let t_per_conn = (total / t_conns).max(4);
    println!(
        "\n{:>8} {:>9} {:>12} {:>10} {:>10} {:>9}",
        "traced", "per-conn", "dec/s", "p50 µs", "p99 µs", "retained"
    );
    let mut traced_fingerprints = Vec::new();
    for &fraction in &[0.0f64, 0.01, 1.0] {
        let run = run_load(t_conns, t_per_conn, &cond, fraction);
        println!(
            "{:>7.0}% {t_per_conn:>9} {:>12.0} {:>10.1} {:>10.1} {:>9}",
            fraction * 100.0,
            run.throughput_dps,
            run.p50_us,
            run.p99_us,
            run.traces_retained
        );
        assert_eq!(run.wire_errors, 0, "traced run produced wire errors");
        writeln!(
            out,
            "{{\"bench\":\"net_traced\",\"unix_time\":{stamp},\
             \"traced_fraction\":{fraction},\"connections\":{t_conns},\
             \"per_connection\":{t_per_conn},\
             \"throughput_dps\":{dps:.1},\"p50_us\":{p50:.1},\
             \"p99_us\":{p99:.1},\"traces_offered\":{offered},\
             \"traces_retained\":{retained},\"fingerprint\":{fp}}}",
            dps = run.throughput_dps,
            p50 = run.p50_us,
            p99 = run.p99_us,
            offered = run.traces_offered,
            retained = run.traces_retained,
            fp = run.fingerprint,
        )?;
        records += 1;
        traced_fingerprints.push(run.fingerprint);
        if fraction >= 1.0 {
            assert_eq!(
                run.traces_offered,
                (t_conns * t_per_conn) as u64,
                "at 100% every request must reach the flight recorder"
            );
        }
    }
    assert!(
        traced_fingerprints.windows(2).all(|w| w[0] == w[1]),
        "tracing changed decision results across the fraction sweep"
    );

    let (base_conns, base) = throughputs[0];
    let (peak_conns, peak) = throughputs[throughputs.len() - 1];
    writeln!(
        out,
        "{{\"bench\":\"net_summary\",\"unix_time\":{stamp},\
         \"throughput_ratio_max_over_min_conns\":{ratio:.3},\
         \"min_connections\":{base_conns},\"max_connections\":{peak_conns}}}",
        ratio = peak / base,
    )?;
    records += 1;
    println!(
        "\n{base_conns} → {peak_conns} connections throughput ratio: {:.2}x",
        peak / base
    );
    println!("appended {records} records to BENCH_net.json");
    Ok(())
}
