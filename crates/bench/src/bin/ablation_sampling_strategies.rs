//! Ablation (DESIGN.md): the SPRT's goal-directed sampling against the
//! fixed-pool baseline and the group-sequential (Pocock) "closed" design,
//! measured in samples drawn per decision and decision error rate, across
//! evidence strengths. This is the quantitative version of the paper's
//! §4.3 claim that sequential tests "draw the minimum necessary number of
//! samples for a sufficiently accurate result for each specific
//! conditional."

use uncertain_bench::{header, scaled};
use uncertain_core::{Session, Uncertain};
use uncertain_stats::{FixedSampleTest, GroupSequentialTest, SequentialTest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Ablation: samples per decision and error rate, by strategy");
    let trials = scaled(400, 50);
    let threshold = 0.5;
    let sprt = SequentialTest::at_threshold(threshold)?;
    let fixed = FixedSampleTest::new(threshold, 1000)?;
    let pocock = GroupSequentialTest::new(threshold, 5, 200)?;

    println!(
        "{:>8} {:>22} {:>22} {:>22}",
        "true p", "SPRT (smp, err)", "fixed-1000 (smp, err)", "Pocock 5×200 (smp, err)"
    );
    for p in [0.95, 0.8, 0.65, 0.55, 0.45, 0.35, 0.2, 0.05] {
        let truth = p > threshold;
        let bern = Uncertain::bernoulli(p)?;
        let mut session = Session::seeded((p * 1000.0) as u64);

        let mut row = format!("{p:>8.2}");
        // SPRT.
        let (mut samples, mut errors) = (0usize, 0usize);
        for _ in 0..trials {
            let o = sprt.run(|| session.sample(&bern));
            samples += o.samples;
            if o.accepted() != truth {
                errors += 1;
            }
        }
        row.push_str(&format!(
            " {:>12.1} {:>7.3}",
            samples as f64 / trials as f64,
            errors as f64 / trials as f64
        ));
        // Fixed pool.
        let (mut samples, mut errors) = (0usize, 0usize);
        for _ in 0..trials {
            let o = fixed.run(|| session.sample(&bern));
            samples += o.samples;
            if o.accepted != truth {
                errors += 1;
            }
        }
        row.push_str(&format!(
            " {:>12.1} {:>7.3}",
            samples as f64 / trials as f64,
            errors as f64 / trials as f64
        ));
        // Pocock.
        let (mut samples, mut errors) = (0usize, 0usize);
        for _ in 0..trials {
            let o = pocock.run(|| session.sample(&bern));
            samples += o.samples;
            if o.accepted != truth {
                errors += 1;
            }
        }
        row.push_str(&format!(
            " {:>12.1} {:>7.3}",
            samples as f64 / trials as f64,
            errors as f64 / trials as f64
        ));
        println!("{row}");
    }
    println!();
    println!("expected shape: the SPRT's sample count collapses for easy evidence");
    println!("and approaches the cap only near p = 0.5 ± δ; the fixed pool pays");
    println!("1000 samples everywhere for the same decisions; Pocock sits between,");
    println!("with a hard worst-case bound.");
    Ok(())
}
