//! Figure 16: precision and recall of Parakeet's edge detection across
//! conditional thresholds α, against Parrot's single fixed point (the
//! paper measured Parrot at 100% recall / 64% precision).

use uncertain_bench::{header, scaled};
use uncertain_core::Session;
use uncertain_neural::eval::{parakeet_precision_recall, parrot_confusion};
use uncertain_neural::sobel::generate_dataset;
use uncertain_neural::{Parakeet, Parrot};

fn main() {
    header("Figure 16: precision/recall vs. conditional threshold α");
    // Paper scale: 5000 training examples, 500 evaluation examples.
    let train = generate_dataset(scaled(5000, 300), 160);
    let test = generate_dataset(scaled(500, 120), 161);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(16);

    let parrot = Parrot::train(&train, scaled(60, 20), 0.05, &mut rng);
    let parakeet = Parakeet::train_tuned(&train, scaled(300, 40), 162, &mut rng);

    println!(
        "train = {}, eval = {}, eval edge fraction = {:.2}, Parrot RMSE = {:.3} (paper: 0.034)",
        train.len(),
        test.len(),
        test.edge_fraction(),
        parrot.rmse(&test)
    );

    let parrot_m = parrot_confusion(&parrot, &test);
    println!(
        "Parrot (fixed point): precision = {:.3}, recall = {:.3}  (paper: 0.64 / 1.00)",
        parrot_m.precision().unwrap_or(f64::NAN),
        parrot_m.recall().unwrap_or(f64::NAN)
    );

    println!();
    println!(
        "{:>6} {:>11} {:>9} {:>6} {:>6} {:>6} {:>6}",
        "α", "precision", "recall", "tp", "fp", "fn", "tn"
    );
    let alphas: Vec<f64> = (1..20).map(|i| i as f64 / 20.0).collect();
    let mut session = Session::seeded(163);
    let points =
        parakeet_precision_recall(&parakeet, &test, &alphas, scaled(400, 100), &mut session);
    for p in &points {
        println!(
            "{:>6.2} {:>11.3} {:>9.3} {:>6} {:>6} {:>6} {:>6}",
            p.alpha,
            p.precision.unwrap_or(f64::NAN),
            p.recall.unwrap_or(f64::NAN),
            p.matrix.true_positives(),
            p.matrix.false_positives(),
            p.matrix.false_negatives(),
            p.matrix.true_negatives(),
        );
    }

    println!();
    println!("expected shape: recall falls and precision rises as α grows —");
    println!("developers pick their own balance, which Parrot cannot offer.");
}
