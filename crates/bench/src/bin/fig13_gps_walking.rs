//! Figure 13 (+ §5.1 prose): the full GPS-Walking comparison — naive
//! point-estimate speed vs. `Speed.E()` vs. the prior-improved speed, plus
//! the app's conditional behavior ("naive reports >7 mph for ~30 s; the
//! uncertain conditional only ~4 s").

use uncertain_bench::{header, scaled};
use uncertain_gps::{Action, WalkExperiment};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Figure 13: GPS-Walking — naive vs. E[Speed] vs. prior-improved");
    let duration = scaled(900, 90);
    let result = WalkExperiment::new(4.0, duration, 1313)
        .samples_per_estimate(scaled(300, 100))
        .run()?;

    println!("t(s)    true   naive    E[speed]  improved   [95% interval improved]");
    for r in result.records.iter().step_by(scaled(30, 10)) {
        println!(
            "{:>4} {:>7.2} {:>7.2} {:>10.2} {:>9.2}   [{:>5.2}, {:>5.2}]",
            r.t,
            r.true_speed,
            r.naive_speed,
            r.expected_speed,
            r.improved_speed,
            r.improved_interval_95.0,
            r.improved_interval_95.1
        );
    }

    println!();
    println!(
        "series means over {} s (true speed 3.0 mph):",
        result.records.len()
    );
    println!(
        "  naive:     {:.2} mph  (paper: 3.5)",
        result.mean_naive_speed()
    );
    println!("  E[speed]:  {:.2} mph", result.mean_expected_speed());
    println!("  improved:  {:.2} mph", result.mean_improved_speed());
    println!();
    println!("absurd values (max of series):");
    println!(
        "  naive:     {:.1} mph (paper: 59)",
        result.max_of(|r| r.naive_speed)
    );
    println!(
        "  improved:  {:.1} mph (prior removes the absurdities)",
        result.max_of(|r| r.improved_speed)
    );
    println!();
    println!(
        "95% interval width (mean): raw {:.1} mph → improved {:.1} mph",
        result.mean_interval_width(),
        result.mean_improved_interval_width()
    );
    println!();
    println!("seconds reported above 7 mph (running pace while walking):");
    println!(
        "  naive series:    {} s (paper: ~30-35 s)",
        result.seconds_above(7.0, |r| r.naive_speed)
    );
    println!(
        "  improved series: {} s (paper: ~4 s)",
        result.seconds_above(7.0, |r| r.improved_speed)
    );
    println!();
    println!("app conditionals over the walk (user truly below 4 mph):");
    println!(
        "  naive:     GoodJob {:>4}   SpeedUp {:>4}",
        result.naive_action_count(Action::GoodJob),
        result.naive_action_count(Action::SpeedUp),
    );
    println!(
        "  uncertain: GoodJob {:>4}   SpeedUp {:>4}   Silent {:>4}",
        result.uncertain_action_count(Action::GoodJob),
        result.uncertain_action_count(Action::SpeedUp),
        result.uncertain_action_count(Action::Silent),
    );
    Ok(())
}
