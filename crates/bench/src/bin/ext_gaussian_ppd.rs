//! Extension experiment: the Gaussian PPD approximation the paper proposes
//! as the cheap alternative to Monte-Carlo PPD sampling (§5.3). Compares
//! edge-detection quality and per-decision cost of the two Parakeet modes.

use std::time::Instant;
use uncertain_bench::{header, scaled};
use uncertain_core::Session;
use uncertain_neural::sobel::{generate_dataset, EDGE_THRESHOLD};
use uncertain_neural::Parakeet;
use uncertain_stats::ConfusionMatrix;

fn main() {
    header("Extension: Monte-Carlo PPD vs Gaussian PPD approximation");
    let train = generate_dataset(scaled(2000, 300), 90);
    let test = generate_dataset(scaled(400, 100), 91);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(92);
    let parakeet = Parakeet::train_tuned(&train, scaled(200, 40), 93, &mut rng);
    println!(
        "pool {} networks, HMC acceptance {:.2}\n",
        parakeet.pool_size(),
        parakeet.acceptance_rate()
    );

    let alpha = 0.8;
    let samples_per_input = scaled(300, 80);
    let mut session = Session::seeded(94);

    let mut evaluate = |label: &str, gaussian: bool| {
        let mut matrix = ConfusionMatrix::new();
        let start = Instant::now();
        for (x, &t) in test.inputs.iter().zip(&test.targets) {
            let ppd = if gaussian {
                parakeet.predict_gaussian(x)
            } else {
                parakeet.predict(x)
            };
            let p = ppd
                .gt(EDGE_THRESHOLD)
                .probability_in(&mut session, samples_per_input);
            matrix.record(p > alpha, t > EDGE_THRESHOLD);
        }
        let elapsed = start.elapsed();
        println!(
            "{label:<22} precision {:.3}  recall {:.3}  time {:>8.1?}  ({:.1} µs/decision)",
            matrix.precision().unwrap_or(f64::NAN),
            matrix.recall().unwrap_or(f64::NAN),
            elapsed,
            elapsed.as_micros() as f64 / test.len() as f64
        );
    };

    evaluate("Monte-Carlo PPD", false);
    evaluate("Gaussian approximation", true);

    println!();
    println!("the Gaussian mode runs the pool once per input and then samples a");
    println!("closed-form normal — same decisions, far fewer network executions,");
    println!("appropriate exactly when the posterior is approximately Gaussian");
    println!("(as the Sobel posterior is, paper Fig. 15).");
}
