//! Figure 3: naive speed computation on GPS data produces absurd walking
//! speeds (the paper logged 59 mph, and 35 s above 7 mph — a running pace).

use uncertain_bench::{header, scaled};
use uncertain_gps::WalkExperiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Figure 3: naive speed while walking at 3 mph (ε = 4 m GPS)");
    let duration = scaled(900, 90); // the paper's 15-minute walk
    let result = WalkExperiment::new(4.0, duration, 2024)
        .samples_per_estimate(scaled(300, 100))
        .run()?;

    println!("t(s)   naive speed (mph)");
    for r in result.records.iter().step_by(scaled(30, 10)) {
        let bars = "#".repeat((r.naive_speed.min(40.0) * 1.5) as usize);
        println!("{:>4}   {:>6.2} {bars}", r.t, r.naive_speed);
    }

    println!();
    println!("true walking speed:        3.0 mph");
    println!(
        "mean naive speed:          {:.2} mph (paper: 3.5)",
        result.mean_naive_speed()
    );
    println!(
        "max naive speed:           {:.1} mph (paper: absurd values up to 59)",
        result.max_of(|r| r.naive_speed)
    );
    println!(
        "seconds above 7 mph:       {} of {} (paper: 35 s — a running pace)",
        result.seconds_above(7.0, |r| r.naive_speed),
        result.records.len()
    );
    Ok(())
}
