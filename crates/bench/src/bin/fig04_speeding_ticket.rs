//! Figure 4: probability of issuing a speeding ticket at a 60 mph limit,
//! across true speeds and GPS accuracies. The paper highlights the cell
//! (57 mph, ε = 4 m): a 32% chance of a ticket from random noise alone.

use uncertain_bench::{header, scaled};
use uncertain_core::Session;
use uncertain_gps::ticket_probability;

fn main() {
    header("Figure 4: Pr[naive conditional issues a ticket] at a 60 mph limit");
    let trials = scaled(2000, 200);
    let accuracies = [1.0, 2.0, 4.0, 6.0, 8.0, 10.0];
    let speeds = [50.0, 53.0, 55.0, 57.0, 59.0, 60.0, 61.0, 63.0, 65.0, 70.0];
    let mut session = Session::seeded(4);

    print!("{:>12}", "speed\\ε(m)");
    for eps in accuracies {
        print!("{eps:>8.0}");
    }
    println!();
    for speed in speeds {
        print!("{speed:>10.0}mph");
        for eps in accuracies {
            let p = ticket_probability(speed, eps, 60.0, 1.0, trials, &mut session);
            print!("{:>8.3}", p);
        }
        println!();
    }

    println!();
    let highlighted = ticket_probability(57.0, 4.0, 60.0, 1.0, trials * 2, &mut session);
    println!(
        "paper's highlighted cell — true speed 57 mph, ε = 4 m: Pr[ticket] = {highlighted:.3} \
         (paper: 0.32)"
    );
}
