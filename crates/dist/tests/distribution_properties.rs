//! Property-based audits of every distribution: sample moments match the
//! analytic moments, CDFs are monotone and bounded, densities are
//! non-negative, and quantiles invert CDFs — across randomized parameters.

use proptest::prelude::*;
use rand::SeedableRng;
use uncertain_dist::{
    Bernoulli, Beta, Binomial, Continuous, Discrete, Distribution, Exponential, Gamma, Gaussian,
    LogNormal, Poisson, Rayleigh, Rician, StudentT, Triangular, Uniform,
};

const N: usize = 8000;

/// Checks sample mean/variance against analytic values with CLT-scaled
/// tolerances.
fn check_moments<D: Continuous>(dist: &D, seed: u64) -> Result<(), TestCaseError> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let xs = dist.sample_n(&mut rng, N);
    let mean = xs.iter().sum::<f64>() / N as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (N - 1) as f64;
    let sd = dist.std_dev();
    // Mean within 6 standard errors; variance within 30% (generous, for
    // heavy-ish tails).
    prop_assert!(
        (mean - dist.mean()).abs() < 6.0 * sd / (N as f64).sqrt() + 1e-9,
        "mean {mean} vs {}",
        dist.mean()
    );
    prop_assert!(
        (var - dist.variance()).abs() < 0.3 * dist.variance() + 1e-9,
        "var {var} vs {}",
        dist.variance()
    );
    Ok(())
}

/// Checks CDF monotonicity/bounds and quantile round-trips over the
/// distribution's central region.
fn check_cdf_quantile<D: Continuous>(dist: &D) -> Result<(), TestCaseError> {
    let mut prev = 0.0;
    for i in 0..=20 {
        let p = i as f64 / 20.0;
        let q = dist.quantile(p.clamp(0.01, 0.99));
        let c = dist.cdf(q);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(c + 1e-6 >= prev, "cdf must be monotone");
        prev = c;
        prop_assert!(dist.pdf(q) >= 0.0, "density must be non-negative");
    }
    for &p in &[0.05, 0.25, 0.5, 0.75, 0.95] {
        let q = dist.quantile(p);
        prop_assert!(
            (dist.cdf(q) - p).abs() < 1e-6,
            "quantile must invert cdf at p={p}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gaussian_properties(mu in -50.0_f64..50.0, sd in 0.1_f64..20.0, seed in 0u64..1000) {
        let d = Gaussian::new(mu, sd).unwrap();
        check_moments(&d, seed)?;
        check_cdf_quantile(&d)?;
    }

    #[test]
    fn uniform_properties(lo in -50.0_f64..0.0, w in 0.5_f64..100.0, seed in 0u64..1000) {
        let d = Uniform::new(lo, lo + w).unwrap();
        check_moments(&d, seed)?;
        check_cdf_quantile(&d)?;
    }

    #[test]
    fn rayleigh_properties(scale in 0.1_f64..20.0, seed in 0u64..1000) {
        let d = Rayleigh::new(scale).unwrap();
        check_moments(&d, seed)?;
        check_cdf_quantile(&d)?;
    }

    #[test]
    fn exponential_properties(rate in 0.05_f64..10.0, seed in 0u64..1000) {
        let d = Exponential::new(rate).unwrap();
        check_moments(&d, seed)?;
        check_cdf_quantile(&d)?;
    }

    #[test]
    fn gamma_properties(shape in 0.5_f64..10.0, scale in 0.2_f64..5.0, seed in 0u64..1000) {
        let d = Gamma::new(shape, scale).unwrap();
        check_moments(&d, seed)?;
        check_cdf_quantile(&d)?;
    }

    #[test]
    fn beta_properties(a in 0.5_f64..8.0, b in 0.5_f64..8.0, seed in 0u64..1000) {
        let d = Beta::new(a, b).unwrap();
        check_moments(&d, seed)?;
        check_cdf_quantile(&d)?;
    }

    #[test]
    fn lognormal_properties(mu in -1.0_f64..1.0, sigma in 0.1_f64..0.8, seed in 0u64..1000) {
        let d = LogNormal::new(mu, sigma).unwrap();
        check_moments(&d, seed)?;
        check_cdf_quantile(&d)?;
    }

    #[test]
    fn triangular_properties(lo in -10.0_f64..0.0, peak in 0.0_f64..5.0, hi in 5.0_f64..15.0, seed in 0u64..1000) {
        let d = Triangular::new(lo, peak, hi).unwrap();
        check_moments(&d, seed)?;
        check_cdf_quantile(&d)?;
    }

    #[test]
    fn rician_properties(nu in 0.0_f64..10.0, sigma in 0.3_f64..3.0, seed in 0u64..1000) {
        let d = Rician::new(nu, sigma).unwrap();
        check_moments(&d, seed)?;
        // Rician CDF is numeric integration; spot-check bounds/monotonicity.
        let mut prev = 0.0;
        for i in 1..=10 {
            let x = i as f64 * (nu + 4.0 * sigma) / 10.0;
            let c = d.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c + 1e-6 >= prev);
            prev = c;
        }
    }

    #[test]
    fn student_t_properties(nu in 3.0_f64..50.0, seed in 0u64..1000) {
        let d = StudentT::new(nu).unwrap();
        check_moments(&d, seed)?;
        check_cdf_quantile(&d)?;
    }

    #[test]
    fn bernoulli_frequency(p in 0.0_f64..1.0, seed in 0u64..1000) {
        let d = Bernoulli::new(p).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let k = d.sample_n(&mut rng, N).into_iter().filter(|&b| b).count() as f64 / N as f64;
        prop_assert!((k - p).abs() < 6.0 * (p * (1.0 - p) / N as f64).sqrt() + 1e-9);
    }

    #[test]
    fn binomial_matches_bernoulli_sum(n in 1u64..60, p in 0.05_f64..0.95, seed in 0u64..1000) {
        let d = Binomial::new(n, p).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mean = d.sample_n(&mut rng, 4000).iter().sum::<u64>() as f64 / 4000.0;
        prop_assert!(
            (mean - d.mean()).abs() < 6.0 * (d.variance() / 4000.0).sqrt() + 0.05,
            "mean {mean} vs {}",
            d.mean()
        );
        // PMF sums to 1 over the support.
        let total: f64 = (0..=n).map(|k| d.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn poisson_mean_variance(lambda in 0.2_f64..80.0, seed in 0u64..1000) {
        let d = Poisson::new(lambda).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = d.sample_n(&mut rng, 4000).into_iter().map(|k| k as f64).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!(
            (mean - lambda).abs() < 6.0 * (lambda / 4000.0).sqrt() + 0.05,
            "mean {mean} vs {lambda}"
        );
        // CDF via regularized gamma is monotone in k.
        let mut prev = 0.0;
        for k in 0..10 {
            let c = d.cdf(k);
            prop_assert!(c + 1e-12 >= prev && (0.0..=1.0).contains(&c));
            prev = c;
        }
    }
}
