//! Beta distribution.

use crate::special::{ln_gamma, reg_inc_beta};
use crate::{Continuous, Distribution, Gamma, ParamError};
use rand::RngCore;

/// Beta distribution on `[0, 1]` with shapes `α, β`.
///
/// The natural prior for Bernoulli parameters (e.g. belief about the
/// evidence of a conditional) and the paper's suggested non-negative noise
/// alternative in SensorLife (§5.2). Sampled as `X/(X+Y)` with
/// `X ~ Gamma(α), Y ~ Gamma(β)`.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Beta, Continuous};
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let b = Beta::new(2.0, 5.0)?;
/// assert!((b.mean() - 2.0 / 7.0).abs() < 1e-12);
/// assert!((b.cdf(1.0) - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    alpha: f64,
    beta: f64,
    gamma_a: Gamma,
    gamma_b: Gamma,
}

impl Beta {
    /// Creates a Beta with shapes `alpha` and `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless both shapes are positive and finite.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, ParamError> {
        Ok(Self {
            alpha,
            beta,
            gamma_a: Gamma::new(alpha, 1.0).map_err(|_| {
                ParamError::new(format!("beta alpha must be positive, got {alpha}"))
            })?,
            gamma_b: Gamma::new(beta, 1.0)
                .map_err(|_| ParamError::new(format!("beta beta must be positive, got {beta}")))?,
        })
    }

    /// The first shape parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The second shape parameter β.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Distribution<f64> for Beta {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let x = self.gamma_a.sample(rng);
        let y = self.gamma_b.sample(rng);
        x / (x + y)
    }

    /// Beta columns stay scalar-per-index on purpose: the underlying
    /// Gamma draws use rejection sampling, so each index consumes a
    /// *variable* number of RNG draws and no fixed-lane vectorization can
    /// reproduce the scalar stream bitwise. The explicit loop pins the
    /// contract (element `i` consumes only from `rngs[i]`, bitwise equal
    /// to `sample(&mut rngs[i])`) that the parity test checks.
    fn fill_column(&self, rngs: &mut [rand::rngs::SmallRng], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(rngs.len());
        for rng in rngs.iter_mut() {
            out.push(self.sample(rng));
        }
    }

    fn spec(&self) -> Option<crate::DistSpec> {
        Some(crate::DistSpec::Beta {
            alpha: self.alpha,
            beta: self.beta,
        })
    }
}

impl Continuous for Beta {
    fn ln_pdf(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return f64::NEG_INFINITY;
        }
        let ln_b = ln_gamma(self.alpha) + ln_gamma(self.beta) - ln_gamma(self.alpha + self.beta);
        (self.alpha - 1.0) * x.ln() + (self.beta - 1.0) * (1.0 - x).ln() - ln_b
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else if x >= 1.0 {
            1.0
        } else {
            reg_inc_beta(self.alpha, self.beta, x)
        }
    }

    fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }

    fn support(&self) -> (f64, f64) {
        (0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_params() {
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Beta::new(1.0, -1.0).is_err());
    }

    #[test]
    fn uniform_special_case() {
        let b = Beta::new(1.0, 1.0).unwrap();
        assert!((b.pdf(0.3) - 1.0).abs() < 1e-10);
        assert!((b.cdf(0.7) - 0.7).abs() < 1e-10);
        assert_eq!(b.mean(), 0.5);
    }

    #[test]
    fn samples_in_unit_interval_with_right_mean() {
        let b = Beta::new(2.0, 6.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(45);
        let n = 40_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = b.sample(&mut rng);
            assert!((0.0..=1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.25).abs() < 0.01);
    }

    #[test]
    fn symmetry() {
        let b = Beta::new(3.0, 3.0).unwrap();
        assert!((b.cdf(0.5) - 0.5).abs() < 1e-10);
        assert!((b.pdf(0.3) - b.pdf(0.7)).abs() < 1e-10);
    }

    #[test]
    fn fill_column_is_bitwise_identical_to_scalar_sampling() {
        use rand::rngs::SmallRng;
        let b = Beta::new(2.5, 1.5).unwrap();
        let mut scalar_rngs: Vec<SmallRng> = (0..257)
            .map(|i| SmallRng::seed_from_u64(i * 7 + 1))
            .collect();
        let mut column_rngs = scalar_rngs.clone();
        let mut col = Vec::new();
        b.fill_column(&mut column_rngs, &mut col);
        assert_eq!(col.len(), scalar_rngs.len());
        for (i, rng) in scalar_rngs.iter_mut().enumerate() {
            assert_eq!(
                col[i].to_bits(),
                b.sample(rng).to_bits(),
                "lane {i} diverged from the scalar draw"
            );
        }
        // The column pass must leave each RNG exactly where the scalar
        // path leaves it.
        for (i, (a, b)) in scalar_rngs
            .iter_mut()
            .zip(column_rngs.iter_mut())
            .enumerate()
        {
            assert_eq!(a.next_u64(), b.next_u64(), "rng {i} state diverged");
        }
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let b = Beta::new(2.5, 1.5).unwrap();
        for &p in &[0.1, 0.4, 0.6, 0.9] {
            assert!((b.cdf(b.quantile(p)) - p).abs() < 1e-8);
        }
    }
}
