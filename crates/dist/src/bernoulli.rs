//! Bernoulli distribution over `bool`.

use crate::{Distribution, ParamError};
use rand::{Rng, RngCore};

/// Bernoulli distribution: `true` with probability `p`.
///
/// In the `Uncertain<T>` semantics every lifted comparison produces a
/// Bernoulli whose parameter is the *evidence* for the condition (paper
/// §3.4); this type is the leaf-level version of that object, used both by
/// the runtime and by the hypothesis-test validation suite.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Bernoulli, Distribution};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let coin = Bernoulli::new(0.9)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let flips = coin.sample_n(&mut rng, 1000);
/// let heads = flips.iter().filter(|&&b| b).count();
/// assert!(heads > 850 && heads < 950);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli with success probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `p ∈ [0, 1]`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(ParamError::new(format!(
                "bernoulli probability must be in [0,1], got {p}"
            )));
        }
        Ok(Self { p })
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean of the distribution (equals `p`).
    pub fn mean(&self) -> f64 {
        self.p
    }

    /// Variance `p(1-p)`.
    pub fn variance(&self) -> f64 {
        self.p * (1.0 - self.p)
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample(&self, rng: &mut dyn RngCore) -> bool {
        rng.gen::<f64>() < self.p
    }

    fn fill_column(&self, rngs: &mut [rand::rngs::SmallRng], out: &mut Vec<bool>) {
        // Direct u64 → f64 → threshold mapping, monomorphic over
        // `SmallRng`; bitwise-identical to the scalar comparison.
        out.clear();
        out.extend(rngs.iter_mut().map(|rng| rng.gen::<f64>() < self.p));
    }

    fn spec(&self) -> Option<crate::DistSpec> {
        Some(crate::DistSpec::Bernoulli { p: self.p })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_out_of_range() {
        assert!(Bernoulli::new(-0.1).is_err());
        assert!(Bernoulli::new(1.1).is_err());
        assert!(Bernoulli::new(f64::NAN).is_err());
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let never = Bernoulli::new(0.0).unwrap();
        let always = Bernoulli::new(1.0).unwrap();
        for _ in 0..100 {
            assert!(!never.sample(&mut rng));
            assert!(always.sample(&mut rng));
        }
    }

    #[test]
    fn frequency_matches_p() {
        let b = Bernoulli::new(0.3).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let n = 50_000;
        let k = (0..n).filter(|_| b.sample(&mut rng)).count() as f64 / n as f64;
        assert!((k - 0.3).abs() < 0.01, "freq={k}");
    }

    #[test]
    fn moments() {
        let b = Bernoulli::new(0.25).unwrap();
        assert_eq!(b.mean(), 0.25);
        assert!((b.variance() - 0.1875).abs() < 1e-12);
    }
}
