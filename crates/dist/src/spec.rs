//! Canonical parametric descriptions of the closed-form distributions.
//!
//! A [`DistSpec`] is a pure-data description of a known distribution — the
//! shape name plus its parameters, nothing else. It exists so a leaf of an
//! `Uncertain<T>` network built from one of the standard distributions can
//! be *serialized*: a remote evaluation service reconstructs the exact same
//! sampling function from the spec (the constructors are deterministic
//! functions of their parameters), so a graph shipped over the wire draws
//! bitwise the same sample stream as the graph it was encoded from.
//!
//! Distributions advertise their spec through
//! [`Distribution::spec`](crate::Distribution::spec); the default is
//! `None`, which marks the distribution as not expressible on the wire
//! (e.g. [`Empirical`](crate::Empirical) pools or closures over captured
//! state).

/// The shape-plus-parameters description of a closed-form distribution.
///
/// Marked `#[non_exhaustive]`: new shapes may be added without a breaking
/// release, so downstream `match`es must carry a wildcard arm.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{DistSpec, Distribution, Gaussian};
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let g = Gaussian::new(3.0, 2.0)?;
/// assert_eq!(
///     g.spec(),
///     Some(DistSpec::Gaussian { mean: 3.0, std_dev: 2.0 })
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum DistSpec {
    /// `N(mean, std_dev)` — [`Gaussian`](crate::Gaussian).
    Gaussian {
        /// Location parameter.
        mean: f64,
        /// Scale parameter (strictly positive).
        std_dev: f64,
    },
    /// Uniform on `[low, high)` — [`Uniform`](crate::Uniform).
    Uniform {
        /// Inclusive lower bound.
        low: f64,
        /// Exclusive upper bound.
        high: f64,
    },
    /// Rayleigh with the given scale — [`Rayleigh`](crate::Rayleigh), the
    /// paper's GPS error shape.
    Rayleigh {
        /// Scale parameter ρ (strictly positive).
        scale: f64,
    },
    /// Exponential with the given rate — [`Exponential`](crate::Exponential).
    Exponential {
        /// Rate parameter λ (strictly positive).
        rate: f64,
    },
    /// Bernoulli that is `true` with probability `p` —
    /// [`Bernoulli`](crate::Bernoulli). The one `bool`-valued shape.
    Bernoulli {
        /// Success probability in `[0, 1]`.
        p: f64,
    },
    /// Beta on `[0, 1]` with shapes `α, β` — [`Beta`](crate::Beta), the
    /// conjugate posterior of Bernoulli evidence chains.
    Beta {
        /// First shape parameter α (strictly positive).
        alpha: f64,
        /// Second shape parameter β (strictly positive).
        beta: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Bernoulli, Beta, Distribution, Empirical, Exponential, Gaussian, Rayleigh, Uniform,
    };

    #[test]
    fn closed_form_distributions_advertise_their_spec() {
        assert_eq!(
            Beta::new(2.0, 5.0).unwrap().spec(),
            Some(DistSpec::Beta {
                alpha: 2.0,
                beta: 5.0
            })
        );
        assert_eq!(
            Uniform::new(1.0, 2.0).unwrap().spec(),
            Some(DistSpec::Uniform {
                low: 1.0,
                high: 2.0
            })
        );
        assert_eq!(
            Rayleigh::new(4.0).unwrap().spec(),
            Some(DistSpec::Rayleigh { scale: 4.0 })
        );
        assert_eq!(
            Exponential::new(0.5).unwrap().spec(),
            Some(DistSpec::Exponential { rate: 0.5 })
        );
        assert_eq!(
            Bernoulli::new(0.25).unwrap().spec(),
            Some(DistSpec::Bernoulli { p: 0.25 })
        );
    }

    #[test]
    fn opaque_distributions_have_no_spec() {
        let pool = Empirical::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(Distribution::<f64>::spec(&pool), None);
    }

    #[test]
    fn spec_survives_smart_pointer_wrapping() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let spec = g.spec();
        assert_eq!(Distribution::<f64>::spec(&&g), spec);
        assert_eq!(Distribution::<f64>::spec(&Box::new(g)), spec);
        assert_eq!(Distribution::<f64>::spec(&std::sync::Arc::new(g)), spec);
    }
}
