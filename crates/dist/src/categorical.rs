//! Categorical (finite, weighted) distribution.

use crate::{Distribution, ParamError};
use rand::{Rng, RngCore};

/// A categorical distribution: a finite set of values with explicit
/// probabilities.
///
/// This is the representation the paper attributes to CES's `prob<T>`
/// (§3.2, \[30\]): "for finite domains, a simple map can assign a probability
/// to each possible value." It is useful for discrete priors and for exact
/// expected-value cross-checks in the test suite.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Categorical, Distribution};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let biased = Categorical::new(vec![("heads", 0.9), ("tails", 0.1)])?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let flip = biased.sample(&mut rng);
/// assert!(flip == "heads" || flip == "tails");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical<T> {
    items: Vec<(T, f64)>,
    cumulative: Vec<f64>,
}

impl<T> Categorical<T> {
    /// Creates a categorical distribution from `(value, weight)` pairs.
    ///
    /// Weights need not sum to 1; they are normalized internally.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the list is empty, any weight is negative or
    /// non-finite, or all weights are zero.
    pub fn new(items: Vec<(T, f64)>) -> Result<Self, ParamError> {
        if items.is_empty() {
            return Err(ParamError::new("categorical must have at least one item"));
        }
        let mut total = 0.0;
        for (i, (_, w)) in items.iter().enumerate() {
            if !w.is_finite() || *w < 0.0 {
                return Err(ParamError::new(format!(
                    "categorical weight {i} must be finite and non-negative, got {w}"
                )));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(ParamError::new("categorical weights must not all be zero"));
        }
        let mut cumulative = Vec::with_capacity(items.len());
        let mut acc = 0.0;
        for (_, w) in &items {
            acc += w / total;
            cumulative.push(acc);
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Ok(Self { items, cumulative })
    }

    /// Probability of the item at index `i` (after normalization).
    pub fn probability(&self, i: usize) -> Option<f64> {
        if i >= self.items.len() {
            return None;
        }
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        Some(self.cumulative[i] - prev)
    }

    /// The `(value, raw-weight)` pairs this distribution was built from.
    pub fn items(&self) -> &[(T, f64)] {
        &self.items
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no categories (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<T: Clone + Send + Sync> Distribution<T> for Categorical<T> {
    fn sample(&self, rng: &mut dyn RngCore) -> T {
        let u: f64 = rng.gen();
        let idx = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative weights are finite"))
        {
            Ok(i) => (i + 1).min(self.items.len() - 1),
            Err(i) => i.min(self.items.len() - 1),
        };
        self.items[idx].0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid() {
        assert!(Categorical::<i32>::new(vec![]).is_err());
        assert!(Categorical::new(vec![(1, -1.0)]).is_err());
        assert!(Categorical::new(vec![(1, 0.0), (2, 0.0)]).is_err());
        assert!(Categorical::new(vec![(1, f64::NAN)]).is_err());
    }

    #[test]
    fn normalizes_weights() {
        let c = Categorical::new(vec![("a", 2.0), ("b", 6.0)]).unwrap();
        assert!((c.probability(0).unwrap() - 0.25).abs() < 1e-12);
        assert!((c.probability(1).unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(c.probability(2), None);
    }

    #[test]
    fn frequencies_match_weights() {
        let c = Categorical::new(vec![(0usize, 1.0), (1, 2.0), (2, 7.0)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let n = 50_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[c.sample(&mut rng)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.2).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.7).abs() < 0.01);
    }

    #[test]
    fn singleton_always_sampled() {
        let c = Categorical::new(vec![(42, 3.0)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(c.sample(&mut rng), 42);
        }
    }

    #[test]
    fn zero_weight_items_never_sampled() {
        let c = Categorical::new(vec![(0, 0.0), (1, 1.0)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for _ in 0..500 {
            assert_eq!(c.sample(&mut rng), 1);
        }
    }
}
