//! Rician (Rice) distribution.

use crate::special::{bessel_i0, bessel_i1, ln_bessel_i0};
use crate::{Continuous, Distribution, Gaussian, ParamError};
use rand::RngCore;

/// Rician distribution: the magnitude `√((ν + X)² + Y²)` of a 2D Gaussian
/// displaced from the origin (`X, Y ~ N(0, σ)`).
///
/// This is the *exact* likelihood of an observed GPS displacement given a
/// true movement of length ν when both fixes carry isotropic Gaussian
/// error — the density the GPS speed posterior uses
/// (`uncertain-gps::priors::posterior_speed`). At ν = 0 it reduces to the
/// paper's Rayleigh.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Continuous, Rician};
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let r = Rician::new(3.0, 1.0)?;
/// // The density peaks near ν for large ν/σ.
/// assert!(r.pdf(3.1) > r.pdf(1.0));
/// assert!(r.pdf(3.1) > r.pdf(6.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rician {
    nu: f64,
    sigma: f64,
    noise: Gaussian,
}

impl Rician {
    /// Creates a Rician with noncentrality `nu ≥ 0` and noise `sigma > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `nu ≥ 0` and `sigma > 0` (finite).
    pub fn new(nu: f64, sigma: f64) -> Result<Self, ParamError> {
        if nu < 0.0 || !nu.is_finite() {
            return Err(ParamError::new(format!(
                "rician nu must be non-negative and finite, got {nu}"
            )));
        }
        let noise = Gaussian::new(0.0, sigma)?;
        Ok(Self { nu, sigma, noise })
    }

    /// The noncentrality parameter ν (the true underlying magnitude).
    pub fn nu(&self) -> f64 {
        self.nu
    }

    /// The per-axis noise σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Distribution<f64> for Rician {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let x = self.nu + self.noise.sample(rng);
        let y = self.noise.sample(rng);
        (x * x + y * y).sqrt()
    }
}

impl Continuous for Rician {
    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return f64::NEG_INFINITY;
        }
        if x == 0.0 {
            return f64::NEG_INFINITY;
        }
        let s2 = self.sigma * self.sigma;
        // ln f = ln x − ln σ² − (x² + ν²)/2σ² + ln I₀(xν/σ²), using the
        // overflow-safe ln I₀ for large arguments.
        x.ln() - s2.ln() - (x * x + self.nu * self.nu) / (2.0 * s2) + ln_bessel_i0(x * self.nu / s2)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        // Numerically integrate the density (the Marcum Q-function has no
        // elementary form); the integrand is smooth and light-tailed.
        let n = 2048;
        let dx = x / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let xi = (i as f64 + 0.5) * dx;
            acc += self.pdf(xi) * dx;
        }
        acc.min(1.0)
    }

    fn mean(&self) -> f64 {
        // σ√(π/2)·L_{1/2}(−ν²/2σ²); with t = ν²/4σ² the Laguerre value is
        // e^(−t)[(1 + 2t)I₀(t) + 2t·I₁(t)] — the e^(−t) lives inside the
        // scaled Bessels below.
        let t = self.nu * self.nu / (4.0 * self.sigma * self.sigma);
        let laguerre = (1.0 + 2.0 * t) * bessel_i0_scaled(t) + 2.0 * t * bessel_i1_scaled(t);
        self.sigma * (core::f64::consts::PI / 2.0).sqrt() * laguerre
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        2.0 * self.sigma * self.sigma + self.nu * self.nu - m * m
    }

    fn support(&self) -> (f64, f64) {
        (0.0, f64::INFINITY)
    }
}

/// `e^(−t)·I₀(t)` — scaled to avoid overflow in the Laguerre formula.
fn bessel_i0_scaled(t: f64) -> f64 {
    if t < 300.0 {
        (-t).exp() * bessel_i0(t)
    } else {
        // Asymptotic with first corrections: I₀(t) ≈ e^t/√(2πt)·(1 + 1/8t + 9/128t²).
        (1.0 + 1.0 / (8.0 * t) + 9.0 / (128.0 * t * t)) / (2.0 * core::f64::consts::PI * t).sqrt()
    }
}

/// `e^(−t)·I₁(t)`.
fn bessel_i1_scaled(t: f64) -> f64 {
    if t < 300.0 {
        (-t).exp() * bessel_i1(t)
    } else {
        // I₁(t) ≈ e^t/√(2πt)·(1 − 3/8t − 15/128t²).
        (1.0 - 3.0 / (8.0 * t) - 15.0 / (128.0 * t * t)) / (2.0 * core::f64::consts::PI * t).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rayleigh;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_params() {
        assert!(Rician::new(-1.0, 1.0).is_err());
        assert!(Rician::new(1.0, 0.0).is_err());
    }

    #[test]
    fn reduces_to_rayleigh_at_zero_nu() {
        let rice = Rician::new(0.0, 2.0).unwrap();
        let ray = Rayleigh::new(2.0).unwrap();
        for &x in &[0.5, 1.0, 2.0, 4.0] {
            assert!(
                (rice.pdf(x) - ray.pdf(x)).abs() < 1e-9,
                "x={x}: {} vs {}",
                rice.pdf(x),
                ray.pdf(x)
            );
        }
    }

    #[test]
    fn sample_mean_matches_analytic() {
        let r = Rician::new(4.0, 1.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(49);
        let n = 60_000;
        let mean: f64 = (0..n).map(|_| r.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - r.mean()).abs() < 0.02, "{mean} vs {}", r.mean());
    }

    #[test]
    fn analytic_mean_large_snr_approaches_nu() {
        // For ν ≫ σ, E ≈ ν + σ²/2ν.
        let r = Rician::new(50.0, 1.0).unwrap();
        assert!(
            (r.mean() - (50.0 + 1.0 / 100.0)).abs() < 1e-3,
            "{}",
            r.mean()
        );
    }

    #[test]
    fn cdf_is_calibrated_against_samples() {
        let r = Rician::new(3.0, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(50);
        let n = 40_000;
        let below = (0..n).filter(|_| r.sample(&mut rng) <= 3.0).count() as f64 / n as f64;
        assert!(
            (below - r.cdf(3.0)).abs() < 0.01,
            "{below} vs {}",
            r.cdf(3.0)
        );
    }

    #[test]
    fn ln_pdf_stable_at_high_snr() {
        // xν/σ² huge: ln I₀ must not overflow.
        let r = Rician::new(1000.0, 1.0).unwrap();
        let lp = r.ln_pdf(1000.0);
        assert!(lp.is_finite());
        assert!(r.ln_pdf(900.0) < lp);
    }
}
