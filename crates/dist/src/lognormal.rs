//! Log-normal distribution.

use crate::special::{standard_normal_cdf, standard_normal_quantile};
use crate::{Continuous, Distribution, Gaussian, ParamError};
use rand::RngCore;

/// Log-normal distribution: `exp(N(μ, σ))`.
///
/// A natural positive-support prior for rates and speeds; the GPS case study
/// offers it as an alternative walking-speed prior (speeds are positive and
/// right-skewed).
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Continuous, LogNormal};
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let ln = LogNormal::new(0.0, 0.5)?;
/// assert!((ln.cdf(1.0) - 0.5).abs() < 1e-12); // median = e^μ = 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
    normal: Gaussian,
}

impl LogNormal {
    /// Creates a log-normal whose logarithm is `N(mu, sigma)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `sigma` is finite and positive and `mu`
    /// is finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        let normal = Gaussian::new(mu, sigma)?;
        Ok(Self { mu, sigma, normal })
    }

    /// Builds a log-normal with the given *linear-scale* median and a shape
    /// parameter `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `median` is positive and `sigma` valid.
    pub fn from_median(median: f64, sigma: f64) -> Result<Self, ParamError> {
        if median <= 0.0 || !median.is_finite() {
            return Err(ParamError::new(format!(
                "log-normal median must be positive and finite, got {median}"
            )));
        }
        Self::new(median.ln(), sigma)
    }

    /// Location parameter `μ` (mean of the log).
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Shape parameter `σ` (std-dev of the log).
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Distribution<f64> for LogNormal {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.normal.sample(rng).exp()
    }
}

impl Continuous for LogNormal {
    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        -0.5 * z * z - x.ln() - self.sigma.ln() - 0.5 * (2.0 * core::f64::consts::PI).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            standard_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        ((s2).exp_m1()) * (2.0 * self.mu + s2).exp()
    }

    fn support(&self) -> (f64, f64) {
        (0.0, f64::INFINITY)
    }

    fn quantile(&self, p: f64) -> f64 {
        if !(0.0..=1.0).contains(&p) {
            return f64::NAN;
        }
        (self.mu + self.sigma * standard_normal_quantile(p)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_params() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::from_median(-1.0, 1.0).is_err());
        assert!(LogNormal::from_median(0.0, 1.0).is_err());
    }

    #[test]
    fn median_construction() {
        let ln = LogNormal::from_median(3.0, 0.4).unwrap();
        assert!((ln.quantile(0.5) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn positive_support() {
        let ln = LogNormal::new(1.0, 2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        for _ in 0..500 {
            assert!(ln.sample(&mut rng) > 0.0);
        }
        assert_eq!(ln.pdf(-1.0), 0.0);
        assert_eq!(ln.cdf(0.0), 0.0);
    }

    #[test]
    fn analytic_mean_matches_samples() {
        let ln = LogNormal::new(0.2, 0.3).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| ln.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - ln.mean()).abs() < 0.02, "{mean} vs {}", ln.mean());
    }

    #[test]
    fn quantile_round_trip() {
        let ln = LogNormal::new(-0.5, 0.8).unwrap();
        for &p in &[0.05, 0.25, 0.5, 0.75, 0.95] {
            assert!((ln.cdf(ln.quantile(p)) - p).abs() < 1e-10);
        }
    }
}
