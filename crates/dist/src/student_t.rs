//! Student's t distribution.

use crate::special::{ln_gamma, reg_inc_beta};
use crate::{Continuous, Distribution, Gamma, Gaussian, ParamError};
use rand::RngCore;

/// Student's t distribution with `ν` degrees of freedom — the
/// heavy-tailed sibling of the Gaussian, used for robust error models and
/// as the small-sample distribution of standardized means.
///
/// Sampled as `Z / √(V/ν)` with `Z ~ N(0,1)` and `V ~ χ²(ν) = Gamma(ν/2, 2)`.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Continuous, StudentT};
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let t = StudentT::new(5.0)?;
/// assert!((t.cdf(0.0) - 0.5).abs() < 1e-12);
/// // Heavier tails than a Gaussian:
/// let g = uncertain_dist::Gaussian::standard();
/// assert!(1.0 - t.cdf(3.0) > 1.0 - g.cdf(3.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    nu: f64,
    chi2: Gamma,
    normal: Gaussian,
}

impl StudentT {
    /// Creates a t distribution with `nu` degrees of freedom.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `nu` is positive and finite.
    pub fn new(nu: f64) -> Result<Self, ParamError> {
        if nu <= 0.0 || !nu.is_finite() {
            return Err(ParamError::new(format!(
                "degrees of freedom must be positive and finite, got {nu}"
            )));
        }
        Ok(Self {
            nu,
            chi2: Gamma::new(nu / 2.0, 2.0).expect("validated above"),
            normal: Gaussian::standard(),
        })
    }

    /// Degrees of freedom ν.
    pub fn nu(&self) -> f64 {
        self.nu
    }
}

impl Distribution<f64> for StudentT {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let z = self.normal.sample(rng);
        let v = self.chi2.sample(rng);
        z / (v / self.nu).sqrt()
    }
}

impl Continuous for StudentT {
    fn ln_pdf(&self, x: f64) -> f64 {
        let nu = self.nu;
        ln_gamma((nu + 1.0) / 2.0)
            - ln_gamma(nu / 2.0)
            - 0.5 * (nu * core::f64::consts::PI).ln()
            - (nu + 1.0) / 2.0 * (1.0 + x * x / nu).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        // Via the incomplete beta: F(x) = 1 − ½ I_{ν/(ν+x²)}(ν/2, 1/2) for x>0.
        if x == 0.0 {
            return 0.5;
        }
        let ib = reg_inc_beta(self.nu / 2.0, 0.5, self.nu / (self.nu + x * x));
        if x > 0.0 {
            1.0 - 0.5 * ib
        } else {
            0.5 * ib
        }
    }

    fn mean(&self) -> f64 {
        // Defined for ν > 1; the symmetric center otherwise.
        0.0
    }

    fn variance(&self) -> f64 {
        if self.nu > 2.0 {
            self.nu / (self.nu - 2.0)
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_nu() {
        assert!(StudentT::new(0.0).is_err());
        assert!(StudentT::new(-3.0).is_err());
    }

    #[test]
    fn nu_one_is_cauchy() {
        // t(1) is the standard Cauchy: F(1) = 3/4.
        let t = StudentT::new(1.0).unwrap();
        assert!((t.cdf(1.0) - 0.75).abs() < 1e-9);
        assert!((t.cdf(-1.0) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn known_critical_value() {
        // t(10): Pr[T ≤ 1.812] ≈ 0.95.
        let t = StudentT::new(10.0).unwrap();
        assert!((t.cdf(1.8124611228107335) - 0.95).abs() < 1e-6);
    }

    #[test]
    fn approaches_gaussian_for_large_nu() {
        let t = StudentT::new(1000.0).unwrap();
        let g = Gaussian::standard();
        for &x in &[-2.0, -0.5, 0.7, 1.5] {
            assert!((t.cdf(x) - g.cdf(x)).abs() < 2e-3, "x={x}");
        }
    }

    #[test]
    fn sample_variance_matches() {
        let t = StudentT::new(8.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(48);
        let n = 60_000;
        let xs: Vec<f64> = (0..n).map(|_| t.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 8.0 / 6.0).abs() < 0.1, "var={var}");
    }
}
