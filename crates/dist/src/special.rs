//! Special mathematical functions used by the distribution implementations.
//!
//! Implemented from standard published approximations so the reproduction
//! carries no external math dependencies:
//!
//! * [`erf`] / [`erfc`] — error function (Abramowitz & Stegun 7.1.26-style
//!   rational approximation refined to ~1e-12 via a continued-fraction tail),
//! * [`erf_inv`] — inverse error function (Giles 2012 polynomial, refined by
//!   two Newton steps),
//! * [`ln_gamma`] — log-gamma via the Lanczos approximation,
//! * [`standard_normal_cdf`] / [`standard_normal_quantile`].

#![allow(clippy::excessive_precision)] // published coefficients kept verbatim

/// The error function `erf(x) = (2/√π) ∫₀ˣ e^(−t²) dt`.
///
/// Accurate to roughly `1e-12` over the real line; exact at 0 and at ±∞.
///
/// # Examples
///
/// ```
/// let half = uncertain_dist::special::erf(0.4769362762044699);
/// assert!((half - 0.5).abs() < 1e-10);
/// ```
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Uses the W. J. Cody-style rational expansion in three ranges, which keeps
/// relative accuracy in the far tail (where `1 - erf(x)` would cancel).
///
/// # Examples
///
/// ```
/// assert!((uncertain_dist::special::erfc(0.0) - 1.0).abs() < 1e-15);
/// assert!(uncertain_dist::special::erfc(10.0) < 1e-40);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    // For moderate x the Maclaurin series for erf is accurate and 1 − erf
    // loses little precision.
    if x < 1.5 {
        return 1.0 - erf_series(x);
    }
    // Laplace continued fraction, evaluated backward from a fixed depth:
    // erfc(x) = e^(−x²)/√π · 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + ...))))
    let mut cf = 0.0_f64;
    for n in (1..=120u32).rev() {
        cf = (n as f64 / 2.0) / (x + cf);
    }
    (-x * x).exp() / core::f64::consts::PI.sqrt() / (x + cf)
}

/// Maclaurin series for `erf`, effective for |x| < 0.5.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    for n in 1..200 {
        let nf = n as f64;
        term *= -x2 / nf;
        let contribution = term / (2.0 * nf + 1.0);
        sum += contribution;
        if contribution.abs() < 1e-17 * sum.abs() {
            break;
        }
    }
    sum * 2.0 / core::f64::consts::PI.sqrt()
}

/// The inverse error function: `erf(erf_inv(p)) = p` for `p ∈ (−1, 1)`.
///
/// Uses the Giles (2012) single-polynomial initial guess, then polishes with
/// two Newton iterations to full double precision.
///
/// Returns `±∞` at `p = ±1` and `NaN` outside `[-1, 1]`.
///
/// # Examples
///
/// ```
/// use uncertain_dist::special::{erf, erf_inv};
/// let p = 0.731;
/// assert!((erf(erf_inv(p)) - p).abs() < 1e-12);
/// ```
pub fn erf_inv(p: f64) -> f64 {
    if !(-1.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    if p == -1.0 {
        return f64::NEG_INFINITY;
    }
    let w = -((1.0 - p) * (1.0 + p)).ln();
    let mut x = if w < 6.25 {
        let w = w - 3.125;
        let mut num = -3.6444120640178196996e-21;
        for &c in &[
            -1.685059138182016589e-19,
            1.2858480715256400167e-18,
            1.115787767802518096e-17,
            -1.333171662854620906e-16,
            2.0972767875968561637e-17,
            6.6376381343583238325e-15,
            -4.0545662729752068639e-14,
            -8.1519341976054721522e-14,
            2.6335093153082322977e-12,
            -1.2975133253453532498e-11,
            -5.4154120542946279317e-11,
            1.051212273321532285e-09,
            -4.1126339803469836976e-09,
            -2.9070369957882005086e-08,
            4.2347877827932403518e-07,
            -1.3654692000834678645e-06,
            -1.3882523362786468719e-05,
            0.0001867342080340571352,
            -0.00074070253416626697512,
            -0.0060336708714301490533,
            0.24015818242558961693,
            1.6536545626831027356,
        ] {
            num = num * w + c;
        }
        num * p
    } else if w < 16.0 {
        let w = w.sqrt() - 3.25;
        let mut num = 2.2137376921775787049e-09;
        for &c in &[
            9.0756561938885390979e-08,
            -2.7517406297064545428e-07,
            1.8239629214389227755e-08,
            1.5027403968909827627e-06,
            -4.013867526981545969e-06,
            2.9234449089955446044e-06,
            1.2475304481671778723e-05,
            -4.7318229009055733981e-05,
            6.8284851459573175448e-05,
            2.4031110387097893999e-05,
            -0.0003550375203628474796,
            0.00095328937973738049703,
            -0.0016882755560235047313,
            0.0024914420961078508066,
            -0.0037512085075692412107,
            0.005370914553590063617,
            1.0052589676941592334,
            3.0838856104922207635,
        ] {
            num = num * w + c;
        }
        num * p
    } else {
        let w = w.sqrt() - 5.0;
        let mut num = -2.7109920616438573243e-11;
        for &c in &[
            -2.5556418169965252055e-10,
            1.5076572693500548083e-09,
            -3.7894654401267369937e-09,
            7.6157012080783393804e-09,
            -1.4960026627149240478e-08,
            2.9147953450901080826e-08,
            -6.7711997758452339498e-08,
            2.2900482228026654717e-07,
            -9.9298272942317002539e-07,
            4.5260625972231537039e-06,
            -1.9681778105531670567e-05,
            7.5995277030017761139e-05,
            -0.00021503011930044477347,
            -0.00013871931833623122026,
            1.0103004648645343977,
            4.8499064014085844221,
        ] {
            num = num * w + c;
        }
        num * p
    };
    // Two Newton steps: f(x) = erf(x) - p, f'(x) = 2/√π e^(−x²).
    for _ in 0..2 {
        let err = erf(x) - p;
        let deriv = 2.0 / core::f64::consts::PI.sqrt() * (-x * x).exp();
        if deriv > 0.0 {
            x -= err / deriv;
        }
    }
    x
}

/// Natural log of the gamma function, via the Lanczos approximation (g = 7).
///
/// Accurate to ~1e-13 for positive arguments.
///
/// # Examples
///
/// ```
/// use uncertain_dist::special::ln_gamma;
/// // Γ(5) = 4! = 24
/// assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-10);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = core::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * core::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln(n choose k)` computed through [`ln_gamma`], stable for large `n`.
///
/// # Examples
///
/// ```
/// use uncertain_dist::special::ln_choose;
/// assert!((ln_choose(5, 2) - 10.0_f64.ln()).abs() < 1e-10);
/// ```
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// CDF of the standard normal distribution.
///
/// # Examples
///
/// ```
/// use uncertain_dist::special::standard_normal_cdf;
/// assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((standard_normal_cdf(1.959963984540054) - 0.975).abs() < 1e-9);
/// ```
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / core::f64::consts::SQRT_2)
}

/// Quantile (inverse CDF) of the standard normal distribution.
///
/// Returns `±∞` at `p ∈ {0, 1}` and `NaN` outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use uncertain_dist::special::standard_normal_quantile;
/// assert!((standard_normal_quantile(0.975) - 1.959963984540054).abs() < 1e-8);
/// ```
pub fn standard_normal_quantile(p: f64) -> f64 {
    core::f64::consts::SQRT_2 * erf_inv(2.0 * p - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-15);
        assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
        assert!((erf(2.0) - 0.9953222650189527).abs() < 1e-12);
        assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-12);
        assert!((erf(6.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(3) = 2.2090496998585441e-5
        assert!((erfc(3.0) - 2.2090496998585441e-5).abs() / 2.2090496998585441e-5 < 1e-10);
        // erfc(5) = 1.5374597944280349e-12 (relative accuracy matters here)
        assert!((erfc(5.0) - 1.5374597944280349e-12).abs() / 1.5374597944280349e-12 < 1e-8);
    }

    #[test]
    fn erf_inv_round_trip() {
        for &p in &[
            -0.999, -0.9, -0.5, -0.1, 0.0, 0.1, 0.5, 0.9, 0.999, 0.9999999,
        ] {
            let x = erf_inv(p);
            assert!(
                (erf(x) - p).abs() < 1e-11,
                "round trip failed at p={p}: erf({x}) = {}",
                erf(x)
            );
        }
    }

    #[test]
    fn erf_inv_edges() {
        assert_eq!(erf_inv(1.0), f64::INFINITY);
        assert_eq!(erf_inv(-1.0), f64::NEG_INFINITY);
        assert!(erf_inv(1.5).is_nan());
        assert!(erf_inv(-2.0).is_nan());
    }

    #[test]
    fn ln_gamma_factorials() {
        let mut fact = 1.0_f64;
        for n in 1..15_u32 {
            // Γ(n) = (n-1)!
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-9,
                "ln_gamma({n})"
            );
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - core::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_choose_matches_pascal() {
        assert!((ln_choose(10, 3).exp() - 120.0).abs() < 1e-8);
        assert!((ln_choose(0, 0).exp() - 1.0).abs() < 1e-12);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn normal_cdf_quantile_round_trip() {
        for &p in &[0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999] {
            let z = standard_normal_quantile(p);
            assert!((standard_normal_cdf(z) - p).abs() < 1e-10, "p={p}");
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &z in &[0.3, 1.1, 2.7] {
            assert!((standard_normal_cdf(z) + standard_normal_cdf(-z) - 1.0).abs() < 1e-12);
        }
    }
}

/// Modified Bessel function of the first kind, order 0: `I₀(x)`.
///
/// Abramowitz & Stegun 9.8.1/9.8.2 polynomial approximations
/// (absolute error < 2e-7 relative), sufficient for the Rician density
/// used by the GPS likelihood model.
///
/// # Examples
///
/// ```
/// use uncertain_dist::special::bessel_i0;
/// assert!((bessel_i0(0.0) - 1.0).abs() < 1e-12);
/// assert!((bessel_i0(1.0) - 1.2660658777520084).abs() < 1e-6);
/// ```
pub fn bessel_i0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 3.75 {
        let t = (ax / 3.75).powi(2);
        1.0 + t
            * (3.5156229
                + t * (3.0899424
                    + t * (1.2067492 + t * (0.2659732 + t * (0.0360768 + t * 0.0045813)))))
    } else {
        let t = 3.75 / ax;
        (ax.exp() / ax.sqrt())
            * (0.39894228
                + t * (0.01328592
                    + t * (0.00225319
                        + t * (-0.00157565
                            + t * (0.00916281
                                + t * (-0.02057706
                                    + t * (0.02635537 + t * (-0.01647633 + t * 0.00392377))))))))
    }
}

/// `ln I₀(x)` — numerically safe for large arguments where `I₀` overflows.
///
/// # Examples
///
/// ```
/// use uncertain_dist::special::{bessel_i0, ln_bessel_i0};
/// assert!((ln_bessel_i0(2.0) - bessel_i0(2.0).ln()).abs() < 1e-6);
/// // Does not overflow where bessel_i0 would:
/// assert!(ln_bessel_i0(1000.0).is_finite());
/// ```
pub fn ln_bessel_i0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 3.75 {
        bessel_i0(ax).ln()
    } else {
        let t = 3.75 / ax;
        let poly = 0.39894228
            + t * (0.01328592
                + t * (0.00225319
                    + t * (-0.00157565
                        + t * (0.00916281
                            + t * (-0.02057706
                                + t * (0.02635537 + t * (-0.01647633 + t * 0.00392377)))))));
        ax - 0.5 * ax.ln() + poly.ln()
    }
}

/// Modified Bessel function of the first kind, order 1: `I₁(x)`
/// (A&S 9.8.3/9.8.4).
///
/// # Examples
///
/// ```
/// use uncertain_dist::special::bessel_i1;
/// assert!(bessel_i1(0.0).abs() < 1e-12);
/// assert!((bessel_i1(1.0) - 0.5651591039924851).abs() < 1e-6);
/// ```
pub fn bessel_i1(x: f64) -> f64 {
    let ax = x.abs();
    let result = if ax < 3.75 {
        let t = (ax / 3.75).powi(2);
        ax * (0.5
            + t * (0.87890594
                + t * (0.51498869
                    + t * (0.15084934 + t * (0.02658733 + t * (0.00301532 + t * 0.00032411))))))
    } else {
        let t = 3.75 / ax;
        let poly = 0.39894228
            + t * (-0.03988024
                + t * (-0.00362018
                    + t * (0.00163801
                        + t * (-0.01031555
                            + t * (0.02282967
                                + t * (-0.02895312 + t * (0.01787654 - t * 0.00420059)))))));
        (ax.exp() / ax.sqrt()) * poly
    };
    if x < 0.0 {
        -result
    } else {
        result
    }
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x)/Γ(a)`.
///
/// Series expansion for `x < a + 1`, Lentz continued fraction otherwise
/// (Numerical Recipes §6.2). Used by the Gamma and Poisson CDFs.
///
/// # Examples
///
/// ```
/// use uncertain_dist::special::reg_lower_gamma;
/// // P(1, x) = 1 − e^(−x).
/// assert!((reg_lower_gamma(1.0, 2.0) - (1.0 - (-2.0_f64).exp())).abs() < 1e-10);
/// ```
///
/// # Panics
///
/// Panics if `a ≤ 0` or `x < 0`.
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive");
    assert!(x >= 0.0, "argument must be non-negative");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series: P(a,x) = e^{-x} x^a / Γ(a) Σ x^n / (a(a+1)…(a+n)).
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-16 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a,x); P = 1 − Q.
        let mut b = x + 1.0 - a;
        let mut c = 1e300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-16 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        1.0 - q
    }
}

/// Regularized incomplete beta `I_x(a, b)` (Numerical Recipes §6.4, Lentz
/// continued fraction). Used by the Beta and Student-t CDFs.
///
/// # Examples
///
/// ```
/// use uncertain_dist::special::reg_inc_beta;
/// // I_x(1,1) = x (the uniform CDF).
/// assert!((reg_inc_beta(1.0, 1.0, 0.3) - 0.3).abs() < 1e-12);
/// // Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
/// let lhs = reg_inc_beta(2.5, 1.5, 0.4);
/// let rhs = 1.0 - reg_inc_beta(1.5, 2.5, 0.6);
/// assert!((lhs - rhs).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `a ≤ 0`, `b ≤ 0`, or `x ∉ [0, 1]`.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "shapes must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction directly when it converges fast.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Lentz evaluation of the incomplete-beta continued fraction.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < 1e-300 {
        d = 1e-300;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = 1.0 + aa / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = 1.0 + aa / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

#[cfg(test)]
mod more_special_tests {
    use super::*;

    #[test]
    fn bessel_i0_known_values() {
        assert!((bessel_i0(0.5) - 1.0634833707413236).abs() < 1e-6);
        assert!((bessel_i0(5.0) - 27.239871823604442).abs() / 27.24 < 1e-6);
        assert_eq!(bessel_i0(-2.0), bessel_i0(2.0), "I0 is even");
    }

    #[test]
    fn bessel_i1_known_values() {
        assert!((bessel_i1(0.5) - 0.25789430539089545).abs() < 1e-6);
        assert!((bessel_i1(5.0) - 24.335642142450524).abs() / 24.34 < 1e-6);
        assert_eq!(bessel_i1(-2.0), -bessel_i1(2.0), "I1 is odd");
    }

    #[test]
    fn ln_bessel_large_argument() {
        // Asymptotic: ln I0(x) ≈ x − ½ln(2πx).
        let x = 500.0;
        let expect = x - 0.5 * (2.0 * core::f64::consts::PI * x).ln();
        assert!((ln_bessel_i0(x) - expect).abs() < 1e-3);
    }

    #[test]
    fn reg_gamma_known_values() {
        // P(0.5, x) = erf(√x).
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!(
                (reg_lower_gamma(0.5, x) - erf(x.sqrt())).abs() < 1e-10,
                "x={x}"
            );
        }
        assert_eq!(reg_lower_gamma(2.0, 0.0), 0.0);
        assert!((reg_lower_gamma(3.0, 1e3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reg_gamma_monotone() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.2;
            let p = reg_lower_gamma(2.5, x);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn inc_beta_matches_binomial_identity() {
        // I_p(k, n−k+1) = Pr[Binomial(n,p) ≥ k].
        let (n, k, p) = (10u64, 4u64, 0.35_f64);
        let direct: f64 = (k..=n)
            .map(|i| (ln_choose(n, i) + i as f64 * p.ln() + (n - i) as f64 * (1.0 - p).ln()).exp())
            .sum();
        let via_beta = reg_inc_beta(k as f64, (n - k + 1) as f64, p);
        assert!((direct - via_beta).abs() < 1e-10, "{direct} vs {via_beta}");
    }

    #[test]
    fn inc_beta_edges() {
        assert_eq!(reg_inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(reg_inc_beta(2.0, 3.0, 1.0), 1.0);
    }
}
