//! Exponential distribution.

use crate::column::{self, fast_ln};
use crate::{Continuous, Distribution, ParamError};
use rand::{Rng, RngCore};

/// Exponential distribution with rate `λ`: `f(x) = λ·e^(−λx)` for `x ≥ 0`.
///
/// Used in the test suite as an asymmetric, heavy-ish-tailed stress case for
/// the `Uncertain<T>` operators and in the sensor substrate for inter-event
/// timing.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Continuous, Exponential};
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let e = Exponential::new(2.0)?;
/// assert_eq!(e.mean(), 0.5);
/// assert!((e.cdf(e.quantile(0.3)) - 0.3).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `λ`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `rate` is finite and strictly positive.
    pub fn new(rate: f64) -> Result<Self, ParamError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(ParamError::new(format!(
                "exponential rate must be positive and finite, got {rate}"
            )));
        }
        Ok(Self { rate })
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution<f64> for Exponential {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Deterministic `fast_ln` keeps this bitwise-equal to the batched
        // `fill_column` pass (see the `column` module docs).
        let u: f64 = 1.0 - rng.gen::<f64>();
        -fast_ln(u) / self.rate
    }

    fn fill_column(&self, rngs: &mut [rand::rngs::SmallRng], out: &mut Vec<f64>) {
        column::draw_open01(rngs, out);
        column::exponential_transform(out, self.rate);
    }

    fn spec(&self) -> Option<crate::DistSpec> {
        Some(crate::DistSpec::Exponential { rate: self.rate })
    }
}

impl Continuous for Exponential {
    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.rate.ln() - self.rate * x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn support(&self) -> (f64, f64) {
        (0.0, f64::INFINITY)
    }

    fn quantile(&self, p: f64) -> f64 {
        if !(0.0..=1.0).contains(&p) {
            return f64::NAN;
        }
        -(1.0 - p).ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-2.0).is_err());
    }

    #[test]
    fn sample_mean() {
        let e = Exponential::new(0.25).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn memorylessness_spot_check() {
        // Pr[X > s+t | X > s] = Pr[X > t]
        let e = Exponential::new(1.5).unwrap();
        let tail = |x: f64| 1.0 - e.cdf(x);
        assert!((tail(2.0 + 1.0) / tail(2.0) - tail(1.0)).abs() < 1e-12);
    }

    #[test]
    fn density_integrates_to_one() {
        let e = Exponential::new(3.0).unwrap();
        let mut sum = 0.0;
        let dx = 1e-4;
        let mut x = 0.0;
        while x < 10.0 {
            sum += e.pdf(x) * dx;
            x += dx;
        }
        assert!((sum - 1.0).abs() < 1e-3, "integral={sum}");
    }
}
