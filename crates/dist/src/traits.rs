//! The core distribution traits: sampling functions, densities and CDFs.

use crate::spec::DistSpec;
use rand::RngCore;

/// A *sampling function* over values of type `T` (paper §3.2/§4.1).
///
/// This is the paper's chosen representation for arbitrary distributions: a
/// procedure that returns a fresh random draw on each invocation. Everything
/// in the `Uncertain<T>` runtime — leaf nodes, ancestral sampling, hypothesis
/// tests — is built on this trait.
///
/// Implementors must be `Send + Sync` so distributions can be shared across
/// threads inside the (immutable) Bayesian network.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Distribution, Uniform};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let u = Uniform::new(0.0, 1.0)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = u.sample(&mut rng);
/// assert!((0.0..1.0).contains(&x));
/// # Ok(())
/// # }
/// ```
pub trait Distribution<T>: Send + Sync {
    /// Draws one sample from the distribution using `rng` as the randomness
    /// source.
    fn sample(&self, rng: &mut dyn RngCore) -> T;

    /// Draws `n` samples into a fresh `Vec`.
    ///
    /// A convenience over repeated [`Distribution::sample`] calls; the
    /// default implementation is almost always sufficient.
    fn sample_n(&self, rng: &mut dyn RngCore, n: usize) -> Vec<T> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Fills one *column* of samples: `out[i]` is drawn from `rngs[i]`,
    /// exactly as one [`Distribution::sample`] call per index would.
    ///
    /// This is the batched (structure-of-arrays) entry point the columnar
    /// kernel uses for leaf fills. The contract is strict so callers can
    /// rely on bitwise reproducibility:
    ///
    /// * `out` is cleared and then holds exactly `rngs.len()` values;
    /// * element `i` consumes draws **only** from `rngs[i]`, in the same
    ///   order as a scalar `sample(&mut rngs[i])` call, and leaves
    ///   `rngs[i]` in the same state afterwards;
    /// * the produced values are **bitwise identical** to the scalar
    ///   per-index path.
    ///
    /// The default implementation is the scalar-per-index loop. Hot
    /// distributions override it with hand-vectorized column passes (see
    /// [`column`](crate::column)) that preserve the contract.
    fn fill_column(&self, rngs: &mut [rand::rngs::SmallRng], out: &mut Vec<T>) {
        out.clear();
        out.reserve(rngs.len());
        for rng in rngs.iter_mut() {
            out.push(self.sample(rng));
        }
    }

    /// The canonical shape-plus-parameters description of this
    /// distribution, when it has one (see [`DistSpec`]).
    ///
    /// `Some` is a serializability contract: reconstructing the
    /// distribution from the returned spec (via its public constructor)
    /// must yield a sampling function that draws **bitwise identical**
    /// values from the same RNG stream. Distributions whose sampling
    /// behavior is not a pure function of a few scalar parameters
    /// (empirical pools, mixtures, closures) keep the default `None` and
    /// are simply not expressible on the wire.
    fn spec(&self) -> Option<DistSpec> {
        None
    }
}

/// Blanket impl so `&D`, `Box<D>` and `Arc<D>` are themselves distributions.
impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample(&self, rng: &mut dyn RngCore) -> T {
        (**self).sample(rng)
    }
    fn fill_column(&self, rngs: &mut [rand::rngs::SmallRng], out: &mut Vec<T>) {
        (**self).fill_column(rngs, out)
    }
    fn spec(&self) -> Option<DistSpec> {
        (**self).spec()
    }
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for Box<D> {
    fn sample(&self, rng: &mut dyn RngCore) -> T {
        (**self).sample(rng)
    }
    fn fill_column(&self, rngs: &mut [rand::rngs::SmallRng], out: &mut Vec<T>) {
        (**self).fill_column(rngs, out)
    }
    fn spec(&self) -> Option<DistSpec> {
        (**self).spec()
    }
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for std::sync::Arc<D> {
    fn sample(&self, rng: &mut dyn RngCore) -> T {
        (**self).sample(rng)
    }
    fn fill_column(&self, rngs: &mut [rand::rngs::SmallRng], out: &mut Vec<T>) {
        (**self).fill_column(rngs, out)
    }
    fn spec(&self) -> Option<DistSpec> {
        (**self).spec()
    }
}

/// A continuous real-valued distribution with a density.
///
/// The case studies need densities as *likelihood functions* (BayesLife's
/// posterior test, the GPS walking-speed prior) and CDFs for analytic checks
/// in the test suite.
pub trait Continuous: Distribution<f64> {
    /// Natural log of the probability density at `x`.
    ///
    /// Returns `-∞` outside the support.
    fn ln_pdf(&self, x: f64) -> f64;

    /// Probability density at `x`; zero outside the support.
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    /// Cumulative distribution function `Pr[X ≤ x]`.
    fn cdf(&self, x: f64) -> f64;

    /// Mean of the distribution.
    fn mean(&self) -> f64;

    /// Variance of the distribution.
    fn variance(&self) -> f64;

    /// Standard deviation (square root of [`Continuous::variance`]).
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Support of the distribution as a closed interval (may be infinite).
    fn support(&self) -> (f64, f64) {
        (f64::NEG_INFINITY, f64::INFINITY)
    }

    /// Quantile function (inverse CDF) at probability `p ∈ [0, 1]`.
    ///
    /// The default implementation inverts [`Continuous::cdf`] by bisection
    /// over the support, expanding unbounded supports geometrically. Returns
    /// `NaN` for `p` outside `[0, 1]`.
    fn quantile(&self, p: f64) -> f64 {
        if !(0.0..=1.0).contains(&p) {
            return f64::NAN;
        }
        let (mut lo, mut hi) = self.support();
        if p == 0.0 {
            return lo;
        }
        if p == 1.0 {
            return hi;
        }
        // Establish finite brackets.
        if lo.is_infinite() {
            lo = self.mean() - 1.0;
            let mut step = 1.0;
            while self.cdf(lo) > p {
                lo -= step;
                step *= 2.0;
                if step > 1e300 {
                    return f64::NEG_INFINITY;
                }
            }
        }
        if hi.is_infinite() {
            hi = self.mean() + 1.0;
            let mut step = 1.0;
            while self.cdf(hi) < p {
                hi += step;
                step *= 2.0;
                if step > 1e300 {
                    return f64::INFINITY;
                }
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo).abs() < 1e-12 * (1.0 + hi.abs()) {
                break;
            }
        }
        0.5 * (lo + hi)
    }
}

/// A discrete distribution over integer counts with a probability mass
/// function.
pub trait Discrete: Distribution<u64> {
    /// Natural log of the probability mass at `k`.
    fn ln_pmf(&self, k: u64) -> f64;

    /// Probability mass at `k`.
    fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// Cumulative mass `Pr[X ≤ k]`.
    fn cdf(&self, k: u64) -> f64;

    /// Mean of the distribution.
    fn mean(&self) -> f64;

    /// Variance of the distribution.
    fn variance(&self) -> f64;
}

/// Wraps a closure as a [`Distribution`] — the literal "sampling function"
/// of the paper, for cases where no named distribution fits.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Distribution, SamplingFn};
/// use rand::{Rng, SeedableRng};
///
/// // A die roll as a bare sampling function.
/// let die = SamplingFn::new(|rng| rng.gen_range(1..=6_u32));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let roll = die.sample(&mut rng);
/// assert!((1..=6).contains(&roll));
/// ```
pub struct SamplingFn<T, F>
where
    F: Fn(&mut dyn RngCore) -> T + Send + Sync,
{
    f: F,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T, F> SamplingFn<T, F>
where
    F: Fn(&mut dyn RngCore) -> T + Send + Sync,
{
    /// Wraps `f` as a distribution.
    pub fn new(f: F) -> Self {
        Self {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T, F> Distribution<T> for SamplingFn<T, F>
where
    F: Fn(&mut dyn RngCore) -> T + Send + Sync,
{
    fn sample(&self, rng: &mut dyn RngCore) -> T {
        (self.f)(rng)
    }
}

impl<T, F> std::fmt::Debug for SamplingFn<T, F>
where
    F: Fn(&mut dyn RngCore) -> T + Send + Sync,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SamplingFn").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Uniform;
    use rand::SeedableRng;

    #[test]
    fn sample_n_length_and_determinism() {
        let u = Uniform::new(0.0, 1.0).unwrap();
        let mut a = rand::rngs::StdRng::seed_from_u64(42);
        let mut b = rand::rngs::StdRng::seed_from_u64(42);
        let xs = u.sample_n(&mut a, 16);
        let ys = u.sample_n(&mut b, 16);
        assert_eq!(xs.len(), 16);
        assert_eq!(xs, ys, "same seed must yield the same stream");
    }

    #[test]
    #[allow(clippy::needless_borrows_for_generic_args)] // the borrow IS the point
    fn references_and_boxes_are_distributions() {
        fn takes_dist<D: Distribution<f64>>(d: D, rng: &mut dyn RngCore) -> f64 {
            d.sample(rng)
        }
        let u = Uniform::new(0.0, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = takes_dist(&u, &mut rng);
        let boxed: Box<dyn Distribution<f64>> = Box::new(u);
        let _ = takes_dist(&*boxed, &mut rng);
        let _ = takes_dist(boxed, &mut rng);
    }

    #[test]
    fn default_quantile_inverts_cdf() {
        let u = Uniform::new(2.0, 6.0).unwrap();
        for &p in &[0.1, 0.25, 0.5, 0.9] {
            let q = u.quantile(p);
            assert!((u.cdf(q) - p).abs() < 1e-9, "p={p} q={q}");
        }
        assert!(u.quantile(-0.1).is_nan());
        assert!(u.quantile(1.1).is_nan());
    }
}
