//! Continuous uniform distribution on `[low, high)`.

use crate::{Continuous, Distribution, ParamError};
use rand::{Rng, RngCore};

/// Continuous uniform distribution on the half-open interval `[low, high)`.
///
/// A pseudo-random number generator *is* a sampling function for the uniform
/// distribution (paper §4.1); this type is the typed wrapper around it.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Continuous, Uniform};
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let u = Uniform::new(-1.0, 3.0)?;
/// assert_eq!(u.mean(), 1.0);
/// assert!((u.cdf(0.0) - 0.25).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[low, high)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `low >= high` or either bound is not finite.
    pub fn new(low: f64, high: f64) -> Result<Self, ParamError> {
        if !low.is_finite() || !high.is_finite() {
            return Err(ParamError::new(format!(
                "uniform bounds must be finite, got [{low}, {high})"
            )));
        }
        if low >= high {
            return Err(ParamError::new(format!(
                "uniform requires low < high, got [{low}, {high})"
            )));
        }
        Ok(Self { low, high })
    }

    /// The standard uniform distribution on `[0, 1)`.
    pub fn standard() -> Self {
        Self {
            low: 0.0,
            high: 1.0,
        }
    }

    /// Lower bound of the support.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper bound of the support.
    pub fn high(&self) -> f64 {
        self.high
    }
}

impl Distribution<f64> for Uniform {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.low + (self.high - self.low) * rng.gen::<f64>()
    }

    fn fill_column(&self, rngs: &mut [rand::rngs::SmallRng], out: &mut Vec<f64>) {
        // Same affine map as `sample`, but monomorphic over `SmallRng` so
        // the u64 → f64 draw and the affine transform fuse into one
        // inlined loop (the scalar path pays a virtual `next_u64` and a
        // `dyn Fn` call per element).
        out.clear();
        out.extend(
            rngs.iter_mut()
                .map(|rng| self.low + (self.high - self.low) * rng.gen::<f64>()),
        );
    }

    fn spec(&self) -> Option<crate::DistSpec> {
        Some(crate::DistSpec::Uniform {
            low: self.low,
            high: self.high,
        })
    }
}

impl Continuous for Uniform {
    fn ln_pdf(&self, x: f64) -> f64 {
        if x >= self.low && x < self.high {
            -(self.high - self.low).ln()
        } else {
            f64::NEG_INFINITY
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.low {
            0.0
        } else if x >= self.high {
            1.0
        } else {
            (x - self.low) / (self.high - self.low)
        }
    }

    fn mean(&self) -> f64 {
        0.5 * (self.low + self.high)
    }

    fn variance(&self) -> f64 {
        let w = self.high - self.low;
        w * w / 12.0
    }

    fn support(&self) -> (f64, f64) {
        (self.low, self.high)
    }

    fn quantile(&self, p: f64) -> f64 {
        if !(0.0..=1.0).contains(&p) {
            return f64::NAN;
        }
        self.low + p * (self.high - self.low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_bounds() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NAN, 1.0).is_err());
        assert!(Uniform::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn samples_stay_in_support() {
        let u = Uniform::new(-2.0, 5.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = u.sample(&mut rng);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn sample_mean_matches_analytic() {
        let u = Uniform::new(0.0, 10.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| u.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn pdf_and_cdf() {
        let u = Uniform::new(0.0, 4.0).unwrap();
        assert!((u.pdf(2.0) - 0.25).abs() < 1e-12);
        assert_eq!(u.pdf(-1.0), 0.0);
        assert_eq!(u.pdf(4.5), 0.0);
        assert_eq!(u.cdf(-1.0), 0.0);
        assert_eq!(u.cdf(9.0), 1.0);
        assert!((u.cdf(1.0) - 0.25).abs() < 1e-12);
        assert!((u.variance() - 16.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_linear() {
        let u = Uniform::new(2.0, 4.0).unwrap();
        assert!((u.quantile(0.5) - 3.0).abs() < 1e-12);
        assert!((u.quantile(0.0) - 2.0).abs() < 1e-12);
        assert!((u.quantile(1.0) - 4.0).abs() < 1e-12);
    }
}
