//! Gamma distribution.

use crate::special::{ln_gamma, reg_lower_gamma};
use crate::{Continuous, Distribution, ParamError};
use rand::{Rng, RngCore};

/// Gamma distribution with shape `k` and scale `θ`:
/// `f(x) = x^(k−1) e^(−x/θ) / (Γ(k) θ^k)` for `x > 0`.
///
/// Sampled by Marsaglia & Tsang's squeeze method (2000), the standard
/// rejection scheme; shapes below 1 use the boost
/// `Gamma(k) = Gamma(k+1)·U^(1/k)`. Used as a building block for the Beta
/// and Student-t distributions and as a positive-support prior.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Continuous, Gamma};
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let g = Gamma::new(3.0, 2.0)?;
/// assert_eq!(g.mean(), 6.0);
/// assert_eq!(g.variance(), 12.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a Gamma with the given shape and scale.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless both parameters are positive and
    /// finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self, ParamError> {
        for (name, v) in [("shape", shape), ("scale", scale)] {
            if v <= 0.0 || !v.is_finite() {
                return Err(ParamError::new(format!(
                    "gamma {name} must be positive and finite, got {v}"
                )));
            }
        }
        Ok(Self { shape, scale })
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Marsaglia–Tsang draw with unit scale, valid for `shape ≥ 1`.
    fn draw_unit(shape: f64, rng: &mut dyn RngCore) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            // One standard normal via Box–Muller.
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            let x = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen();
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Distribution<f64> for Gamma {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        if self.shape >= 1.0 {
            Self::draw_unit(self.shape, rng) * self.scale
        } else {
            // Boost: Gamma(k) = Gamma(k+1) · U^(1/k).
            let g = Self::draw_unit(self.shape + 1.0, rng);
            let u: f64 = 1.0 - rng.gen::<f64>();
            g * u.powf(1.0 / self.shape) * self.scale
        }
    }
}

impl Continuous for Gamma {
    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        (self.shape - 1.0) * x.ln()
            - x / self.scale
            - ln_gamma(self.shape)
            - self.shape * self.scale.ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            reg_lower_gamma(self.shape, x / self.scale)
        }
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    fn support(&self) -> (f64, f64) {
        (0.0, f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_params() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        // Gamma(1, θ) ≡ Exponential(1/θ): compare CDFs.
        let g = Gamma::new(1.0, 2.0).unwrap();
        for &x in &[0.1, 0.5, 1.0, 3.0] {
            let expect = 1.0 - (-x / 2.0_f64).exp();
            assert!((g.cdf(x) - expect).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn sample_moments_large_shape() {
        let g = Gamma::new(4.0, 1.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 6.0).abs() < 0.1, "mean={mean}");
        assert!((var - 9.0).abs() < 0.4, "var={var}");
    }

    #[test]
    fn sample_moments_small_shape() {
        let g = Gamma::new(0.5, 2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn samples_positive() {
        let g = Gamma::new(0.3, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        for _ in 0..2000 {
            assert!(g.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let g = Gamma::new(2.5, 0.8).unwrap();
        for &p in &[0.05, 0.3, 0.5, 0.8, 0.95] {
            let q = g.quantile(p);
            assert!((g.cdf(q) - p).abs() < 1e-8, "p={p}");
        }
    }

    #[test]
    fn empirical_cdf_matches_analytic() {
        let g = Gamma::new(3.0, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let n = 40_000;
        let below = (0..n).filter(|_| g.sample(&mut rng) <= 2.0).count() as f64 / n as f64;
        assert!(
            (below - g.cdf(2.0)).abs() < 0.01,
            "{below} vs {}",
            g.cdf(2.0)
        );
    }
}
