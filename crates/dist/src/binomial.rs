//! Binomial distribution.

use crate::special::ln_choose;
use crate::{Discrete, Distribution, ParamError};
use rand::{Rng, RngCore};

/// Binomial distribution: number of successes in `n` Bernoulli(`p`) trials.
///
/// Used by the hypothesis-test validation suite (the count of `true`
/// samples from an `Uncertain<bool>` is binomial) and for analytic
/// cross-checks of the SPRT error bounds.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Binomial, Discrete};
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let b = Binomial::new(10, 0.5)?;
/// assert_eq!(b.mean(), 5.0);
/// assert!((b.pmf(5) - 0.24609375).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution over `n` trials with success
    /// probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `p ∈ [0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self, ParamError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(ParamError::new(format!(
                "binomial probability must be in [0,1], got {p}"
            )));
        }
        Ok(Self { n, p })
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.n
    }

    /// Per-trial success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Distribution<u64> for Binomial {
    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        // Direct simulation; n is small in every use in this repository.
        (0..self.n).filter(|_| rng.gen::<f64>() < self.p).count() as u64
    }
}

impl Discrete for Binomial {
    fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_choose(self.n, k) + k as f64 * self.p.ln() + (self.n - k) as f64 * (1.0 - self.p).ln()
    }

    fn cdf(&self, k: u64) -> f64 {
        let k = k.min(self.n);
        (0..=k).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
    }

    fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(20, 0.3).unwrap();
        let total: f64 = (0..=20).map(|k| b.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-10, "total={total}");
    }

    #[test]
    fn degenerate_p() {
        let b0 = Binomial::new(5, 0.0).unwrap();
        assert_eq!(b0.pmf(0), 1.0);
        assert_eq!(b0.pmf(1), 0.0);
        let b1 = Binomial::new(5, 1.0).unwrap();
        assert_eq!(b1.pmf(5), 1.0);
        assert_eq!(b1.pmf(4), 0.0);
    }

    #[test]
    fn sample_within_range_and_mean() {
        let b = Binomial::new(40, 0.25).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let n = 20_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let k = b.sample(&mut rng);
            assert!(k <= 40);
            sum += k;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn cdf_monotone() {
        let b = Binomial::new(15, 0.6).unwrap();
        let mut prev = 0.0;
        for k in 0..=15 {
            let c = b.cdf(k);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!((b.cdf(15) - 1.0).abs() < 1e-9);
    }
}
