//! Columnar (SoA) sampling substrate: deterministic transcendental
//! kernels and the unrolled column passes behind
//! [`Distribution::fill_column`](crate::Distribution::fill_column).
//!
//! # Why the math lives here and not in libm
//!
//! The `Uncertain<T>` runtime promises that every execution path — tree
//! walk, compiled closure plan, columnar kernel, any thread count — draws
//! **bitwise identical** sample streams. A vectorized leaf fill can only
//! keep that promise if the scalar path and the column path perform the
//! *same IEEE-754 operations in the same order per element*. `f64::ln` and
//! `f64::cos` are opaque libm calls: they cannot be inlined into a column
//! loop the autovectorizer can work on, and their exact bit patterns vary
//! across libm implementations. So the sampling transforms use the
//! polynomial kernels below — [`fast_ln`] and [`fast_cos_2pi`] — from
//! *both* the scalar `sample` path and the batched `fill_column` path.
//! They are straight-line `f64` arithmetic (plus exact bit manipulation),
//! which makes the streams portable across platforms and lets the column
//! passes vectorize.
//!
//! # The lane/tail rule
//!
//! Column passes process elements in explicit 4-lane unrolled groups with
//! a scalar tail. Every lane applies exactly the per-element operation
//! sequence of the scalar path — unrolling changes *scheduling*, never the
//! per-element dataflow — so results are bitwise identical for any batch
//! length, including lengths that are not a multiple of the lane width.
//!
//! # The per-index RNG contract
//!
//! `fill_column` draws each element's uniforms from that element's own
//! RNG, in exactly the call order of repeated scalar `sample` calls, and
//! leaves each RNG in the same state. Draws stay serial per index; only
//! the *transform* of the drawn uniforms is batched.
//!
//! # SIMD dispatch
//!
//! On `x86_64` the column passes are compiled twice: once for the baseline
//! target and once under `#[target_feature(enable = "avx2")]`, selected at
//! runtime. Both compilations execute identical IEEE-754 operations (Rust
//! never contracts `a * b + c` into a fused multiply-add on its own), so
//! the selected path never changes results — only throughput.

use rand::rngs::SmallRng;
use rand::Rng;

// ---------------------------------------------------------------------------
// Deterministic transcendental kernels
// ---------------------------------------------------------------------------

// Written out past f64 precision so the hi/lo split documents the exact
// decomposition; the compiler rounds each to the intended nearest f64.
#[allow(clippy::excessive_precision)]
const LN2_HI: f64 = 6.931_471_803_691_238_164_90e-1;
#[allow(clippy::excessive_precision)]
const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;
/// 2^52: the magic constant for exact small-integer ↔ f64 bit tricks.
const EXP_MAGIC: f64 = 4_503_599_627_370_496.0;

/// Natural log of a **positive, normal** `f64`, accurate to < 5e-16
/// relative error over the sampling domain `(0, 1]`.
///
/// Decomposes `x = 2^e · m` with `m ∈ [√½, √2)`, then evaluates
/// `ln m = 2 atanh(z)` with `z = (m−1)/(m+1)` by its odd series. Every
/// step is either exact bit manipulation or straight-line `f64`
/// arithmetic, so the function is deterministic across platforms and
/// vectorizes when inlined into a column pass. Callers feed it uniforms
/// in `(0, 1]`; subnormal, zero, negative, and non-finite inputs are
/// outside its contract.
#[inline(always)]
pub fn fast_ln(x: f64) -> f64 {
    let bits = x.to_bits();
    // Biased exponent via the 2^52 magic-number trick: stays in the SIMD
    // integer/float domain (no u64 → f64 value conversion, which would
    // block AVX2 vectorization).
    let eb = bits >> 52;
    let ef = f64::from_bits(0x4330_0000_0000_0000 | eb) - (EXP_MAGIC + 1023.0);
    let m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
    let big = m > std::f64::consts::SQRT_2;
    let m = if big { 0.5 * m } else { m };
    let ef = if big { ef + 1.0 } else { ef };
    let z = (m - 1.0) / (m + 1.0);
    let z2 = z * z;
    // atanh series: z·(1 + z²/3 + z⁴/5 + …); |z| ≤ √2−1 ≈ 0.172 so the
    // truncated tail is ≪ 1 ulp.
    let p = 1.0 / 23.0;
    let p = p * z2 + 1.0 / 21.0;
    let p = p * z2 + 1.0 / 19.0;
    let p = p * z2 + 1.0 / 17.0;
    let p = p * z2 + 1.0 / 15.0;
    let p = p * z2 + 1.0 / 13.0;
    let p = p * z2 + 1.0 / 11.0;
    let p = p * z2 + 1.0 / 9.0;
    let p = p * z2 + 1.0 / 7.0;
    let p = p * z2 + 1.0 / 5.0;
    let p = p * z2 + 1.0 / 3.0;
    let p = p * z2 + 1.0;
    ef * LN2_HI + (2.0 * z * p + ef * LN2_LO)
}

/// `cos(2π·u)` for `u ∈ [0, 1)`, accurate to < 1e-15 absolute error.
///
/// Because `u` is a 53-bit binary fraction, range reduction is **exact**:
/// `q = round(2u) ∈ {0, 1, 2}` and `r = u − q/2` lose no bits, leaving
/// `|2πr| ≤ π/2` for a single even polynomial with the sign `(−1)^q`.
/// The sign is selected with float arithmetic (`1 − 2·(q mod 2)`), again
/// to stay vectorizable; multiplying by `±1.0` is exact.
#[inline(always)]
pub fn fast_cos_2pi(u: f64) -> f64 {
    let q = (2.0 * u + 0.5).floor();
    let r = u - 0.5 * q;
    let y = (2.0 * std::f64::consts::PI) * r;
    let x = y * y;
    // cos(y) Taylor coefficients 1/(2k)!; |y| ≤ π/2 so the x^10 tail is
    // below 1e-15.
    #[allow(clippy::excessive_precision)]
    const C: [f64; 11] = [
        1.0,
        -0.5,
        4.166_666_666_666_666_4e-2,
        -1.388_888_888_888_888_9e-3,
        2.480_158_730_158_730_2e-5,
        -2.755_731_922_398_589_3e-7,
        2.087_675_698_786_81e-9,
        -1.147_074_559_772_972_5e-11,
        4.779_477_332_387_385e-14,
        -1.561_920_696_858_622_5e-16,
        4.110_317_623_312_165e-19,
    ];
    let mut cp = C[10];
    let mut k = 9i32;
    while k >= 0 {
        cp = cp * x + C[k as usize];
        k -= 1;
    }
    let qm = q - 2.0 * (0.5 * q).floor();
    let sign = 1.0 - 2.0 * qm;
    cp * sign
}

// ---------------------------------------------------------------------------
// Column passes (4-lane unrolled, scalar tail, runtime-dispatched SIMD)
// ---------------------------------------------------------------------------
//
// Each pass is compiled twice — baseline and `#[target_feature(enable =
// "avx2")]` — and selected at runtime. The AVX2 clone forces the *same*
// Rust body inline, so it performs identical IEEE-754 operations and stays
// bitwise-equal to the baseline; the target feature only licenses wider
// registers for the autovectorizer.

/// In place: `u1[i] ← mean + sd · √(−2 ln u1[i]) · cos(2π u2[i])` — the
/// Box–Muller transform over already-drawn uniform columns.
pub(crate) fn gaussian_transform(u1: &mut [f64], u2: &[f64], mean: f64, sd: f64) {
    #[inline(always)]
    fn body(u1: &mut [f64], u2: &[f64], mean: f64, sd: f64) {
        let n = u1.len().min(u2.len());
        let (u1, u2) = (&mut u1[..n], &u2[..n]);
        #[inline(always)]
        fn one(a: f64, b: f64, mean: f64, sd: f64) -> f64 {
            mean + sd * ((-2.0 * fast_ln(a)).sqrt() * fast_cos_2pi(b))
        }
        let mut i = 0;
        while i + 4 <= n {
            let z0 = one(u1[i], u2[i], mean, sd);
            let z1 = one(u1[i + 1], u2[i + 1], mean, sd);
            let z2 = one(u1[i + 2], u2[i + 2], mean, sd);
            let z3 = one(u1[i + 3], u2[i + 3], mean, sd);
            u1[i] = z0;
            u1[i + 1] = z1;
            u1[i + 2] = z2;
            u1[i + 3] = z3;
            i += 4;
        }
        while i < n {
            u1[i] = one(u1[i], u2[i], mean, sd);
            i += 1;
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        #[target_feature(enable = "avx2")]
        unsafe fn body_avx2(u1: &mut [f64], u2: &[f64], mean: f64, sd: f64) {
            body(u1, u2, mean, sd)
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence just checked; the body is safe code.
            return unsafe { body_avx2(u1, u2, mean, sd) };
        }
    }
    body(u1, u2, mean, sd)
}

/// In place: `u[i] ← −ln(u[i]) / rate` — inverse-CDF exponential over a
/// drawn uniform column.
pub(crate) fn exponential_transform(u: &mut [f64], rate: f64) {
    #[inline(always)]
    fn body(u: &mut [f64], rate: f64) {
        let n = u.len();
        let mut i = 0;
        while i + 4 <= n {
            let z0 = -fast_ln(u[i]) / rate;
            let z1 = -fast_ln(u[i + 1]) / rate;
            let z2 = -fast_ln(u[i + 2]) / rate;
            let z3 = -fast_ln(u[i + 3]) / rate;
            u[i] = z0;
            u[i + 1] = z1;
            u[i + 2] = z2;
            u[i + 3] = z3;
            i += 4;
        }
        while i < n {
            u[i] = -fast_ln(u[i]) / rate;
            i += 1;
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        #[target_feature(enable = "avx2")]
        unsafe fn body_avx2(u: &mut [f64], rate: f64) {
            body(u, rate)
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence just checked; the body is safe code.
            return unsafe { body_avx2(u, rate) };
        }
    }
    body(u, rate)
}

/// In place: `u[i] ← scale · √(−2 ln u[i])` — inverse-CDF Rayleigh over a
/// drawn uniform column.
pub(crate) fn rayleigh_transform(u: &mut [f64], scale: f64) {
    #[inline(always)]
    fn body(u: &mut [f64], scale: f64) {
        let n = u.len();
        let mut i = 0;
        while i + 4 <= n {
            let z0 = scale * (-2.0 * fast_ln(u[i])).sqrt();
            let z1 = scale * (-2.0 * fast_ln(u[i + 1])).sqrt();
            let z2 = scale * (-2.0 * fast_ln(u[i + 2])).sqrt();
            let z3 = scale * (-2.0 * fast_ln(u[i + 3])).sqrt();
            u[i] = z0;
            u[i + 1] = z1;
            u[i + 2] = z2;
            u[i + 3] = z3;
            i += 4;
        }
        while i < n {
            u[i] = scale * (-2.0 * fast_ln(u[i])).sqrt();
            i += 1;
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        #[target_feature(enable = "avx2")]
        unsafe fn body_avx2(u: &mut [f64], scale: f64) {
            body(u, scale)
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence just checked; the body is safe code.
            return unsafe { body_avx2(u, scale) };
        }
    }
    body(u, scale)
}

// ---------------------------------------------------------------------------
// Draw helpers + scratch
// ---------------------------------------------------------------------------

/// Fills `out` with one `(0, 1]` uniform per RNG — the `1 − gen()` draw
/// shared by the log-based inverse-CDF samplers. Monomorphic over
/// [`SmallRng`], so the whole draw loop inlines (the closure path pays a
/// virtual `next_u64` per draw here).
pub(crate) fn draw_open01(rngs: &mut [SmallRng], out: &mut Vec<f64>) {
    out.clear();
    out.extend(rngs.iter_mut().map(|rng| 1.0 - rng.gen::<f64>()));
}

/// Per-call scratch column, thread-local so steady-state batch loops do
/// not allocate.
pub(crate) fn with_scratch<R>(n: usize, f: impl FnOnce(&mut Vec<f64>) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    SCRATCH.with(|cell| {
        // `fill_column` implementations never nest, but fall back to a
        // fresh buffer rather than panicking if one ever does.
        match cell.try_borrow_mut() {
            Ok(mut buf) => {
                buf.clear();
                buf.reserve(n);
                f(&mut buf)
            }
            Err(_) => f(&mut Vec::with_capacity(n)),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fast_ln_matches_libm_closely() {
        let mut worst = 0.0f64;
        for i in 1..=200_000u64 {
            let u = i as f64 / 200_000.0;
            let rel = ((fast_ln(u) - u.ln()) / u.ln().abs().max(1e-300)).abs();
            worst = worst.max(rel);
        }
        // extreme corners of the sampling domain
        for &u in &[
            f64::MIN_POSITIVE,
            2f64.powi(-53),
            1e-30,
            1.0 - f64::EPSILON,
            1.0,
        ] {
            let rel = (fast_ln(u) - u.ln()).abs() / u.ln().abs().max(1e-16);
            worst = worst.max(rel);
        }
        assert!(worst < 5e-15, "fast_ln max relative error {worst:e}");
    }

    #[test]
    fn fast_cos_2pi_matches_libm_closely() {
        let mut worst = 0.0f64;
        for i in 0..200_000u64 {
            let u = i as f64 / 200_000.0;
            let err = (fast_cos_2pi(u) - (2.0 * std::f64::consts::PI * u).cos()).abs();
            worst = worst.max(err);
        }
        assert!(worst < 5e-15, "fast_cos_2pi max absolute error {worst:e}");
    }

    #[test]
    fn transforms_match_scalar_formula_bitwise_any_length() {
        // Unrolled + dispatched passes must equal the scalar per-element
        // formula for lengths around the 4-lane width.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 31, 64, 100] {
            let mut rng = SmallRng::seed_from_u64(n as u64);
            let u1: Vec<f64> = (0..n).map(|_| 1.0 - rng.gen::<f64>()).collect();
            let u2: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();

            let mut g = u1.clone();
            gaussian_transform(&mut g, &u2, 1.5, 2.5);
            for i in 0..n {
                let want = 1.5 + 2.5 * ((-2.0 * fast_ln(u1[i])).sqrt() * fast_cos_2pi(u2[i]));
                assert_eq!(g[i].to_bits(), want.to_bits(), "gaussian n={n} i={i}");
            }

            let mut e = u1.clone();
            exponential_transform(&mut e, 0.7);
            for i in 0..n {
                let want = -fast_ln(u1[i]) / 0.7;
                assert_eq!(e[i].to_bits(), want.to_bits(), "exponential n={n} i={i}");
            }

            let mut r = u1.clone();
            rayleigh_transform(&mut r, 3.0);
            for i in 0..n {
                let want = 3.0 * (-2.0 * fast_ln(u1[i])).sqrt();
                assert_eq!(r[i].to_bits(), want.to_bits(), "rayleigh n={n} i={i}");
            }
        }
    }
}
