//! Gaussian (normal) distribution, sampled with the Box–Muller transform.

use crate::column::{self, fast_cos_2pi, fast_ln};
use crate::special::{standard_normal_cdf, standard_normal_quantile};
use crate::{Continuous, Distribution, ParamError};
use rand::{Rng, RngCore};

/// Gaussian (normal) distribution with mean `μ` and standard deviation `σ`.
///
/// The paper names the Box–Muller transform as the canonical sampling
/// function for the Gaussian (§4.1); that is exactly what
/// [`Distribution::sample`] implements here (the trigonometric variant, one
/// variate per call so that sampling is stateless and `Sync`).
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Continuous, Gaussian};
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let g = Gaussian::new(3.0, 2.0)?;
/// assert_eq!(g.mean(), 3.0);
/// assert_eq!(g.variance(), 4.0);
/// assert!((g.cdf(3.0) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    std_dev: f64,
}

impl Gaussian {
    /// Creates a Gaussian with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `std_dev` is not strictly positive or either
    /// parameter is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if !mean.is_finite() || !std_dev.is_finite() {
            return Err(ParamError::new(format!(
                "gaussian parameters must be finite, got N({mean}, {std_dev})"
            )));
        }
        if std_dev <= 0.0 {
            return Err(ParamError::new(format!(
                "gaussian std_dev must be positive, got {std_dev}"
            )));
        }
        Ok(Self { mean, std_dev })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// Draws one standard-normal variate via Box–Muller.
    ///
    /// Uses the crate's deterministic [`fast_ln`]/[`fast_cos_2pi`] kernels
    /// — the same straight-line arithmetic the batched
    /// [`Distribution::fill_column`] pass applies — so scalar and columnar
    /// sampling are bitwise identical (see the [`column`] module docs).
    fn standard_draw(rng: &mut dyn RngCore) -> f64 {
        // u1 ∈ (0, 1] to keep ln(u1) finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * fast_ln(u1)).sqrt() * fast_cos_2pi(u2)
    }
}

impl Distribution<f64> for Gaussian {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.mean + self.std_dev * Self::standard_draw(rng)
    }

    fn fill_column(&self, rngs: &mut [rand::rngs::SmallRng], out: &mut Vec<f64>) {
        // Per-index draws first (same order and count as `sample`), then
        // one vectorized Box–Muller pass over the uniform columns.
        column::draw_open01(rngs, out); // out[i] = u1 for index i
        column::with_scratch(rngs.len(), |u2| {
            u2.extend(rngs.iter_mut().map(|rng| rng.gen::<f64>()));
            column::gaussian_transform(out, u2, self.mean, self.std_dev);
        });
    }

    fn spec(&self) -> Option<crate::DistSpec> {
        Some(crate::DistSpec::Gaussian {
            mean: self.mean,
            std_dev: self.std_dev,
        })
    }
}

impl Continuous for Gaussian {
    fn ln_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        -0.5 * z * z - self.std_dev.ln() - 0.5 * (2.0 * core::f64::consts::PI).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        standard_normal_cdf((x - self.mean) / self.std_dev)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.std_dev * self.std_dev
    }

    fn std_dev(&self) -> f64 {
        self.std_dev
    }

    fn quantile(&self, p: f64) -> f64 {
        self.mean + self.std_dev * standard_normal_quantile(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_params() {
        assert!(Gaussian::new(0.0, 0.0).is_err());
        assert!(Gaussian::new(0.0, -1.0).is_err());
        assert!(Gaussian::new(f64::NAN, 1.0).is_err());
        assert!(Gaussian::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn sample_moments_match() {
        let g = Gaussian::new(5.0, 3.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean={mean}");
        assert!((var - 9.0).abs() < 0.25, "var={var}");
    }

    #[test]
    fn pdf_peak_at_mean() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let peak = 1.0 / (2.0 * core::f64::consts::PI).sqrt();
        assert!((g.pdf(0.0) - peak).abs() < 1e-12);
        assert!(g.pdf(0.0) > g.pdf(0.5));
        assert!(g.pdf(0.5) > g.pdf(1.5));
    }

    #[test]
    fn cdf_known_values() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        // Φ(1.96) ≈ 0.975
        assert!((g.cdf(1.959963984540054) - 0.975).abs() < 1e-9);
        assert!((g.cdf(-1.959963984540054) - 0.025).abs() < 1e-9);
    }

    #[test]
    fn quantile_round_trip() {
        let g = Gaussian::new(-2.0, 0.5).unwrap();
        for &p in &[0.01, 0.2, 0.5, 0.8, 0.99] {
            assert!((g.cdf(g.quantile(p)) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn within_one_sigma_fraction() {
        // ~68.3% of samples must fall within one σ.
        let g = Gaussian::new(0.0, 2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let n = 20_000;
        let inside = (0..n).filter(|_| g.sample(&mut rng).abs() <= 2.0).count() as f64 / n as f64;
        assert!((inside - 0.6827).abs() < 0.02, "inside={inside}");
    }
}
