//! Gaussian kernel density estimate over an empirical pool.

use crate::{Continuous, Distribution, Gaussian, ParamError};
use rand::{Rng, RngCore};

/// A Gaussian kernel density estimate: an empirical pool smoothed with a
/// Gaussian kernel.
///
/// The paper's §3.2 lists empirically derived error models (machine
/// learning, measurement) as one of the two ways expert developers identify
/// distributions. A KDE turns raw observed errors into a proper continuous
/// distribution with a density — which the Bayesian machinery (priors,
/// likelihood weighting) requires. Sampling is smoothed bootstrap: pick a
/// pool point, add kernel noise.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Continuous, KernelDensity};
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let observed = vec![1.0, 1.1, 0.9, 1.05, 0.98, 3.0];
/// let kde = KernelDensity::from_samples(&observed)?;
/// assert!(kde.pdf(1.0) > kde.pdf(2.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDensity {
    points: Vec<f64>,
    bandwidth: f64,
}

impl KernelDensity {
    /// Builds a KDE with an explicit bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `samples` is empty, contains non-finite
    /// values, or `bandwidth` is not strictly positive.
    pub fn new(samples: &[f64], bandwidth: f64) -> Result<Self, ParamError> {
        if samples.is_empty() {
            return Err(ParamError::new("kde needs at least one sample"));
        }
        if samples.iter().any(|x| !x.is_finite()) {
            return Err(ParamError::new("kde samples must be finite"));
        }
        if bandwidth <= 0.0 || !bandwidth.is_finite() {
            return Err(ParamError::new(format!(
                "kde bandwidth must be positive and finite, got {bandwidth}"
            )));
        }
        Ok(Self {
            points: samples.to_vec(),
            bandwidth,
        })
    }

    /// Builds a KDE choosing the bandwidth by Silverman's rule of thumb.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `samples` is empty, non-finite, or has zero
    /// spread (all values identical — use a point mass instead).
    pub fn from_samples(samples: &[f64]) -> Result<Self, ParamError> {
        if samples.is_empty() {
            return Err(ParamError::new("kde needs at least one sample"));
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n.max(2.0);
        let sd = var.sqrt();
        if sd == 0.0 {
            return Err(ParamError::new(
                "kde samples have zero spread; use PointMass instead",
            ));
        }
        let bandwidth = 1.06 * sd * n.powf(-0.2);
        Self::new(samples, bandwidth)
    }

    /// The smoothing bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of support points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether there are no support points (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

impl Distribution<f64> for KernelDensity {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let i = rng.gen_range(0..self.points.len());
        let kernel = Gaussian::new(self.points[i], self.bandwidth)
            .expect("bandwidth validated at construction");
        kernel.sample(rng)
    }
}

impl Continuous for KernelDensity {
    fn ln_pdf(&self, x: f64) -> f64 {
        self.pdf(x).ln()
    }

    fn pdf(&self, x: f64) -> f64 {
        let norm = 1.0
            / (self.points.len() as f64 * self.bandwidth * (2.0 * core::f64::consts::PI).sqrt());
        self.points
            .iter()
            .map(|&p| {
                let z = (x - p) / self.bandwidth;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            * norm
    }

    fn cdf(&self, x: f64) -> f64 {
        let n = self.points.len() as f64;
        self.points
            .iter()
            .map(|&p| crate::special::standard_normal_cdf((x - p) / self.bandwidth))
            .sum::<f64>()
            / n
    }

    fn mean(&self) -> f64 {
        self.points.iter().sum::<f64>() / self.points.len() as f64
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        let pool_var =
            self.points.iter().map(|x| (x - m).powi(2)).sum::<f64>() / self.points.len() as f64;
        pool_var + self.bandwidth * self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid() {
        assert!(KernelDensity::new(&[], 1.0).is_err());
        assert!(KernelDensity::new(&[1.0], 0.0).is_err());
        assert!(KernelDensity::new(&[f64::NAN], 1.0).is_err());
        assert!(KernelDensity::from_samples(&[2.0, 2.0, 2.0]).is_err());
    }

    #[test]
    fn density_integrates_to_one() {
        let kde = KernelDensity::from_samples(&[0.0, 1.0, 2.0, 1.5, 0.5]).unwrap();
        let mut total = 0.0;
        let dx = 0.001;
        let mut x = -10.0;
        while x < 12.0 {
            total += kde.pdf(x) * dx;
            x += dx;
        }
        assert!((total - 1.0).abs() < 1e-3, "total={total}");
    }

    #[test]
    fn cdf_limits() {
        let kde = KernelDensity::from_samples(&[0.0, 1.0, 5.0]).unwrap();
        assert!(kde.cdf(-100.0) < 1e-6);
        assert!(kde.cdf(100.0) > 1.0 - 1e-6);
    }

    #[test]
    fn sample_mean_near_pool_mean() {
        let kde = KernelDensity::from_samples(&[2.0, 4.0, 6.0, 8.0]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(27);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| kde.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn variance_includes_bandwidth() {
        let kde = KernelDensity::new(&[0.0, 10.0], 2.0).unwrap();
        // Pool variance = 25, plus bandwidth² = 4.
        assert!((kde.variance() - 29.0).abs() < 1e-12);
    }
}
