//! Probability-distribution substrate for the `Uncertain<T>` reproduction.
//!
//! The paper (Bornholt, Mytkowicz, McKinley — ASPLOS 2014, §3.2/§4.1)
//! represents every distribution as a *sampling function*: a no-argument
//! procedure that returns a fresh random draw on each invocation. This crate
//! provides that substrate from scratch:
//!
//! * the [`Distribution`] trait — a sampling function over an RNG,
//! * the [`Continuous`] and [`Discrete`] traits — densities, CDFs, moments
//!   and quantiles for the distributions that have them (needed by the
//!   Bayesian machinery in the case studies, e.g. BayesLife's likelihoods
//!   and the GPS walking-speed prior),
//! * concrete distributions: [`Uniform`], [`Gaussian`] (Box–Muller),
//!   [`Bernoulli`], [`Rayleigh`] (the paper's GPS posterior), [`Exponential`],
//!   [`Binomial`], [`Triangular`], [`LogNormal`], [`PointMass`],
//!   [`Empirical`] sample pools, [`Mixture`], [`Truncated`], [`Categorical`],
//!   and [`KernelDensity`] estimates.
//!
//! Everything is implemented in this repository — no external statistics
//! crates — so the reproduction is self-contained.
//!
//! # Examples
//!
//! ```
//! use uncertain_dist::{Distribution, Continuous, Gaussian};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), uncertain_dist::ParamError> {
//! let g = Gaussian::new(0.0, 1.0)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let x = g.sample(&mut rng);
//! assert!(x.is_finite());
//! assert!((g.cdf(0.0) - 0.5).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod column;
pub mod special;

mod bernoulli;
mod beta;
mod binomial;
mod categorical;
mod empirical;
mod error;
mod exponential;
mod gamma;
mod gaussian;
mod kde;
mod lognormal;
mod mixture;
mod point;
mod poisson;
mod rayleigh;
mod rician;
mod spec;
mod student_t;
mod traits;
mod triangular;
mod truncated;
mod uniform;

pub use bernoulli::Bernoulli;
pub use beta::Beta;
pub use binomial::Binomial;
pub use categorical::Categorical;
pub use column::{fast_cos_2pi, fast_ln};
pub use empirical::Empirical;
pub use error::ParamError;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use gaussian::Gaussian;
pub use kde::KernelDensity;
pub use lognormal::LogNormal;
pub use mixture::Mixture;
pub use point::PointMass;
pub use poisson::Poisson;
pub use rayleigh::Rayleigh;
pub use rician::Rician;
pub use spec::DistSpec;
pub use student_t::StudentT;
pub use traits::{Continuous, Discrete, Distribution, SamplingFn};
pub use triangular::Triangular;
pub use truncated::Truncated;
pub use uniform::Uniform;
