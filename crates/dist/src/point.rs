//! Point-mass (degenerate) distribution.

use crate::Distribution;
use rand::RngCore;

/// A point-mass distribution: every sample is the same value.
///
/// This is the paper's `Pointmass :: T → U<T>` operator (Table 1): scalars
/// are coerced to uncertain values by wrapping them in a point mass, which
/// is how `Distance / dt` mixes an uncertain numerator with a concrete
/// denominator.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Distribution, PointMass};
/// use rand::SeedableRng;
///
/// let five = PointMass::new(5);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert_eq!(five.sample(&mut rng), 5);
/// assert_eq!(five.sample(&mut rng), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PointMass<T> {
    value: T,
}

impl<T> PointMass<T> {
    /// Creates a point mass at `value`.
    pub fn new(value: T) -> Self {
        Self { value }
    }

    /// The single supported value.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// Consumes the distribution and returns the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T: Clone + Send + Sync> Distribution<T> for PointMass<T> {
    fn sample(&self, _rng: &mut dyn RngCore) -> T {
        self.value.clone()
    }

    fn fill_column(&self, rngs: &mut [rand::rngs::SmallRng], out: &mut Vec<T>) {
        // A point mass consumes no randomness; the column is just clones.
        out.clear();
        out.resize(rngs.len(), self.value.clone());
    }
}

impl<T> From<T> for PointMass<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn always_same_value() {
        let p = PointMass::new("label".to_string());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(p.sample(&mut rng), "label");
        }
    }

    #[test]
    fn accessors() {
        let p = PointMass::from(3.5);
        assert_eq!(*p.value(), 3.5);
        assert_eq!(p.into_inner(), 3.5);
    }
}
