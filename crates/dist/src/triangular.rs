//! Triangular distribution.

use crate::{Continuous, Distribution, ParamError};
use rand::{Rng, RngCore};

/// Triangular distribution on `[low, high]` with mode `peak`.
///
/// A cheap, bounded, unimodal prior that domain experts can state without
/// any statistics background ("somewhere between 2 and 4 mph, usually 3") —
/// the accessibility the paper's §3.5 asks of constraint abstractions.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Continuous, Triangular};
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let t = Triangular::new(2.0, 3.0, 4.0)?;
/// assert_eq!(t.mean(), 3.0);
/// assert!(t.pdf(3.0) > t.pdf(2.2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangular {
    low: f64,
    peak: f64,
    high: f64,
}

impl Triangular {
    /// Creates a triangular distribution with support `[low, high]` and mode
    /// `peak`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `low ≤ peak ≤ high`, `low < high`, and
    /// all parameters are finite.
    pub fn new(low: f64, peak: f64, high: f64) -> Result<Self, ParamError> {
        if !low.is_finite() || !peak.is_finite() || !high.is_finite() {
            return Err(ParamError::new("triangular parameters must be finite"));
        }
        if low >= high || peak < low || peak > high {
            return Err(ParamError::new(format!(
                "triangular requires low <= peak <= high and low < high, got ({low}, {peak}, {high})"
            )));
        }
        Ok(Self { low, peak, high })
    }

    /// Mode of the distribution.
    pub fn peak(&self) -> f64 {
        self.peak
    }
}

impl Distribution<f64> for Triangular {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.gen();
        let f = (self.peak - self.low) / (self.high - self.low);
        if u < f {
            self.low + ((self.high - self.low) * (self.peak - self.low) * u).sqrt()
        } else {
            self.high - ((self.high - self.low) * (self.high - self.peak) * (1.0 - u)).sqrt()
        }
    }
}

impl Continuous for Triangular {
    fn ln_pdf(&self, x: f64) -> f64 {
        self.pdf(x).ln()
    }

    fn pdf(&self, x: f64) -> f64 {
        let (a, c, b) = (self.low, self.peak, self.high);
        if x < a || x > b {
            0.0
        } else if x < c {
            2.0 * (x - a) / ((b - a) * (c - a))
        } else if x == c {
            2.0 / (b - a)
        } else {
            2.0 * (b - x) / ((b - a) * (b - c))
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        let (a, c, b) = (self.low, self.peak, self.high);
        if x <= a {
            0.0
        } else if x >= b {
            1.0
        } else if x <= c {
            (x - a).powi(2) / ((b - a) * (c - a))
        } else {
            1.0 - (b - x).powi(2) / ((b - a) * (b - c))
        }
    }

    fn mean(&self) -> f64 {
        (self.low + self.peak + self.high) / 3.0
    }

    fn variance(&self) -> f64 {
        let (a, c, b) = (self.low, self.peak, self.high);
        (a * a + b * b + c * c - a * b - a * c - b * c) / 18.0
    }

    fn support(&self) -> (f64, f64) {
        (self.low, self.high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid() {
        assert!(Triangular::new(0.0, -1.0, 2.0).is_err());
        assert!(Triangular::new(0.0, 3.0, 2.0).is_err());
        assert!(Triangular::new(2.0, 2.0, 2.0).is_err());
    }

    #[test]
    fn degenerate_peak_at_bound_ok() {
        // peak == low gives a decreasing ramp; still valid.
        let t = Triangular::new(0.0, 0.0, 1.0).unwrap();
        assert!(t.pdf(0.05) > t.pdf(0.9));
    }

    #[test]
    fn samples_in_support_and_mean() {
        let t = Triangular::new(1.0, 2.0, 6.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = t.sample(&mut rng);
            assert!((1.0..=6.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn cdf_quantile_consistency() {
        let t = Triangular::new(-1.0, 0.5, 2.0).unwrap();
        for &p in &[0.1, 0.4, 0.7, 0.95] {
            let q = t.quantile(p);
            assert!((t.cdf(q) - p).abs() < 1e-9, "p={p}");
        }
    }
}
