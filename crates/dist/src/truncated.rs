//! Truncation of a continuous distribution to an interval.

use crate::{Continuous, Distribution, ParamError};
use rand::RngCore;
use std::fmt;
use std::sync::Arc;

/// A continuous distribution truncated (and renormalized) to `[low, high]`.
///
/// Truncation is the simplest *constraint abstraction* from the paper's
/// prior-knowledge discussion (§3.5): "humans are incredibly unlikely to
/// walk at 60 mph" becomes a truncated walking-speed distribution. Sampling
/// uses the inverse-CDF of the base distribution restricted to the interval,
/// so it never rejects.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Continuous, Gaussian, Truncated};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let walking = Truncated::new(Arc::new(Gaussian::new(3.0, 1.0)?), 0.0, 6.0)?;
/// assert_eq!(walking.support(), (0.0, 6.0));
/// assert_eq!(walking.pdf(-1.0), 0.0);
/// assert!(walking.pdf(3.0) > Gaussian::new(3.0, 1.0)?.pdf(3.0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Truncated {
    base: Arc<dyn Continuous>,
    low: f64,
    high: f64,
    cdf_low: f64,
    mass: f64,
}

impl Truncated {
    /// Truncates `base` to `[low, high]`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `low >= high` or the base distribution has
    /// (numerically) zero mass on the interval.
    pub fn new(base: Arc<dyn Continuous>, low: f64, high: f64) -> Result<Self, ParamError> {
        if low >= high || low.is_nan() || high.is_nan() {
            return Err(ParamError::new(format!(
                "truncation requires low < high, got [{low}, {high}]"
            )));
        }
        let cdf_low = base.cdf(low);
        let mass = base.cdf(high) - cdf_low;
        if mass <= 0.0 || mass.is_nan() {
            return Err(ParamError::new(format!(
                "base distribution has no mass on [{low}, {high}]"
            )));
        }
        Ok(Self {
            base,
            low,
            high,
            cdf_low,
            mass,
        })
    }

    /// Lower truncation bound.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper truncation bound.
    pub fn high(&self) -> f64 {
        self.high
    }

    /// The probability mass the base distribution had on the interval.
    pub fn base_mass(&self) -> f64 {
        self.mass
    }
}

impl fmt::Debug for Truncated {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Truncated")
            .field("low", &self.low)
            .field("high", &self.high)
            .field("base_mass", &self.mass)
            .finish()
    }
}

impl Distribution<f64> for Truncated {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        use rand::Rng;
        let u: f64 = rng.gen();
        let p = self.cdf_low + u * self.mass;
        self.base.quantile(p).clamp(self.low, self.high)
    }
}

impl Continuous for Truncated {
    fn ln_pdf(&self, x: f64) -> f64 {
        if x < self.low || x > self.high {
            f64::NEG_INFINITY
        } else {
            self.base.ln_pdf(x) - self.mass.ln()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.low {
            0.0
        } else if x >= self.high {
            1.0
        } else {
            (self.base.cdf(x) - self.cdf_low) / self.mass
        }
    }

    fn mean(&self) -> f64 {
        // Numeric integration over the (finite) truncated support.
        let n = 4096;
        let dx = (self.high - self.low) / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let x = self.low + (i as f64 + 0.5) * dx;
            acc += x * self.pdf(x) * dx;
        }
        acc
    }

    fn variance(&self) -> f64 {
        let mean = self.mean();
        let n = 4096;
        let dx = (self.high - self.low) / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let x = self.low + (i as f64 + 0.5) * dx;
            acc += (x - mean).powi(2) * self.pdf(x) * dx;
        }
        acc
    }

    fn support(&self) -> (f64, f64) {
        (self.low, self.high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gaussian;
    use rand::SeedableRng;

    fn trunc_normal() -> Truncated {
        Truncated::new(Arc::new(Gaussian::new(0.0, 1.0).unwrap()), -1.0, 2.0).unwrap()
    }

    #[test]
    fn rejects_bad_interval() {
        let g = Arc::new(Gaussian::new(0.0, 1.0).unwrap());
        assert!(Truncated::new(g.clone(), 1.0, 1.0).is_err());
        assert!(Truncated::new(g.clone(), 2.0, 1.0).is_err());
        // No mass far in the tail.
        assert!(Truncated::new(g, 50.0, 51.0).is_err());
    }

    #[test]
    fn samples_in_bounds() {
        let t = trunc_normal();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for _ in 0..2000 {
            let x = t.sample(&mut rng);
            assert!((-1.0..=2.0).contains(&x), "x={x}");
        }
    }

    #[test]
    fn density_renormalized() {
        let t = trunc_normal();
        // Integral of pdf over the support ≈ 1.
        let n = 20_000;
        let dx = 3.0 / n as f64;
        let total: f64 = (0..n)
            .map(|i| t.pdf(-1.0 + (i as f64 + 0.5) * dx) * dx)
            .sum();
        assert!((total - 1.0).abs() < 1e-4, "total={total}");
    }

    #[test]
    fn cdf_endpoints() {
        let t = trunc_normal();
        assert_eq!(t.cdf(-1.5), 0.0);
        assert_eq!(t.cdf(2.5), 1.0);
        assert!(t.cdf(0.0) > 0.0 && t.cdf(0.0) < 1.0);
    }

    #[test]
    fn truncated_mean_shifts_toward_kept_mass() {
        // Truncating N(0,1) to [0, 4] gives mean ≈ 0.798 (half-normal).
        let t = Truncated::new(Arc::new(Gaussian::new(0.0, 1.0).unwrap()), 0.0, 8.0).unwrap();
        let m = t.mean();
        assert!(
            (m - (2.0 / core::f64::consts::PI).sqrt()).abs() < 1e-3,
            "m={m}"
        );
    }

    #[test]
    fn sample_mean_matches_numeric_mean() {
        let t = trunc_normal();
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| t.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - t.mean()).abs() < 0.02, "{mean} vs {}", t.mean());
    }
}
