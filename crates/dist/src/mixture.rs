//! Finite mixture of continuous distributions.

use crate::{Categorical, Continuous, Distribution, ParamError};
use rand::RngCore;
use std::fmt;
use std::sync::Arc;

/// A finite mixture of continuous component distributions.
///
/// Mixtures arise naturally in the paper's prior machinery — e.g. a
/// road-snapping prior is a mixture of mass concentrated on roads plus a
/// diffuse background (§3.5, Fig. 10). Sampling picks a component by weight,
/// then samples it; the density is the weighted sum of component densities.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Continuous, Gaussian, Mixture};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let bimodal = Mixture::new(vec![
///     (Arc::new(Gaussian::new(-2.0, 0.5)?) as Arc<dyn Continuous>, 0.5),
///     (Arc::new(Gaussian::new(2.0, 0.5)?), 0.5),
/// ])?;
/// assert!((bimodal.mean()).abs() < 1e-12);
/// assert!(bimodal.pdf(-2.0) > bimodal.pdf(0.0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Mixture {
    selector: Categorical<usize>,
    components: Vec<(Arc<dyn Continuous>, f64)>,
}

impl Mixture {
    /// Creates a mixture from `(component, weight)` pairs. Weights are
    /// normalized.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the list is empty or the weights are
    /// invalid (negative, non-finite, or all zero).
    pub fn new(components: Vec<(Arc<dyn Continuous>, f64)>) -> Result<Self, ParamError> {
        let selector = Categorical::new(
            components
                .iter()
                .enumerate()
                .map(|(i, (_, w))| (i, *w))
                .collect(),
        )?;
        // Store normalized weights alongside the components.
        let components = components
            .into_iter()
            .enumerate()
            .map(|(i, (c, _))| {
                let p = selector
                    .probability(i)
                    .expect("component index in range by construction");
                (c, p)
            })
            .collect();
        Ok(Self {
            selector,
            components,
        })
    }

    /// Number of mixture components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether there are no components (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Normalized weight of component `i`.
    pub fn weight(&self, i: usize) -> Option<f64> {
        self.components.get(i).map(|(_, w)| *w)
    }
}

impl fmt::Debug for Mixture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mixture")
            .field("components", &self.components.len())
            .field(
                "weights",
                &self.components.iter().map(|(_, w)| *w).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Distribution<f64> for Mixture {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let i = self.selector.sample(rng);
        self.components[i].0.sample(rng)
    }
}

impl Continuous for Mixture {
    fn ln_pdf(&self, x: f64) -> f64 {
        self.pdf(x).ln()
    }

    fn pdf(&self, x: f64) -> f64 {
        self.components
            .iter()
            .map(|(c, w)| w * c.pdf(x))
            .sum::<f64>()
    }

    fn cdf(&self, x: f64) -> f64 {
        self.components
            .iter()
            .map(|(c, w)| w * c.cdf(x))
            .sum::<f64>()
    }

    fn mean(&self) -> f64 {
        self.components
            .iter()
            .map(|(c, w)| w * c.mean())
            .sum::<f64>()
    }

    fn variance(&self) -> f64 {
        // Law of total variance: E[Var] + Var[E].
        let mean = self.mean();
        self.components
            .iter()
            .map(|(c, w)| w * (c.variance() + (c.mean() - mean).powi(2)))
            .sum::<f64>()
    }

    fn support(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (c, _) in &self.components {
            let (l, h) = c.support();
            lo = lo.min(l);
            hi = hi.max(h);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gaussian, Uniform};
    use rand::SeedableRng;

    fn bimodal() -> Mixture {
        Mixture::new(vec![
            (
                Arc::new(Gaussian::new(-3.0, 1.0).unwrap()) as Arc<dyn Continuous>,
                1.0,
            ),
            (Arc::new(Gaussian::new(3.0, 1.0).unwrap()), 3.0),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert!(Mixture::new(vec![]).is_err());
    }

    #[test]
    fn weights_normalized() {
        let m = bimodal();
        assert!((m.weight(0).unwrap() - 0.25).abs() < 1e-12);
        assert!((m.weight(1).unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(m.weight(2), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn mean_is_weighted() {
        let m = bimodal();
        assert!((m.mean() - (0.25 * -3.0 + 0.75 * 3.0)).abs() < 1e-12);
    }

    #[test]
    fn total_variance_law() {
        let m = bimodal();
        // Var = E[Var] + Var[E] = 1 + (0.25·(−3−1.5)² + 0.75·(3−1.5)²)
        let expected = 1.0 + 0.25 * 4.5_f64.powi(2) + 0.75 * 1.5_f64.powi(2);
        assert!((m.variance() - expected).abs() < 1e-12);
    }

    #[test]
    fn sample_split_matches_weights() {
        let m = bimodal();
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let n = 30_000;
        let right = (0..n).filter(|_| m.sample(&mut rng) > 0.0).count() as f64 / n as f64;
        assert!((right - 0.75).abs() < 0.02, "right={right}");
    }

    #[test]
    fn support_is_union() {
        let m = Mixture::new(vec![
            (
                Arc::new(Uniform::new(0.0, 1.0).unwrap()) as Arc<dyn Continuous>,
                1.0,
            ),
            (Arc::new(Uniform::new(5.0, 6.0).unwrap()), 1.0),
        ])
        .unwrap();
        assert_eq!(m.support(), (0.0, 6.0));
    }

    #[test]
    fn cdf_is_weighted_sum() {
        let m = bimodal();
        // At x = 0, the left component has CDF ≈ 0.9987, right ≈ 0.0013.
        let g_left = Gaussian::new(-3.0, 1.0).unwrap();
        let g_right = Gaussian::new(3.0, 1.0).unwrap();
        let expect = 0.25 * g_left.cdf(0.0) + 0.75 * g_right.cdf(0.0);
        assert!((m.cdf(0.0) - expect).abs() < 1e-12);
    }
}
