//! Poisson distribution.

use crate::special::{ln_gamma, reg_lower_gamma};
use crate::{Discrete, Distribution, ParamError};
use rand::{Rng, RngCore};

/// Poisson distribution with rate `λ`: counts of events per interval.
///
/// Used for event-count sensors in the test suite. Sampling uses Knuth's
/// product-of-uniforms method for moderate rates and splits larger rates
/// into summed halves (Poisson additivity), keeping the method exact at
/// every `λ`.
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Discrete, Poisson};
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let p = Poisson::new(4.0)?;
/// assert_eq!(p.mean(), 4.0);
/// assert_eq!(p.variance(), 4.0);
/// assert!((p.pmf(0) - (-4.0_f64).exp()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson with rate `λ`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `lambda` is positive and finite.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if lambda <= 0.0 || !lambda.is_finite() {
            return Err(ParamError::new(format!(
                "poisson rate must be positive and finite, got {lambda}"
            )));
        }
        Ok(Self { lambda })
    }

    /// The rate parameter λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Knuth's method: multiply uniforms until the product drops below
    /// `e^(−λ)`. Exact, O(λ) — fine for the split rates used below.
    fn knuth(lambda: f64, rng: &mut dyn RngCore) -> u64 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    }
}

impl Distribution<u64> for Poisson {
    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        // Split large rates: Poisson(λ) = Poisson(λ/2) + Poisson(λ/2).
        let mut remaining = self.lambda;
        let mut total = 0u64;
        while remaining > 30.0 {
            total += Self::knuth(30.0, rng);
            remaining -= 30.0;
        }
        total + Self::knuth(remaining, rng)
    }
}

impl Discrete for Poisson {
    fn ln_pmf(&self, k: u64) -> f64 {
        k as f64 * self.lambda.ln() - self.lambda - ln_gamma(k as f64 + 1.0)
    }

    fn cdf(&self, k: u64) -> f64 {
        // Pr[X ≤ k] = Q(k+1, λ) = 1 − P(k+1, λ).
        1.0 - reg_lower_gamma(k as f64 + 1.0, self.lambda)
    }

    fn mean(&self) -> f64 {
        self.lambda
    }

    fn variance(&self) -> f64 {
        self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_rate() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        let p = Poisson::new(3.5).unwrap();
        let total: f64 = (0..60).map(|k| p.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn cdf_matches_pmf_sum() {
        let p = Poisson::new(2.2).unwrap();
        let direct: f64 = (0..=5).map(|k| p.pmf(k)).sum();
        assert!(
            (p.cdf(5) - direct).abs() < 1e-10,
            "{} vs {direct}",
            p.cdf(5)
        );
    }

    #[test]
    fn sample_mean_small_rate() {
        let p = Poisson::new(1.7).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(46);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| p.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 1.7).abs() < 0.03, "mean={mean}");
    }

    #[test]
    fn sample_mean_large_rate_uses_split() {
        let p = Poisson::new(100.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(47);
        let n = 10_000;
        let xs: Vec<f64> = (0..n).map(|_| p.sample(&mut rng) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean={mean}");
        assert!((var - 100.0).abs() < 5.0, "var={var}");
    }
}
