//! Rayleigh distribution — the paper's GPS error posterior.

use crate::column::{self, fast_ln};
use crate::{Continuous, Distribution, ParamError};
use rand::{Rng, RngCore};

/// Rayleigh distribution with scale `ρ`:
/// `f(x; ρ) = (x/ρ²)·exp(−x²/2ρ²)` for `x ≥ 0`.
///
/// This is the distribution at the heart of the paper's GPS model (§4.1):
/// the distance between a GPS sample and the true location follows
/// `Rayleigh(ε/√ln 400)` where `ε` is the sensor's reported 95% horizontal
/// accuracy. Its mode is *away from zero* — the true location is unlikely to
/// be at the center of the reported circle (Fig. 11).
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Continuous, Rayleigh};
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let r = Rayleigh::new(2.0)?;
/// // Mode of a Rayleigh is ρ itself.
/// assert!(r.pdf(2.0) > r.pdf(0.1));
/// assert!(r.pdf(2.0) > r.pdf(6.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rayleigh {
    scale: f64,
}

impl Rayleigh {
    /// Creates a Rayleigh distribution with scale `ρ`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `scale` is finite and strictly positive.
    pub fn new(scale: f64) -> Result<Self, ParamError> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(ParamError::new(format!(
                "rayleigh scale must be positive and finite, got {scale}"
            )));
        }
        Ok(Self { scale })
    }

    /// Builds the paper's GPS posterior from a 95% confidence radius `ε`
    /// (meters): `Rayleigh(ε / √ln 400)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `epsilon` is finite and positive.
    pub fn from_gps_accuracy(epsilon: f64) -> Result<Self, ParamError> {
        Self::new(epsilon / (400.0_f64).ln().sqrt())
    }

    /// The scale parameter `ρ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The mode of the distribution (equals `ρ`).
    pub fn mode(&self) -> f64 {
        self.scale
    }
}

impl Distribution<f64> for Rayleigh {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Inverse-CDF sampling: x = ρ·√(−2 ln U). Deterministic `fast_ln`
        // keeps this bitwise-equal to the batched `fill_column` pass.
        let u: f64 = 1.0 - rng.gen::<f64>(); // in (0, 1]
        self.scale * (-2.0 * fast_ln(u)).sqrt()
    }

    fn fill_column(&self, rngs: &mut [rand::rngs::SmallRng], out: &mut Vec<f64>) {
        column::draw_open01(rngs, out);
        column::rayleigh_transform(out, self.scale);
    }

    fn spec(&self) -> Option<crate::DistSpec> {
        Some(crate::DistSpec::Rayleigh { scale: self.scale })
    }
}

impl Continuous for Rayleigh {
    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return f64::NEG_INFINITY;
        }
        let r2 = self.scale * self.scale;
        x.ln() - r2.ln() - x * x / (2.0 * r2)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-x * x / (2.0 * self.scale * self.scale)).exp()
        }
    }

    fn mean(&self) -> f64 {
        self.scale * (core::f64::consts::PI / 2.0).sqrt()
    }

    fn variance(&self) -> f64 {
        (2.0 - core::f64::consts::PI / 2.0) * self.scale * self.scale
    }

    fn support(&self) -> (f64, f64) {
        (0.0, f64::INFINITY)
    }

    fn quantile(&self, p: f64) -> f64 {
        if !(0.0..=1.0).contains(&p) {
            return f64::NAN;
        }
        self.scale * (-2.0 * (1.0 - p).ln()).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_scale() {
        assert!(Rayleigh::new(0.0).is_err());
        assert!(Rayleigh::new(-1.0).is_err());
        assert!(Rayleigh::new(f64::NAN).is_err());
    }

    #[test]
    fn gps_accuracy_conversion() {
        // ε = 4 m ⇒ ρ = 4/√ln400 ≈ 1.6344
        let r = Rayleigh::from_gps_accuracy(4.0).unwrap();
        assert!((r.scale() - 4.0 / (400.0_f64).ln().sqrt()).abs() < 1e-12);
        // 95% of the mass must lie within ε of the center — that is the
        // defining property of the paper's ε/√ln400 scaling.
        assert!((r.cdf(4.0) - 0.95).abs() < 1e-10);
    }

    #[test]
    fn sample_mean_matches_analytic() {
        let r = Rayleigh::new(3.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - r.mean()).abs() < 0.05,
            "mean={mean} vs {}",
            r.mean()
        );
    }

    #[test]
    fn samples_nonnegative() {
        let r = Rayleigh::new(0.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(r.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let r = Rayleigh::new(1.7).unwrap();
        for &p in &[0.05, 0.3, 0.5, 0.8, 0.99] {
            assert!((r.cdf(r.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn pdf_zero_below_support() {
        let r = Rayleigh::new(1.0).unwrap();
        assert_eq!(r.pdf(-0.5), 0.0);
        assert_eq!(r.cdf(-0.5), 0.0);
    }
}
