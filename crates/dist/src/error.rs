//! Error type for invalid distribution parameters.

use std::fmt;

/// Returned when a distribution constructor receives invalid parameters
/// (e.g. a non-positive standard deviation or a probability outside `[0,1]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError {
    what: String,
}

impl ParamError {
    /// Creates a parameter error with a human-readable description.
    pub fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParamError::new("std_dev must be positive, got -1");
        let s = e.to_string();
        assert!(s.contains("std_dev"));
        assert!(s.contains("invalid distribution parameter"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ParamError>();
    }
}
