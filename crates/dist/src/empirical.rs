//! Empirical distribution over a fixed pool of samples.

use crate::{Distribution, ParamError};
use rand::{Rng, RngCore};

/// An empirical distribution: resamples uniformly from a fixed pool.
///
/// This is exactly how the paper's Parakeet case study works at runtime
/// (§5.3): hybrid Monte Carlo runs *offline* and captures a fixed pool of
/// posterior samples, and the runtime sampling function draws uniformly from
/// that pool. "If the sample size is sufficiently large, this approach
/// approximates true sampling well."
///
/// # Examples
///
/// ```
/// use uncertain_dist::{Distribution, Empirical};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), uncertain_dist::ParamError> {
/// let pool = Empirical::new(vec![1.0, 2.0, 3.0])?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let x = pool.sample(&mut rng);
/// assert!([1.0, 2.0, 3.0].contains(&x));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical<T> {
    pool: Vec<T>,
}

impl<T> Empirical<T> {
    /// Creates an empirical distribution from a pool of samples.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the pool is empty.
    pub fn new(pool: Vec<T>) -> Result<Self, ParamError> {
        if pool.is_empty() {
            return Err(ParamError::new("empirical pool must not be empty"));
        }
        Ok(Self { pool })
    }

    /// Number of samples in the pool.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// Whether the pool is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// A view of the underlying pool.
    pub fn pool(&self) -> &[T] {
        &self.pool
    }

    /// Consumes the distribution and returns the pool.
    pub fn into_pool(self) -> Vec<T> {
        self.pool
    }
}

impl Empirical<f64> {
    /// Sample mean of the pool.
    pub fn mean(&self) -> f64 {
        self.pool.iter().sum::<f64>() / self.pool.len() as f64
    }

    /// Unbiased sample variance of the pool (0 for a single-element pool).
    pub fn variance(&self) -> f64 {
        if self.pool.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        self.pool.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (self.pool.len() - 1) as f64
    }

    /// Empirical CDF at `x`: fraction of the pool `≤ x`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.pool.iter().filter(|&&v| v <= x).count() as f64 / self.pool.len() as f64
    }
}

impl<T: Clone + Send + Sync> Distribution<T> for Empirical<T> {
    fn sample(&self, rng: &mut dyn RngCore) -> T {
        let i = rng.gen_range(0..self.pool.len());
        self.pool[i].clone()
    }
}

impl<T> FromIterator<T> for Empirical<T> {
    /// Collects an iterator into a pool.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty; use [`Empirical::new`] for fallible
    /// construction.
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let pool: Vec<T> = iter.into_iter().collect();
        assert!(
            !pool.is_empty(),
            "cannot collect an empty iterator into an Empirical distribution"
        );
        Self { pool }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_pool() {
        assert!(Empirical::<f64>::new(vec![]).is_err());
    }

    #[test]
    fn samples_come_from_pool() {
        let pool = vec![10, 20, 30, 40];
        let e = Empirical::new(pool.clone()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..200 {
            assert!(pool.contains(&e.sample(&mut rng)));
        }
    }

    #[test]
    fn resampling_is_roughly_uniform() {
        let e = Empirical::new(vec![0, 1]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 20_000;
        let ones: usize = (0..n).map(|_| e.sample(&mut rng) as usize).sum();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn stats() {
        let e = Empirical::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.mean(), 2.5);
        assert!((e.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.cdf(2.0), 0.5);
        assert_eq!(e.cdf(0.0), 0.0);
        assert_eq!(e.cdf(10.0), 1.0);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
    }

    #[test]
    fn from_iterator() {
        let e: Empirical<i32> = (0..5).collect();
        assert_eq!(e.len(), 5);
        assert_eq!(e.pool(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "empty iterator")]
    fn from_empty_iterator_panics() {
        let _: Empirical<i32> = std::iter::empty().collect();
    }
}
