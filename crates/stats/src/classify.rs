//! Binary-classification metrics: confusion matrix, precision, recall.

/// A binary-classification confusion matrix.
///
/// Used by the Parakeet evaluation (paper Fig. 16): *precision* is the
/// probability a detected edge is a real edge (false positives), *recall*
/// the probability a real edge is detected (false negatives). Developers
/// pick the trade-off with the conditional threshold α.
///
/// # Examples
///
/// ```
/// use uncertain_stats::ConfusionMatrix;
///
/// let mut m = ConfusionMatrix::new();
/// m.record(true, true);   // true positive
/// m.record(true, false);  // false positive
/// m.record(false, true);  // false negative
/// m.record(false, false); // true negative
/// assert_eq!(m.precision(), Some(0.5));
/// assert_eq!(m.recall(), Some(0.5));
/// assert_eq!(m.accuracy(), Some(0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ConfusionMatrix {
    tp: u64,
    fp: u64,
    tn: u64,
    fn_: u64,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `(predicted, actual)` observation.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// True positives.
    pub fn true_positives(&self) -> u64 {
        self.tp
    }

    /// False positives.
    pub fn false_positives(&self) -> u64 {
        self.fp
    }

    /// True negatives.
    pub fn true_negatives(&self) -> u64 {
        self.tn
    }

    /// False negatives.
    pub fn false_negatives(&self) -> u64 {
        self.fn_
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision `tp / (tp + fp)`; `None` when nothing was predicted
    /// positive.
    pub fn precision(&self) -> Option<f64> {
        let denom = self.tp + self.fp;
        (denom > 0).then(|| self.tp as f64 / denom as f64)
    }

    /// Recall `tp / (tp + fn)`; `None` when there were no actual positives.
    pub fn recall(&self) -> Option<f64> {
        let denom = self.tp + self.fn_;
        (denom > 0).then(|| self.tp as f64 / denom as f64)
    }

    /// F1 score (harmonic mean of precision and recall); `None` if either
    /// is undefined or both are zero.
    pub fn f1(&self) -> Option<f64> {
        let p = self.precision()?;
        let r = self.recall()?;
        if p + r == 0.0 {
            return None;
        }
        Some(2.0 * p * r / (p + r))
    }

    /// Accuracy `(tp + tn) / total`; `None` when empty.
    pub fn accuracy(&self) -> Option<f64> {
        (self.total() > 0).then(|| (self.tp + self.tn) as f64 / self.total() as f64)
    }

    /// False-positive rate `fp / (fp + tn)`; `None` when there were no
    /// actual negatives.
    pub fn false_positive_rate(&self) -> Option<f64> {
        let denom = self.fp + self.tn;
        (denom > 0).then(|| self.fp as f64 / denom as f64)
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_has_no_metrics() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.precision(), None);
        assert_eq!(m.recall(), None);
        assert_eq!(m.f1(), None);
        assert_eq!(m.accuracy(), None);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn perfect_classifier() {
        let mut m = ConfusionMatrix::new();
        for _ in 0..10 {
            m.record(true, true);
            m.record(false, false);
        }
        assert_eq!(m.precision(), Some(1.0));
        assert_eq!(m.recall(), Some(1.0));
        assert_eq!(m.f1(), Some(1.0));
        assert_eq!(m.accuracy(), Some(1.0));
        assert_eq!(m.false_positive_rate(), Some(0.0));
    }

    #[test]
    fn all_positive_predictor_has_full_recall() {
        let mut m = ConfusionMatrix::new();
        // Predict everything positive on a 50/50 set — Parrot's behavior in
        // the paper: 100% recall, poor precision.
        for i in 0..100 {
            m.record(true, i % 2 == 0);
        }
        assert_eq!(m.recall(), Some(1.0));
        assert_eq!(m.precision(), Some(0.5));
    }

    #[test]
    fn f1_balances() {
        let mut m = ConfusionMatrix::new();
        m.record(true, true); // p=1, r=0.5
        m.record(false, true);
        assert_eq!(m.precision(), Some(1.0));
        assert_eq!(m.recall(), Some(0.5));
        assert!((m.f1().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix::new();
        a.record(true, true);
        let mut b = ConfusionMatrix::new();
        b.record(false, false);
        b.record(true, false);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.true_positives(), 1);
        assert_eq!(a.true_negatives(), 1);
        assert_eq!(a.false_positives(), 1);
    }
}
