//! Statistics substrate for the `Uncertain<T>` reproduction.
//!
//! The paper's conditional semantics (§3.4/§4.3) rests on *sequential
//! hypothesis testing*: every comparison of uncertain values is decided by
//! Wald's sequential probability ratio test (SPRT), drawing only as many
//! samples as that particular conditional needs. This crate implements that
//! machinery from scratch, plus the surrounding statistical toolkit the
//! case studies and evaluation harness use:
//!
//! * [`Sprt`] / [`SequentialTest`] — Wald's SPRT over Bernoulli samples with
//!   batching and a termination cap, exactly as §4.3 describes,
//! * [`GroupSequentialTest`] — a Pocock-style "closed" sequential design
//!   with a guaranteed bound on the sample size (the paper's anticipated
//!   future work, §4.3),
//! * [`FixedSampleTest`] — the fixed-sample-size baseline the paper argues
//!   against (used by the ablation benches),
//! * [`Summary`] / [`OnlineStats`] / [`Histogram`] — descriptive statistics,
//! * [`mean_confidence_interval`] / [`wilson_interval`] — confidence
//!   intervals for means and proportions,
//! * [`ConfusionMatrix`] — precision/recall for the Parakeet evaluation
//!   (Fig. 16).
//!
//! # Examples
//!
//! ```
//! use uncertain_stats::{SequentialTest, TestDecision};
//! use rand::{Rng, SeedableRng};
//!
//! # fn main() -> Result<(), uncertain_stats::StatsError> {
//! // Is Pr[heads] > 0.5 for a coin that is actually 0.8?
//! let test = SequentialTest::at_threshold(0.5)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let outcome = test.run(|| rng.gen::<f64>() < 0.8);
//! assert_eq!(outcome.decision, TestDecision::AcceptAlternative);
//! // Far fewer samples than a fixed-size test would use:
//! assert!(outcome.samples < 100);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ci;
mod classify;
mod descriptive;
mod error;
mod fixed;
mod gst;
mod ks;
mod online;
mod sprt;

pub use ci::{mean_confidence_interval, wilson_interval};
pub use classify::ConfusionMatrix;
pub use descriptive::{Histogram, Summary};
pub use error::StatsError;
pub use fixed::{FixedOutcome, FixedSampleTest};
pub use gst::{GroupSequentialOutcome, GroupSequentialTest};
pub use ks::{ks_test, KsOutcome};
pub use online::OnlineStats;
pub use sprt::{SequentialTest, Sprt, TestDecision, TestOutcome};
