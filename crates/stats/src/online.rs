//! Streaming (online) moment estimation — Welford's algorithm.

/// Numerically stable streaming mean/variance accumulator (Welford).
///
/// The `Uncertain<T>` expected-value operator and the Life/GPS evaluation
/// loops accumulate millions of observations; this avoids both a second
/// pass and catastrophic cancellation.
///
/// # Examples
///
/// ```
/// use uncertain_stats::OnlineStats;
///
/// let mut acc = OnlineStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 4.0);
/// assert_eq!(acc.variance(), 4.0);
/// assert_eq!(acc.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased running variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Running standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the running mean (0 when empty).
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (Chan et al. parallel
    /// combination), so per-thread accumulators can be reduced.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Self::new();
        acc.extend(iter);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator() {
        let acc = OnlineStats::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.std_error(), 0.0);
    }

    #[test]
    fn matches_two_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let acc: OnlineStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((acc.mean() - mean).abs() < 1e-12);
        assert!((acc.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn numerically_stable_with_large_offset() {
        // Classic Welford stress: large mean, small variance.
        let acc: OnlineStats = (0..1000)
            .map(|i| 1e9 + (i % 2) as f64) // values 1e9 and 1e9+1
            .collect();
        assert!(
            (acc.variance() - 0.25025).abs() < 1e-3,
            "{}",
            acc.variance()
        );
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..50).map(|i| i as f64 * 0.7 - 3.0).collect();
        let (a, b) = data.split_at(20);
        let mut left: OnlineStats = a.iter().copied().collect();
        let right: OnlineStats = b.iter().copied().collect();
        left.merge(&right);
        let all: OnlineStats = data.iter().copied().collect();
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-12);
        assert!((left.variance() - all.variance()).abs() < 1e-12);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut acc: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = acc;
        acc.merge(&OnlineStats::new());
        assert_eq!(acc, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn min_max_track() {
        let acc: OnlineStats = [3.0, -1.0, 7.0, 2.0].into_iter().collect();
        assert_eq!(acc.min(), -1.0);
        assert_eq!(acc.max(), 7.0);
    }
}
