//! Fixed-sample-size hypothesis test — the baseline the paper improves on.
//!
//! Prior sampling-function systems "compute with a fixed pool of samples"
//! (paper §4.3). This module implements that baseline so the benchmark
//! harness can quantify the SPRT's advantage in samples drawn.

use crate::StatsError;
use uncertain_dist::special::standard_normal_cdf;

/// Outcome of a [`FixedSampleTest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedOutcome {
    /// Whether `Pr[X] > threshold` was accepted.
    pub accepted: bool,
    /// Number of samples drawn (always the configured size).
    pub samples: usize,
    /// Number of `true` samples.
    pub successes: u64,
    /// Empirical estimate of `p`.
    pub estimate: f64,
    /// One-sided p-value of the observed count under `H₀: p = threshold`
    /// (normal approximation).
    pub p_value: f64,
}

/// A fixed-size test of `Pr[X] > threshold`: always draws exactly `n`
/// samples and compares the empirical frequency to the threshold.
///
/// # Examples
///
/// ```
/// use uncertain_stats::FixedSampleTest;
/// use rand::{Rng, SeedableRng};
///
/// # fn main() -> Result<(), uncertain_stats::StatsError> {
/// let test = FixedSampleTest::new(0.5, 1000)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let o = test.run(|| rng.gen::<f64>() < 0.8);
/// assert!(o.accepted);
/// assert_eq!(o.samples, 1000); // no early stopping, ever
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedSampleTest {
    threshold: f64,
    n: usize,
}

impl FixedSampleTest {
    /// Creates a fixed test of `Pr[X] > threshold` with sample size `n`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] unless `threshold ∈ (0, 1)` and `n ≥ 1`.
    pub fn new(threshold: f64, n: usize) -> Result<Self, StatsError> {
        if !(threshold > 0.0 && threshold < 1.0) {
            return Err(StatsError::new(format!(
                "threshold must be in (0,1), got {threshold}"
            )));
        }
        if n == 0 {
            return Err(StatsError::new("sample size must be at least 1"));
        }
        Ok(Self { threshold, n })
    }

    /// The configured sample size.
    pub fn sample_size(&self) -> usize {
        self.n
    }

    /// Runs the test, always drawing exactly `n` samples from `gen`.
    pub fn run(&self, mut gen: impl FnMut() -> bool) -> FixedOutcome {
        let mut successes = 0u64;
        for _ in 0..self.n {
            if gen() {
                successes += 1;
            }
        }
        let estimate = successes as f64 / self.n as f64;
        // One-sided z-test against p = threshold.
        let se = (self.threshold * (1.0 - self.threshold) / self.n as f64).sqrt();
        let z = (estimate - self.threshold) / se;
        FixedOutcome {
            accepted: estimate > self.threshold,
            samples: self.n,
            successes,
            estimate,
            p_value: 1.0 - standard_normal_cdf(z),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rejects_bad_params() {
        assert!(FixedSampleTest::new(0.0, 10).is_err());
        assert!(FixedSampleTest::new(1.0, 10).is_err());
        assert!(FixedSampleTest::new(0.5, 0).is_err());
    }

    #[test]
    fn always_draws_exactly_n() {
        let t = FixedSampleTest::new(0.5, 123).unwrap();
        let mut count = 0usize;
        let o = t.run(|| {
            count += 1;
            true
        });
        assert_eq!(count, 123);
        assert_eq!(o.samples, 123);
        assert_eq!(o.successes, 123);
        assert!(o.accepted);
    }

    #[test]
    fn p_value_small_for_strong_evidence() {
        let t = FixedSampleTest::new(0.5, 500).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let o = t.run(|| rng.gen::<f64>() < 0.9);
        assert!(o.p_value < 1e-6, "p={}", o.p_value);
    }

    #[test]
    fn p_value_large_for_null() {
        let t = FixedSampleTest::new(0.5, 500).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let o = t.run(|| rng.gen::<f64>() < 0.2);
        assert!(o.p_value > 0.5, "p={}", o.p_value);
        assert!(!o.accepted);
    }
}
