//! Group-sequential hypothesis testing with Pocock boundaries.
//!
//! The paper (§4.3) notes Wald's SPRT has an unbounded worst case and
//! anticipates "adapting the considerable body of work on group sequential
//! methods [17], widely used in medical clinical trials, which provide
//! 'closed' sequential hypothesis tests with guaranteed upper bounds on the
//! sample size." This module implements that extension: a Pocock-style
//! design with `K` interim analyses and a constant nominal z-boundary.

use crate::StatsError;

/// Pocock constants `c_P(K, α)` for a two-sided overall significance level
/// of 5%, K = 1..=10 analyses (Jennison & Turnbull, Table 2.1).
const POCOCK_0_05: [f64; 10] = [
    1.960, 2.178, 2.289, 2.361, 2.413, 2.453, 2.485, 2.512, 2.535, 2.555,
];

/// Outcome of a group-sequential run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupSequentialOutcome {
    /// Whether `Pr[X] > threshold` was accepted (decision at stop or at the
    /// final analysis).
    pub accepted: bool,
    /// Samples actually drawn — at most `analyses × group_size`, by
    /// construction (the "closed" guarantee).
    pub samples: usize,
    /// Number of `true` samples observed.
    pub successes: u64,
    /// Empirical estimate of `p`.
    pub estimate: f64,
    /// Which interim analysis stopped the test (1-based); equals the number
    /// of analyses when the test ran to the end.
    pub stopped_at_analysis: usize,
    /// Whether an interim boundary was crossed (versus deciding at the final
    /// analysis by comparing the estimate to the threshold).
    pub early_stop: bool,
}

/// A Pocock group-sequential test of `Pr[X] > threshold` with `K ≤ 10`
/// analyses of `group_size` samples each.
///
/// Unlike the open-ended SPRT, this design **guarantees** at most
/// `K × group_size` samples, at the cost of a somewhat larger average
/// sample size.
///
/// # Examples
///
/// ```
/// use uncertain_stats::GroupSequentialTest;
/// use rand::{Rng, SeedableRng};
///
/// # fn main() -> Result<(), uncertain_stats::StatsError> {
/// let test = GroupSequentialTest::new(0.5, 5, 40)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let o = test.run(|| rng.gen::<f64>() < 0.9);
/// assert!(o.accepted);
/// assert!(o.samples <= 200); // hard bound: 5 analyses × 40 samples
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupSequentialTest {
    threshold: f64,
    analyses: usize,
    group_size: usize,
    boundary: f64,
}

impl GroupSequentialTest {
    /// Creates a Pocock test of `Pr[X] > threshold` with `analyses` interim
    /// looks of `group_size` samples each (overall two-sided α = 0.05).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] unless `threshold ∈ (0,1)`,
    /// `1 ≤ analyses ≤ 10`, and `group_size ≥ 1`.
    pub fn new(threshold: f64, analyses: usize, group_size: usize) -> Result<Self, StatsError> {
        if !(threshold > 0.0 && threshold < 1.0) {
            return Err(StatsError::new(format!(
                "threshold must be in (0,1), got {threshold}"
            )));
        }
        if analyses == 0 || analyses > 10 {
            return Err(StatsError::new(format!(
                "analyses must be in 1..=10 (Pocock table), got {analyses}"
            )));
        }
        if group_size == 0 {
            return Err(StatsError::new("group_size must be at least 1"));
        }
        Ok(Self {
            threshold,
            analyses,
            group_size,
            boundary: POCOCK_0_05[analyses - 1],
        })
    }

    /// The hard upper bound on samples drawn.
    pub fn max_samples(&self) -> usize {
        self.analyses * self.group_size
    }

    /// The Pocock z-boundary in use.
    pub fn boundary(&self) -> f64 {
        self.boundary
    }

    /// Runs the test against samples from `gen`.
    pub fn run(&self, mut gen: impl FnMut() -> bool) -> GroupSequentialOutcome {
        let mut n = 0usize;
        let mut successes = 0u64;
        for analysis in 1..=self.analyses {
            for _ in 0..self.group_size {
                if gen() {
                    successes += 1;
                }
            }
            n += self.group_size;
            let estimate = successes as f64 / n as f64;
            let se = (self.threshold * (1.0 - self.threshold) / n as f64).sqrt();
            let z = (estimate - self.threshold) / se;
            if z.abs() >= self.boundary {
                return GroupSequentialOutcome {
                    accepted: z > 0.0,
                    samples: n,
                    successes,
                    estimate,
                    stopped_at_analysis: analysis,
                    early_stop: analysis < self.analyses,
                };
            }
        }
        let estimate = successes as f64 / n as f64;
        GroupSequentialOutcome {
            accepted: estimate > self.threshold,
            samples: n,
            successes,
            estimate,
            stopped_at_analysis: self.analyses,
            early_stop: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rejects_bad_params() {
        assert!(GroupSequentialTest::new(0.0, 5, 10).is_err());
        assert!(GroupSequentialTest::new(0.5, 0, 10).is_err());
        assert!(GroupSequentialTest::new(0.5, 11, 10).is_err());
        assert!(GroupSequentialTest::new(0.5, 5, 0).is_err());
    }

    #[test]
    fn sample_bound_is_hard() {
        let t = GroupSequentialTest::new(0.5, 4, 25).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        for _ in 0..50 {
            let o = t.run(|| rng.gen::<f64>() < 0.5);
            assert!(o.samples <= t.max_samples());
        }
    }

    #[test]
    fn strong_evidence_stops_early() {
        let t = GroupSequentialTest::new(0.5, 10, 30).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let o = t.run(|| rng.gen::<f64>() < 0.95);
        assert!(o.accepted);
        assert!(o.early_stop, "should have crossed the boundary early");
        assert!(o.stopped_at_analysis <= 2);
    }

    #[test]
    fn null_evidence_rejects() {
        let t = GroupSequentialTest::new(0.5, 5, 40).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(16);
        let o = t.run(|| rng.gen::<f64>() < 0.1);
        assert!(!o.accepted);
    }

    #[test]
    fn boundary_grows_with_analyses() {
        let few = GroupSequentialTest::new(0.5, 2, 10).unwrap();
        let many = GroupSequentialTest::new(0.5, 10, 10).unwrap();
        assert!(many.boundary() > few.boundary());
    }
}
