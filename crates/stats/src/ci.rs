//! Confidence intervals for means and proportions.

use crate::StatsError;
use uncertain_dist::special::standard_normal_quantile;

/// Normal-approximation confidence interval for a mean.
///
/// Returns `(low, high)` such that the interval covers the true mean with
/// probability `confidence` under the CLT approximation — the paper's §3.2
/// observes "the error in the mean of a data set is approximately Gaussian
/// by the Central Limit Theorem."
///
/// # Errors
///
/// Returns [`StatsError`] unless `n ≥ 1`, `std_dev ≥ 0`, and
/// `confidence ∈ (0, 1)`.
///
/// # Examples
///
/// ```
/// use uncertain_stats::mean_confidence_interval;
///
/// # fn main() -> Result<(), uncertain_stats::StatsError> {
/// let (lo, hi) = mean_confidence_interval(10.0, 2.0, 100, 0.95)?;
/// assert!(lo < 10.0 && 10.0 < hi);
/// assert!((hi - lo - 2.0 * 1.96 * 0.2).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn mean_confidence_interval(
    mean: f64,
    std_dev: f64,
    n: usize,
    confidence: f64,
) -> Result<(f64, f64), StatsError> {
    if n == 0 {
        return Err(StatsError::new("need at least one observation"));
    }
    if std_dev < 0.0 || !std_dev.is_finite() {
        return Err(StatsError::new(format!(
            "std_dev must be non-negative and finite, got {std_dev}"
        )));
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(StatsError::new(format!(
            "confidence must be in (0,1), got {confidence}"
        )));
    }
    let z = standard_normal_quantile(0.5 + confidence / 2.0);
    let half = z * std_dev / (n as f64).sqrt();
    Ok((mean - half, mean + half))
}

/// Wilson score interval for a Bernoulli proportion.
///
/// Better behaved than the Wald interval at extreme counts (0 or n
/// successes), which the Life evaluation hits at low noise levels.
///
/// # Errors
///
/// Returns [`StatsError`] unless `successes ≤ n`, `n ≥ 1`, and
/// `confidence ∈ (0, 1)`.
///
/// # Examples
///
/// ```
/// use uncertain_stats::wilson_interval;
///
/// # fn main() -> Result<(), uncertain_stats::StatsError> {
/// let (lo, hi) = wilson_interval(0, 100, 0.95)?;
/// assert!(lo < 1e-12);
/// assert!(hi > 0.01 && hi < 0.05); // zero successes still gives a nonzero upper bound
/// # Ok(())
/// # }
/// ```
pub fn wilson_interval(successes: u64, n: u64, confidence: f64) -> Result<(f64, f64), StatsError> {
    if n == 0 {
        return Err(StatsError::new("need at least one trial"));
    }
    if successes > n {
        return Err(StatsError::new(format!(
            "successes ({successes}) cannot exceed trials ({n})"
        )));
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(StatsError::new(format!(
            "confidence must be in (0,1), got {confidence}"
        )));
    }
    let z = standard_normal_quantile(0.5 + confidence / 2.0);
    let nf = n as f64;
    let p = successes as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = z * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt() / denom;
    Ok(((center - half).max(0.0), (center + half).min(1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_rejects_bad_input() {
        assert!(mean_confidence_interval(0.0, 1.0, 0, 0.95).is_err());
        assert!(mean_confidence_interval(0.0, -1.0, 10, 0.95).is_err());
        assert!(mean_confidence_interval(0.0, 1.0, 10, 0.0).is_err());
        assert!(mean_confidence_interval(0.0, 1.0, 10, 1.0).is_err());
    }

    #[test]
    fn mean_ci_shrinks_with_n() {
        let (lo1, hi1) = mean_confidence_interval(0.0, 1.0, 10, 0.95).unwrap();
        let (lo2, hi2) = mean_confidence_interval(0.0, 1.0, 1000, 0.95).unwrap();
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn mean_ci_grows_with_confidence() {
        let (lo1, hi1) = mean_confidence_interval(0.0, 1.0, 100, 0.68).unwrap();
        let (lo2, hi2) = mean_confidence_interval(0.0, 1.0, 100, 0.95).unwrap();
        assert!(hi2 - lo2 > hi1 - lo1);
        assert!(lo2 < lo1 && hi2 > hi1);
    }

    #[test]
    fn wilson_rejects_bad_input() {
        assert!(wilson_interval(1, 0, 0.95).is_err());
        assert!(wilson_interval(5, 4, 0.95).is_err());
        assert!(wilson_interval(1, 10, 1.5).is_err());
    }

    #[test]
    fn wilson_contains_point_estimate() {
        let (lo, hi) = wilson_interval(30, 100, 0.95).unwrap();
        assert!(lo < 0.3 && 0.3 < hi);
    }

    #[test]
    fn wilson_clamped_to_unit_interval() {
        let (lo, _) = wilson_interval(0, 5, 0.99).unwrap();
        let (_, hi) = wilson_interval(5, 5, 0.99).unwrap();
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 1.0);
    }
}
