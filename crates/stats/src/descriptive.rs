//! Descriptive statistics: summaries, quantiles, histograms.

use crate::StatsError;

/// A complete descriptive summary of a sample of `f64` values.
///
/// This is what the `Uncertain<T>` runtime returns from its `stats(n)`
/// evaluation operator, and what the benchmark harness prints for every
/// figure series.
///
/// # Examples
///
/// ```
/// use uncertain_stats::Summary;
///
/// # fn main() -> Result<(), uncertain_stats::StatsError> {
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0])?;
/// assert_eq!(s.mean(), 3.0);
/// assert_eq!(s.median(), 3.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    variance: f64,
}

impl Summary {
    /// Computes a summary from a slice of values.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if `data` is empty or contains non-finite
    /// values.
    pub fn from_slice(data: &[f64]) -> Result<Self, StatsError> {
        if data.is_empty() {
            return Err(StatsError::new("cannot summarize an empty sample"));
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::new("sample contains non-finite values"));
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let variance = if data.len() < 2 {
            0.0
        } else {
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        };
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
        Ok(Self {
            sorted,
            mean,
            variance,
        })
    }

    /// Reassembles a summary from its constituent parts — an already
    /// **sorted** observation vector plus the mean and unbiased variance
    /// computed from it. This is the deserialization entry point for
    /// shipping summaries across a network: pairing it with
    /// [`Summary::sorted_values`] round-trips a summary bitwise.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if `sorted` is empty, contains non-finite
    /// values, or is not in ascending order, or if `mean`/`variance` are
    /// not finite.
    pub fn from_parts(sorted: Vec<f64>, mean: f64, variance: f64) -> Result<Self, StatsError> {
        if sorted.is_empty() {
            return Err(StatsError::new("cannot summarize an empty sample"));
        }
        if sorted.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::new("sample contains non-finite values"));
        }
        if sorted.windows(2).any(|w| w[0] > w[1]) {
            return Err(StatsError::new("summary observations are not sorted"));
        }
        if !mean.is_finite() || !variance.is_finite() {
            return Err(StatsError::new("summary moments must be finite"));
        }
        Ok(Self {
            sorted,
            mean,
            variance,
        })
    }

    /// The observations in ascending order — the serialization twin of
    /// [`Summary::from_parts`].
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for a single observation).
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        self.std_dev() / (self.count() as f64).sqrt()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("summary is never empty")
    }

    /// Median (the 0.5 quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Linear-interpolated sample quantile at probability `p ∈ [0, 1]`.
    ///
    /// Out-of-range `p` is clamped.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let pos = p * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// A symmetric interval `[quantile((1−c)/2), quantile((1+c)/2)]`
    /// covering fraction `c` of the sample — the empirical analogue of a
    /// confidence region for the *distribution* (e.g. `c = 0.95` for the
    /// paper's 95% confidence intervals on speed).
    pub fn coverage_interval(&self, c: f64) -> (f64, f64) {
        let c = c.clamp(0.0, 1.0);
        (
            self.quantile((1.0 - c) / 2.0),
            self.quantile((1.0 + c) / 2.0),
        )
    }
}

impl std::fmt::Display for Summary {
    /// One-line summary: `n=…, mean=… ± σ, median, [min, max]`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} ±{:.4} median={:.4} range=[{:.4}, {:.4}]",
            self.count(),
            self.mean(),
            self.std_dev(),
            self.median(),
            self.min(),
            self.max()
        )
    }
}

/// A fixed-width histogram over an interval.
///
/// # Examples
///
/// ```
/// use uncertain_stats::Histogram;
///
/// # fn main() -> Result<(), uncertain_stats::StatsError> {
/// let mut h = Histogram::new(0.0, 10.0, 5)?;
/// for x in [1.0, 1.5, 7.2, 9.9, -3.0] {
///     h.add(x);
/// }
/// assert_eq!(h.count(0), 2);       // [0, 2)
/// assert_eq!(h.underflow(), 1);    // -3.0
/// assert_eq!(h.total(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins on `[low, high)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] unless `low < high` and `bins ≥ 1`.
    pub fn new(low: f64, high: f64, bins: usize) -> Result<Self, StatsError> {
        if low >= high || !low.is_finite() || !high.is_finite() {
            return Err(StatsError::new(format!(
                "histogram requires finite low < high, got [{low}, {high})"
            )));
        }
        if bins == 0 {
            return Err(StatsError::new("histogram needs at least one bin"));
        }
        Ok(Self {
            low,
            high,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Lower edge of the histogram range.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper edge of the histogram range.
    pub fn high(&self) -> f64 {
        self.high
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Adds an observation.
    pub fn add(&mut self, x: f64) {
        let low = self.low();
        let high = self.high();
        if x < low {
            self.underflow += 1;
        } else if x >= high {
            self.overflow += 1;
        } else {
            let idx = ((x - low) / (high - low) * self.counts.len() as f64) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Count in bin `i` (0 if out of range).
    pub fn count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations added (including under/overflow).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.high() - self.low()) / self.counts.len() as f64;
        self.low() + (i as f64 + 0.5) * width
    }

    /// Renders a one-line-per-bin ASCII bar chart, used by the figure
    /// binaries to "plot" distributions in the terminal.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!(
                "{:>10.3} | {:<width$} {}\n",
                self.bin_center(i),
                bar,
                c
            ));
        }
        out
    }

    /// Iterates over `(bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_center(i), c))
    }
}

impl Histogram {
    /// Merges another histogram with identical bounds and bin count.
    ///
    /// # Panics
    ///
    /// Panics if the configurations differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            (self.low, self.high, self.counts.len()),
            (other.low, other.high, other.counts.len()),
            "histograms must share bounds and bin count"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Approximate quantile from the binned counts (linear within bins;
    /// under/overflow contribute at the edges). Returns `None` when the
    /// histogram is empty.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let target = p * total as f64;
        let mut acc = self.underflow as f64;
        if target <= acc {
            return Some(self.low);
        }
        let width = (self.high - self.low) / self.counts.len() as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = acc + c as f64;
            if target <= next && c > 0 {
                let frac = (target - acc) / c as f64;
                return Some(self.low + (i as f64 + frac) * width);
            }
            acc = next;
        }
        Some(self.high)
    }
}

impl Extend<f64> for Histogram {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_rejects_bad_input() {
        assert!(Summary::from_slice(&[]).is_err());
        assert!(Summary::from_slice(&[1.0, f64::NAN]).is_err());
        assert!(Summary::from_slice(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::from_slice(&[4.2]).unwrap();
        assert_eq!(s.mean(), 4.2);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.median(), 4.2);
        assert_eq!(s.quantile(0.9), 4.2);
    }

    #[test]
    fn summary_known_values() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.mean(), 5.0);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Summary::from_slice(&[0.0, 10.0]).unwrap();
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(0.5), 5.0);
        assert_eq!(s.quantile(1.0), 10.0);
        assert_eq!(s.quantile(-1.0), 0.0); // clamped
        assert_eq!(s.quantile(2.0), 10.0); // clamped
    }

    #[test]
    fn coverage_interval_nested() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = Summary::from_slice(&data).unwrap();
        let (lo95, hi95) = s.coverage_interval(0.95);
        let (lo50, hi50) = s.coverage_interval(0.50);
        assert!(lo95 < lo50 && hi50 < hi95);
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.extend([0.0, 0.24, 0.25, 0.5, 0.99, 1.0, -0.1]);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 7);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-9);
    }

    #[test]
    fn histogram_rejects_bad_config() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 2).is_err());
    }

    #[test]
    fn summary_display_is_informative() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0]).unwrap();
        let text = s.to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("mean=2.0000"));
        assert!(text.contains("median=2.0000"));
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new(0.0, 1.0, 4).unwrap();
        a.extend([0.1, 0.6]);
        let mut b = Histogram::new(0.0, 1.0, 4).unwrap();
        b.extend([0.1, 0.9, 2.0]);
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "share bounds")]
    fn histogram_merge_rejects_mismatch() {
        let mut a = Histogram::new(0.0, 1.0, 4).unwrap();
        let b = Histogram::new(0.0, 2.0, 4).unwrap();
        a.merge(&b);
    }

    #[test]
    fn histogram_quantile_tracks_data() {
        let mut h = Histogram::new(0.0, 100.0, 100).unwrap();
        h.extend((0..1000).map(|i| i as f64 / 10.0));
        assert_eq!(Histogram::new(0.0, 1.0, 2).unwrap().quantile(0.5), None);
        let q50 = h.quantile(0.5).unwrap();
        let q90 = h.quantile(0.9).unwrap();
        assert!((q50 - 50.0).abs() < 1.5, "q50={q50}");
        assert!((q90 - 90.0).abs() < 1.5, "q90={q90}");
        assert!(h.quantile(0.0).unwrap() <= q50);
    }

    #[test]
    fn histogram_render_contains_counts() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        h.extend([0.5, 0.6, 1.5]);
        let s = h.render(20);
        assert!(s.contains('#'));
        assert!(s.lines().count() == 2);
    }
}
