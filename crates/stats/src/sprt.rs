//! Wald's sequential probability ratio test (SPRT).
//!
//! The paper (§4.3) decides every conditional on uncertain data with an
//! SPRT: draw a batch of `k` Bernoulli samples, update the log-likelihood
//! ratio, stop as soon as the evidence crosses a boundary, and cap the
//! total sample size to guarantee termination. "Wald's SPRT is optimal in
//! terms of average sample size" — this module is a faithful, reusable
//! implementation of that design.

use crate::StatsError;

/// Outcome category of a sequential test step or run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestDecision {
    /// The evidence favors the alternative hypothesis `H₁: p ≥ p₁`.
    AcceptAlternative,
    /// The evidence favors the null hypothesis `H₀: p ≤ p₀`.
    AcceptNull,
    /// Neither boundary has been crossed yet; more samples are needed.
    Continue,
}

/// The boundaries and likelihood model of one Wald SPRT.
///
/// Tests `H₀: p = p₀` against `H₁: p = p₁` (with `p₀ < p₁`) for the
/// parameter `p` of a Bernoulli distribution, with type-I error bound `α`
/// (false acceptance of `H₁`) and type-II error bound `β` (false acceptance
/// of `H₀`).
///
/// # Examples
///
/// ```
/// use uncertain_stats::{Sprt, TestDecision};
///
/// # fn main() -> Result<(), uncertain_stats::StatsError> {
/// let sprt = Sprt::new(0.45, 0.55, 0.05, 0.05)?;
/// // 90 successes out of 100 is overwhelming evidence for H₁.
/// assert_eq!(sprt.decide(90, 100), TestDecision::AcceptAlternative);
/// // 50/100 is inside the indifference region: keep sampling.
/// assert_eq!(sprt.decide(50, 100), TestDecision::Continue);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sprt {
    p0: f64,
    p1: f64,
    alpha: f64,
    beta: f64,
    /// ln((1−β)/α): accept H₁ at or above this log-likelihood ratio.
    upper: f64,
    /// ln(β/(1−α)): accept H₀ at or below this log-likelihood ratio.
    lower: f64,
    /// Per-success increment of the LLR: ln(p₁/p₀).
    success_step: f64,
    /// Per-failure increment of the LLR: ln((1−p₁)/(1−p₀)).
    failure_step: f64,
}

impl Sprt {
    /// Creates an SPRT of `H₀: p = p0` vs `H₁: p = p1`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] unless `0 < p0 < p1 < 1` and
    /// `alpha, beta ∈ (0, 1)`.
    pub fn new(p0: f64, p1: f64, alpha: f64, beta: f64) -> Result<Self, StatsError> {
        if !(p0 > 0.0 && p1 < 1.0 && p0 < p1) {
            return Err(StatsError::new(format!(
                "sprt requires 0 < p0 < p1 < 1, got p0={p0}, p1={p1}"
            )));
        }
        for (name, v) in [("alpha", alpha), ("beta", beta)] {
            if !(v > 0.0 && v < 1.0) {
                return Err(StatsError::new(format!("{name} must be in (0,1), got {v}")));
            }
        }
        Ok(Self {
            p0,
            p1,
            alpha,
            beta,
            upper: ((1.0 - beta) / alpha).ln(),
            lower: (beta / (1.0 - alpha)).ln(),
            success_step: (p1 / p0).ln(),
            failure_step: ((1.0 - p1) / (1.0 - p0)).ln(),
        })
    }

    /// Builds the SPRT the `Uncertain<T>` runtime uses for a conditional at
    /// probability `threshold`, with an indifference half-width `delta`:
    /// `H₀: p ≤ threshold − δ` vs `H₁: p ≥ threshold + δ`, clamped away from
    /// 0 and 1.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if `threshold ∈ (0, 1)` does not hold, or
    /// `delta`, `alpha`, `beta` are out of range.
    pub fn for_threshold(
        threshold: f64,
        delta: f64,
        alpha: f64,
        beta: f64,
    ) -> Result<Self, StatsError> {
        if !(threshold > 0.0 && threshold < 1.0) {
            return Err(StatsError::new(format!(
                "conditional threshold must be in (0,1), got {threshold}"
            )));
        }
        if !(delta > 0.0 && delta < 0.5) {
            return Err(StatsError::new(format!(
                "indifference delta must be in (0, 0.5), got {delta}"
            )));
        }
        let floor = 1e-4;
        let p0 = (threshold - delta).max(floor);
        let p1 = (threshold + delta).min(1.0 - floor);
        Self::new(p0, p1, alpha, beta)
    }

    /// The null-hypothesis parameter `p₀`.
    pub fn p0(&self) -> f64 {
        self.p0
    }

    /// The alternative-hypothesis parameter `p₁`.
    pub fn p1(&self) -> f64 {
        self.p1
    }

    /// Bound on the type-I error (accepting `H₁` when `H₀` is true).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Bound on the type-II error (accepting `H₀` when `H₁` is true).
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The accept-H₁ boundary `ln((1−β)/α)`: the test stops and accepts
    /// the alternative once the log-likelihood ratio reaches this value.
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// The accept-H₀ boundary `ln(β/(1−α))`: the test stops and accepts
    /// the null once the log-likelihood ratio falls to this value.
    pub fn lower(&self) -> f64 {
        self.lower
    }

    /// The log-likelihood ratio after observing `successes` out of `n`
    /// Bernoulli samples.
    pub fn log_likelihood_ratio(&self, successes: u64, n: u64) -> f64 {
        debug_assert!(successes <= n);
        successes as f64 * self.success_step + (n - successes) as f64 * self.failure_step
    }

    /// Applies Wald's stopping rule to the current counts.
    pub fn decide(&self, successes: u64, n: u64) -> TestDecision {
        let llr = self.log_likelihood_ratio(successes, n);
        if llr >= self.upper {
            TestDecision::AcceptAlternative
        } else if llr <= self.lower {
            TestDecision::AcceptNull
        } else {
            TestDecision::Continue
        }
    }
}

/// Result of running a [`SequentialTest`] to completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestOutcome {
    /// The final decision ([`TestDecision::Continue`] never appears here;
    /// hitting the sample cap falls back to the empirical estimate and is
    /// flagged by `conclusive = false`).
    pub decision: TestDecision,
    /// Total number of Bernoulli samples drawn.
    pub samples: usize,
    /// Number of `true` samples observed.
    pub successes: u64,
    /// The empirical estimate `successes / samples`.
    pub estimate: f64,
    /// `true` if a Wald boundary was crossed; `false` if the max-sample cap
    /// forced a fallback decision (paper §4.3: the artificial cap slightly
    /// perturbs the nominal error rates).
    pub conclusive: bool,
}

impl TestOutcome {
    /// Whether the alternative hypothesis was accepted.
    pub fn accepted(&self) -> bool {
        self.decision == TestDecision::AcceptAlternative
    }
}

/// A batched, capped runner for a Wald [`Sprt`] — the exact procedure of
/// paper §4.3: draw `batch` samples, test, repeat until significant or the
/// cap is reached.
///
/// # Examples
///
/// ```
/// use uncertain_stats::SequentialTest;
/// use rand::{Rng, SeedableRng};
///
/// # fn main() -> Result<(), uncertain_stats::StatsError> {
/// let test = SequentialTest::at_threshold(0.9)?; // evidence must exceed 90%
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let outcome = test.run(|| rng.gen::<f64>() < 0.5); // true p = 0.5
/// assert!(!outcome.accepted());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialTest {
    sprt: Sprt,
    threshold: f64,
    batch: usize,
    max_samples: usize,
}

impl SequentialTest {
    /// Default indifference-region half-width `δ`.
    pub const DEFAULT_DELTA: f64 = 0.05;
    /// Default type-I error bound `α`.
    pub const DEFAULT_ALPHA: f64 = 0.05;
    /// Default type-II error bound `β`.
    pub const DEFAULT_BETA: f64 = 0.05;
    /// Default batch size `k` (the paper suggests `k = 10`).
    pub const DEFAULT_BATCH: usize = 10;
    /// Default termination cap on the total sample count.
    pub const DEFAULT_MAX_SAMPLES: usize = 1000;

    /// Creates a sequential test for `Pr[X] > threshold` with the paper's
    /// default parameters (`δ = 0.05`, `α = β = 0.05`, `k = 10`,
    /// cap = 1000).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if `threshold ∉ (0, 1)`.
    pub fn at_threshold(threshold: f64) -> Result<Self, StatsError> {
        Self::with_params(
            threshold,
            Self::DEFAULT_DELTA,
            Self::DEFAULT_ALPHA,
            Self::DEFAULT_BETA,
            Self::DEFAULT_BATCH,
            Self::DEFAULT_MAX_SAMPLES,
        )
    }

    /// Creates a fully parameterized sequential test.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] for out-of-range probabilities, a zero batch,
    /// or a cap smaller than one batch.
    pub fn with_params(
        threshold: f64,
        delta: f64,
        alpha: f64,
        beta: f64,
        batch: usize,
        max_samples: usize,
    ) -> Result<Self, StatsError> {
        if batch == 0 {
            return Err(StatsError::new("batch size must be at least 1"));
        }
        if max_samples < batch {
            return Err(StatsError::new(format!(
                "max_samples ({max_samples}) must be at least the batch size ({batch})"
            )));
        }
        Ok(Self {
            sprt: Sprt::for_threshold(threshold, delta, alpha, beta)?,
            threshold,
            batch,
            max_samples,
        })
    }

    /// The underlying Wald SPRT.
    pub fn sprt(&self) -> &Sprt {
        &self.sprt
    }

    /// The conditional threshold being tested.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The batch size `k`.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The termination cap.
    pub fn max_samples(&self) -> usize {
        self.max_samples
    }

    /// Runs the test to completion, pulling Bernoulli samples from `gen`.
    ///
    /// Draws `batch` samples at a time and applies Wald's stopping rule
    /// after each batch. If the cap is reached without crossing a boundary,
    /// the decision falls back to comparing the empirical estimate against
    /// the threshold and the outcome is marked inconclusive.
    pub fn run(&self, mut gen: impl FnMut() -> bool) -> TestOutcome {
        let mut n: usize = 0;
        let mut successes: u64 = 0;
        while n < self.max_samples {
            let take = self.batch.min(self.max_samples - n);
            for _ in 0..take {
                if gen() {
                    successes += 1;
                }
            }
            n += take;
            match self.sprt.decide(successes, n as u64) {
                TestDecision::Continue => continue,
                decision => {
                    return TestOutcome {
                        decision,
                        samples: n,
                        successes,
                        estimate: successes as f64 / n as f64,
                        conclusive: true,
                    }
                }
            }
        }
        let estimate = successes as f64 / n as f64;
        TestOutcome {
            decision: if estimate > self.threshold {
                TestDecision::AcceptAlternative
            } else {
                TestDecision::AcceptNull
            },
            samples: n,
            successes,
            estimate,
            conclusive: false,
        }
    }

    /// Runs the test to completion, pulling whole batches of Bernoulli
    /// samples from `gen_batch` — the hook for samplers that amortize
    /// per-sample overhead across a batch (compiled evaluation plans,
    /// parallel batch sampling).
    ///
    /// `gen_batch(k)` must return exactly `k` samples. The stopping rule,
    /// batch schedule, and cap fallback are identical to
    /// [`SequentialTest::run`]: given the same underlying sample stream,
    /// both runners produce the same [`TestOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if `gen_batch` returns a batch of the wrong length.
    pub fn run_batched(&self, gen_batch: impl FnMut(usize) -> Vec<bool>) -> TestOutcome {
        self.run_batched_while(gen_batch, |_| true)
            .expect("unconditional keep_going never aborts")
    }

    /// [`SequentialTest::run_batched`] with a cooperative abort hook for
    /// callers that bound a test's wall-clock time (request deadlines in an
    /// evaluation service).
    ///
    /// `keep_going(n)` is consulted before every batch (including the
    /// first) with the number of samples drawn so far; returning `false`
    /// abandons the test and the runner yields `None`. When `keep_going`
    /// stays `true` the outcome — decision, sample count, estimate — is
    /// exactly the [`SequentialTest::run_batched`] outcome for the same
    /// sample stream, so the hook never perturbs a test it does not abort.
    ///
    /// # Panics
    ///
    /// Panics if `gen_batch` returns a batch of the wrong length.
    pub fn run_batched_while(
        &self,
        mut gen_batch: impl FnMut(usize) -> Vec<bool>,
        keep_going: impl FnMut(usize) -> bool,
    ) -> Option<TestOutcome> {
        self.run_counted_while(
            |take| {
                let batch = gen_batch(take);
                assert_eq!(
                    batch.len(),
                    take,
                    "sequential test asked for {take} samples"
                );
                batch.iter().filter(|&&b| b).count() as u64
            },
            keep_going,
        )
    }

    /// The batch runner in *counted* form: `successes_of(k)` draws exactly
    /// `k` Bernoulli samples and returns how many were `true`.
    ///
    /// This is the natural hook for columnar samplers that materialise a
    /// whole `bool` column at once — the caller counts successes off its
    /// own buffer instead of handing the runner a fresh `Vec<bool>` per
    /// batch. Stopping rule, batch schedule, cap fallback, and the
    /// `keep_going` abort contract are identical to
    /// [`SequentialTest::run_batched_while`]: for the same underlying
    /// sample stream all the runners produce the same [`TestOutcome`].
    pub fn run_counted_while(
        &self,
        mut successes_of: impl FnMut(usize) -> u64,
        mut keep_going: impl FnMut(usize) -> bool,
    ) -> Option<TestOutcome> {
        let mut n: usize = 0;
        let mut successes: u64 = 0;
        while n < self.max_samples {
            if !keep_going(n) {
                return None;
            }
            let take = self.batch.min(self.max_samples - n);
            successes += successes_of(take);
            n += take;
            match self.sprt.decide(successes, n as u64) {
                TestDecision::Continue => continue,
                decision => {
                    return Some(TestOutcome {
                        decision,
                        samples: n,
                        successes,
                        estimate: successes as f64 / n as f64,
                        conclusive: true,
                    })
                }
            }
        }
        let estimate = successes as f64 / n as f64;
        Some(TestOutcome {
            decision: if estimate > self.threshold {
                TestDecision::AcceptAlternative
            } else {
                TestDecision::AcceptNull
            },
            samples: n,
            successes,
            estimate,
            conclusive: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rejects_bad_params() {
        assert!(Sprt::new(0.5, 0.5, 0.05, 0.05).is_err());
        assert!(Sprt::new(0.6, 0.4, 0.05, 0.05).is_err());
        assert!(Sprt::new(0.0, 0.5, 0.05, 0.05).is_err());
        assert!(Sprt::new(0.4, 1.0, 0.05, 0.05).is_err());
        assert!(Sprt::new(0.4, 0.6, 0.0, 0.05).is_err());
        assert!(Sprt::new(0.4, 0.6, 0.05, 1.0).is_err());
        assert!(SequentialTest::at_threshold(0.0).is_err());
        assert!(SequentialTest::at_threshold(1.0).is_err());
        assert!(SequentialTest::with_params(0.5, 0.05, 0.05, 0.05, 0, 100).is_err());
        assert!(SequentialTest::with_params(0.5, 0.05, 0.05, 0.05, 10, 5).is_err());
    }

    #[test]
    fn threshold_clamping_near_edges() {
        // threshold 0.97 with δ=0.05 would push p1 past 1; must clamp.
        let s = Sprt::for_threshold(0.97, 0.05, 0.05, 0.05).unwrap();
        assert!(s.p1() < 1.0);
        assert!(s.p0() < s.p1());
        let s = Sprt::for_threshold(0.03, 0.05, 0.05, 0.05).unwrap();
        assert!(s.p0() > 0.0);
    }

    #[test]
    fn llr_monotone_in_successes() {
        let s = Sprt::new(0.45, 0.55, 0.05, 0.05).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=50 {
            let llr = s.log_likelihood_ratio(k, 50);
            assert!(llr > prev);
            prev = llr;
        }
    }

    #[test]
    fn obvious_cases_decide_quickly() {
        let t = SequentialTest::at_threshold(0.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        // p = 0.95: should accept H1 in very few batches.
        let o = t.run(|| rng.gen::<f64>() < 0.95);
        assert!(o.accepted());
        assert!(o.conclusive);
        assert!(o.samples <= 50, "samples={}", o.samples);
        // p = 0.05: should accept H0 quickly.
        let o = t.run(|| rng.gen::<f64>() < 0.05);
        assert!(!o.accepted());
        assert!(o.conclusive);
        assert!(o.samples <= 50, "samples={}", o.samples);
    }

    #[test]
    fn hard_cases_use_more_samples() {
        let t = SequentialTest::at_threshold(0.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut easy_total = 0usize;
        let mut hard_total = 0usize;
        for _ in 0..50 {
            easy_total += t.run(|| rng.gen::<f64>() < 0.9).samples;
            hard_total += t.run(|| rng.gen::<f64>() < 0.55).samples;
        }
        assert!(
            hard_total > 2 * easy_total,
            "hard={hard_total} easy={easy_total}"
        );
    }

    #[test]
    fn indifferent_case_hits_cap() {
        // True p exactly at the threshold: the SPRT should frequently hit
        // the cap and fall back (inconclusive).
        let t = SequentialTest::with_params(0.5, 0.05, 0.05, 0.05, 10, 200).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let inconclusive = (0..100)
            .filter(|_| !t.run(|| rng.gen::<f64>() < 0.5).conclusive)
            .count();
        assert!(inconclusive > 40, "inconclusive={inconclusive}");
    }

    #[test]
    fn error_rates_within_bounds() {
        // With true p = p1, the rate of false H0 acceptance must be ~≤ β.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let t = SequentialTest::with_params(0.5, 0.1, 0.05, 0.05, 10, 5000).unwrap();
        let trials = 300;
        let false_negatives = (0..trials)
            .filter(|_| !t.run(|| rng.gen::<f64>() < 0.6).accepted())
            .count() as f64
            / trials as f64;
        assert!(false_negatives < 0.10, "fnr={false_negatives}");
        let false_positives = (0..trials)
            .filter(|_| t.run(|| rng.gen::<f64>() < 0.4).accepted())
            .count() as f64
            / trials as f64;
        assert!(false_positives < 0.10, "fpr={false_positives}");
    }

    #[test]
    fn outcome_accounting_is_consistent() {
        let t = SequentialTest::at_threshold(0.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let o = t.run(|| rng.gen::<f64>() < 0.7);
        assert!(o.successes as usize <= o.samples);
        assert!((o.estimate - o.successes as f64 / o.samples as f64).abs() < 1e-12);
        assert_eq!(o.samples % t.batch(), 0);
    }

    #[test]
    fn run_batched_matches_run_on_the_same_stream() {
        let t = SequentialTest::at_threshold(0.5).unwrap();
        for (seed, p) in [(10, 0.9), (11, 0.55), (12, 0.1), (13, 0.5)] {
            let mut a = rand::rngs::StdRng::seed_from_u64(seed);
            let serial = t.run(|| a.gen::<f64>() < p);
            let mut b = rand::rngs::StdRng::seed_from_u64(seed);
            let batched = t.run_batched(|k| (0..k).map(|_| b.gen::<f64>() < p).collect());
            assert_eq!(serial, batched, "seed {seed} p {p}");
        }
    }

    #[test]
    fn run_batched_while_matches_run_batched_when_not_aborted() {
        let t = SequentialTest::at_threshold(0.5).unwrap();
        for (seed, p) in [(20, 0.9), (21, 0.55), (22, 0.1), (23, 0.5)] {
            let mut a = rand::rngs::StdRng::seed_from_u64(seed);
            let plain = t.run_batched(|k| (0..k).map(|_| a.gen::<f64>() < p).collect());
            let mut b = rand::rngs::StdRng::seed_from_u64(seed);
            let gated = t
                .run_batched_while(|k| (0..k).map(|_| b.gen::<f64>() < p).collect(), |_| true)
                .unwrap();
            assert_eq!(plain, gated, "seed {seed} p {p}");
        }
    }

    #[test]
    fn run_counted_while_matches_run_batched() {
        let t = SequentialTest::at_threshold(0.5).unwrap();
        for (seed, p) in [(30, 0.9), (31, 0.55), (32, 0.1), (33, 0.5)] {
            let mut a = rand::rngs::StdRng::seed_from_u64(seed);
            let plain = t.run_batched(|k| (0..k).map(|_| a.gen::<f64>() < p).collect());
            let mut b = rand::rngs::StdRng::seed_from_u64(seed);
            let counted = t
                .run_counted_while(
                    |k| (0..k).filter(|_| b.gen::<f64>() < p).count() as u64,
                    |_| true,
                )
                .unwrap();
            assert_eq!(plain, counted, "seed {seed} p {p}");
        }
    }

    #[test]
    fn run_batched_while_aborts_between_batches() {
        // A marginal test (never crosses a boundary early) aborted after
        // the third batch: the runner stops at a batch edge, having drawn
        // exactly the samples it was allowed.
        let t = SequentialTest::with_params(0.5, 0.01, 0.05, 0.05, 10, 100_000).unwrap();
        let mut drawn = 0usize;
        let mut alternating = false;
        let out = t.run_batched_while(
            |k| {
                drawn += k;
                (0..k)
                    .map(|_| {
                        alternating = !alternating;
                        alternating
                    })
                    .collect()
            },
            |n| n < 30,
        );
        assert_eq!(out, None);
        assert_eq!(drawn, 30, "aborted before the fourth batch");
    }

    #[test]
    fn run_batched_while_can_refuse_to_start() {
        let t = SequentialTest::at_threshold(0.5).unwrap();
        let out = t.run_batched_while(|_| unreachable!("never sampled"), |_| false);
        assert_eq!(out, None);
    }

    #[test]
    #[should_panic(expected = "sequential test asked for")]
    fn run_batched_rejects_short_batches() {
        let t = SequentialTest::at_threshold(0.5).unwrap();
        let _ = t.run_batched(|k| vec![true; k.saturating_sub(1)]);
    }

    #[test]
    fn cap_is_respected() {
        let t = SequentialTest::with_params(0.5, 0.01, 0.05, 0.05, 7, 100).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let o = t.run(|| rng.gen::<f64>() < 0.5);
        assert!(o.samples <= 100);
    }
}
