//! One-sample Kolmogorov–Smirnov goodness-of-fit test.
//!
//! Validates that a sampling function really draws from the distribution
//! it claims to — the approximation-error audit the repository's test
//! suites run against every distribution (`Uncertain<T>` is only as sound
//! as its leaves).

use crate::StatsError;

/// Result of a one-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsOutcome {
    /// The KS statistic `D = sup |F_n(x) − F(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value of observing a deviation at least this large
    /// under the null hypothesis that the sample comes from `F`.
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

impl KsOutcome {
    /// Whether the null hypothesis survives at significance `alpha`.
    pub fn fits(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Runs a one-sample KS test of `sample` against the CDF `cdf`.
///
/// # Errors
///
/// Returns [`StatsError`] if the sample is empty or contains non-finite
/// values.
///
/// # Examples
///
/// ```
/// use uncertain_stats::ks_test;
///
/// # fn main() -> Result<(), uncertain_stats::StatsError> {
/// // A perfectly spaced uniform grid fits the uniform CDF.
/// let sample: Vec<f64> = (0..100).map(|i| (i as f64 + 0.5) / 100.0).collect();
/// let outcome = ks_test(&sample, |x| x.clamp(0.0, 1.0))?;
/// assert!(outcome.fits(0.05));
/// // …and clearly does not fit a squashed CDF.
/// let bad = ks_test(&sample, |x| (x * x).clamp(0.0, 1.0))?;
/// assert!(!bad.fits(0.05));
/// # Ok(())
/// # }
/// ```
pub fn ks_test(sample: &[f64], cdf: impl Fn(f64) -> f64) -> Result<KsOutcome, StatsError> {
    if sample.is_empty() {
        return Err(StatsError::new("ks test needs a non-empty sample"));
    }
    if sample.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::new("ks test sample must be finite"));
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x).clamp(0.0, 1.0);
        let below = i as f64 / n;
        let above = (i as f64 + 1.0) / n;
        d = d.max((f - below).abs()).max((above - f).abs());
    }
    Ok(KsOutcome {
        statistic: d,
        p_value: ks_p_value(d, sorted.len()),
        n: sorted.len(),
    })
}

/// Asymptotic KS p-value: `Q(λ) = 2 Σ (−1)^{k−1} e^(−2k²λ²)` with the
/// standard small-sample correction `λ = (√n + 0.12 + 0.11/√n)·D`.
fn ks_p_value(d: f64, n: usize) -> f64 {
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = sign * (-2.0 * (k as f64 * lambda).powi(2)).exp();
        sum += term;
        if term.abs() < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use uncertain_dist::special::standard_normal_cdf;
    use uncertain_dist::{Distribution, Gaussian};

    #[test]
    fn rejects_bad_input() {
        assert!(ks_test(&[], |x| x).is_err());
        assert!(ks_test(&[f64::NAN], |x| x).is_err());
    }

    #[test]
    fn gaussian_samples_fit_gaussian_cdf() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(60);
        let sample: Vec<f64> = (0..2000).map(|_| g.sample(&mut rng)).collect();
        let outcome = ks_test(&sample, standard_normal_cdf).unwrap();
        assert!(
            outcome.fits(0.01),
            "D={} p={}",
            outcome.statistic,
            outcome.p_value
        );
    }

    #[test]
    fn gaussian_samples_reject_shifted_cdf() {
        let g = Gaussian::new(0.3, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        let sample: Vec<f64> = (0..2000).map(|_| g.sample(&mut rng)).collect();
        let outcome = ks_test(&sample, standard_normal_cdf).unwrap();
        assert!(!outcome.fits(0.01), "should reject a 0.3σ shift");
    }

    #[test]
    fn uniform_noise_rejects_gaussian() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(62);
        let sample: Vec<f64> = (0..1000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let outcome = ks_test(&sample, standard_normal_cdf).unwrap();
        assert!(!outcome.fits(0.01));
    }

    #[test]
    fn p_value_bounds() {
        let outcome = ks_test(&[0.5], |x| x.clamp(0.0, 1.0)).unwrap();
        assert!((0.0..=1.0).contains(&outcome.p_value));
        assert_eq!(outcome.n, 1);
    }
}
