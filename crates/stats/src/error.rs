//! Error type for invalid statistical-test configuration.

use std::fmt;

/// Returned when a hypothesis test or estimator is configured with invalid
/// parameters (probabilities outside `(0, 1)`, empty data, zero batch
/// sizes, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsError {
    what: String,
}

impl StatsError {
    /// Creates an error with a human-readable description.
    pub fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }

    /// The raw description, without the [`fmt::Display`] prefix — the
    /// serialization twin of [`StatsError::new`], so an error shipped
    /// across a network round-trips equal.
    pub fn what(&self) -> &str {
        &self.what
    }
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid statistics configuration: {}", self.what)
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        let e = StatsError::new("alpha must be in (0,1)");
        assert!(e.to_string().contains("alpha"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: std::error::Error + Send + Sync + 'static>() {}
        check::<StatsError>();
    }
}
