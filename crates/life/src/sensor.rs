//! Noisy binary sensors (paper §5.2: "we artificially induce zero-mean
//! Gaussian noise N(0, σ) on each of these sensors").

use uncertain_core::Uncertain;
use uncertain_dist::{Gaussian, ParamError};

/// A binary sensor corrupted by zero-mean Gaussian noise: sensing a cell
/// with true state `s ∈ {0, 1}` returns `s + N(0, σ)` — a real number, not
/// a bit.
///
/// # Examples
///
/// ```
/// use uncertain_core::Session;
/// use uncertain_life::NoisySensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sensor = NoisySensor::new(0.2)?;
/// let reading = sensor.uncertain(true);
/// let mut s = Session::seeded(0);
/// let v = s.sample(&reading);
/// assert!((v - 1.0).abs() < 1.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisySensor {
    sigma: f64,
}

impl NoisySensor {
    /// Creates a sensor with noise amplitude `sigma ≥ 0` (0 = perfect).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `sigma` is negative or not finite.
    pub fn new(sigma: f64) -> Result<Self, ParamError> {
        if sigma < 0.0 || !sigma.is_finite() {
            return Err(ParamError::new(format!(
                "noise amplitude must be non-negative and finite, got {sigma}"
            )));
        }
        Ok(Self { sigma })
    }

    /// The noise amplitude σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// One raw reading of a cell with true state `actual` — what NaiveLife
    /// consumes directly.
    pub fn sense(&self, actual: bool, rng: &mut dyn rand::RngCore) -> f64 {
        let s = if actual { 1.0 } else { 0.0 };
        if self.sigma == 0.0 {
            return s;
        }
        use uncertain_dist::Distribution;
        let noise = Gaussian::new(0.0, self.sigma).expect("sigma validated positive");
        s + noise.sample(rng)
    }

    /// The sensor as an uncertain value (the paper's `SenseNeighbor`): a
    /// fresh leaf whose sampling function re-reads the sensor. Each call
    /// creates a new leaf — distinct readings are independent.
    pub fn uncertain(&self, actual: bool) -> Uncertain<f64> {
        let sensor = *self;
        Uncertain::from_fn("sensor", move |rng| sensor.sense(actual, rng))
    }

    /// The expert-improved sensor of BayesLife (the paper's
    /// `SenseNeighborFixed`): each raw sample is snapped to the hypothesis
    /// (0 or 1) with the higher posterior probability. With equal priors
    /// and symmetric Gaussian likelihoods that is simply the closer of 0
    /// or 1 — i.e. thresholding at 0.5 (§5.2).
    pub fn uncertain_snapped(&self, actual: bool) -> Uncertain<f64> {
        self.uncertain(actual)
            .map("bayes snap", |v| if v > 0.5 { 1.0 } else { 0.0 })
    }

    /// The paper's suggested improvement on `SenseNeighborFixed` (§5.2):
    /// "a better implementation could calculate joint likelihoods with
    /// multiple samples, since each sample is drawn from the same
    /// underlying distribution." Each evaluation reads the sensor `reads`
    /// times and snaps the *mean* — the joint maximum-likelihood decision
    /// for i.i.d. Gaussian noise — shrinking the effective noise to
    /// `σ/√reads` and staying accurate well past the σ ≈ 0.4 breakdown of
    /// single-sample snapping.
    ///
    /// # Panics
    ///
    /// Panics if `reads == 0`.
    pub fn uncertain_snapped_joint(&self, actual: bool, reads: usize) -> Uncertain<f64> {
        assert!(reads > 0, "need at least one read");
        let sensor = *self;
        Uncertain::from_fn("bayes joint snap", move |rng| {
            let mean: f64 =
                (0..reads).map(|_| sensor.sense(actual, rng)).sum::<f64>() / reads as f64;
            if mean > 0.5 {
                1.0
            } else {
                0.0
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_core::Session;

    #[test]
    fn rejects_bad_sigma() {
        assert!(NoisySensor::new(-0.1).is_err());
        assert!(NoisySensor::new(f64::NAN).is_err());
        assert!(NoisySensor::new(0.0).is_ok());
    }

    #[test]
    fn zero_noise_is_exact() {
        let s = NoisySensor::new(0.0).unwrap();
        let mut rng = rand::rngs::OsRng;
        assert_eq!(s.sense(true, &mut rng), 1.0);
        assert_eq!(s.sense(false, &mut rng), 0.0);
    }

    #[test]
    fn readings_center_on_true_state() {
        let s = NoisySensor::new(0.3).unwrap();
        let mut session = Session::sequential(1);
        let live = s.uncertain(true);
        let dead = s.uncertain(false);
        let e_live = live.expected_value_in(&mut session, 5000);
        let e_dead = dead.expected_value_in(&mut session, 5000);
        assert!((e_live - 1.0).abs() < 0.02, "{e_live}");
        assert!(e_dead.abs() < 0.02, "{e_dead}");
    }

    #[test]
    fn distinct_readings_are_independent() {
        let s = NoisySensor::new(0.5).unwrap();
        let a = s.uncertain(true);
        let b = s.uncertain(true);
        let diff = a - b;
        let mut session = Session::sequential(2);
        let nonzero = (0..100).filter(|_| session.sample(&diff) != 0.0).count();
        assert!(nonzero > 95);
    }

    #[test]
    fn snapping_fixes_moderate_noise() {
        // At σ = 0.3, snapping restores the true bit with probability
        // Φ(0.5/0.3) ≈ 0.952.
        let s = NoisySensor::new(0.3).unwrap();
        let snapped = s.uncertain_snapped(true);
        let mut session = Session::sequential(3);
        let ok = (0..5000)
            .filter(|_| session.sample(&snapped) == 1.0)
            .count() as f64
            / 5000.0;
        assert!((ok - 0.952).abs() < 0.02, "ok={ok}");
    }

    #[test]
    fn joint_snapping_beats_single_at_high_noise() {
        // σ = 0.6: single-sample snapping is barely better than chance
        // (Φ(0.5/0.6) ≈ 0.80); 9 joint reads give Φ(0.5·3/0.6) ≈ 0.994.
        let s = NoisySensor::new(0.6).unwrap();
        let single = s.uncertain_snapped(true);
        let joint = s.uncertain_snapped_joint(true, 9);
        let mut session = Session::sequential(5);
        let acc = |u: &uncertain_core::Uncertain<f64>, session: &mut Session| {
            (0..4000).filter(|_| session.sample(u) == 1.0).count() as f64 / 4000.0
        };
        let acc_single = acc(&single, &mut session);
        let acc_joint = acc(&joint, &mut session);
        assert!((acc_single - 0.797).abs() < 0.03, "single={acc_single}");
        assert!(acc_joint > 0.98, "joint={acc_joint}");
    }

    #[test]
    fn snapped_values_are_binary() {
        let s = NoisySensor::new(1.0).unwrap();
        let snapped = s.uncertain_snapped(false);
        let mut session = Session::sequential(4);
        for _ in 0..200 {
            let v = session.sample(&snapped);
            assert!(v == 0.0 || v == 1.0);
        }
    }
}
