//! The three noisy Games of Life (paper §5.2): NaiveLife, SensorLife,
//! BayesLife.

use crate::board::Board;
use crate::sensor::NoisySensor;
use uncertain_core::{EvalConfig, Session, Uncertain};

/// One cell-update decision plus its sampling cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellDecision {
    /// The decided next state of the cell.
    pub alive: bool,
    /// Bernoulli/joint samples drawn to reach the decision (Fig. 14b's
    /// y-axis). NaiveLife always reports 1: it reads the world once.
    pub samples: u64,
}

/// A Game-of-Life implementation that decides cell updates from *noisy*
/// sensing of the current board.
pub trait LifeVariant {
    /// Short display name ("NaiveLife", …).
    fn name(&self) -> &'static str;

    /// Decides the next state of cell `(x, y)` by sensing `board` through
    /// noisy sensors.
    fn decide(&self, board: &Board, x: usize, y: usize, session: &mut Session) -> CellDecision;
}

/// Builds the paper's `CountLiveNeighbors`: the lifted sum of one uncertain
/// sensor reading per neighbor.
fn count_live_neighbors(
    sensor_reading: impl Fn(bool) -> Uncertain<f64>,
    board: &Board,
    x: usize,
    y: usize,
) -> Uncertain<f64> {
    let mut sum = Uncertain::point(0.0);
    for (nx, ny) in board.neighbors(x, y) {
        sum = sum + sensor_reading(board.get(nx, ny));
    }
    sum
}

/// Applies the Game-of-Life rules to an *uncertain* neighbor count with
/// hypothesis-tested conditionals — the shared decision procedure of
/// SensorLife and BayesLife (the code block of §5.2, with `NumLive == 3`
/// read as the calibrated `rounds_to(3)`).
///
/// `banded` selects the threshold style: the paper's literal integer
/// thresholds (`NumLive < 2`), which sit exactly on the noise
/// distribution's center when the true count equals the threshold
/// (evidence ≈ 0.5, an intrinsic error floor), or calibrated half-integer
/// bands (`NumLive < 1.5`) that ask the round-to-nearest-count question.
fn decide_uncertain(
    num_live: &Uncertain<f64>,
    is_alive: bool,
    banded: bool,
    session: &mut Session,
    config: &EvalConfig,
) -> CellDecision {
    let mut samples = 0u64;
    let mut implicit = |cond: &Uncertain<bool>| {
        let o = session.evaluate_with(cond, 0.5, config);
        samples += o.samples as u64;
        o.to_bool()
    };
    let (lo, hi) = if banded { (1.5, 3.5) } else { (2.0, 3.0) };
    let alive = if is_alive {
        if implicit(&num_live.lt(lo)) {
            false // underpopulation
        } else if implicit(&(num_live.ge(lo) & num_live.le(hi))) {
            true // survival
        } else if implicit(&num_live.gt(hi)) {
            false // overcrowding
        } else {
            is_alive // no rule conclusively fired
        }
    } else if implicit(&num_live.rounds_to(3)) {
        true // reproduction
    } else {
        false
    };
    CellDecision { alive, samples }
}

/// Fig. 14's "NaiveLife": reads each sensor once, sums the raw reals, and
/// branches directly on the noisy sum.
///
/// Both uncertainty bugs are left intact deliberately: small noise crosses
/// the integer thresholds of rules 1–3, and rule 4's float equality
/// `NumLive == 3.0` essentially never fires once noise is present, so
/// births are silently missed — a constant error floor at every noise
/// level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaiveLife {
    sensor: NoisySensor,
}

impl NaiveLife {
    /// Creates a NaiveLife reading through `sensor`.
    pub fn new(sensor: NoisySensor) -> Self {
        Self { sensor }
    }
}

impl LifeVariant for NaiveLife {
    fn name(&self) -> &'static str {
        "NaiveLife"
    }

    fn decide(&self, board: &Board, x: usize, y: usize, session: &mut Session) -> CellDecision {
        let sum: f64 = board
            .neighbors(x, y)
            .into_iter()
            .map(|(nx, ny)| self.sensor.sense(board.get(nx, ny), session.rng()))
            .sum();
        let is_alive = board.get(x, y);
        #[allow(clippy::float_cmp)] // the bug under study: exact float equality
        let alive = if is_alive {
            (2.0..=3.0).contains(&sum)
        } else {
            sum == 3.0 // ← the uncertainty bug: never true under noise
        };
        CellDecision { alive, samples: 1 }
    }
}

/// Fig. 14's "SensorLife": wraps each sensor in `Uncertain<f64>`, sums with
/// the lifted `+`, and evaluates every rule with a hypothesis test, so each
/// sensor may be sampled many times per update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorLife {
    sensor: NoisySensor,
    config: EvalConfig,
    banded: bool,
}

impl SensorLife {
    /// Creates a SensorLife reading through `sensor` with the default
    /// conditional configuration and the paper's literal integer
    /// thresholds.
    pub fn new(sensor: NoisySensor) -> Self {
        Self {
            sensor,
            config: EvalConfig::default(),
            banded: false,
        }
    }

    /// Returns a copy using a custom hypothesis-test configuration.
    pub fn with_config(mut self, config: EvalConfig) -> Self {
        self.config = config;
        self
    }

    /// Returns a copy using calibrated half-integer thresholds
    /// (`NumLive < 1.5` instead of `NumLive < 2`) — an ablation: the
    /// literal integer thresholds put boundary counts exactly at
    /// evidence 0.5, an error floor no sampling budget can remove.
    pub fn banded(mut self) -> Self {
        self.banded = true;
        self
    }
}

impl LifeVariant for SensorLife {
    fn name(&self) -> &'static str {
        "SensorLife"
    }

    fn decide(&self, board: &Board, x: usize, y: usize, session: &mut Session) -> CellDecision {
        let sensor = self.sensor;
        let num_live = count_live_neighbors(|b| sensor.uncertain(b), board, x, y);
        decide_uncertain(
            &num_live,
            board.get(x, y),
            self.banded,
            session,
            &self.config,
        )
    }
}

/// Fig. 14's "BayesLife": SensorLife plus the expert's Bayesian fix — every
/// raw sample is snapped to the more likely of the hypotheses s = 0 and
/// s = 1 before summing (`SenseNeighborFixed`, §5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BayesLife {
    sensor: NoisySensor,
    config: EvalConfig,
}

impl BayesLife {
    /// Creates a BayesLife reading through `sensor` with the default
    /// conditional configuration.
    pub fn new(sensor: NoisySensor) -> Self {
        Self {
            sensor,
            config: EvalConfig::default(),
        }
    }

    /// Returns a copy using a custom hypothesis-test configuration.
    pub fn with_config(mut self, config: EvalConfig) -> Self {
        self.config = config;
        self
    }
}

impl LifeVariant for BayesLife {
    fn name(&self) -> &'static str {
        "BayesLife"
    }

    fn decide(&self, board: &Board, x: usize, y: usize, session: &mut Session) -> CellDecision {
        let sensor = self.sensor;
        let num_live = count_live_neighbors(|b| sensor.uncertain_snapped(b), board, x, y);
        // Snapped sensors yield integer sums, where the literal and banded
        // thresholds coincide.
        decide_uncertain(&num_live, board.get(x, y), false, session, &self.config)
    }
}

/// The §5.2 "better implementation" the paper sketches: BayesLife whose
/// sensor fixes each reading from the **joint likelihood of several
/// samples** ([`NoisySensor::uncertain_snapped_joint`]), effective even
/// past the σ ≈ 0.4 breakdown of single-sample snapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JointBayesLife {
    sensor: NoisySensor,
    config: EvalConfig,
    reads: usize,
}

impl JointBayesLife {
    /// Creates a joint-likelihood BayesLife taking `reads` sensor reads per
    /// sample.
    ///
    /// # Panics
    ///
    /// Panics if `reads == 0`.
    pub fn new(sensor: NoisySensor, reads: usize) -> Self {
        assert!(reads > 0, "need at least one read");
        Self {
            sensor,
            config: EvalConfig::default(),
            reads,
        }
    }

    /// Returns a copy using a custom hypothesis-test configuration.
    pub fn with_config(mut self, config: EvalConfig) -> Self {
        self.config = config;
        self
    }

    /// Sensor reads folded into each joint decision.
    pub fn reads(&self) -> usize {
        self.reads
    }
}

impl LifeVariant for JointBayesLife {
    fn name(&self) -> &'static str {
        "JointBayesLife"
    }

    fn decide(&self, board: &Board, x: usize, y: usize, session: &mut Session) -> CellDecision {
        let sensor = self.sensor;
        let reads = self.reads;
        let num_live =
            count_live_neighbors(|b| sensor.uncertain_snapped_joint(b, reads), board, x, y);
        let mut decision =
            decide_uncertain(&num_live, board.get(x, y), false, session, &self.config);
        // Each joint sample costs `reads` physical sensor reads per
        // neighbor; report the honest sampling cost.
        decision.samples *= reads as u64;
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::next_state;

    fn test_board() -> Board {
        Board::random(8, 8, 0.4, 5)
    }

    fn error_rate(variant: &dyn LifeVariant, board: &Board, session: &mut Session) -> f64 {
        let mut errors = 0usize;
        let mut updates = 0usize;
        for (x, y) in board.coords() {
            let truth = next_state(board.get(x, y), board.live_neighbors(x, y));
            if variant.decide(board, x, y, session).alive != truth {
                errors += 1;
            }
            updates += 1;
        }
        errors as f64 / updates as f64
    }

    #[test]
    fn noiseless_sensor_life_is_exact() {
        let sensor = NoisySensor::new(0.0).unwrap();
        let board = test_board();
        let mut s = Session::sequential(1);
        assert_eq!(error_rate(&SensorLife::new(sensor), &board, &mut s), 0.0);
        assert_eq!(error_rate(&BayesLife::new(sensor), &board, &mut s), 0.0);
    }

    #[test]
    fn noiseless_naive_is_exact_too() {
        // With σ = 0 the sums are exact integers, so even the float
        // equality fires.
        let sensor = NoisySensor::new(0.0).unwrap();
        let board = test_board();
        let mut s = Session::sequential(2);
        assert_eq!(error_rate(&NaiveLife::new(sensor), &board, &mut s), 0.0);
    }

    #[test]
    fn naive_misses_births_under_noise() {
        // Any nonzero noise makes `sum == 3.0` measure-zero: no dead cell
        // is ever born.
        let sensor = NoisySensor::new(0.05).unwrap();
        let naive = NaiveLife::new(sensor);
        let board = test_board();
        let mut s = Session::sequential(3);
        for (x, y) in board.coords() {
            if !board.get(x, y) {
                assert!(!naive.decide(&board, x, y, &mut s).alive);
            }
        }
    }

    #[test]
    fn accuracy_ordering_at_moderate_noise() {
        let sensor = NoisySensor::new(0.2).unwrap();
        let board = test_board();
        let mut s = Session::sequential(4);
        let naive = error_rate(&NaiveLife::new(sensor), &board, &mut s);
        let sensor_life = error_rate(&SensorLife::new(sensor), &board, &mut s);
        let bayes = error_rate(&BayesLife::new(sensor), &board, &mut s);
        assert!(
            naive > sensor_life,
            "naive {naive} should err more than sensor {sensor_life}"
        );
        assert!(
            bayes <= sensor_life,
            "bayes {bayes} vs sensor {sensor_life}"
        );
        assert!(bayes < 0.02, "bayes should be near-perfect, got {bayes}");
    }

    #[test]
    fn sample_counts_ordering() {
        let sensor = NoisySensor::new(0.2).unwrap();
        let board = test_board();
        let mut s = Session::sequential(5);
        let total = |v: &dyn LifeVariant, s: &mut Session| -> u64 {
            board
                .coords()
                .map(|(x, y)| v.decide(&board, x, y, s).samples)
                .sum()
        };
        let naive = total(&NaiveLife::new(sensor), &mut s);
        let sensor_life = total(&SensorLife::new(sensor), &mut s);
        let bayes = total(&BayesLife::new(sensor), &mut s);
        assert_eq!(naive, 64, "naive draws exactly one sample per update");
        assert!(sensor_life > naive, "sensor={sensor_life}");
        assert!(bayes > naive);
        assert!(
            bayes < sensor_life,
            "bayes ({bayes}) needs fewer samples than sensor ({sensor_life})"
        );
    }

    #[test]
    fn variant_names() {
        let sensor = NoisySensor::new(0.1).unwrap();
        assert_eq!(NaiveLife::new(sensor).name(), "NaiveLife");
        assert_eq!(SensorLife::new(sensor).name(), "SensorLife");
        assert_eq!(BayesLife::new(sensor).name(), "BayesLife");
        assert_eq!(JointBayesLife::new(sensor, 5).name(), "JointBayesLife");
    }

    #[test]
    fn banded_thresholds_remove_the_low_noise_floor() {
        // At σ = 0.05 the literal thresholds err on boundary counts
        // (evidence ≈ 0.5); half-integer bands are decisively separated.
        let sensor = NoisySensor::new(0.05).unwrap();
        let board = test_board();
        let mut s = Session::sequential(11);
        let literal = error_rate(&SensorLife::new(sensor), &board, &mut s);
        let banded = error_rate(&SensorLife::new(sensor).banded(), &board, &mut s);
        assert!(banded < 0.01, "banded floor should vanish: {banded}");
        assert!(
            banded < literal,
            "banded {banded} must not exceed literal {literal}"
        );
    }

    #[test]
    fn joint_bayes_survives_extreme_noise() {
        // σ = 0.6: single-sample BayesLife breaks down (the paper's
        // observation past σ = 0.4); the joint-likelihood fix still tracks
        // ground truth closely.
        let sensor = NoisySensor::new(0.6).unwrap();
        let board = test_board();
        let mut s = Session::sequential(9);
        let single = error_rate(&BayesLife::new(sensor), &board, &mut s);
        let joint = error_rate(&JointBayesLife::new(sensor, 9), &board, &mut s);
        assert!(
            joint < single / 2.0,
            "joint {joint} should beat single {single} at σ=0.6"
        );
    }
}
