//! Classic Game-of-Life patterns, for tests, demos, and structured
//! (non-random) noisy-sensing experiments.

use crate::board::Board;

/// A named pattern with known dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// 2×2 still life.
    Block,
    /// Period-2 oscillator (3 cells in a row).
    Blinker,
    /// Period-2 oscillator (6 cells).
    Toad,
    /// Period-2 oscillator (two corner blocks).
    Beacon,
    /// The glider: period 4, translating (+1, +1).
    Glider,
}

impl Pattern {
    /// All defined patterns.
    pub const ALL: [Pattern; 5] = [
        Pattern::Block,
        Pattern::Blinker,
        Pattern::Toad,
        Pattern::Beacon,
        Pattern::Glider,
    ];

    /// The live cells of the pattern relative to its top-left corner.
    pub fn cells(&self) -> &'static [(usize, usize)] {
        match self {
            Pattern::Block => &[(0, 0), (1, 0), (0, 1), (1, 1)],
            Pattern::Blinker => &[(0, 0), (1, 0), (2, 0)],
            Pattern::Toad => &[(1, 0), (2, 0), (3, 0), (0, 1), (1, 1), (2, 1)],
            Pattern::Beacon => &[(0, 0), (1, 0), (0, 1), (2, 3), (3, 3), (3, 2)],
            Pattern::Glider => &[(1, 0), (2, 1), (0, 2), (1, 2), (2, 2)],
        }
    }

    /// The oscillation period on an open board (1 for still lifes; the
    /// glider reproduces its shape every 4 steps, displaced).
    pub fn period(&self) -> usize {
        match self {
            Pattern::Block => 1,
            Pattern::Blinker | Pattern::Toad | Pattern::Beacon => 2,
            Pattern::Glider => 4,
        }
    }

    /// Per-period translation `(dx, dy)` of the pattern (zero for
    /// non-spaceships).
    pub fn translation(&self) -> (usize, usize) {
        match self {
            Pattern::Glider => (1, 1),
            _ => (0, 0),
        }
    }

    /// Stamps the pattern onto a board at `(x, y)` (top-left corner).
    ///
    /// # Panics
    ///
    /// Panics if any pattern cell falls outside the board.
    pub fn stamp(&self, board: &mut Board, x: usize, y: usize) {
        for &(dx, dy) in self.cells() {
            board.set(x + dx, y + dy, true);
        }
    }

    /// A fresh board of the given size containing only this pattern,
    /// offset enough from the edges to evolve freely for a few periods.
    ///
    /// # Panics
    ///
    /// Panics if the board is too small for the pattern plus margin.
    pub fn board(&self, width: usize, height: usize) -> Board {
        let mut b = Board::new(width, height);
        self.stamp(&mut b, 3, 3);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn still_life_is_fixed_point() {
        let b = Pattern::Block.board(8, 8);
        assert_eq!(b.step(), b);
    }

    #[test]
    fn oscillators_have_their_periods() {
        for p in [Pattern::Blinker, Pattern::Toad, Pattern::Beacon] {
            let b = p.board(12, 12);
            let mut evolved = b.clone();
            for step in 1..=p.period() {
                evolved = evolved.step();
                if step < p.period() {
                    assert_ne!(evolved, b, "{p:?} must change mid-period");
                }
            }
            assert_eq!(evolved, b, "{p:?} must return after its period");
        }
    }

    #[test]
    fn glider_translates() {
        let b = Pattern::Glider.board(16, 16);
        let mut evolved = b.clone();
        for _ in 0..Pattern::Glider.period() {
            evolved = evolved.step();
        }
        // Same shape displaced by (1, 1).
        let mut expected = Board::new(16, 16);
        Pattern::Glider.stamp(&mut expected, 4, 4);
        assert_eq!(evolved, expected);
        // Population is conserved by the glider.
        assert_eq!(evolved.population(), 5);
    }

    #[test]
    fn populations_match_cell_lists() {
        for p in Pattern::ALL {
            assert_eq!(p.board(12, 12).population(), p.cells().len(), "{p:?}");
        }
    }

    #[test]
    fn noisy_sensing_of_a_still_life_stays_stable() {
        // A block sensed through BayesLife at moderate noise: decisions
        // must reproduce the still life every generation.
        use crate::sensor::NoisySensor;
        use crate::variants::{BayesLife, LifeVariant};
        use uncertain_core::Session;

        let board = Pattern::Block.board(8, 8);
        let bayes = BayesLife::new(NoisySensor::new(0.2).unwrap());
        let mut s = Session::sequential(3);
        for (x, y) in board.coords() {
            let truth = crate::rules::next_state(board.get(x, y), board.live_neighbors(x, y));
            assert_eq!(bayes.decide(&board, x, y, &mut s).alive, truth);
        }
    }
}
