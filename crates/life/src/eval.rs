//! The SensorLife evaluation harness (paper Fig. 14).
//!
//! "Each execution randomly initializes a 20 × 20 cell board and performs
//! 25 generations, evaluating a total of 10000 cell updates. For each
//! noise level σ, we execute each Game of Life 50 times. We report means
//! and 95% confidence intervals." This module is that loop, parameterized
//! so tests can run small and the figure binary can run the paper's sizes.

use crate::board::Board;
use crate::rules::next_state;
use crate::sensor::NoisySensor;
use crate::variants::{BayesLife, LifeVariant, NaiveLife, SensorLife};
use uncertain_core::{EvalConfig, Session};
use uncertain_dist::ParamError;
use uncertain_stats::wilson_interval;

/// Which noisy Game of Life to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Raw reals, direct branches (the buggy baseline).
    Naive,
    /// `Uncertain<T>` with hypothesis-tested conditionals.
    Sensor,
    /// SensorLife plus the Bayesian sensor fix.
    Bayes,
}

impl Variant {
    /// All variants, in the paper's presentation order.
    pub const ALL: [Variant; 3] = [Variant::Naive, Variant::Sensor, Variant::Bayes];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Naive => "NaiveLife",
            Variant::Sensor => "SensorLife",
            Variant::Bayes => "BayesLife",
        }
    }
}

/// Aggregated accuracy/cost results for one `(variant, σ)` cell of Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariantResult {
    /// Which implementation ran.
    pub variant: Variant,
    /// The sensor noise amplitude σ.
    pub sigma: f64,
    /// Cell updates evaluated.
    pub updates: u64,
    /// Updates whose decision differed from ground truth.
    pub errors: u64,
    /// Total samples drawn across all updates.
    pub samples: u64,
}

impl VariantResult {
    /// Fraction of incorrect decisions (Fig. 14a's y-axis).
    pub fn error_rate(&self) -> f64 {
        self.errors as f64 / self.updates as f64
    }

    /// 95% Wilson interval on the error rate.
    pub fn error_rate_ci(&self) -> (f64, f64) {
        wilson_interval(self.errors, self.updates, 0.95).expect("updates > 0 by construction")
    }

    /// Mean samples drawn per cell update (Fig. 14b's y-axis).
    pub fn samples_per_update(&self) -> f64 {
        self.samples as f64 / self.updates as f64
    }
}

/// Configuration of one Fig. 14 experiment.
///
/// # Examples
///
/// ```
/// use uncertain_life::{LifeExperiment, Variant};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let exp = LifeExperiment::new(8, 8, 3, 2, 42);
/// let naive = exp.run(Variant::Naive, 0.1)?;
/// let sensor = exp.run(Variant::Sensor, 0.1)?;
/// assert!(naive.error_rate() > sensor.error_rate());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifeExperiment {
    width: usize,
    height: usize,
    generations: usize,
    runs: usize,
    seed: u64,
    density: f64,
    config: EvalConfig,
}

impl LifeExperiment {
    /// Creates an experiment over `runs` random `width × height` boards,
    /// each advanced `generations` steps.
    pub fn new(width: usize, height: usize, generations: usize, runs: usize, seed: u64) -> Self {
        Self {
            width,
            height,
            generations,
            runs,
            seed,
            density: 0.35,
            // A tighter cap than the library default keeps the marginal
            // conditionals (σ near 0.4) from dominating the runtime while
            // preserving the paper's qualitative sample-count curve.
            config: EvalConfig::default().with_max_samples(400),
        }
    }

    /// The paper's exact configuration: 20×20 board, 25 generations,
    /// 50 runs (10 000 cell updates per run set).
    pub fn paper_scale(seed: u64) -> Self {
        Self::new(20, 20, 25, 50, seed)
    }

    /// Returns a copy with a different initial live-cell density.
    pub fn with_density(mut self, density: f64) -> Self {
        self.density = density;
        self
    }

    /// Returns a copy with a different conditional-evaluation config.
    pub fn with_config(mut self, config: EvalConfig) -> Self {
        self.config = config;
        self
    }

    /// Total cell updates this experiment will evaluate.
    pub fn total_updates(&self) -> u64 {
        (self.width * self.height * self.generations * self.runs) as u64
    }

    /// Runs one variant at noise level `sigma`.
    ///
    /// Every run follows the ground-truth trajectory: each generation the
    /// variant decides every cell from noisy sensing of the *true* board,
    /// decisions are scored against the exact rules, and the board then
    /// advances exactly. This isolates per-update decision accuracy, the
    /// quantity Fig. 14(a) plots.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `sigma` is invalid.
    pub fn run(&self, variant: Variant, sigma: f64) -> Result<VariantResult, ParamError> {
        let sensor = NoisySensor::new(sigma)?;
        let implementation: Box<dyn LifeVariant> = match variant {
            Variant::Naive => Box::new(NaiveLife::new(sensor)),
            Variant::Sensor => Box::new(SensorLife::new(sensor).with_config(self.config)),
            Variant::Bayes => Box::new(BayesLife::new(sensor).with_config(self.config)),
        };
        let mut errors = 0u64;
        let mut updates = 0u64;
        let mut samples = 0u64;
        for run in 0..self.runs {
            let run_seed = self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(run as u64);
            let mut board = Board::random(self.width, self.height, self.density, run_seed);
            let mut session = Session::sequential(run_seed ^ 0xABCD_EF01_2345_6789);
            for _ in 0..self.generations {
                for (x, y) in board.coords() {
                    let truth = next_state(board.get(x, y), board.live_neighbors(x, y));
                    let decision = implementation.decide(&board, x, y, &mut session);
                    if decision.alive != truth {
                        errors += 1;
                    }
                    samples += decision.samples;
                    updates += 1;
                }
                board = board.step();
            }
        }
        Ok(VariantResult {
            variant,
            sigma,
            updates,
            errors,
            samples,
        })
    }

    /// Extension experiment: runs a variant **closed-loop** — the noisy
    /// implementation evolves its *own* board from its own decisions while
    /// ground truth evolves exactly from the same start — and reports the
    /// per-generation fraction of cells that disagree with the true board,
    /// averaged over runs.
    ///
    /// This is the macro-scale version of the paper's "computation
    /// compounds error": per-update errors accumulate into board-level
    /// divergence generation after generation.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `sigma` is invalid.
    pub fn run_closed_loop(&self, variant: Variant, sigma: f64) -> Result<Vec<f64>, ParamError> {
        let sensor = NoisySensor::new(sigma)?;
        let implementation: Box<dyn LifeVariant> = match variant {
            Variant::Naive => Box::new(NaiveLife::new(sensor)),
            Variant::Sensor => Box::new(SensorLife::new(sensor).with_config(self.config)),
            Variant::Bayes => Box::new(BayesLife::new(sensor).with_config(self.config)),
        };
        let cells = (self.width * self.height) as f64;
        let mut divergence = vec![0.0; self.generations];
        for run in 0..self.runs {
            let run_seed = self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(run as u64);
            let mut truth = Board::random(self.width, self.height, self.density, run_seed);
            let mut believed = truth.clone();
            let mut session = Session::sequential(run_seed ^ 0x5151_5151_5151_5151);
            for gen_divergence in divergence.iter_mut() {
                // The noisy system advances its own board by sensing itself.
                let mut next = Board::new(self.width, self.height);
                for (x, y) in believed.coords() {
                    next.set(
                        x,
                        y,
                        implementation.decide(&believed, x, y, &mut session).alive,
                    );
                }
                believed = next;
                truth = truth.step();
                let differing = truth
                    .coords()
                    .filter(|&(x, y)| truth.get(x, y) != believed.get(x, y))
                    .count();
                *gen_divergence += differing as f64 / cells / self.runs as f64;
            }
        }
        Ok(divergence)
    }

    /// Runs all three variants across a noise sweep — the full Fig. 14
    /// data set, in row-major `(sigma, variant)` order.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if any `sigma` is invalid.
    pub fn sweep(&self, sigmas: &[f64]) -> Result<Vec<VariantResult>, ParamError> {
        let mut out = Vec::with_capacity(sigmas.len() * Variant::ALL.len());
        for &sigma in sigmas {
            for variant in Variant::ALL {
                out.push(self.run(variant, sigma)?);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LifeExperiment {
        LifeExperiment::new(8, 8, 3, 2, 7)
    }

    #[test]
    fn update_accounting() {
        let exp = small();
        assert_eq!(exp.total_updates(), 8 * 8 * 3 * 2);
        let r = exp.run(Variant::Naive, 0.1).unwrap();
        assert_eq!(r.updates, exp.total_updates());
        assert_eq!(r.samples, r.updates, "naive draws 1 per update");
    }

    #[test]
    fn zero_noise_no_errors() {
        let exp = small();
        for v in Variant::ALL {
            let r = exp.run(v, 0.0).unwrap();
            assert_eq!(r.errors, 0, "{} at σ=0", v.name());
        }
    }

    #[test]
    fn figure_14a_ordering_at_sigma_02() {
        let exp = small();
        let naive = exp.run(Variant::Naive, 0.2).unwrap();
        let sensor = exp.run(Variant::Sensor, 0.2).unwrap();
        let bayes = exp.run(Variant::Bayes, 0.2).unwrap();
        assert!(
            naive.error_rate() > sensor.error_rate(),
            "naive {} vs sensor {}",
            naive.error_rate(),
            sensor.error_rate()
        );
        assert!(bayes.error_rate() < 0.02, "bayes {}", bayes.error_rate());
    }

    #[test]
    fn figure_14b_sample_ordering() {
        let exp = small();
        let naive = exp.run(Variant::Naive, 0.2).unwrap();
        let sensor = exp.run(Variant::Sensor, 0.2).unwrap();
        let bayes = exp.run(Variant::Bayes, 0.2).unwrap();
        assert_eq!(naive.samples_per_update(), 1.0);
        assert!(sensor.samples_per_update() > bayes.samples_per_update());
        assert!(bayes.samples_per_update() > 1.0);
    }

    #[test]
    fn sensor_samples_grow_with_noise() {
        let exp = small();
        let quiet = exp.run(Variant::Sensor, 0.05).unwrap();
        let loud = exp.run(Variant::Sensor, 0.35).unwrap();
        assert!(
            loud.samples_per_update() > quiet.samples_per_update(),
            "quiet {} vs loud {}",
            quiet.samples_per_update(),
            loud.samples_per_update()
        );
    }

    #[test]
    fn sweep_covers_grid() {
        let exp = LifeExperiment::new(6, 6, 2, 1, 3);
        let rows = exp.sweep(&[0.1, 0.2]).unwrap();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].variant, Variant::Naive);
        assert_eq!(rows[0].sigma, 0.1);
        assert_eq!(rows[5].variant, Variant::Bayes);
        assert_eq!(rows[5].sigma, 0.2);
    }

    #[test]
    fn closed_loop_divergence_grows_for_naive() {
        let exp = LifeExperiment::new(8, 8, 6, 2, 9);
        let series = exp.run_closed_loop(Variant::Naive, 0.15).unwrap();
        assert_eq!(series.len(), 6);
        // Naive divergence saturates quickly at a high level (two chaotic
        // boards decorrelate; disagreement hovers near the random-overlap
        // plateau rather than growing without bound).
        assert!(
            series[5] > 0.15,
            "naive closed loop should be badly diverged: {series:?}"
        );
        // Bayes stays faithful at this noise level.
        let bayes = exp.run_closed_loop(Variant::Bayes, 0.15).unwrap();
        assert!(
            bayes[5] < series[5] / 2.0,
            "bayes {bayes:?} vs naive {series:?}"
        );
    }

    #[test]
    fn closed_loop_zero_noise_tracks_exactly() {
        let exp = LifeExperiment::new(8, 8, 4, 1, 10);
        for v in Variant::ALL {
            let series = exp.run_closed_loop(v, 0.0).unwrap();
            assert!(series.iter().all(|&d| d == 0.0), "{:?}", series);
        }
    }

    #[test]
    fn ci_brackets_rate() {
        let exp = small();
        let r = exp.run(Variant::Naive, 0.3).unwrap();
        let (lo, hi) = r.error_rate_ci();
        assert!(lo <= r.error_rate() && r.error_rate() <= hi);
    }
}
