//! The Game-of-Life board and its exact (ground-truth) dynamics.

use crate::rules::next_state;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A finite (non-wrapping) Game-of-Life board.
///
/// Edge and corner cells simply have fewer neighbors, matching the paper's
/// "cells on corners and edges of the grid have fewer sensors."
///
/// # Examples
///
/// ```
/// use uncertain_life::Board;
///
/// // A blinker oscillates with period 2.
/// let mut b = Board::new(5, 5);
/// b.set(1, 2, true);
/// b.set(2, 2, true);
/// b.set(3, 2, true);
/// let next = b.step();
/// assert!(next.get(2, 1) && next.get(2, 2) && next.get(2, 3));
/// assert_eq!(next.step(), b);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Board {
    width: usize,
    height: usize,
    cells: Vec<bool>,
}

impl Board {
    /// Creates an all-dead board.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "board must be non-empty");
        Self {
            width,
            height,
            cells: vec![false; width * height],
        }
    }

    /// Creates a board with each cell alive independently with probability
    /// `density`, deterministically from `seed` (the paper randomly
    /// initializes a 20×20 board).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `density ∉ [0, 1]`.
    pub fn random(width: usize, height: usize, density: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
        let mut board = Self::new(width, height);
        let mut rng = StdRng::seed_from_u64(seed);
        for cell in &mut board.cells {
            *cell = rng.gen::<f64>() < density;
        }
        board
    }

    /// Board width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Board height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The state of cell `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn get(&self, x: usize, y: usize) -> bool {
        assert!(x < self.width && y < self.height, "cell out of bounds");
        self.cells[y * self.width + x]
    }

    /// Sets the state of cell `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, x: usize, y: usize, alive: bool) {
        assert!(x < self.width && y < self.height, "cell out of bounds");
        self.cells[y * self.width + x] = alive;
    }

    /// Number of live cells.
    pub fn population(&self) -> usize {
        self.cells.iter().filter(|&&c| c).count()
    }

    /// The in-bounds neighbor coordinates of `(x, y)` (3, 5, or 8 of them).
    pub fn neighbors(&self, x: usize, y: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(8);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let nx = x as i64 + dx;
                let ny = y as i64 + dy;
                if nx >= 0 && ny >= 0 && (nx as usize) < self.width && (ny as usize) < self.height {
                    out.push((nx as usize, ny as usize));
                }
            }
        }
        out
    }

    /// Exact live-neighbor count of `(x, y)` — the perfect sensors that
    /// define ground truth.
    pub fn live_neighbors(&self, x: usize, y: usize) -> u8 {
        self.neighbors(x, y)
            .into_iter()
            .filter(|&(nx, ny)| self.get(nx, ny))
            .count() as u8
    }

    /// One exact generation of the game.
    pub fn step(&self) -> Board {
        let mut next = Board::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                next.set(x, y, next_state(self.get(x, y), self.live_neighbors(x, y)));
            }
        }
        next
    }

    /// Iterates over all cell coordinates in row-major order.
    pub fn coords(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.height).flat_map(move |y| (0..self.width).map(move |x| (x, y)))
    }
}

impl fmt::Display for Board {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for y in 0..self.height {
            for x in 0..self.width {
                f.write_str(if self.get(x, y) { "█" } else { "·" })?;
            }
            f.write_str("\n")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_rejected() {
        let _ = Board::new(0, 5);
    }

    #[test]
    fn random_board_is_deterministic_and_dense() {
        let a = Board::random(20, 20, 0.5, 3);
        let b = Board::random(20, 20, 0.5, 3);
        assert_eq!(a, b);
        let pop = a.population();
        assert!(pop > 140 && pop < 260, "pop={pop}");
        assert_eq!(Board::random(10, 10, 0.0, 0).population(), 0);
        assert_eq!(Board::random(10, 10, 1.0, 0).population(), 100);
    }

    #[test]
    fn neighbor_counts_by_position() {
        let b = Board::new(5, 5);
        assert_eq!(b.neighbors(0, 0).len(), 3); // corner
        assert_eq!(b.neighbors(2, 0).len(), 5); // edge
        assert_eq!(b.neighbors(2, 2).len(), 8); // interior
    }

    #[test]
    fn block_is_still_life() {
        let mut b = Board::new(4, 4);
        for (x, y) in [(1, 1), (1, 2), (2, 1), (2, 2)] {
            b.set(x, y, true);
        }
        assert_eq!(b.step(), b);
    }

    #[test]
    fn lonely_cell_dies() {
        let mut b = Board::new(3, 3);
        b.set(1, 1, true);
        assert_eq!(b.step().population(), 0);
    }

    #[test]
    fn reproduction_rule() {
        let mut b = Board::new(3, 3);
        b.set(0, 0, true);
        b.set(1, 0, true);
        b.set(2, 0, true);
        let next = b.step();
        assert!(next.get(1, 1), "dead cell with 3 neighbors must be born");
    }

    #[test]
    fn live_neighbors_matches_manual_count() {
        let b = Board::random(8, 8, 0.4, 11);
        for (x, y) in b.coords() {
            let manual = b
                .neighbors(x, y)
                .into_iter()
                .filter(|&(nx, ny)| b.get(nx, ny))
                .count() as u8;
            assert_eq!(b.live_neighbors(x, y), manual);
        }
    }

    #[test]
    fn display_renders_grid() {
        let mut b = Board::new(2, 2);
        b.set(0, 0, true);
        let s = b.to_string();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains('█') && s.contains('·'));
    }
}
