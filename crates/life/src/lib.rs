//! Game-of-Life substrate and the **SensorLife** case study (paper §5.2).
//!
//! Conway's Game of Life with *noisy sensors*: each cell senses whether its
//! neighbors are alive through a sensor perturbed by zero-mean Gaussian
//! noise, and ground truth (the exact game) is available for free — which
//! makes it the paper's accuracy microscope for `Uncertain<T>`.
//!
//! Three players, exactly as in the paper:
//!
//! * [`NaiveLife`] — reads each sensor once, sums the raw reals, branches
//!   directly. It inherits the classic uncertainty bugs: noise crosses the
//!   integer rule thresholds, and the reproduction rule's `NumLive == 3`
//!   (float equality on noisy data) essentially never fires.
//! * [`SensorLife`] — wraps each sensor in `Uncertain<f64>`, sums with the
//!   lifted `+`, and evaluates every rule with hypothesis tests; "equals 3"
//!   becomes the calibrated *rounds to 3*.
//! * [`BayesLife`] — adds the expert's domain knowledge: the true state is
//!   0 or 1 and the noise is Gaussian with known σ, so Bayes' theorem snaps
//!   each raw sample to the more likely hypothesis before summing
//!   (the paper's `SenseNeighborFixed`).
//!
//! [`LifeExperiment`] reruns the paper's Fig. 14: error rate per cell
//! update and samples drawn per cell update, across noise levels.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod board;
mod eval;
pub mod patterns;
mod rules;
mod sensor;
mod variants;

pub use board::Board;
pub use eval::{LifeExperiment, Variant, VariantResult};
pub use rules::next_state;
pub use sensor::NoisySensor;
pub use variants::{BayesLife, CellDecision, JointBayesLife, LifeVariant, NaiveLife, SensorLife};
