//! The exact rules of Conway's Game of Life (paper §5.2).

/// The next state of a cell with `live_neighbors` live neighbors.
///
/// 1. A live cell with 2 or 3 live neighbors lives (survival).
/// 2. A live cell with fewer than 2 dies (underpopulation).
/// 3. A live cell with more than 3 dies (overcrowding).
/// 4. A dead cell with exactly 3 becomes live (reproduction).
///
/// # Examples
///
/// ```
/// use uncertain_life::next_state;
///
/// assert!(next_state(true, 2));
/// assert!(next_state(true, 3));
/// assert!(!next_state(true, 1));
/// assert!(!next_state(true, 4));
/// assert!(next_state(false, 3));
/// assert!(!next_state(false, 2));
/// ```
pub fn next_state(is_alive: bool, live_neighbors: u8) -> bool {
    if is_alive {
        (2..=3).contains(&live_neighbors)
    } else {
        live_neighbors == 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_rule_table() {
        for n in 0..=8u8 {
            assert_eq!(next_state(true, n), n == 2 || n == 3, "alive, n={n}");
            assert_eq!(next_state(false, n), n == 3, "dead, n={n}");
        }
    }
}
