//! Prometheus text-exposition rendering (version 0.0.4, the format
//! every Prometheus-compatible scraper accepts).
//!
//! [`PromWriter`] accumulates `# HELP`/`# TYPE` headers and sample
//! lines; histograms render as the `summary` type with `quantile`
//! labels plus the exact `_sum`/`_count` series. The writer validates
//! nothing at runtime — metric names are compile-time string literals
//! in practice — but escapes label values per the spec.

use std::fmt::Write as _;

use crate::metrics::HistogramSnapshot;

/// Builds one Prometheus text-format scrape body.
///
/// # Examples
///
/// ```
/// use uncertain_obs::PromWriter;
///
/// let mut w = PromWriter::new();
/// w.counter("requests_total", "Requests accepted.", 42);
/// w.gauge("queue_depth", "Jobs queued right now.", 3.0);
/// let body = w.finish();
/// assert!(body.contains("# TYPE requests_total counter"));
/// assert!(body.contains("requests_total 42"));
/// assert!(body.ends_with('\n'));
/// ```
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

/// Escapes a label value per the exposition format: backslash, quote,
/// and newline. Label values are the one place attacker-influenced
/// strings (tenant names, error messages) reach the scrape body, so a
/// hostile value must not be able to terminate the quoted string or
/// inject a fresh sample line.
fn escape_label(v: &str) -> String {
    let mut s = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '"' => s.push_str("\\\""),
            '\n' => s.push_str("\\n"),
            _ => s.push(c),
        }
    }
    s
}

/// Escapes `# HELP` text per the exposition format: backslash and
/// newline only (quotes are legal in help text).
fn escape_help(v: &str) -> String {
    let mut s = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            _ => s.push(c),
        }
    }
    s
}

impl PromWriter {
    /// An empty scrape body.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        // Integral values print without a fraction, as scrapers expect.
        if value.fract() == 0.0 && value.abs() < 1e15 {
            let _ = writeln!(self.out, " {}", value as i64);
        } else {
            let _ = writeln!(self.out, " {value}");
        }
    }

    /// A `counter` metric with one unlabeled sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.sample(name, &[], value as f64);
    }

    /// A `gauge` metric with one unlabeled sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, &[], value);
    }

    /// A `gauge` metric with one sample per label set — e.g. one series
    /// per shard.
    pub fn gauge_per(&mut self, name: &str, help: &str, label: &str, values: &[(String, f64)]) {
        self.header(name, help, "gauge");
        for (key, v) in values {
            self.sample(name, &[(label, key)], *v);
        }
    }

    /// A `summary` metric from a [`HistogramSnapshot`]: `quantile`
    /// labels for p50/p90/p99 and max (rendered as quantile="1"), plus
    /// the exact `_sum` and `_count` series.
    pub fn summary(&mut self, name: &str, help: &str, snap: &HistogramSnapshot) {
        self.header(name, help, "summary");
        self.sample(name, &[("quantile", "0.5")], snap.p50 as f64);
        self.sample(name, &[("quantile", "0.9")], snap.p90 as f64);
        self.sample(name, &[("quantile", "0.99")], snap.p99 as f64);
        self.sample(name, &[("quantile", "1")], snap.max as f64);
        self.sample(&format!("{name}_sum"), &[], snap.sum as f64);
        self.sample(&format!("{name}_count"), &[], snap.count as f64);
    }

    /// The finished scrape body.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_lines() {
        let mut w = PromWriter::new();
        w.counter("a_total", "A.", 7);
        w.gauge("b", "B.", -2.5);
        let s = w.finish();
        assert!(s.contains("# HELP a_total A.\n# TYPE a_total counter\na_total 7\n"));
        assert!(s.contains("# TYPE b gauge\nb -2.5\n"));
    }

    #[test]
    fn summary_emits_quantiles_sum_count() {
        let snap = HistogramSnapshot {
            count: 4,
            sum: 100,
            max: 60,
            p50: 20,
            p90: 50,
            p99: 58,
        };
        let mut w = PromWriter::new();
        w.summary("latency_ns", "Latency.", &snap);
        let s = w.finish();
        assert!(s.contains("# TYPE latency_ns summary"));
        assert!(s.contains("latency_ns{quantile=\"0.5\"} 20\n"));
        assert!(s.contains("latency_ns{quantile=\"0.99\"} 58\n"));
        assert!(s.contains("latency_ns{quantile=\"1\"} 60\n"));
        assert!(s.contains("latency_ns_sum 100\n"));
        assert!(s.contains("latency_ns_count 4\n"));
    }

    #[test]
    fn per_label_gauges_and_escaping() {
        let mut w = PromWriter::new();
        w.gauge_per(
            "depth",
            "Depth.",
            "shard",
            &[("0".to_string(), 1.0), ("a\"b".to_string(), 2.0)],
        );
        let s = w.finish();
        assert!(s.contains("depth{shard=\"0\"} 1\n"));
        assert!(s.contains("depth{shard=\"a\\\"b\"} 2\n"));
        assert_eq!(s.matches("# TYPE depth gauge").count(), 1);
    }

    #[test]
    fn hostile_tenant_label_cannot_break_out() {
        // A tenant name built to close the quote, inject a fake sample
        // line, and confuse parsers with a raw backslash.
        let hostile = "evil\"} 99\ninjected_total 1 # \\";
        let mut w = PromWriter::new();
        w.gauge_per(
            "sessions",
            "Live sessions.",
            "tenant",
            &[(hostile.to_string(), 3.0)],
        );
        let s = w.finish();
        // All three escapes applied: backslash, quote, newline.
        assert!(s.contains("tenant=\"evil\\\"} 99\\ninjected_total 1 # \\\\\""));
        // The hostile payload never starts a line of its own: the body
        // stays exactly one HELP, one TYPE, and one sample line.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3, "injected a line: {s:?}");
        assert!(lines[2].starts_with("sessions{tenant=\""));
        assert!(lines[2].ends_with("\"} 3"));
        assert!(!s.contains("\ninjected_total"));
    }

    #[test]
    fn hostile_help_text_stays_on_one_line() {
        let mut w = PromWriter::new();
        w.counter("a_total", "bad\nhelp with \\ slash", 1);
        let s = w.finish();
        assert!(s.contains("# HELP a_total bad\\nhelp with \\\\ slash\n"));
        assert_eq!(s.lines().count(), 3);
    }
}
