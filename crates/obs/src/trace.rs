//! Decision-trace collection and JSON-lines export.
//!
//! [`TraceLog`] is the standard [`Recorder`]: a cheaply cloneable handle
//! to a shared trace buffer. Install a clone on a [`Session`] with
//! [`Session::install_recorder`](uncertain_core::Session::install_recorder)
//! (or `Session::with_recorder`) and keep the other clone to read traces
//! back after — or while — the session runs.
//!
//! [`trace_to_json`] renders one trace as a single JSON object, and
//! [`to_jsonl`]/[`write_jsonl`] stream a batch as JSON-lines, the format
//! every trace viewer and `jq` pipeline eats.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use uncertain_core::{DecisionTrace, Recorder};

/// A shared, thread-safe log of [`DecisionTrace`] events.
///
/// Clones share one buffer, so the idiom is: clone, install the clone,
/// query, then read the original. The mutex is touched once per
/// *decision* (not per sample or batch), so contention is negligible.
///
/// # Examples
///
/// ```
/// use uncertain_core::{Session, StoppingReason, Uncertain};
/// use uncertain_obs::TraceLog;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let log = TraceLog::new();
/// let mut session = Session::seeded(7).with_recorder(log.clone());
///
/// let coin = Uncertain::bernoulli(0.9)?;
/// assert!(session.is_probable(&coin));
///
/// let traces = log.take();
/// assert_eq!(traces.len(), 1);
/// assert_eq!(traces[0].stopping, StoppingReason::Accepted);
/// assert!(!traces[0].batches.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    traces: Arc<Mutex<Vec<DecisionTrace>>>,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Traces recorded so far.
    pub fn len(&self) -> usize {
        self.traces.lock().expect("trace log poisoned").len()
    }

    /// Whether no trace has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns every recorded trace, oldest first.
    pub fn take(&self) -> Vec<DecisionTrace> {
        std::mem::take(&mut *self.traces.lock().expect("trace log poisoned"))
    }

    /// Clones every recorded trace without draining the log.
    pub fn traces(&self) -> Vec<DecisionTrace> {
        self.traces.lock().expect("trace log poisoned").clone()
    }

    /// Renders the current contents as JSON-lines (see [`to_jsonl`]).
    pub fn to_jsonl(&self) -> String {
        to_jsonl(&self.traces())
    }
}

impl Recorder for TraceLog {
    fn record_decision(&mut self, trace: DecisionTrace) {
        self.traces.lock().expect("trace log poisoned").push(trace);
    }
}

/// Writes a JSON number, keeping the output valid JSON even for the
/// non-finite values f64 allows but JSON does not.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Renders one [`DecisionTrace`] as a single-line JSON object.
///
/// The shape is stable: scalar fields first, then `batches` as an array
/// of `{n, successes, llr}` points — the decision's LLR trajectory in
/// sample order, ready to plot against the `upper`/`lower` boundaries.
///
/// # Examples
///
/// ```
/// use uncertain_core::{Session, Uncertain};
/// use uncertain_obs::{trace_to_json, TraceLog};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let log = TraceLog::new();
/// let mut session = Session::seeded(7).with_recorder(log.clone());
/// session.is_probable(&Uncertain::bernoulli(0.9)?);
///
/// let json = trace_to_json(&log.take()[0]);
/// assert!(json.starts_with('{') && json.ends_with('}'));
/// assert!(json.contains("\"stopping\":\"accepted\""));
/// assert!(json.contains("\"batches\":[{\"n\":"));
/// # Ok(())
/// # }
/// ```
pub fn trace_to_json(trace: &DecisionTrace) -> String {
    let mut out = String::with_capacity(160 + trace.batches.len() * 48);
    let _ = write!(out, "{{\"root\":{},\"threshold\":", trace.root.as_u64());
    push_f64(&mut out, trace.threshold);
    out.push_str(",\"upper\":");
    push_f64(&mut out, trace.upper);
    out.push_str(",\"lower\":");
    push_f64(&mut out, trace.lower);
    let _ = write!(
        out,
        ",\"samples\":{},\"successes\":{},\"estimate\":",
        trace.samples, trace.successes
    );
    push_f64(&mut out, trace.estimate);
    let _ = write!(
        out,
        ",\"stopping\":\"{}\",\"elapsed_ns\":{},\"batches\":[",
        trace.stopping.as_str(),
        trace.elapsed.as_nanos()
    );
    for (i, p) in trace.batches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"n\":{},\"successes\":{},\"llr\":",
            p.samples, p.successes
        );
        push_f64(&mut out, p.llr);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Renders traces as JSON-lines: one [`trace_to_json`] object per line.
pub fn to_jsonl(traces: &[DecisionTrace]) -> String {
    let mut out = String::new();
    for t in traces {
        out.push_str(&trace_to_json(t));
        out.push('\n');
    }
    out
}

/// Streams traces as JSON-lines to any writer (a file, a socket, a
/// capture buffer).
pub fn write_jsonl<W: std::io::Write>(w: &mut W, traces: &[DecisionTrace]) -> std::io::Result<()> {
    for t in traces {
        writeln!(w, "{}", trace_to_json(t))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_core::{Session, StoppingReason, Uncertain};

    fn one_trace() -> DecisionTrace {
        let log = TraceLog::new();
        let mut session = Session::seeded(11).with_recorder(log.clone());
        let coin = Uncertain::bernoulli(0.95).unwrap();
        assert!(session.is_probable(&coin));
        let mut traces = log.take();
        assert_eq!(traces.len(), 1);
        traces.pop().unwrap()
    }

    #[test]
    fn recorder_captures_trajectory() {
        let t = one_trace();
        assert_eq!(t.stopping, StoppingReason::Accepted);
        assert!(t.samples > 0);
        let last = t.batches.last().expect("at least one batch");
        assert_eq!(last.samples, t.samples, "trajectory ends at the decision");
        assert_eq!(last.successes, t.successes);
        assert!(
            t.batches.windows(2).all(|w| w[0].samples < w[1].samples),
            "cumulative sample counts are strictly increasing"
        );
    }

    #[test]
    fn json_shape_is_parseable_line() {
        let t = one_trace();
        let json = trace_to_json(&t);
        assert!(!json.contains('\n'));
        assert!(json.contains(&format!("\"root\":{}", t.root.as_u64())));
        assert!(json.contains(&format!("\"samples\":{}", t.samples)));
        assert!(json.contains("\"stopping\":\"accepted\""));
        // Balanced braces/brackets — a cheap well-formedness check.
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(opens, 1 + t.batches.len());
    }

    #[test]
    fn jsonl_is_one_line_per_trace() {
        let log = TraceLog::new();
        let mut session = Session::seeded(3).with_recorder(log.clone());
        let coin = Uncertain::bernoulli(0.9).unwrap();
        session.is_probable(&coin);
        session.is_probable(&coin);
        let text = log.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &log.take()).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), text);
        assert!(log.is_empty(), "take drained the log");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut s = String::new();
        push_f64(&mut s, f64::NAN);
        s.push(',');
        push_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "null,null");
    }
}
