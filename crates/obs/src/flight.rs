//! The flight recorder: a bounded ring of completed request traces
//! retained by a tail-based policy.
//!
//! Head-based sampling (decide at admission) keeps a *fraction*;
//! operators debugging a p99 regression want the *interesting* requests.
//! The [`FlightRecorder`] therefore decides at completion, when the
//! outcome is known, and keeps a trace iff it is an error/timeout, an
//! exact-vs-sampled audit mismatch, or among the slowest-N of the
//! current time window. Everything lives in one bounded `VecDeque`
//! behind a mutex touched once per *completed traced request* — never
//! on the per-sample or per-batch hot path.
//!
//! # Examples
//!
//! ```
//! use uncertain_obs::{FlightConfig, FlightRecorder, RequestTrace};
//!
//! let rec = FlightRecorder::new(FlightConfig::default());
//! let mut t = RequestTrace::new(7, 1, "evaluate");
//! t.status = "ok";
//! t.total_ns = 1_000_000;
//! assert!(rec.offer(t)); // first-of-window is always among slowest-N
//! assert_eq!(rec.recent(10).len(), 1);
//! assert!(rec.get(7).is_some());
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::span::{monotonic_ns, AttrValue, Span};

/// Retention policy and capacity for a [`FlightRecorder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightConfig {
    /// Ring capacity: at most this many traces are retained; older
    /// traces fall off the front.
    pub capacity: usize,
    /// How many of the slowest traces each window admits (errors and
    /// audit mismatches are always admitted and don't count against it).
    pub slow_n: usize,
    /// Window length in nanoseconds; the slowest-N admission threshold
    /// resets each window.
    pub window_ns: u64,
}

impl Default for FlightConfig {
    /// 256 traces, slowest 8 per 1-second window.
    fn default() -> Self {
        Self {
            capacity: 256,
            slow_n: 8,
            window_ns: 1_000_000_000,
        }
    }
}

/// Everything the recorder keeps about one completed request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// The wire-propagated trace id.
    pub trace_id: u64,
    /// Tenant the request ran as.
    pub tenant: u64,
    /// Request kind (`"evaluate"`, `"pr"`, `"e"`, `"stats"`).
    pub kind: &'static str,
    /// Terminal status (`"ok"`, `"timeout"`, `"queue_full"`, …).
    pub status: &'static str,
    /// Whether the request failed (any non-`ok` status).
    pub error: bool,
    /// Whether the analytic backend answered (zero samples drawn).
    pub exact: bool,
    /// Whether a shadow-sample audit disagreed with an exact verdict.
    pub audit_mismatch: bool,
    /// When the request was admitted, [`monotonic_ns`] clock.
    pub started_ns: u64,
    /// Admission-to-reply latency in nanoseconds.
    pub total_ns: u64,
    /// The span tree (root first, ids sequential from 1).
    pub spans: Vec<Span>,
}

impl RequestTrace {
    /// An empty `ok` trace shell for `trace_id`/`tenant`/`kind`; the
    /// caller fills status, timings, and spans.
    pub fn new(trace_id: u64, tenant: u64, kind: &'static str) -> Self {
        Self {
            trace_id,
            tenant,
            kind,
            status: "ok",
            error: false,
            exact: false,
            audit_mismatch: false,
            started_ns: 0,
            total_ns: 0,
            spans: Vec::new(),
        }
    }
}

/// Counters describing a recorder's activity, for metrics exposition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightStats {
    /// Completed traces offered to the recorder.
    pub offered: u64,
    /// Traces the retention policy kept.
    pub retained: u64,
    /// Traces currently buffered in the ring.
    pub buffered: usize,
}

#[derive(Debug)]
struct FlightState {
    ring: VecDeque<Arc<RequestTrace>>,
    /// Durations of the slow-path admissions in the current window,
    /// unsorted; its minimum is the admission bar once full.
    window_slow: Vec<u64>,
    window_start: u64,
    offered: u64,
    retained: u64,
}

/// A bounded, tail-retaining ring buffer of completed [`RequestTrace`]s.
///
/// Shared via `Arc` between shard workers (who `offer`) and the HTTP
/// introspection endpoints (who `recent`/`get`).
#[derive(Debug)]
pub struct FlightRecorder {
    config: FlightConfig,
    state: Mutex<FlightState>,
}

impl FlightRecorder {
    /// An empty recorder with the given policy.
    pub fn new(config: FlightConfig) -> Self {
        Self {
            config,
            state: Mutex::new(FlightState {
                ring: VecDeque::with_capacity(config.capacity.min(1024)),
                window_slow: Vec::new(),
                window_start: monotonic_ns(),
                offered: 0,
                retained: 0,
            }),
        }
    }

    /// The retention policy in force.
    pub fn config(&self) -> FlightConfig {
        self.config
    }

    /// Offers a completed trace; returns whether the policy retained it.
    ///
    /// Retained iff any of: `error`, `audit_mismatch`, or among the
    /// slowest-N completions of the current window (greedy at admission
    /// time: kept while the window has fewer than N slow slots, or when
    /// slower than the slowest-N bar so far).
    pub fn offer(&self, trace: RequestTrace) -> bool {
        let mut s = self.state.lock().unwrap();
        s.offered += 1;
        let now = monotonic_ns();
        if now.saturating_sub(s.window_start) >= self.config.window_ns {
            s.window_start = now;
            s.window_slow.clear();
        }
        let mut keep = trace.error || trace.audit_mismatch;
        if !keep {
            if s.window_slow.len() < self.config.slow_n {
                s.window_slow.push(trace.total_ns);
                keep = true;
            } else if let Some((slot, &bar)) =
                s.window_slow.iter().enumerate().min_by_key(|(_, &d)| d)
            {
                if trace.total_ns > bar {
                    s.window_slow[slot] = trace.total_ns;
                    keep = true;
                }
            }
        }
        if keep {
            s.retained += 1;
            if s.ring.len() >= self.config.capacity.max(1) {
                s.ring.pop_front();
            }
            s.ring.push_back(Arc::new(trace));
        }
        keep
    }

    /// The most recent `limit` retained traces, newest last.
    pub fn recent(&self, limit: usize) -> Vec<Arc<RequestTrace>> {
        let s = self.state.lock().unwrap();
        let skip = s.ring.len().saturating_sub(limit);
        s.ring.iter().skip(skip).cloned().collect()
    }

    /// Looks up a retained trace by id (most recent wins on reuse).
    pub fn get(&self, trace_id: u64) -> Option<Arc<RequestTrace>> {
        let s = self.state.lock().unwrap();
        s.ring
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// Activity counters for metrics exposition.
    pub fn stats(&self) -> FlightStats {
        let s = self.state.lock().unwrap();
        FlightStats {
            offered: s.offered,
            retained: s.retained,
            buffered: s.ring.len(),
        }
    }
}

/// Escapes a string for a JSON string literal (quotes, backslash,
/// control characters).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    // JSON has no NaN/Inf; null is the conventional stand-in.
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn push_attrs(out: &mut String, attrs: &[(&'static str, AttrValue)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        match v {
            AttrValue::U64(n) => out.push_str(&n.to_string()),
            AttrValue::F64(f) => push_f64(out, *f),
            AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            AttrValue::Str(s) => push_json_str(out, s),
        }
    }
    out.push('}');
}

/// Renders one retained trace as a single JSON object (one line, no
/// trailing newline) — the `/traces` endpoints emit these as JSON-lines.
pub fn request_trace_to_json(t: &RequestTrace) -> String {
    let mut s = String::with_capacity(256 + t.spans.len() * 128);
    s.push_str(&format!(
        "{{\"trace_id\":{},\"tenant\":{},\"kind\":\"{}\",\"status\":\"{}\",\
         \"error\":{},\"exact\":{},\"audit_mismatch\":{},\"started_ns\":{},\
         \"total_ns\":{},\"spans\":[",
        t.trace_id,
        t.tenant,
        t.kind,
        t.status,
        t.error,
        t.exact,
        t.audit_mismatch,
        t.started_ns,
        t.total_ns
    ));
    for (i, sp) in t.spans.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"attrs\":",
            sp.id, sp.parent, sp.name, sp.start_ns, sp.end_ns
        ));
        push_attrs(&mut s, &sp.attrs);
        s.push_str(",\"events\":[");
        for (j, e) in sp.events.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"at_ns\":{},\"attrs\":",
                e.name, e.at_ns
            ));
            push_attrs(&mut s, &e.attrs);
            s.push('}');
        }
        s.push_str("]}");
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanEvent;

    fn trace(id: u64, total_ns: u64) -> RequestTrace {
        let mut t = RequestTrace::new(id, 1, "evaluate");
        t.total_ns = total_ns;
        t
    }

    #[test]
    fn slowest_n_admission_within_a_window() {
        let rec = FlightRecorder::new(FlightConfig {
            capacity: 64,
            slow_n: 2,
            window_ns: u64::MAX, // never roll the window
        });
        assert!(rec.offer(trace(1, 100))); // fills slot 1
        assert!(rec.offer(trace(2, 50))); // fills slot 2
        assert!(!rec.offer(trace(3, 40))); // below the bar (50)
        assert!(rec.offer(trace(4, 60))); // beats the bar, evicts it
        assert!(!rec.offer(trace(5, 55))); // bar is now 60
        let ids: Vec<u64> = rec.recent(10).iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![1, 2, 4]);
        let s = rec.stats();
        assert_eq!((s.offered, s.retained, s.buffered), (5, 3, 3));
    }

    #[test]
    fn errors_and_mismatches_always_retained() {
        let rec = FlightRecorder::new(FlightConfig {
            capacity: 64,
            slow_n: 1,
            window_ns: u64::MAX,
        });
        assert!(rec.offer(trace(1, 1000)));
        let mut err = trace(2, 1); // far below the bar
        err.error = true;
        err.status = "timeout";
        assert!(rec.offer(err));
        let mut bad = trace(3, 1);
        bad.audit_mismatch = true;
        assert!(rec.offer(bad));
        assert_eq!(rec.recent(10).len(), 3);
    }

    #[test]
    fn ring_capacity_is_bounded() {
        let rec = FlightRecorder::new(FlightConfig {
            capacity: 3,
            slow_n: 100,
            window_ns: u64::MAX,
        });
        for i in 0..10 {
            rec.offer(trace(i, i));
        }
        let kept = rec.recent(100);
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].trace_id, 7);
        assert!(rec.get(6).is_none(), "evicted from the ring");
        assert!(rec.get(9).is_some());
    }

    #[test]
    fn get_prefers_most_recent_on_id_reuse() {
        let rec = FlightRecorder::new(FlightConfig {
            capacity: 8,
            slow_n: 100,
            window_ns: u64::MAX,
        });
        rec.offer(trace(5, 10));
        let mut second = trace(5, 20);
        second.kind = "pr";
        rec.offer(second);
        assert_eq!(rec.get(5).unwrap().kind, "pr");
    }

    #[test]
    fn json_rendering_is_one_line_and_escaped() {
        let mut t = trace(9, 123);
        t.spans.push(Span {
            id: 1,
            parent: 0,
            name: "request",
            start_ns: 10,
            end_ns: 133,
            attrs: vec![
                ("tenant", AttrValue::U64(1)),
                ("note", AttrValue::Str("a\"b\\c\nd".into())),
                ("estimate", AttrValue::F64(0.5)),
                ("nan", AttrValue::F64(f64::NAN)),
                ("ok", AttrValue::Bool(true)),
            ],
            events: vec![SpanEvent {
                name: "sprt_batch",
                at_ns: 50,
                attrs: vec![("samples", AttrValue::U64(64))],
            }],
        });
        let j = request_trace_to_json(&t);
        assert!(!j.contains('\n'), "JSON-lines record must be one line");
        assert!(j.contains("\"trace_id\":9"));
        assert!(j.contains("\"note\":\"a\\\"b\\\\c\\nd\""));
        assert!(j.contains("\"nan\":null"));
        assert!(j.contains("\"sprt_batch\""));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
