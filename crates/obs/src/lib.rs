//! # `uncertain-obs` — observability for the `Uncertain<T>` runtime
//!
//! The telemetry toolkit for the reproduction of *Uncertain\<T\>: A
//! First-Order Type for Uncertain Data* (ASPLOS 2014). The core runtime
//! emits structured events behind its `obs` feature; this crate supplies
//! the consumers:
//!
//! * **Decision traces** — [`TraceLog`] is a [`Recorder`] that captures
//!   every SPRT decision a [`Session`](uncertain_core::Session) makes:
//!   the batch-by-batch log-likelihood-ratio trajectory, samples drawn,
//!   and the stopping reason (accepted / rejected / budget-capped).
//!   [`trace_to_json`] / [`to_jsonl`] / [`write_jsonl`] export them as
//!   JSON-lines.
//! * **Metric primitives** — [`Counter`], [`Gauge`], and the
//!   log-bucketed [`LogHistogram`] (p50/p90/p99/max in a ~4 KiB
//!   lock-free structure) for services built on the runtime.
//! * **Prometheus exposition** — [`PromWriter`] renders counters,
//!   gauges, and histogram summaries in the text format scrapers
//!   accept.
//! * **Request tracing** — [`TraceContext`] / [`Span`] /
//!   [`TraceBuilder`] describe one request as a tree of monotonic-clock
//!   spans that propagates across threads and the serve crate's wire
//!   protocol, and the [`FlightRecorder`] retains completed traces by a
//!   tail-based policy (slowest-N per window, all errors, all audit
//!   mismatches) for the `/traces` introspection endpoints.
//!
//! The per-node cost *profiles* (the Bayesian-network flamegraph) live
//! in the core crate — see
//! [`Evaluator::profiled`](uncertain_core::Evaluator::profiled) — since
//! they need the evaluator's internals; this crate re-exports the event
//! types so `use uncertain_obs::*` is self-sufficient.
//!
//! # Quick start
//!
//! ```
//! use uncertain_core::{Session, Uncertain};
//! use uncertain_obs::TraceLog;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let log = TraceLog::new();
//! let mut session = Session::seeded(42).with_recorder(log.clone());
//!
//! let a = Uncertain::normal(4.0, 1.0)?;
//! let b = Uncertain::normal(5.0, 1.0)?;
//! session.is_probable(&(&a + &b).gt(5.0));
//!
//! let trace = &log.take()[0];
//! assert_eq!(trace.samples, trace.batches.last().unwrap().samples);
//! println!("decided in {} samples: {}", trace.samples, trace.stopping.as_str());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod flight;
mod metrics;
mod prom;
mod span;
mod trace;

pub use flight::{request_trace_to_json, FlightConfig, FlightRecorder, FlightStats, RequestTrace};
pub use metrics::{Counter, Gauge, HistogramSnapshot, LogHistogram};
pub use prom::PromWriter;
pub use span::{monotonic_ns, AttrValue, Span, SpanEvent, TraceBuilder, TraceContext};
pub use trace::{to_jsonl, trace_to_json, write_jsonl, TraceLog};

// Re-export the core event types this crate's API speaks, so consumers
// need not name uncertain-core for plain trace handling.
pub use uncertain_core::{
    DecisionTrace, Dispatch, KindCost, NodeCost, Profile, Recorder, StoppingReason, TracePoint,
};
