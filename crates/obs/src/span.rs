//! Request-scoped tracing spans: [`TraceContext`], [`Span`], and the
//! per-request [`TraceBuilder`].
//!
//! A *trace* is one tree of spans describing everything that happened to
//! a single request: admission, queue wait, plan compile, the SPRT (or
//! exact-analysis) decision, per-chunk sampling. The context that names
//! the tree — trace id, parent span id, sampling flag — is 17 bytes and
//! travels with the request across threads and across the wire (see the
//! serve crate's frame codec), so a `TcpTransport` client and the shard
//! that answered it agree on the same ids.
//!
//! Design constraints inherited from the rest of the runtime:
//!
//! * **Monotonic clocks only.** All timestamps are nanoseconds since a
//!   process-local epoch ([`monotonic_ns`]), immune to wall-clock steps.
//!   Timestamps are comparable within a process, not across machines.
//! * **Lock-light.** A [`TraceBuilder`] is a plain `Vec` of spans owned
//!   by the worker thread handling the request — building a trace takes
//!   no locks at all; the single synchronized step is handing the
//!   finished trace to the flight recorder.
//! * **Zero-cost when dormant.** Nothing here runs unless a request
//!   carries a sampled [`TraceContext`]; untraced requests pay one
//!   `Option` check.
//!
//! # Examples
//!
//! ```
//! use uncertain_obs::{AttrValue, TraceBuilder, TraceContext};
//!
//! let ctx = TraceContext::root();
//! let mut b = TraceBuilder::new(ctx);
//! let root = b.start("request", 0);
//! b.attr(root, "tenant", AttrValue::U64(7));
//! let child = b.start("compile", root);
//! b.end(child);
//! b.end(root);
//! let spans = b.finish();
//! assert_eq!(spans.len(), 2);
//! assert_eq!(spans[1].parent, spans[0].id);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mix used to turn
/// a counter into well-spread trace ids.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Nanoseconds since a process-local monotonic epoch (the first call in
/// this process). Steady under wall-clock adjustments; all span
/// timestamps use this clock.
#[inline]
pub fn monotonic_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// The identity a request's trace carries across threads and the wire:
/// which tree this is (`trace_id`), where in the tree the next span
/// hangs (`parent_span`), and whether anyone is recording (`sampled`).
///
/// `sampled == false` contexts still propagate their ids (so a reply can
/// echo them) but produce no spans anywhere — the dormant path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace (tree) identifier, nonzero for real traces.
    pub trace_id: u64,
    /// The span id in the caller under which callee spans nest; `0`
    /// means "root" (the callee's top span becomes the tree root).
    pub parent_span: u64,
    /// Whether spans should actually be recorded for this request.
    pub sampled: bool,
}

impl TraceContext {
    /// A fresh root context with a new process-unique trace id, no
    /// parent span, and sampling on.
    ///
    /// Ids come from an atomic counter seeded with wall-clock entropy
    /// and passed through a SplitMix64 finalizer, so concurrent clients
    /// in one process never collide and two processes are unlikely to.
    pub fn root() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        static SEED: OnceLock<u64> = OnceLock::new();
        let seed = *SEED.get_or_init(|| {
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            mix64(now ^ (std::process::id() as u64) << 32)
        });
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let mut id = mix64(seed ^ n);
        if id == 0 {
            id = 1; // reserve 0 for "no trace"
        }
        Self {
            trace_id: id,
            parent_span: 0,
            sampled: true,
        }
    }

    /// The same trace, re-rooted under `parent_span` — what a caller
    /// passes downstream so the callee's spans nest under its own.
    pub fn child(&self, parent_span: u64) -> Self {
        Self {
            parent_span,
            ..*self
        }
    }
}

/// A typed span/event attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// An unsigned integer (ids, counts, nanoseconds).
    U64(u64),
    /// A floating-point number (estimates, ratios).
    F64(f64),
    /// A boolean flag.
    Bool(bool),
    /// A short string (names, reasons).
    Str(String),
}

/// A point-in-time event inside a span — e.g. one SPRT batch boundary,
/// carrying the samples/successes/LLR of the running test.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Event name (e.g. `"sprt_batch"`).
    pub name: &'static str,
    /// When it happened, [`monotonic_ns`] clock.
    pub at_ns: u64,
    /// Typed payload.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// One timed operation in a trace: a named interval with a parent link,
/// typed attributes, and point events.
///
/// Span ids are allocated sequentially per trace by [`TraceBuilder`]
/// (root = 1), so a finished trace's tree structure can be checked by id
/// arithmetic alone.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// This span's id, unique within its trace.
    pub id: u64,
    /// The id of the enclosing span, or `0` for the tree root.
    pub parent: u64,
    /// Static span name (`"request"`, `"queue"`, `"compile"`, …).
    pub name: &'static str,
    /// Start, [`monotonic_ns`] clock.
    pub start_ns: u64,
    /// End, [`monotonic_ns`] clock; `>= start_ns` once finished.
    pub end_ns: u64,
    /// Typed attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// Point events recorded inside the interval.
    pub events: Vec<SpanEvent>,
}

impl Span {
    /// The span's duration in nanoseconds (0 while unfinished).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Collects the spans of one request on the thread doing the work.
///
/// Not `Sync` and never shared: each request gets its own builder, so
/// recording a span is a `Vec` push with no synchronization. Call
/// [`finish`](Self::finish) to take the spans (unfinished ones are
/// closed at the current instant).
#[derive(Debug)]
pub struct TraceBuilder {
    ctx: TraceContext,
    spans: Vec<Span>,
    next_id: u64,
}

impl TraceBuilder {
    /// A builder for one request's trace.
    pub fn new(ctx: TraceContext) -> Self {
        Self {
            ctx,
            spans: Vec::with_capacity(8),
            next_id: 1,
        }
    }

    /// The trace id spans are being recorded under.
    pub fn trace_id(&self) -> u64 {
        self.ctx.trace_id
    }

    /// The wire-propagated parent span id this trace nests under.
    pub fn wire_parent(&self) -> u64 {
        self.ctx.parent_span
    }

    /// Starts a span now. `parent = 0` makes it a tree root. Returns the
    /// new span's id.
    pub fn start(&mut self, name: &'static str, parent: u64) -> u64 {
        self.start_at(name, parent, monotonic_ns())
    }

    /// Starts a span with an explicit start timestamp (for intervals
    /// that began before the builder existed, like queue wait).
    pub fn start_at(&mut self, name: &'static str, parent: u64, start_ns: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.spans.push(Span {
            id,
            parent,
            name,
            start_ns,
            end_ns: 0,
            attrs: Vec::new(),
            events: Vec::new(),
        });
        id
    }

    /// Ends span `id` now.
    pub fn end(&mut self, id: u64) {
        self.end_at(id, monotonic_ns());
    }

    /// Ends span `id` at an explicit timestamp.
    pub fn end_at(&mut self, id: u64, end_ns: u64) {
        if let Some(s) = self.get_mut(id) {
            s.end_ns = end_ns.max(s.start_ns);
        }
    }

    /// Attaches an attribute to span `id`.
    pub fn attr(&mut self, id: u64, key: &'static str, value: AttrValue) {
        if let Some(s) = self.get_mut(id) {
            s.attrs.push((key, value));
        }
    }

    /// Records a point event inside span `id`.
    pub fn event(&mut self, id: u64, event: SpanEvent) {
        if let Some(s) = self.get_mut(id) {
            s.events.push(event);
        }
    }

    fn get_mut(&mut self, id: u64) -> Option<&mut Span> {
        // Ids are allocated sequentially from 1 in push order.
        self.spans.get_mut((id as usize).wrapping_sub(1))
    }

    /// Takes the spans, closing any still-open ones at the current
    /// instant.
    pub fn finish(mut self) -> Vec<Span> {
        let now = monotonic_ns();
        for s in &mut self.spans {
            if s.end_ns == 0 {
                s.end_ns = now.max(s.start_ns);
            }
        }
        self.spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_contexts_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let c = TraceContext::root();
            assert_ne!(c.trace_id, 0);
            assert_eq!(c.parent_span, 0);
            assert!(c.sampled);
            assert!(seen.insert(c.trace_id), "duplicate trace id");
        }
    }

    #[test]
    fn child_rebases_parent_only() {
        let c = TraceContext::root();
        let k = c.child(42);
        assert_eq!(k.trace_id, c.trace_id);
        assert_eq!(k.parent_span, 42);
        assert_eq!(k.sampled, c.sampled);
    }

    #[test]
    fn monotonic_ns_never_goes_backwards() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
    }

    #[test]
    fn builder_links_and_finishes_spans() {
        let mut b = TraceBuilder::new(TraceContext::root());
        let root = b.start("request", 0);
        let child = b.start_at("queue", root, 5);
        b.end_at(child, 9);
        b.attr(root, "tenant", AttrValue::U64(3));
        b.event(
            root,
            SpanEvent {
                name: "mark",
                at_ns: 7,
                attrs: vec![("n", AttrValue::U64(1))],
            },
        );
        let spans = b.finish();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].id, 1);
        assert_eq!(spans[0].parent, 0);
        assert_eq!(spans[1].parent, 1);
        assert_eq!(spans[1].duration_ns(), 4);
        assert!(spans[0].end_ns >= spans[0].start_ns, "root auto-closed");
        assert_eq!(spans[0].events.len(), 1);
    }

    #[test]
    fn end_clamps_to_start() {
        let mut b = TraceBuilder::new(TraceContext::root());
        let s = b.start_at("x", 0, 100);
        b.end_at(s, 50);
        assert_eq!(b.finish()[0].duration_ns(), 0);
    }
}
