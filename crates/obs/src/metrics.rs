//! Lock-light metric primitives: [`Counter`], [`Gauge`], and a
//! log-bucketed latency [`LogHistogram`].
//!
//! All three are plain structs over atomics — no locks, no allocation on
//! the hot path, `&self` update methods — so one instance can sit behind
//! an `Arc` and be hammered from every shard thread. Reads
//! ([`Counter::get`], [`LogHistogram::snapshot`]) are racy-but-consistent
//! in the usual metrics sense: each atomic is read once with relaxed
//! ordering, which is exactly the fidelity a scrape needs.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level that can move both ways (queue depth, live
/// sessions, cache entries).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the level outright (for gauges published from a snapshot
    /// rather than maintained incrementally).
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` buckets, bounding quantile error at ~1/2^SUB_BITS
/// (≈12.5%) of the value — plenty for latency percentiles.
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS;
/// Values below `2^(SUB_BITS + 1)` get exact single-value buckets.
const EXACT: u64 = (2 * SUBS) as u64;
/// Octaves above the exact range for a u64 value space.
const OCTAVES: usize = 64 - (SUB_BITS as usize + 1);
const BUCKETS: usize = EXACT as usize + OCTAVES * SUBS;

/// A fixed-size log-bucketed histogram of `u64` observations
/// (latencies in nanoseconds, sample counts, …).
///
/// Buckets are exact below 16 and then geometric with 8 sub-buckets per
/// power of two, so relative quantile error is bounded at ~12.5%
/// regardless of magnitude. Recording is one `fetch_add` plus a
/// `fetch_max` — no locks — and the whole histogram is ~4 KiB.
///
/// # Examples
///
/// ```
/// use uncertain_obs::LogHistogram;
///
/// let h = LogHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let s = h.snapshot();
/// assert_eq!(s.count, 1000);
/// assert_eq!(s.max, 1000);
/// // Quantiles are approximate but within the bucket's ~12.5% width.
/// assert!(s.p50 >= 450 && s.p50 <= 560, "p50 = {}", s.p50);
/// assert!(s.p99 >= 900 && s.p99 <= 1100, "p99 = {}", s.p99);
/// ```
pub struct LogHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index of a value: identity below [`EXACT`], then
/// `SUB_BITS` mantissa bits after the leading one select the sub-bucket
/// within the value's octave.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUB_BITS + 1
    let sub = (v >> (octave - SUB_BITS)) & (SUBS as u64 - 1);
    EXACT as usize + (octave - (SUB_BITS + 1)) as usize * SUBS + sub as usize
}

/// A representative value for a bucket: its midpoint, so quantile
/// estimates are centered rather than biased low.
fn bucket_value(i: usize) -> u64 {
    if i < EXACT as usize {
        return i as u64;
    }
    let rel = i - EXACT as usize;
    let octave = rel / SUBS + (SUB_BITS + 1) as usize;
    let sub = (rel % SUBS) as u64;
    let low = (1u64 << octave) + (sub << (octave - SUB_BITS as usize));
    let width = 1u64 << (octave - SUB_BITS as usize);
    low + width / 2
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the boxed array through a Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets = v.into_boxed_slice().try_into().expect("BUCKETS length");
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time summary with p50/p90/p99 estimates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSnapshot::default();
        }
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let quantile = |q: f64| -> u64 {
            // Rank of the q-quantile among `count` observations.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_value(i).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum,
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// A point-in-time summary of a [`LogHistogram`].
///
/// `Copy` so aggregate metrics structs stay plain data. Quantiles carry
/// the histogram's ~12.5% bucket-width error; `count`, `sum`, and `max`
/// are exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (so `sum / count` is the exact mean).
    pub sum: u64,
    /// Largest observation (exact).
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Exact mean of the observations, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Pools two snapshots taken from different histograms (e.g. one per
    /// shard). `count`, `sum`, and `max` stay exact; pooled quantiles
    /// take the per-shard maximum, a conservative upper estimate
    /// (exact when shards are identically loaded).
    ///
    /// An empty side is the identity: `merge(empty, x) == x` exactly,
    /// rather than letting an all-zero snapshot participate in the
    /// quantile max-pool (which would silently turn "no data" into
    /// "observed zeros" if empty snapshots ever carried residue).
    pub fn merge(&self, other: &Self) -> Self {
        if self.count == 0 {
            return *other;
        }
        if other.count == 0 {
            return *self;
        }
        Self {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
            p50: self.p50.max(other.p50),
            p90: self.p90.max(other.p90),
            p99: self.p99.max(other.p99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_range_is_identity() {
        for v in 0..EXACT {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_value(v as usize), v);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 2 {
            let i = bucket_index(v);
            assert!(i >= last, "index regressed at {v}");
            assert!(i < BUCKETS);
            last = i;
            v = v.saturating_mul(3) / 2 + 1;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_value_lands_in_its_own_bucket() {
        for i in 0..BUCKETS - 1 {
            let v = bucket_value(i);
            assert_eq!(bucket_index(v), i, "midpoint of bucket {i} strayed");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let h = LogHistogram::new();
        for _ in 0..1000 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        let err = (s.p50 as f64 - 1_000_000.0).abs() / 1_000_000.0;
        assert!(err <= 0.125, "p50 = {}, err = {err}", s.p50);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.mean(), 1_000_000.0);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        assert_eq!(LogHistogram::new().snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn merge_pools_counts_and_maxes_quantiles() {
        let a = HistogramSnapshot {
            count: 10,
            sum: 100,
            max: 30,
            p50: 8,
            p90: 20,
            p99: 29,
        };
        let b = HistogramSnapshot {
            count: 5,
            sum: 500,
            max: 200,
            p50: 90,
            p90: 150,
            p99: 199,
        };
        let m = a.merge(&b);
        assert_eq!(m.count, 15);
        assert_eq!(m.sum, 600);
        assert_eq!(m.max, 200);
        assert_eq!((m.p50, m.p90, m.p99), (90, 150, 199));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let x = HistogramSnapshot {
            count: 10,
            sum: 100,
            max: 30,
            p50: 8,
            p90: 20,
            p99: 29,
        };
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.merge(&x), x);
        assert_eq!(x.merge(&empty), x);
        assert_eq!(empty.merge(&empty), empty);
        // The zero snapshot is fully well-defined: zero quantiles, zero
        // mean, and it never perturbs a real snapshot it merges with.
        assert_eq!((empty.p50, empty.p90, empty.p99, empty.max), (0, 0, 0, 0));
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(LogHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.max, 39_999);
    }
}
