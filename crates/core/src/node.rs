//! The Bayesian-network node graph behind `Uncertain<T>`.
//!
//! Every `Uncertain<T>` wraps an `Arc` of a node in a directed acyclic
//! graph. Leaf nodes hold sampling functions; inner nodes hold the lifted
//! operator that combines their children (paper §3.3). The graph is built
//! incrementally and lazily as the program computes; it is only *executed*
//! — by ancestral sampling in topological order — when a conditional or
//! evaluation operator demands samples (§4.2).
//!
//! Each node carries a process-unique [`NodeId`]. During one joint sample,
//! the [`SampleContext`](crate::context::SampleContext) memoizes every
//! node's value by id, which is what makes two references to the same
//! variable perfectly correlated (the paper's SSA-style shared-dependence
//! analysis, Fig. 8) and guarantees each node is computed exactly once per
//! joint sample.

use crate::context::SampleContext;
use crate::kernel::{self, KernelBuilder, Map2Tag, MapTag};
use crate::plan::{compile_node, CompiledFn, PlanBuilder};
use crate::uncertain::{Uncertain, Value};
use crate::wire::WireOp;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use uncertain_dist::DistSpec;

/// A process-unique identifier for a node in the Bayesian network.
///
/// Identity — not structure — defines sharing: the same `NodeId` appearing
/// twice in a network means the *same* random variable, sampled once per
/// joint sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u64);

static NEXT_NODE_ID: AtomicU64 = AtomicU64::new(0);

impl NodeId {
    /// Allocates a fresh id (process-wide monotonic).
    pub(crate) fn fresh() -> Self {
        NodeId(NEXT_NODE_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw numeric id.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Type-erased view of a node: identity, display label, and children.
///
/// This is the surface the graph-introspection module walks; it knows
/// nothing about the value type.
pub(crate) trait NodeInfo: Send + Sync {
    /// This node's unique id.
    fn id(&self) -> NodeId;
    /// A short human-readable label (operator symbol or leaf description).
    fn label(&self) -> String;
    /// The nodes this node depends on (its parents in Bayesian-network
    /// terminology; children of the expression tree).
    fn children(&self) -> Vec<Arc<dyn NodeInfo>>;
    /// Whether this node is a leaf distribution (shaded in the paper's
    /// figures).
    fn is_leaf(&self) -> bool {
        self.children().is_empty()
    }

    /// The children `compile` descends into *statically* — the sub-graph
    /// that becomes part of this node's plan. Nodes whose inner network is
    /// tree-walked per joint sample (encapsulation, priors, conditioning)
    /// return none: the plan never compiles past them.
    fn compile_children(&self) -> Vec<Arc<dyn NodeInfo>> {
        Vec::new()
    }

    /// Compiles this node assuming `compile_children` are already in the
    /// builder's cache. Driven bottom-up by the plan's explicit work stack
    /// (see `plan::compile_root`), so `compile`'s natural recursion stays
    /// O(1) deep no matter how deep the network is.
    fn precompile(self: Arc<Self>, builder: &mut PlanBuilder);

    /// The children the columnar kernel must lower before this node — in
    /// `sample_value` visit order, so a leaf column consumes each sample's
    /// RNG exactly when the closure path would — or `None` when this node
    /// kind cannot be expressed as a tape instruction.
    fn lower_children(&self) -> Option<Vec<Arc<dyn NodeInfo>>> {
        None
    }

    /// Emits this node's tape instruction (children already lowered).
    /// Returns `false` when the node cannot be lowered.
    fn lower(self: Arc<Self>, k: &mut KernelBuilder) -> bool {
        let _ = k;
        false
    }

    /// What this node means on the wire, when it is expressible there:
    /// a closed-form leaf distribution, a point mass over `f64`/`bool`,
    /// or a tagged lifted operator. `None` marks the node — and therefore
    /// the whole graph — as not serializable (see [`crate::WireGraph`]).
    fn wire_op(&self) -> Option<WireOp> {
        None
    }
}

/// A node that produces values of type `T`.
pub(crate) trait TypedNode<T>: NodeInfo {
    /// Draws this node's value within the given joint-sample context,
    /// memoizing by node id so shared nodes are computed exactly once.
    fn sample_value(&self, ctx: &mut SampleContext) -> T;

    /// Compiles this node into a slot-indexed closure for a
    /// [`Plan`](crate::Plan). Implementations must visit children in the
    /// same order as `sample_value` so compiled evaluation consumes RNG
    /// draws in bitwise-identical order to the tree-walk interpreter.
    fn compile(self: Arc<Self>, builder: &mut PlanBuilder) -> CompiledFn<T>;
}

pub(crate) type DynNode<T> = Arc<dyn TypedNode<T>>;

// ---------------------------------------------------------------------------
// Leaf: a known distribution provided as a sampling function.
// ---------------------------------------------------------------------------

/// A boxed raw sampling function (the paper's leaf representation).
type BoxedSamplingFn<T> = Box<dyn Fn(&mut dyn rand::RngCore) -> T + Send + Sync>;

/// A boxed *column* fill: one value per RNG, bitwise-identical to calling
/// the scalar sampling function once per index (the
/// `Distribution::fill_column` contract from `uncertain-dist`).
type BoxedFillFn<T> = Box<dyn Fn(&mut [rand::rngs::SmallRng], &mut Vec<T>) + Send + Sync>;

/// Leaf node: a sampling function over the raw RNG, optionally tagged
/// with a vectorized column fill for the batch kernel.
pub(crate) struct LeafNode<T> {
    id: NodeId,
    label: String,
    sample_fn: BoxedSamplingFn<T>,
    fill_fn: Option<BoxedFillFn<T>>,
    /// The closed-form description of the leaf's distribution, when it
    /// has one — what makes the leaf wire-expressible. Carried from
    /// `Distribution::spec()` by `Uncertain::from_distribution`.
    spec: Option<DistSpec>,
}

impl<T> LeafNode<T> {
    pub(crate) fn new(
        label: impl Into<String>,
        sample_fn: impl Fn(&mut dyn rand::RngCore) -> T + Send + Sync + 'static,
    ) -> Self {
        Self {
            id: NodeId::fresh(),
            label: label.into(),
            sample_fn: Box::new(sample_fn),
            fill_fn: None,
            spec: None,
        }
    }

    /// A leaf that also carries a batched column fill — the kernel tag
    /// `Uncertain::from_distribution` attaches. `fill_fn` **must** be
    /// bitwise-equivalent to one `sample_fn` call per index (each index
    /// consuming only its own RNG, in scalar call order); the columnar
    /// kernel relies on this to stay sample-for-sample identical to the
    /// closure path.
    pub(crate) fn with_fill(
        label: impl Into<String>,
        sample_fn: impl Fn(&mut dyn rand::RngCore) -> T + Send + Sync + 'static,
        fill_fn: impl Fn(&mut [rand::rngs::SmallRng], &mut Vec<T>) + Send + Sync + 'static,
        spec: Option<DistSpec>,
    ) -> Self {
        Self {
            id: NodeId::fresh(),
            label: label.into(),
            sample_fn: Box::new(sample_fn),
            fill_fn: Some(Box::new(fill_fn)),
            spec,
        }
    }

    /// Draws one value straight from the sampling function — the kernel's
    /// per-row leaf fill, which does its own per-sample memoization by
    /// lowering each `NodeId` exactly once.
    pub(crate) fn sample_raw(&self, rng: &mut dyn rand::RngCore) -> T {
        (self.sample_fn)(rng)
    }

    /// The vectorized column fill, when this leaf carries one.
    pub(crate) fn fill_fn(&self) -> Option<&BoxedFillFn<T>> {
        self.fill_fn.as_ref()
    }
}

impl<T: Value> NodeInfo for LeafNode<T> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> String {
        self.label.clone()
    }
    fn children(&self) -> Vec<Arc<dyn NodeInfo>> {
        Vec::new()
    }
    fn precompile(self: Arc<Self>, builder: &mut PlanBuilder) {
        let _ = TypedNode::compile(self, builder);
    }
    fn lower_children(&self) -> Option<Vec<Arc<dyn NodeInfo>>> {
        Some(Vec::new())
    }
    fn lower(self: Arc<Self>, k: &mut KernelBuilder) -> bool {
        kernel::lower_leaf(self, k);
        true
    }
    fn wire_op(&self) -> Option<WireOp> {
        self.spec.map(WireOp::Leaf)
    }
}

impl<T: Value> TypedNode<T> for LeafNode<T> {
    fn sample_value(&self, ctx: &mut SampleContext) -> T {
        ctx.memoized(self.id, |ctx| (self.sample_fn)(ctx.rng()))
    }

    fn compile(self: Arc<Self>, builder: &mut PlanBuilder) -> CompiledFn<T> {
        let id = self.id;
        compile_node(builder, id, move |_, slot| {
            Arc::new(move |ctx| {
                if let Some(v) = ctx.slot_get::<T>(slot) {
                    return v;
                }
                let v = (self.sample_fn)(ctx.rng());
                ctx.slot_put(slot, v.clone());
                v
            })
        })
    }
}

// ---------------------------------------------------------------------------
// Point mass: a constant lifted into the network.
// ---------------------------------------------------------------------------

/// Point-mass node: the paper's `Pointmass :: T → U<T>` coercion.
pub(crate) struct PointNode<T> {
    id: NodeId,
    value: T,
}

impl<T> PointNode<T> {
    pub(crate) fn new(value: T) -> Self {
        Self {
            id: NodeId::fresh(),
            value,
        }
    }
}

impl<T: Value + fmt::Debug> NodeInfo for PointNode<T> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> String {
        format!("point({:?})", self.value)
    }
    fn children(&self) -> Vec<Arc<dyn NodeInfo>> {
        Vec::new()
    }
    fn precompile(self: Arc<Self>, builder: &mut PlanBuilder) {
        let _ = TypedNode::compile(self, builder);
    }
    fn lower_children(&self) -> Option<Vec<Arc<dyn NodeInfo>>> {
        Some(Vec::new())
    }
    fn lower(self: Arc<Self>, k: &mut KernelBuilder) -> bool {
        kernel::lower_point(self.id, self.label(), self.value.clone(), k);
        true
    }
    fn wire_op(&self) -> Option<WireOp> {
        // `Value: 'static`, so the constant can be inspected through `Any`;
        // only the two scalar types the wire format carries are accepted.
        let v: &dyn std::any::Any = &self.value;
        if let Some(x) = v.downcast_ref::<f64>() {
            return Some(WireOp::PointF64(*x));
        }
        if let Some(b) = v.downcast_ref::<bool>() {
            return Some(WireOp::PointBool(*b));
        }
        None
    }
}

impl<T: Value + fmt::Debug> TypedNode<T> for PointNode<T> {
    fn sample_value(&self, _ctx: &mut SampleContext) -> T {
        self.value.clone()
    }

    fn compile(self: Arc<Self>, _builder: &mut PlanBuilder) -> CompiledFn<T> {
        // Constants need no slot: the closure is the value.
        Arc::new(move |_| self.value.clone())
    }
}

// ---------------------------------------------------------------------------
// Unary lifted operator.
// ---------------------------------------------------------------------------

/// Inner node applying a pure unary function to one child.
pub(crate) struct MapNode<A, T> {
    id: NodeId,
    label: String,
    child: DynNode<A>,
    f: Box<dyn Fn(A) -> T + Send + Sync>,
    /// What the closure computes, when it is one of the known scalar
    /// operations — lets the kernel run it as a monomorphic column loop
    /// instead of a per-element closure call. `None` is always sound.
    tag: Option<MapTag>,
}

impl<A, T> MapNode<A, T> {
    pub(crate) fn new(
        label: impl Into<String>,
        child: DynNode<A>,
        f: impl Fn(A) -> T + Send + Sync + 'static,
    ) -> Self {
        Self::with_tag(label, child, f, None)
    }

    pub(crate) fn with_tag(
        label: impl Into<String>,
        child: DynNode<A>,
        f: impl Fn(A) -> T + Send + Sync + 'static,
        tag: Option<MapTag>,
    ) -> Self {
        Self {
            id: NodeId::fresh(),
            label: label.into(),
            child,
            f: Box::new(f),
            tag,
        }
    }

    /// Applies the lifted function to one already-sampled child value.
    pub(crate) fn apply(&self, a: A) -> T {
        (self.f)(a)
    }
}

impl<A: Value, T: Value> NodeInfo for MapNode<A, T> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> String {
        self.label.clone()
    }
    fn children(&self) -> Vec<Arc<dyn NodeInfo>> {
        vec![self.child.clone() as Arc<dyn NodeInfo>]
    }
    fn compile_children(&self) -> Vec<Arc<dyn NodeInfo>> {
        vec![self.child.clone() as Arc<dyn NodeInfo>]
    }
    fn precompile(self: Arc<Self>, builder: &mut PlanBuilder) {
        let _ = TypedNode::compile(self, builder);
    }
    fn lower_children(&self) -> Option<Vec<Arc<dyn NodeInfo>>> {
        Some(vec![self.child.clone() as Arc<dyn NodeInfo>])
    }
    fn lower(self: Arc<Self>, k: &mut KernelBuilder) -> bool {
        let (tag, child) = (self.tag, self.child.id());
        kernel::lower_map(self, tag, child, k);
        true
    }
    fn wire_op(&self) -> Option<WireOp> {
        // The tag *is* the closure's meaning (the kernel already relies on
        // that equivalence), so a tagged map is exactly reconstructible.
        self.tag.map(WireOp::Map)
    }
}

impl<A: Value, T: Value> TypedNode<T> for MapNode<A, T> {
    fn sample_value(&self, ctx: &mut SampleContext) -> T {
        if let Some(v) = ctx.lookup::<T>(self.id) {
            return v;
        }
        let a = self.child.sample_value(ctx);
        let v = (self.f)(a);
        ctx.store(self.id, v.clone());
        v
    }

    fn compile(self: Arc<Self>, builder: &mut PlanBuilder) -> CompiledFn<T> {
        let id = self.id;
        let child = self.child.clone();
        compile_node(builder, id, move |builder, slot| {
            let child = child.compile(builder);
            Arc::new(move |ctx| {
                if let Some(v) = ctx.slot_get::<T>(slot) {
                    return v;
                }
                let a = child(ctx);
                let v = (self.f)(a);
                ctx.slot_put(slot, v.clone());
                v
            })
        })
    }
}

// ---------------------------------------------------------------------------
// Binary lifted operator.
// ---------------------------------------------------------------------------

/// Inner node applying a pure binary function to two children — the workhorse
/// behind every lifted arithmetic, comparison, and logical operator.
pub(crate) struct Map2Node<A, B, T> {
    id: NodeId,
    label: String,
    left: DynNode<A>,
    right: DynNode<B>,
    f: Box<dyn Fn(A, B) -> T + Send + Sync>,
    /// Known-operation tag for the kernel; see [`MapNode::tag`].
    tag: Option<Map2Tag>,
}

impl<A, B, T> Map2Node<A, B, T> {
    pub(crate) fn new(
        label: impl Into<String>,
        left: DynNode<A>,
        right: DynNode<B>,
        f: impl Fn(A, B) -> T + Send + Sync + 'static,
    ) -> Self {
        Self::with_tag(label, left, right, f, None)
    }

    pub(crate) fn with_tag(
        label: impl Into<String>,
        left: DynNode<A>,
        right: DynNode<B>,
        f: impl Fn(A, B) -> T + Send + Sync + 'static,
        tag: Option<Map2Tag>,
    ) -> Self {
        Self {
            id: NodeId::fresh(),
            label: label.into(),
            left,
            right,
            f: Box::new(f),
            tag,
        }
    }

    /// Applies the lifted function to already-sampled child values.
    pub(crate) fn apply(&self, a: A, b: B) -> T {
        (self.f)(a, b)
    }
}

impl<A: Value, B: Value, T: Value> NodeInfo for Map2Node<A, B, T> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> String {
        self.label.clone()
    }
    fn children(&self) -> Vec<Arc<dyn NodeInfo>> {
        vec![
            self.left.clone() as Arc<dyn NodeInfo>,
            self.right.clone() as Arc<dyn NodeInfo>,
        ]
    }
    fn compile_children(&self) -> Vec<Arc<dyn NodeInfo>> {
        self.children()
    }
    fn precompile(self: Arc<Self>, builder: &mut PlanBuilder) {
        let _ = TypedNode::compile(self, builder);
    }
    fn lower_children(&self) -> Option<Vec<Arc<dyn NodeInfo>>> {
        // Left before right: the order `sample_value` draws in.
        Some(self.children())
    }
    fn lower(self: Arc<Self>, k: &mut KernelBuilder) -> bool {
        let (tag, left, right) = (self.tag, self.left.id(), self.right.id());
        kernel::lower_map2(self, tag, left, right, k);
        true
    }
    fn wire_op(&self) -> Option<WireOp> {
        self.tag.map(WireOp::Map2)
    }
}

impl<A: Value, B: Value, T: Value> TypedNode<T> for Map2Node<A, B, T> {
    fn sample_value(&self, ctx: &mut SampleContext) -> T {
        if let Some(v) = ctx.lookup::<T>(self.id) {
            return v;
        }
        let a = self.left.sample_value(ctx);
        let b = self.right.sample_value(ctx);
        let v = (self.f)(a, b);
        ctx.store(self.id, v.clone());
        v
    }

    fn compile(self: Arc<Self>, builder: &mut PlanBuilder) -> CompiledFn<T> {
        let id = self.id;
        let left = self.left.clone();
        let right = self.right.clone();
        compile_node(builder, id, move |builder, slot| {
            // Left before right, matching `sample_value`'s RNG draw order.
            let left = left.compile(builder);
            let right = right.compile(builder);
            Arc::new(move |ctx| {
                if let Some(v) = ctx.slot_get::<T>(slot) {
                    return v;
                }
                let a = left(ctx);
                let b = right(ctx);
                let v = (self.f)(a, b);
                ctx.slot_put(slot, v.clone());
                v
            })
        })
    }
}

// ---------------------------------------------------------------------------
// Monadic bind: dependent distributions.
// ---------------------------------------------------------------------------

/// Inner node whose distribution *depends on the sampled value* of its
/// child: the conditional distribution `Pr[T | A = a]`. This is how expert
/// developers "override [independence] by specifying the joint distribution
/// between two variables" (paper §3.3).
pub(crate) struct BindNode<A, T> {
    id: NodeId,
    label: String,
    child: DynNode<A>,
    f: Box<dyn Fn(A) -> Uncertain<T> + Send + Sync>,
}

impl<A, T> BindNode<A, T> {
    pub(crate) fn new(
        label: impl Into<String>,
        child: DynNode<A>,
        f: impl Fn(A) -> Uncertain<T> + Send + Sync + 'static,
    ) -> Self {
        Self {
            id: NodeId::fresh(),
            label: label.into(),
            child,
            f: Box::new(f),
        }
    }
}

impl<A: Value, T: Value> NodeInfo for BindNode<A, T> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> String {
        self.label.clone()
    }
    fn children(&self) -> Vec<Arc<dyn NodeInfo>> {
        vec![self.child.clone() as Arc<dyn NodeInfo>]
    }
    fn compile_children(&self) -> Vec<Arc<dyn NodeInfo>> {
        // Only the outer child is compiled statically; the inner network
        // exists per joint sample and is tree-walked.
        vec![self.child.clone() as Arc<dyn NodeInfo>]
    }
    fn precompile(self: Arc<Self>, builder: &mut PlanBuilder) {
        let _ = TypedNode::compile(self, builder);
    }
}

impl<A: Value, T: Value> TypedNode<T> for BindNode<A, T> {
    fn sample_value(&self, ctx: &mut SampleContext) -> T {
        if let Some(v) = ctx.lookup::<T>(self.id) {
            return v;
        }
        let a = self.child.sample_value(ctx);
        let inner = (self.f)(a);
        let v = inner.node().sample_value(ctx);
        ctx.store(self.id, v.clone());
        v
    }

    fn compile(self: Arc<Self>, builder: &mut PlanBuilder) -> CompiledFn<T> {
        let id = self.id;
        let child = self.child.clone();
        compile_node(builder, id, move |builder, slot| {
            let child = child.compile(builder);
            Arc::new(move |ctx| {
                if let Some(v) = ctx.slot_get::<T>(slot) {
                    return v;
                }
                let a = child(ctx);
                // The inner network only exists per joint sample, so it is
                // tree-walked in the same context; planned nodes it closes
                // over are redirected to their slots by the context.
                let inner = (self.f)(a);
                let v = inner.node().sample_value(ctx);
                ctx.slot_put(slot, v.clone());
                v
            })
        })
    }
}

// ---------------------------------------------------------------------------
// Encapsulation boundary: a sub-network sampled in its own context.
// ---------------------------------------------------------------------------

/// Wraps a sub-network so it is sampled in a *fresh* joint-sample context.
///
/// The wrapped variable becomes independent of every other use of the same
/// leaves — the boundary a library puts around a distribution it hands out
/// repeatedly (each `GPS.GetLocation()` call is a new reading even though
/// the library reuses one error model).
pub(crate) struct EncapsulatedNode<T> {
    id: NodeId,
    label: String,
    inner: DynNode<T>,
}

impl<T> EncapsulatedNode<T> {
    pub(crate) fn new(label: impl Into<String>, inner: DynNode<T>) -> Self {
        Self {
            id: NodeId::fresh(),
            label: label.into(),
            inner,
        }
    }
}

impl<T: Value> NodeInfo for EncapsulatedNode<T> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> String {
        self.label.clone()
    }
    fn children(&self) -> Vec<Arc<dyn NodeInfo>> {
        vec![self.inner.clone() as Arc<dyn NodeInfo>]
    }
    fn precompile(self: Arc<Self>, builder: &mut PlanBuilder) {
        let _ = TypedNode::compile(self, builder);
    }
}

impl<T: Value> TypedNode<T> for EncapsulatedNode<T> {
    fn sample_value(&self, ctx: &mut SampleContext) -> T {
        ctx.memoized(self.id, |ctx| {
            let mut sub = ctx.fork();
            self.inner.sample_value(&mut sub)
        })
    }

    fn compile(self: Arc<Self>, builder: &mut PlanBuilder) -> CompiledFn<T> {
        let id = self.id;
        compile_node(builder, id, move |_, slot| {
            Arc::new(move |ctx| {
                if let Some(v) = ctx.slot_get::<T>(slot) {
                    return v;
                }
                // Same fork semantics as the interpreter: the sub-network
                // must decorrelate, so it runs in a fresh (plan-free)
                // context seeded from this context's stream.
                let mut sub = ctx.fork();
                let v = self.inner.sample_value(&mut sub);
                ctx.slot_put(slot, v.clone());
                v
            })
        })
    }
}

// ---------------------------------------------------------------------------
// Prior weighting: sampling–importance–resampling.
// ---------------------------------------------------------------------------

/// Applies a Bayesian prior by sampling–importance–resampling (paper §3.5):
/// per joint sample, draws `candidates` independent samples of the child
/// sub-network, weighs each by `weight`, and resamples one in proportion.
pub(crate) struct WeightedNode<T> {
    id: NodeId,
    label: String,
    inner: DynNode<T>,
    /// Weight function; interpreted as a log-weight when `log_space`.
    weight: Box<dyn Fn(&T) -> f64 + Send + Sync>,
    candidates: usize,
    /// When set, `weight` returns *log* weights and resampling normalizes
    /// by the pool maximum — immune to extreme-likelihood underflow.
    log_space: bool,
}

impl<T> WeightedNode<T> {
    pub(crate) fn new(
        label: impl Into<String>,
        inner: DynNode<T>,
        weight: impl Fn(&T) -> f64 + Send + Sync + 'static,
        candidates: usize,
    ) -> Self {
        debug_assert!(candidates > 0);
        Self {
            id: NodeId::fresh(),
            label: label.into(),
            inner,
            weight: Box::new(weight),
            candidates,
            log_space: false,
        }
    }

    pub(crate) fn new_log_space(
        label: impl Into<String>,
        inner: DynNode<T>,
        ln_weight: impl Fn(&T) -> f64 + Send + Sync + 'static,
        candidates: usize,
    ) -> Self {
        debug_assert!(candidates > 0);
        Self {
            id: NodeId::fresh(),
            label: label.into(),
            inner,
            weight: Box::new(ln_weight),
            candidates,
            log_space: true,
        }
    }
}

impl<T: Value> NodeInfo for WeightedNode<T> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> String {
        self.label.clone()
    }
    fn children(&self) -> Vec<Arc<dyn NodeInfo>> {
        vec![self.inner.clone() as Arc<dyn NodeInfo>]
    }
    fn precompile(self: Arc<Self>, builder: &mut PlanBuilder) {
        let _ = TypedNode::compile(self, builder);
    }
}

impl<T: Value> WeightedNode<T> {
    /// One sampling–importance–resampling draw. Shared verbatim by the
    /// tree-walk interpreter and compiled plans so both execution modes
    /// consume identical RNG streams.
    fn draw(&self, ctx: &mut SampleContext) -> T {
        /// If every candidate in a pool has zero weight, redraw the pool up
        /// to this many times before falling back to an unweighted draw.
        const ZERO_WEIGHT_ROUNDS: usize = 8;
        let mut pool = Vec::with_capacity(self.candidates);
        let mut weights = Vec::with_capacity(self.candidates);
        for _ in 0..ZERO_WEIGHT_ROUNDS {
            pool.clear();
            weights.clear();
            for _ in 0..self.candidates {
                let mut sub = ctx.fork();
                let v = self.inner.sample_value(&mut sub);
                let raw = (self.weight)(&v);
                pool.push(v);
                weights.push(raw);
            }
            if self.log_space {
                // Normalize by the pool maximum before exponentiating,
                // so astronomically small likelihoods keep their
                // *relative* weights instead of all flushing to zero.
                let max = weights
                    .iter()
                    .copied()
                    .filter(|w| w.is_finite())
                    .fold(f64::NEG_INFINITY, f64::max);
                for w in weights.iter_mut() {
                    *w = if w.is_finite() && max.is_finite() {
                        (*w - max).exp()
                    } else {
                        0.0
                    };
                }
            } else {
                for w in weights.iter_mut() {
                    *w = if w.is_finite() { w.max(0.0) } else { 0.0 };
                }
            }
            let total: f64 = weights.iter().sum();
            if total > 0.0 {
                use rand::Rng;
                let mut u = ctx.rng().gen::<f64>() * total;
                for (i, w) in weights.iter().enumerate() {
                    u -= w;
                    if u <= 0.0 {
                        return pool.swap_remove(i);
                    }
                }
                return pool.pop().expect("candidate pool is non-empty");
            }
        }
        // Prior assigns zero mass to every candidate across all rounds:
        // fall back to an unweighted draw rather than failing the whole
        // joint sample (documented on `Uncertain::weight_by`).
        use rand::Rng;
        let i = ctx.rng().gen_range(0..pool.len());
        pool.swap_remove(i)
    }
}

impl<T: Value> TypedNode<T> for WeightedNode<T> {
    fn sample_value(&self, ctx: &mut SampleContext) -> T {
        ctx.memoized(self.id, |ctx| self.draw(ctx))
    }

    fn compile(self: Arc<Self>, builder: &mut PlanBuilder) -> CompiledFn<T> {
        let id = self.id;
        compile_node(builder, id, move |_, slot| {
            Arc::new(move |ctx| {
                if let Some(v) = ctx.slot_get::<T>(slot) {
                    return v;
                }
                let v = self.draw(ctx);
                ctx.slot_put(slot, v.clone());
                v
            })
        })
    }
}

// ---------------------------------------------------------------------------
// Rejection conditioning.
// ---------------------------------------------------------------------------

/// Conditions a sub-network on a hard predicate by rejection sampling: per
/// joint sample, redraws the child (in fresh sub-contexts) until the
/// predicate holds, up to `max_tries`.
pub(crate) struct ConditionedNode<T> {
    id: NodeId,
    label: String,
    inner: DynNode<T>,
    predicate: Box<dyn Fn(&T) -> bool + Send + Sync>,
    max_tries: usize,
}

impl<T> ConditionedNode<T> {
    pub(crate) fn new(
        label: impl Into<String>,
        inner: DynNode<T>,
        predicate: impl Fn(&T) -> bool + Send + Sync + 'static,
        max_tries: usize,
    ) -> Self {
        debug_assert!(max_tries > 0);
        Self {
            id: NodeId::fresh(),
            label: label.into(),
            inner,
            predicate: Box::new(predicate),
            max_tries,
        }
    }
}

impl<T: Value> NodeInfo for ConditionedNode<T> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> String {
        self.label.clone()
    }
    fn children(&self) -> Vec<Arc<dyn NodeInfo>> {
        vec![self.inner.clone() as Arc<dyn NodeInfo>]
    }
    fn precompile(self: Arc<Self>, builder: &mut PlanBuilder) {
        let _ = TypedNode::compile(self, builder);
    }
}

impl<T: Value> ConditionedNode<T> {
    /// One rejection-sampling draw. Shared by the tree-walk interpreter and
    /// compiled plans so both execution modes consume identical RNG streams.
    fn draw(&self, ctx: &mut SampleContext) -> T {
        for _ in 0..self.max_tries {
            let mut sub = ctx.fork();
            let v = self.inner.sample_value(&mut sub);
            if (self.predicate)(&v) {
                return v;
            }
        }
        panic!(
            "condition_on: predicate rejected {} consecutive samples of node {} ({}); \
             the evidence is (nearly) impossible under this distribution",
            self.max_tries, self.id, self.label
        );
    }
}

impl<T: Value> TypedNode<T> for ConditionedNode<T> {
    fn sample_value(&self, ctx: &mut SampleContext) -> T {
        ctx.memoized(self.id, |ctx| self.draw(ctx))
    }

    fn compile(self: Arc<Self>, builder: &mut PlanBuilder) -> CompiledFn<T> {
        let id = self.id;
        compile_node(builder, id, move |_, slot| {
            Arc::new(move |ctx| {
                if let Some(v) = ctx.slot_get::<T>(slot) {
                    return v;
                }
                let v = self.draw(ctx);
                ctx.slot_put(slot, v.clone());
                v
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Session;
    use crate::uncertain::Uncertain;

    #[test]
    fn node_ids_are_unique_and_monotonic() {
        let a = NodeId::fresh();
        let b = NodeId::fresh();
        assert_ne!(a, b);
        assert!(b.as_u64() > a.as_u64());
        assert_eq!(format!("{a}"), format!("n{}", a.as_u64()));
    }

    #[test]
    fn point_node_is_leaf_with_debug_label() {
        let u = Uncertain::point(7);
        let view = u.network();
        assert_eq!(view.node_count(), 1);
        assert!(view.nodes().next().unwrap().label.contains('7'));
    }

    #[test]
    fn leaf_memoization_makes_copies_correlated() {
        // x - x must be exactly zero in every joint sample (paper Fig. 8).
        let x = Uncertain::normal(0.0, 10.0).unwrap();
        let diff = x.clone() - x;
        let mut s = Session::sequential(1);
        for _ in 0..100 {
            assert_eq!(s.sample(&diff), 0.0);
        }
    }

    #[test]
    fn encapsulated_copies_are_independent() {
        let x = Uncertain::normal(0.0, 10.0).unwrap();
        let independent = x.encapsulate() - x.encapsulate();
        let mut s = Session::sequential(2);
        let nonzero = (0..100).filter(|_| s.sample(&independent) != 0.0).count();
        assert!(nonzero > 90, "nonzero={nonzero}");
    }

    #[test]
    #[should_panic(expected = "condition_on")]
    fn impossible_condition_panics() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let impossible = x.condition_on(|v: &f64| *v > 1e9, 32);
        let mut s = Session::sequential(3);
        let _ = s.sample(&impossible);
    }

    #[test]
    fn zero_weight_prior_falls_back_to_unweighted() {
        let x = Uncertain::normal(5.0, 1.0).unwrap();
        let weighted = x.weight_by_k(|_| 0.0, 8);
        let mut s = Session::sequential(4);
        // Must not panic, and must still produce plausible values.
        let v = s.sample(&weighted);
        assert!((0.0..10.0).contains(&v));
    }
}
