//! The `Uncertain<T>` type: constructors and core combinators.

use crate::node::{BindNode, DynNode, LeafNode, Map2Node, MapNode, PointNode};
use crate::NodeId;
use std::fmt;
use std::sync::Arc;
use uncertain_dist::{Bernoulli, Beta, Distribution, Gaussian, ParamError, Rayleigh, Uniform};

/// The bound every value carried by an [`Uncertain<T>`] must satisfy.
///
/// Values are cloned into the per-joint-sample memo table (`Clone +
/// 'static`) and the network is shareable across threads (`Send + Sync`).
/// This trait is blanket-implemented; you never implement it by hand.
pub trait Value: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Value for T {}

/// A random variable of type `T`, represented as a node in a lazily built
/// Bayesian network (paper §3).
///
/// `Uncertain<T>` is cheap to clone (it is an `Arc` handle) and cloning
/// preserves *identity*: a clone refers to the **same** random variable, so
/// computations that use both stay perfectly correlated. Use
/// [`Uncertain::encapsulate`] when you want an independent re-draw instead.
///
/// # Examples
///
/// Computation compounds uncertainty (paper Fig. 6):
///
/// ```
/// use uncertain_core::{Session, Uncertain};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Uncertain::normal(0.0, 1.0)?;
/// let b = Uncertain::normal(0.0, 1.0)?;
/// let c = &a + &b;
///
/// let mut s = Session::seeded(7);
/// let stats = s.stats(&c, 4000)?;
/// // Var[c] = Var[a] + Var[b] = 2, so σ ≈ 1.41.
/// assert!((stats.std_dev() - 2f64.sqrt()).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
pub struct Uncertain<T> {
    node: DynNode<T>,
}

impl<T> Clone for Uncertain<T> {
    fn clone(&self) -> Self {
        Self {
            node: Arc::clone(&self.node),
        }
    }
}

impl<T: Value> fmt::Debug for Uncertain<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Uncertain")
            .field("id", &self.node.id())
            .field("label", &self.node.label())
            .finish()
    }
}

impl<T> Uncertain<T> {
    pub(crate) fn from_node(node: DynNode<T>) -> Self {
        Self { node }
    }

    pub(crate) fn node(&self) -> &DynNode<T> {
        &self.node
    }

    /// The id of this variable's root node in the Bayesian network.
    ///
    /// Two `Uncertain` values with the same root id are the same random
    /// variable.
    pub fn id(&self) -> NodeId
    where
        T: Value,
    {
        self.node.id()
    }
}

impl<T: Value> Uncertain<T> {
    /// Lifts a raw *sampling function* into an uncertain value — the
    /// fundamental leaf constructor (paper §4.1: "a sampling function has no
    /// arguments and returns a new random sample on each invocation").
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{Session, Uncertain};
    /// use rand::Rng;
    ///
    /// let die = Uncertain::from_fn("d6", |rng| rng.gen_range(1..=6_i32));
    /// let mut s = Session::seeded(0);
    /// assert!((1..=6).contains(&s.sample(&die)));
    /// ```
    pub fn from_fn(
        label: impl Into<String>,
        f: impl Fn(&mut dyn rand::RngCore) -> T + Send + Sync + 'static,
    ) -> Self {
        Self::from_node(Arc::new(LeafNode::new(label, f)))
    }

    /// Lifts a [`Distribution`] from the `uncertain-dist` substrate into an
    /// uncertain value.
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{Session, Uncertain};
    /// use uncertain_core::dist::Rayleigh;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let gps_error = Uncertain::from_distribution(Rayleigh::from_gps_accuracy(4.0)?);
    /// let mut s = Session::seeded(1);
    /// assert!(s.sample(&gps_error) >= 0.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_distribution<D>(dist: D) -> Self
    where
        D: Distribution<T> + 'static,
    {
        let label = short_type_name::<D>();
        // Keep the distribution itself (not just a closure over it) so the
        // leaf can carry the batched `fill_column` path as a kernel tag —
        // the columnar backend then fills whole leaf columns through the
        // distribution's vectorized pass instead of one virtual call per
        // row. Both closures share one `Arc`; `fill_column`'s contract
        // guarantees they are bitwise-interchangeable.
        let dist = Arc::new(dist);
        let scalar = Arc::clone(&dist);
        let spec = dist.spec();
        Self::from_node(Arc::new(LeafNode::with_fill(
            label,
            move |rng| scalar.sample(rng),
            move |rngs, out| dist.fill_column(rngs, out),
            spec,
        )))
    }

    /// Wraps a concrete value as a point-mass distribution — the paper's
    /// `Pointmass` coercion (Table 1). Equivalent to `Uncertain::from(v)`.
    pub fn point(value: T) -> Self
    where
        T: fmt::Debug,
    {
        Self::from_node(Arc::new(PointNode::new(value)))
    }

    /// Applies a pure function to this variable, yielding a new inner node
    /// in the Bayesian network (a lifted unary operator).
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{Session, Uncertain};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let x = Uncertain::normal(0.0, 1.0)?;
    /// let magnitude = x.map("abs", |v: f64| v.abs());
    /// let mut s = Session::seeded(2);
    /// assert!(s.sample(&magnitude) >= 0.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn map<U: Value>(
        &self,
        label: impl Into<String>,
        f: impl Fn(T) -> U + Send + Sync + 'static,
    ) -> Uncertain<U> {
        Uncertain::from_node(Arc::new(MapNode::new(label, self.node.clone(), f)))
    }

    /// `map` with a kernel tag: the closure is the semantics, the tag lets
    /// the columnar backend run the same operation as a tight loop.
    pub(crate) fn map_tagged<U: Value>(
        &self,
        label: impl Into<String>,
        tag: Option<crate::kernel::MapTag>,
        f: impl Fn(T) -> U + Send + Sync + 'static,
    ) -> Uncertain<U> {
        Uncertain::from_node(Arc::new(MapNode::with_tag(
            label,
            self.node.clone(),
            f,
            tag,
        )))
    }

    /// Combines this variable with another through a pure binary function —
    /// the general lifted binary operator every arithmetic/comparison/logic
    /// operator reduces to. The result depends on *both* inputs; shared
    /// ancestry is handled by node identity (paper Fig. 8).
    pub fn map2<U: Value, V: Value>(
        &self,
        label: impl Into<String>,
        other: &Uncertain<U>,
        f: impl Fn(T, U) -> V + Send + Sync + 'static,
    ) -> Uncertain<V> {
        Uncertain::from_node(Arc::new(Map2Node::new(
            label,
            self.node.clone(),
            other.node.clone(),
            f,
        )))
    }

    /// `map2` with a kernel tag (see [`Uncertain::map_tagged`]).
    pub(crate) fn map2_tagged<U: Value, V: Value>(
        &self,
        label: impl Into<String>,
        other: &Uncertain<U>,
        tag: Option<crate::kernel::Map2Tag>,
        f: impl Fn(T, U) -> V + Send + Sync + 'static,
    ) -> Uncertain<V> {
        Uncertain::from_node(Arc::new(Map2Node::with_tag(
            label,
            self.node.clone(),
            other.node.clone(),
            f,
            tag,
        )))
    }

    /// Pairs two variables into one joint variable (sampled jointly, so any
    /// shared ancestry stays correlated).
    pub fn zip<U: Value>(&self, other: &Uncertain<U>) -> Uncertain<(T, U)> {
        self.map2("zip", other, |a, b| (a, b))
    }

    /// Monadic bind: builds a variable whose *distribution* depends on the
    /// sampled value of this one — the conditional distribution
    /// `Pr[U | T = t]`. This is how dependent random variables are
    /// expressed (paper §3.3).
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{Session, Uncertain};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// // A sensor whose noise grows with the (uncertain) temperature.
    /// let temp = Uncertain::uniform(10.0, 30.0)?;
    /// let reading = temp.flat_map("sensor", |t| {
    ///     Uncertain::normal(t, 0.1 * t).expect("positive std-dev")
    /// });
    /// let mut s = Session::seeded(3);
    /// let r = s.sample(&reading);
    /// assert!(r > 0.0 && r < 60.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn flat_map<U: Value>(
        &self,
        label: impl Into<String>,
        f: impl Fn(T) -> Uncertain<U> + Send + Sync + 'static,
    ) -> Uncertain<U> {
        Uncertain::from_node(Arc::new(BindNode::new(label, self.node.clone(), f)))
    }
}

impl Uncertain<f64> {
    /// A Gaussian leaf `N(mean, std_dev)` (Box–Muller sampling function).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `std_dev ≤ 0` or a parameter is not finite.
    pub fn normal(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        Ok(Self::from_distribution(Gaussian::new(mean, std_dev)?))
    }

    /// A uniform leaf on `[low, high)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `low >= high` or a bound is not finite.
    pub fn uniform(low: f64, high: f64) -> Result<Self, ParamError> {
        Ok(Self::from_distribution(Uniform::new(low, high)?))
    }

    /// A Rayleigh leaf with scale `ρ` — the paper's GPS error shape.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `scale` is not positive and finite.
    pub fn rayleigh(scale: f64) -> Result<Self, ParamError> {
        Ok(Self::from_distribution(Rayleigh::new(scale)?))
    }

    /// A Beta leaf on `[0, 1]` with shapes `α, β` — the conjugate posterior
    /// of Bernoulli evidence, so evidence-chain beliefs are expressible as
    /// first-class leaves.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless both shapes are positive and finite.
    pub fn beta(alpha: f64, beta: f64) -> Result<Self, ParamError> {
        Ok(Self::from_distribution(Beta::new(alpha, beta)?))
    }
}

impl Uncertain<bool> {
    /// A Bernoulli leaf that is `true` with probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `p ∈ [0, 1]`.
    pub fn bernoulli(p: f64) -> Result<Self, ParamError> {
        Ok(Self::from_distribution(Bernoulli::new(p)?))
    }
}

impl<T: Value + fmt::Debug> From<T> for Uncertain<T> {
    /// Coerces a concrete value to a point-mass distribution — the implicit
    /// lifting the paper applies to scalar operands (`Distance / dt`).
    fn from(value: T) -> Self {
        Uncertain::point(value)
    }
}

impl<T> From<&Uncertain<T>> for Uncertain<T> {
    fn from(u: &Uncertain<T>) -> Self {
        u.clone()
    }
}

/// Argument-position conversion into [`Uncertain<T>`], accepted by the
/// comparison methods so both `speed.gt(4.0)` and `speed.gt(&limit)` work.
///
/// Implemented for `T` itself (point mass), for `Uncertain<T>`, and for
/// `&Uncertain<T>`.
pub trait IntoUncertain<T> {
    /// Performs the conversion.
    fn into_uncertain(self) -> Uncertain<T>;
}

impl<T> IntoUncertain<T> for Uncertain<T> {
    fn into_uncertain(self) -> Uncertain<T> {
        self
    }
}

impl<T> IntoUncertain<T> for &Uncertain<T> {
    fn into_uncertain(self) -> Uncertain<T> {
        self.clone()
    }
}

impl<T: Value + fmt::Debug> IntoUncertain<T> for T {
    fn into_uncertain(self) -> Uncertain<T> {
        Uncertain::point(self)
    }
}

/// Trims a fully qualified type name down to its final path segment
/// (dropping generic arguments), for readable leaf labels.
fn short_type_name<D>() -> String {
    let full = std::any::type_name::<D>();
    let base = full.split('<').next().unwrap_or(full);
    base.rsplit("::").next().unwrap_or(base).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;

    #[test]
    fn point_mass_samples_constantly() {
        let u = Uncertain::point(3.5);
        let mut s = Session::sequential(0);
        for _ in 0..10 {
            assert_eq!(s.sample(&u), 3.5);
        }
    }

    #[test]
    fn from_scalar_is_point_mass() {
        let u: Uncertain<i32> = 9.into();
        let mut s = Session::sequential(0);
        assert_eq!(s.sample(&u), 9);
    }

    #[test]
    fn clone_preserves_identity() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let y = x.clone();
        assert_eq!(x.id(), y.id());
    }

    #[test]
    fn map_transforms_samples() {
        let x = Uncertain::point(2.0);
        let y = x.map("square", |v: f64| v * v);
        let mut s = Session::sequential(0);
        assert_eq!(s.sample(&y), 4.0);
    }

    #[test]
    fn map2_combines() {
        let a = Uncertain::point(3);
        let b = Uncertain::point(4);
        let c = a.map2("pythagoras", &b, |x: i32, y: i32| x * x + y * y);
        let mut s = Session::sequential(0);
        assert_eq!(s.sample(&c), 25);
    }

    #[test]
    fn zip_is_jointly_sampled() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let pair = x.zip(&x);
        let mut s = Session::sequential(5);
        for _ in 0..50 {
            let (a, b) = s.sample(&pair);
            assert_eq!(a, b, "zip of a variable with itself must be diagonal");
        }
    }

    #[test]
    fn flat_map_uses_sampled_value() {
        let choice = Uncertain::bernoulli(1.0).unwrap();
        let v = choice.flat_map("pick", |b| {
            if b {
                Uncertain::point(10.0)
            } else {
                Uncertain::point(-10.0)
            }
        });
        let mut s = Session::sequential(6);
        assert_eq!(s.sample(&v), 10.0);
    }

    #[test]
    fn debug_shows_id_and_label() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let dbg = format!("{x:?}");
        assert!(dbg.contains("Uncertain"));
        assert!(
            dbg.contains("Gaussian"),
            "label should name the leaf: {dbg}"
        );
    }

    #[test]
    fn short_type_name_strips_paths_and_generics() {
        assert_eq!(
            super::short_type_name::<uncertain_dist::Gaussian>(),
            "Gaussian"
        );
        assert_eq!(
            super::short_type_name::<uncertain_dist::PointMass<f64>>(),
            "PointMass"
        );
    }
}
