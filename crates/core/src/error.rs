//! The unified error vocabulary of the `Uncertain<T>` runtime.
//!
//! Each subsystem keeps its own precise error type — [`StatsError`] for
//! invalid test/estimator parameters, [`InconclusiveError`] for the
//! paper's ternary "neither branch" outcome, [`ConfigError`] for a
//! rejected [`EvalConfig`](crate::EvalConfig) build, [`ServeError`] for
//! request failures in an evaluation service — and [`Error`] is the
//! `#[non_exhaustive]` sum of all of them, with `From` impls in every
//! direction that matters. Service code and applications that mix
//! subsystems can return `Result<_, uncertain_core::Error>` and use `?`
//! throughout instead of hand-rolling conversions.
//!
//! `ServeError` lives here rather than in the `uncertain-serve` crate so
//! that `impl From<ServeError> for Error` is possible at all (the orphan
//! rules forbid a downstream crate from adding variants' conversions into
//! this type); the serve crate re-exports it as its public error type.

use crate::condition::InconclusiveError;
use std::fmt;
use uncertain_stats::StatsError;

/// Any error the `Uncertain<T>` runtime can produce, as one type.
///
/// Marked `#[non_exhaustive]`: new subsystems may add variants without a
/// breaking release, so downstream `match`es must carry a wildcard arm.
///
/// # Examples
///
/// ```
/// use uncertain_core::{Error, EvalConfig, Session, Uncertain};
///
/// fn decide(session: &mut Session, cond: &Uncertain<bool>) -> Result<bool, Error> {
///     let config = EvalConfig::builder().alpha(0.01).beta(0.01).build()?; // ConfigError
///     let outcome = session.try_evaluate(cond, 0.9, &config)?;            // Error (Stats/NotAnalytic)
///     Ok(outcome.expect_decided()?)                                      // InconclusiveError
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut session = Session::seeded(0);
/// let sure = Uncertain::bernoulli(0.99)?;
/// assert_eq!(decide(&mut session, &sure)?, true);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A hypothesis test or estimator was configured with invalid
    /// parameters (threshold outside `(0, 1)`, empty data, …).
    Stats(StatsError),
    /// A conditional's SPRT hit its sample cap without crossing a Wald
    /// boundary: neither branch is conclusively right.
    Inconclusive(InconclusiveError),
    /// An [`EvalConfig`](crate::EvalConfig) builder rejected its settings.
    Config(ConfigError),
    /// A request to a sharded evaluation service failed.
    Serve(ServeError),
    /// A network graph/frame could not be encoded or decoded.
    Wire(WireError),
    /// The analytic backend was demanded
    /// ([`EvalStrategy::ExactOnly`](crate::EvalStrategy::ExactOnly)) for a
    /// graph it does not recognize.
    NotAnalytic(NotAnalyticError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Stats(e) => e.fmt(f),
            Error::Inconclusive(e) => e.fmt(f),
            Error::Config(e) => e.fmt(f),
            Error::Serve(e) => e.fmt(f),
            Error::Wire(e) => e.fmt(f),
            Error::NotAnalytic(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Stats(e) => Some(e),
            Error::Inconclusive(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::Serve(e) => Some(e),
            Error::Wire(e) => Some(e),
            Error::NotAnalytic(e) => Some(e),
        }
    }
}

impl From<WireError> for Error {
    fn from(e: WireError) -> Self {
        Error::Wire(e)
    }
}

impl From<StatsError> for Error {
    fn from(e: StatsError) -> Self {
        Error::Stats(e)
    }
}

impl From<InconclusiveError> for Error {
    fn from(e: InconclusiveError) -> Self {
        Error::Inconclusive(e)
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<ServeError> for Error {
    fn from(e: ServeError) -> Self {
        Error::Serve(e)
    }
}

impl From<NotAnalyticError> for Error {
    fn from(e: NotAnalyticError) -> Self {
        Error::NotAnalytic(e)
    }
}

/// A query demanded the analytic backend
/// ([`EvalStrategy::ExactOnly`](crate::EvalStrategy::ExactOnly)) on a
/// graph the `exact` analysis declines — an opaque closure, a non-affine
/// operator over non-constant operands, correlated non-Gaussian branches,
/// and so on. Under [`EvalStrategy::Auto`](crate::EvalStrategy::Auto) the
/// same graph would silently (and bitwise-reproducibly) fall back to
/// sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct NotAnalyticError {
    /// What the query was (e.g. `"evaluate"`, `"e"`, `"stats"`).
    pub query: &'static str,
}

impl fmt::Display for NotAnalyticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} query demanded ExactOnly on a graph the analytic backend does not \
             recognize; use EvalStrategy::Auto to fall back to sampling",
            self.query
        )
    }
}

impl std::error::Error for NotAnalyticError {}

/// A rejected [`EvalConfig`](crate::EvalConfig) build: the combination of
/// SPRT knobs would produce a degenerate test (silently, before this type
/// existed — a zero batch spins forever, `α ∉ (0, 1)` makes the Wald
/// boundaries NaN).
///
/// Returned by [`EvalConfigBuilder::build`](crate::EvalConfigBuilder::build).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `alpha` (type-I error bound) must lie strictly inside `(0, 1)`.
    Alpha(f64),
    /// `beta` (type-II error bound) must lie strictly inside `(0, 1)`.
    Beta(f64),
    /// `delta` (indifference half-width) must lie strictly inside
    /// `(0, 0.5)`.
    Delta(f64),
    /// `batch` (samples per SPRT step) must be at least 1.
    ZeroBatch,
    /// `max_samples` must be able to hold at least one batch.
    CapBelowBatch {
        /// The rejected termination cap.
        max_samples: usize,
        /// The batch size the cap cannot hold.
        batch: usize,
    },
    /// A serve config asked for zero shards — there would be nowhere to
    /// route requests.
    ZeroShards,
    /// A serve config asked for a zero-depth request queue — every submit
    /// would be `QueueFull`.
    ZeroQueueDepth,
    /// A serve config asked for a zero-capacity session pool — no tenant
    /// could ever hold a session.
    ZeroSessionPool,
    /// A serve config asked for zero listener event loops — no thread
    /// would ever poll the sockets.
    ZeroEventLoops,
    /// A serve config's bind address failed to parse as `host:port`.
    BadBindAddr(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Alpha(v) => write!(f, "eval config alpha must be in (0, 1), got {v}"),
            ConfigError::Beta(v) => write!(f, "eval config beta must be in (0, 1), got {v}"),
            ConfigError::Delta(v) => write!(f, "eval config delta must be in (0, 0.5), got {v}"),
            ConfigError::ZeroBatch => write!(f, "eval config batch size must be at least 1"),
            ConfigError::CapBelowBatch { max_samples, batch } => write!(
                f,
                "eval config max_samples ({max_samples}) must be at least the batch size ({batch})"
            ),
            ConfigError::ZeroShards => write!(f, "serve config shard count must be at least 1"),
            ConfigError::ZeroQueueDepth => {
                write!(f, "serve config queue depth must be at least 1")
            }
            ConfigError::ZeroSessionPool => {
                write!(f, "serve config sessions_per_shard must be at least 1")
            }
            ConfigError::ZeroEventLoops => {
                write!(f, "serve config event_loops must be at least 1")
            }
            ConfigError::BadBindAddr(addr) => {
                write!(
                    f,
                    "serve config bind address {addr:?} is not a valid host:port"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A request to a sharded evaluation service failed.
///
/// This is the error half of `ServeClient::evaluate` and friends in the
/// `uncertain-serve` crate (which re-exports this type); it is defined
/// here so it participates in the unified [`Error`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The request's deadline expired — in the queue, or mid-SPRT (the
    /// shard aborts the test at the next batch boundary).
    Timeout,
    /// The target shard's bounded request queue was full; the caller
    /// should back off and retry (the service sheds load instead of
    /// buffering unboundedly).
    QueueFull,
    /// The service is shutting down (or has shut down) and accepts no new
    /// requests; in-flight work is drained, not dropped.
    Shutdown,
    /// The request itself was invalid (e.g. a conditional threshold
    /// outside `(0, 1)`), reported by the underlying runtime.
    Invalid(StatsError),
    /// A request or response could not be encoded/decoded — the query
    /// graph is not wire-expressible, or a frame arrived malformed.
    Wire(WireError),
    /// The network transport itself failed (connect refused, connection
    /// reset mid-request, I/O error) — distinct from the service
    /// *rejecting* a request.
    Transport(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Timeout => write!(f, "evaluation request deadline expired"),
            ServeError::QueueFull => write!(f, "shard request queue is full"),
            ServeError::Shutdown => write!(f, "evaluation service is shut down"),
            ServeError::Invalid(e) => write!(f, "invalid evaluation request: {e}"),
            ServeError::Wire(e) => write!(f, "wire protocol error: {e}"),
            ServeError::Transport(msg) => write!(f, "transport failure: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Invalid(e) => Some(e),
            ServeError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for ServeError {
    fn from(e: StatsError) -> Self {
        ServeError::Invalid(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

/// A wire-format encode or decode failure.
///
/// Produced by [`WireGraph`](crate::WireGraph) when a query graph cannot
/// be expressed in the network encoding, and by frame decoders (client and
/// server side) when bytes on the wire do not parse.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WireError {
    /// The graph contains a node the wire format cannot express — an
    /// opaque closure leaf, a monadic bind, encapsulation, priors,
    /// conditioning, or an untagged lifted operator. Carries the node's
    /// display label.
    Unsupported(String),
    /// The byte stream ended mid-structure.
    Truncated,
    /// The bytes parsed structurally but described something invalid
    /// (unknown opcode, child index out of range, parameters a public
    /// constructor rejects).
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Unsupported(label) => {
                write!(
                    f,
                    "graph node {label:?} is not expressible in the wire format"
                )
            }
            WireError::Truncated => write!(f, "wire data ended mid-structure"),
            WireError::Malformed(msg) => write!(f, "malformed wire data: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_compose_with_question_mark() {
        fn stats() -> Result<(), Error> {
            Err(StatsError::new("bad"))?
        }
        fn config() -> Result<(), Error> {
            Err(ConfigError::ZeroBatch)?
        }
        fn serve() -> Result<(), Error> {
            Err(ServeError::Timeout)?
        }
        assert!(matches!(stats(), Err(Error::Stats(_))));
        assert!(matches!(config(), Err(Error::Config(_))));
        assert!(matches!(serve(), Err(Error::Serve(ServeError::Timeout))));
    }

    #[test]
    fn display_is_specific() {
        assert!(Error::from(ConfigError::Alpha(1.5))
            .to_string()
            .contains("alpha"));
        assert!(Error::from(ServeError::QueueFull)
            .to_string()
            .contains("queue"));
        let e = Error::from(ConfigError::CapBelowBatch {
            max_samples: 5,
            batch: 10,
        });
        assert!(e.to_string().contains("max_samples (5)"));
    }

    #[test]
    fn source_chains_to_the_underlying_error() {
        use std::error::Error as _;
        let e = Error::from(StatsError::new("alpha out of range"));
        assert!(e.source().unwrap().to_string().contains("alpha"));
        let s = ServeError::from(StatsError::new("threshold"));
        assert!(s.source().unwrap().to_string().contains("threshold"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn check<E: std::error::Error + Send + Sync + 'static>() {}
        check::<Error>();
        check::<ConfigError>();
        check::<ServeError>();
    }
}
