//! Per-joint-sample evaluation context: RNG + memo table.
//!
//! One `SampleContext` lives exactly as long as one *joint sample* of a
//! Bayesian network. It implements the paper's ancestral-sampling guarantee
//! (§4.2): because values are memoized by [`NodeId`], "each node is visited
//! exactly once" per joint sample, and shared sub-expressions stay perfectly
//! correlated.

use crate::node::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::any::Any;
use std::collections::HashMap;

/// Evaluation state for one joint sample of a network.
pub(crate) struct SampleContext {
    rng: SmallRng,
    memo: HashMap<NodeId, Box<dyn Any + Send>>,
}

impl SampleContext {
    /// Creates a context with the given RNG seed.
    pub(crate) fn from_seed(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            memo: HashMap::new(),
        }
    }

    /// The randomness source for leaf sampling functions.
    pub(crate) fn rng(&mut self) -> &mut dyn RngCore {
        &mut self.rng
    }

    /// Looks up a memoized value for `id`.
    ///
    /// # Panics
    ///
    /// Panics if a value of a different type was memoized under the same id
    /// — impossible unless node identity is violated internally.
    pub(crate) fn lookup<T: Clone + 'static>(&self, id: NodeId) -> Option<T> {
        self.memo.get(&id).map(|boxed| {
            boxed
                .downcast_ref::<T>()
                .expect("node id memoized with inconsistent type")
                .clone()
        })
    }

    /// Memoizes a computed value for `id`.
    pub(crate) fn store<T: Clone + Send + 'static>(&mut self, id: NodeId, value: T) {
        self.memo.insert(id, Box::new(value));
    }

    /// Looks up `id`, or computes and memoizes it.
    pub(crate) fn memoized<T: Clone + Send + 'static>(
        &mut self,
        id: NodeId,
        compute: impl FnOnce(&mut Self) -> T,
    ) -> T {
        if let Some(v) = self.lookup::<T>(id) {
            return v;
        }
        let v = compute(self);
        self.store(id, v.clone());
        v
    }

    /// Derives a fresh, independent context (fresh memo table, RNG seeded
    /// from this context's stream) for encapsulated sub-networks.
    pub(crate) fn fork(&mut self) -> SampleContext {
        SampleContext::from_seed(self.rng.gen())
    }

    /// Clears the memo table while keeping its allocation and the RNG
    /// stream — the fast path for drawing many joint samples of the same
    /// network ([`Evaluator`](crate::Evaluator)).
    pub(crate) fn begin_joint_sample(&mut self) {
        self.memo.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoized_computes_once() {
        let mut ctx = SampleContext::from_seed(0);
        let id = NodeId::fresh();
        let mut calls = 0;
        let a: i32 = ctx.memoized(id, |_| {
            calls += 1;
            41
        });
        let b: i32 = ctx.memoized(id, |_| {
            calls += 1;
            99
        });
        assert_eq!(a, 41);
        assert_eq!(b, 41, "second lookup must return the memoized value");
        assert_eq!(calls, 1);
    }

    #[test]
    fn distinct_ids_do_not_collide() {
        let mut ctx = SampleContext::from_seed(0);
        let id1 = NodeId::fresh();
        let id2 = NodeId::fresh();
        ctx.store(id1, 1.0_f64);
        ctx.store(id2, 2.0_f64);
        assert_eq!(ctx.lookup::<f64>(id1), Some(1.0));
        assert_eq!(ctx.lookup::<f64>(id2), Some(2.0));
    }

    #[test]
    fn fork_is_independent() {
        let mut ctx = SampleContext::from_seed(7);
        let id = NodeId::fresh();
        ctx.store(id, 5_u8);
        let sub = ctx.fork();
        assert_eq!(sub.lookup::<u8>(id), None, "fork must not inherit memo");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SampleContext::from_seed(9);
        let mut b = SampleContext::from_seed(9);
        let xa: u64 = a.rng().next_u64();
        let xb: u64 = b.rng().next_u64();
        assert_eq!(xa, xb);
    }
}
