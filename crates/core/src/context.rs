//! Per-joint-sample evaluation context: RNG + memo table + slot arena.
//!
//! One `SampleContext` lives exactly as long as one *joint sample* of a
//! Bayesian network. It implements the paper's ancestral-sampling guarantee
//! (§4.2): because values are memoized by [`NodeId`], "each node is visited
//! exactly once" per joint sample, and shared sub-expressions stay perfectly
//! correlated.
//!
//! Memoization has two storage tiers:
//!
//! * the **memo table** — a `NodeId → Box<dyn Any>` hash map, used by the
//!   tree-walk interpreter for nodes discovered dynamically (e.g. networks
//!   produced inside a `flat_map` closure), and
//! * the **slot arena** — a flat `Vec` indexed by the dense slot numbers a
//!   [`Plan`](crate::Plan) assigns to the statically reachable nodes of a
//!   pinned network. Slots skip hashing entirely, and their boxes are
//!   *reused in place* across joint samples: invalidation is a single epoch
//!   bump in [`SampleContext::begin_joint_sample`], not a clear-and-realloc.
//!
//! When a plan is installed, the id-keyed helpers transparently redirect
//! planned nodes to their slots, so a dynamic sub-network that closes over a
//! planned variable still observes the same per-joint-sample value —
//! sharing semantics are identical in both execution modes.

use crate::node::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// One cell of the slot arena: the value last stored here and the epoch
/// (joint-sample counter) it belongs to. A stale epoch means "empty" — the
/// box itself is kept so the next store can overwrite it without
/// reallocating.
#[derive(Default)]
struct SlotEntry {
    epoch: u64,
    value: Option<Box<dyn Any + Send>>,
}

/// Per-slot cost counters of a profiled plan run
/// ([`Plan::compile_profiled`](crate::plan)): fresh computations, memo
/// re-reads, and inclusive closure time.
#[cfg(feature = "obs")]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SlotCost {
    /// Closure invocations that computed a fresh value this epoch.
    pub(crate) draws: u64,
    /// Closure invocations that served the memoized slot value.
    pub(crate) hits: u64,
    /// Total nanoseconds inside the closure (children included).
    pub(crate) ns: u64,
}

/// Evaluation state for one joint sample of a network.
pub(crate) struct SampleContext {
    rng: SmallRng,
    memo: HashMap<NodeId, Box<dyn Any + Send>>,
    /// Flat per-node storage for compiled plans; indexed by slot number.
    slots: Vec<SlotEntry>,
    /// The joint sample currently being drawn; slot entries from earlier
    /// epochs are treated as empty.
    epoch: u64,
    /// When a plan is installed, the slot assignment of its nodes — used to
    /// redirect id-keyed memo traffic (from dynamically tree-walked
    /// sub-networks) onto the arena.
    slot_of: Option<Arc<HashMap<NodeId, u32>>>,
    /// Per-slot cost counters, sized by [`SampleContext::enable_profile`];
    /// empty (and never touched) outside profiled runs.
    #[cfg(feature = "obs")]
    profile: Vec<SlotCost>,
}

impl SampleContext {
    /// Creates a context with the given RNG seed.
    pub(crate) fn from_seed(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            memo: HashMap::new(),
            slots: Vec::new(),
            epoch: 1,
            slot_of: None,
            #[cfg(feature = "obs")]
            profile: Vec::new(),
        }
    }

    /// Sizes the per-slot profile counters for a profiled plan run.
    #[cfg(feature = "obs")]
    pub(crate) fn enable_profile(&mut self, slot_count: usize) {
        if self.profile.len() < slot_count {
            self.profile.resize(slot_count, SlotCost::default());
        }
    }

    /// The per-slot profile counters accumulated so far (empty unless
    /// [`SampleContext::enable_profile`] was called).
    #[cfg(feature = "obs")]
    pub(crate) fn profile_slots(&self) -> &[SlotCost] {
        &self.profile
    }

    /// Whether `slot` already holds a value for the current epoch — i.e.
    /// a closure re-entry would be a memo hit, not a fresh draw.
    #[cfg(feature = "obs")]
    pub(crate) fn slot_filled(&self, slot: u32) -> bool {
        self.slots
            .get(slot as usize)
            .is_some_and(|e| e.epoch == self.epoch && e.value.is_some())
    }

    /// Charges one closure invocation of `slot` to the profile counters.
    /// A no-op when profiling was never enabled for this slot.
    #[cfg(feature = "obs")]
    pub(crate) fn profile_record(&mut self, slot: u32, ns: u64, was_hit: bool) {
        if let Some(cost) = self.profile.get_mut(slot as usize) {
            if was_hit {
                cost.hits += 1;
            } else {
                cost.draws += 1;
            }
            cost.ns += ns;
        }
    }

    /// Re-seeds the RNG stream in place, keeping the memo/slot allocations.
    /// After `reseed(s)` + [`begin_joint_sample`](Self::begin_joint_sample),
    /// the next joint sample is bitwise identical to one drawn from a fresh
    /// `SampleContext::from_seed(s)`.
    pub(crate) fn reseed(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
    }

    /// Installs a compiled plan's slot assignment and sizes the arena.
    pub(crate) fn install_plan(&mut self, slot_of: Arc<HashMap<NodeId, u32>>, slot_count: usize) {
        if self.slots.len() < slot_count {
            self.slots.resize_with(slot_count, SlotEntry::default);
        }
        self.slot_of = Some(slot_of);
    }

    /// The randomness source for leaf sampling functions.
    pub(crate) fn rng(&mut self) -> &mut dyn RngCore {
        &mut self.rng
    }

    /// Reads slot `slot` if it was written during the current epoch.
    ///
    /// # Panics
    ///
    /// Panics if the slot holds a value of a different type — impossible
    /// unless plan compilation assigned one slot to two nodes.
    pub(crate) fn slot_get<T: Clone + 'static>(&self, slot: u32) -> Option<T> {
        let entry = &self.slots[slot as usize];
        if entry.epoch != self.epoch {
            return None;
        }
        entry.value.as_ref().map(|boxed| {
            boxed
                .downcast_ref::<T>()
                .expect("plan slot written with inconsistent type")
                .clone()
        })
    }

    /// Writes `value` into slot `slot` for the current epoch, overwriting
    /// the existing box in place when the type matches (the steady state:
    /// zero allocations per joint sample).
    pub(crate) fn slot_put<T: Clone + Send + 'static>(&mut self, slot: u32, value: T) {
        let entry = &mut self.slots[slot as usize];
        entry.epoch = self.epoch;
        let reusable = entry.value.as_ref().is_some_and(|boxed| boxed.is::<T>());
        if reusable {
            let boxed = entry.value.as_mut().expect("checked above");
            *boxed.downcast_mut::<T>().expect("checked above") = value;
        } else {
            entry.value = Some(Box::new(value));
        }
    }

    /// The slot assigned to `id` by the installed plan, if any.
    fn slot_for(&self, id: NodeId) -> Option<u32> {
        self.slot_of.as_ref().and_then(|m| m.get(&id).copied())
    }

    /// Looks up a memoized value for `id`.
    ///
    /// # Panics
    ///
    /// Panics if a value of a different type was memoized under the same id
    /// — impossible unless node identity is violated internally.
    pub(crate) fn lookup<T: Clone + 'static>(&self, id: NodeId) -> Option<T> {
        if let Some(slot) = self.slot_for(id) {
            return self.slot_get(slot);
        }
        self.memo.get(&id).map(|boxed| {
            boxed
                .downcast_ref::<T>()
                .expect("node id memoized with inconsistent type")
                .clone()
        })
    }

    /// Memoizes a computed value for `id`.
    pub(crate) fn store<T: Clone + Send + 'static>(&mut self, id: NodeId, value: T) {
        if let Some(slot) = self.slot_for(id) {
            self.slot_put(slot, value);
            return;
        }
        self.memo.insert(id, Box::new(value));
    }

    /// Looks up `id`, or computes and memoizes it.
    pub(crate) fn memoized<T: Clone + Send + 'static>(
        &mut self,
        id: NodeId,
        compute: impl FnOnce(&mut Self) -> T,
    ) -> T {
        if let Some(v) = self.lookup::<T>(id) {
            return v;
        }
        let v = compute(self);
        self.store(id, v.clone());
        v
    }

    /// Derives a fresh, independent context (fresh memo table, RNG seeded
    /// from this context's stream) for encapsulated sub-networks. The fork
    /// deliberately does *not* inherit any installed plan: encapsulation
    /// means the sub-network must decorrelate from the outer sample.
    pub(crate) fn fork(&mut self) -> SampleContext {
        SampleContext::from_seed(self.rng.gen())
    }

    /// Starts the next joint sample: bumps the slot epoch (invalidating the
    /// whole arena in O(1)) and clears the memo table while keeping its
    /// allocation — the fast path for drawing many joint samples of the
    /// same network ([`Evaluator`](crate::Evaluator)).
    pub(crate) fn begin_joint_sample(&mut self) {
        self.memo.clear();
        self.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoized_computes_once() {
        let mut ctx = SampleContext::from_seed(0);
        let id = NodeId::fresh();
        let mut calls = 0;
        let a: i32 = ctx.memoized(id, |_| {
            calls += 1;
            41
        });
        let b: i32 = ctx.memoized(id, |_| {
            calls += 1;
            99
        });
        assert_eq!(a, 41);
        assert_eq!(b, 41, "second lookup must return the memoized value");
        assert_eq!(calls, 1);
    }

    #[test]
    fn distinct_ids_do_not_collide() {
        let mut ctx = SampleContext::from_seed(0);
        let id1 = NodeId::fresh();
        let id2 = NodeId::fresh();
        ctx.store(id1, 1.0_f64);
        ctx.store(id2, 2.0_f64);
        assert_eq!(ctx.lookup::<f64>(id1), Some(1.0));
        assert_eq!(ctx.lookup::<f64>(id2), Some(2.0));
    }

    #[test]
    fn fork_is_independent() {
        let mut ctx = SampleContext::from_seed(7);
        let id = NodeId::fresh();
        ctx.store(id, 5_u8);
        let sub = ctx.fork();
        assert_eq!(sub.lookup::<u8>(id), None, "fork must not inherit memo");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SampleContext::from_seed(9);
        let mut b = SampleContext::from_seed(9);
        let xa: u64 = a.rng().next_u64();
        let xb: u64 = b.rng().next_u64();
        assert_eq!(xa, xb);
    }

    #[test]
    fn reseed_matches_fresh_context() {
        let mut reused = SampleContext::from_seed(0);
        let _ = reused.rng().next_u64();
        reused.reseed(1234);
        reused.begin_joint_sample();
        let mut fresh = SampleContext::from_seed(1234);
        assert_eq!(reused.rng().next_u64(), fresh.rng().next_u64());
    }

    #[test]
    fn slots_invalidate_per_epoch_without_realloc() {
        let mut ctx = SampleContext::from_seed(0);
        ctx.install_plan(Arc::new(HashMap::new()), 2);
        ctx.slot_put(0, 1.5_f64);
        assert_eq!(ctx.slot_get::<f64>(0), Some(1.5));
        assert_eq!(ctx.slot_get::<f64>(1), None, "unwritten slot is empty");
        ctx.begin_joint_sample();
        assert_eq!(ctx.slot_get::<f64>(0), None, "stale epoch reads as empty");
        ctx.slot_put(0, 2.5_f64);
        assert_eq!(ctx.slot_get::<f64>(0), Some(2.5));
    }

    #[test]
    fn id_helpers_redirect_to_slots_when_planned() {
        let mut ctx = SampleContext::from_seed(0);
        let planned = NodeId::fresh();
        let dynamic = NodeId::fresh();
        let mut slot_of = HashMap::new();
        slot_of.insert(planned, 0_u32);
        ctx.install_plan(Arc::new(slot_of), 1);
        // A tree-walked store of a planned node lands in the slot…
        ctx.store(planned, 7_i64);
        assert_eq!(ctx.slot_get::<i64>(0), Some(7));
        assert_eq!(ctx.lookup::<i64>(planned), Some(7));
        // …while unplanned ids keep using the memo table.
        ctx.store(dynamic, 9_i64);
        assert_eq!(ctx.lookup::<i64>(dynamic), Some(9));
        ctx.begin_joint_sample();
        assert_eq!(ctx.lookup::<i64>(planned), None);
        assert_eq!(ctx.lookup::<i64>(dynamic), None);
    }
}
